//! Invariant tests for the feature-gated metrics layer.
//!
//! These tests assert *exact* counter values for scripted workloads, so they
//! live in their own integration-test binary (their own process) and
//! serialize on a mutex: the metric registry is process-global and any
//! concurrently running instrumented code would perturb the counts.
//!
//! Compiled with `--features metrics` the snapshot must reconcile with the
//! workload; compiled without, the snapshot must be empty — both halves are
//! exercised by `scripts/check.sh`, which runs the suite under both feature
//! sets.

use fastpubsub::prelude::*;
use fastpubsub::types::metrics::{self, MetricsSnapshot};
use fastpubsub::types::AttrId;
use std::sync::Mutex;

/// Serializes the tests in this binary; the registry is process-global.
static METRICS_LOCK: Mutex<()> = Mutex::new(());

/// A tiny deterministic workload: `subs` equality subscriptions on
/// attribute 0, then `events` publishes alternating hit/miss.
fn scripted_run(kind: EngineKind, subs: u32, events: u64) -> Vec<SubscriptionId> {
    let mut broker = Broker::new(kind).without_event_store();
    for i in 0..subs {
        let sub = Subscription::builder()
            .eq(AttrId(0), (i % 4) as i64)
            .build()
            .unwrap();
        broker.subscribe(sub, Validity::forever());
    }
    let mut matched = Vec::new();
    for i in 0..events {
        let event = Event::builder()
            .pair(AttrId(0), (i % 8) as i64)
            .build()
            .unwrap();
        matched.extend(broker.publish(&event));
    }
    matched
}

#[cfg(feature = "metrics")]
mod enabled {
    use super::*;
    use fastpubsub::core::{ClusteredMatcher, DynamicConfig, MatchEngine};

    #[test]
    fn publishes_equal_phase1_invocations() {
        let _guard = METRICS_LOCK.lock().unwrap();
        metrics::reset_all();
        scripted_run(EngineKind::Counting, 8, 40);
        let snap = MetricsSnapshot::capture();
        // Every published event runs phase 1 exactly once (unsharded engine,
        // no event store), and nothing else in this process publishes.
        assert_eq!(snap.counter("broker.publishes"), Some(40));
        assert_eq!(snap.counter("index.phase1.snapshot_evals"), Some(40));
        assert_eq!(snap.counter("core.counting.events"), Some(40));
        assert_eq!(snap.counter("broker.subscribes"), Some(8));
    }

    #[test]
    fn verified_is_at_least_matched_on_every_engine() {
        let _guard = METRICS_LOCK.lock().unwrap();
        metrics::reset_all();
        for kind in EngineKind::PAPER_ENGINES {
            scripted_run(kind, 16, 64);
        }
        let snap = MetricsSnapshot::capture();
        for engine in ["counting", "propagation", "clustered"] {
            let verified = snap
                .counter(&format!("core.{engine}.verified"))
                .unwrap_or(0);
            let matched = snap.counter(&format!("core.{engine}.matched")).unwrap_or(0);
            assert!(matched > 0, "{engine}: scripted workload must match");
            assert!(
                verified >= matched,
                "{engine}: verified {verified} < matched {matched}"
            );
        }
        // The scripted workload matches deterministically: 4 of the 8 event
        // values hit, each hitting the 4 subscriptions on that value, so
        // each engine contributes (64/8) * 4 * 4 = 128 matches. The counting
        // engine runs exactly once in PAPER_ENGINES, so its counter is exact.
        let per_engine = 64 / 8 * 4 * (16 / 4);
        assert_eq!(
            snap.counter("core.counting.matched"),
            Some(per_engine),
            "counting match count"
        );
    }

    #[test]
    fn dynamic_table_events_reconcile_with_final_table_count() {
        let _guard = METRICS_LOCK.lock().unwrap();
        metrics::reset_all();
        // Aggressive maintenance so tables are created AND removed.
        let mut engine = ClusteredMatcher::new_dynamic_with(DynamicConfig {
            period: 3,
            bm_max: 0.05,
            b_create: 2,
            b_delete: 2,
            max_schema_len: 3,
            min_gain: 0.0,
            decay_stats: true,
        });
        let mut out = Vec::new();
        for i in 0..64u32 {
            let sub = Subscription::builder()
                .eq(AttrId(i % 3), (i % 5) as i64)
                .eq(AttrId(3 + i % 2), (i % 7) as i64)
                .build()
                .unwrap();
            engine.insert(SubscriptionId(i), &sub);
            let event = Event::builder()
                .pair(AttrId(i % 3), (i % 5) as i64)
                .pair(AttrId(3 + i % 2), (i % 7) as i64)
                .build()
                .unwrap();
            engine.match_event(&event, &mut out);
            out.clear();
        }
        for i in 0..32u32 {
            engine.remove(SubscriptionId(i * 2));
        }
        engine.run_maintenance();
        let snap = MetricsSnapshot::capture();
        let created = snap.counter("core.clustered.tables_created").unwrap_or(0);
        let removed = snap.counter("core.clustered.tables_removed").unwrap_or(0);
        assert!(created > 0, "workload must create tables");
        assert_eq!(
            created - removed,
            engine.table_summary().len() as u64,
            "create/remove events must reconcile with the live table count"
        );
    }

    #[test]
    fn histograms_record_phase_latencies() {
        let _guard = METRICS_LOCK.lock().unwrap();
        metrics::reset_all();
        scripted_run(EngineKind::Dynamic, 8, 32);
        let snap = MetricsSnapshot::capture();
        let h = snap
            .histogram("core.phase1_nanos")
            .expect("phase1 recorded");
        assert_eq!(h.count, 32);
        let total: u64 = h.buckets.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, h.count, "bucket counts sum to the record count");
    }
}

#[cfg(not(feature = "metrics"))]
mod disabled {
    use super::*;

    #[test]
    fn snapshot_is_empty_without_the_feature() {
        let _guard = METRICS_LOCK.lock().unwrap();
        scripted_run(EngineKind::Counting, 8, 40);
        let snap = MetricsSnapshot::capture();
        assert!(!metrics::enabled());
        assert!(snap.is_empty(), "metrics-off build must observe nothing");
        assert_eq!(snap.counter("broker.publishes"), None);
        assert_eq!(snap.to_json(), "{\"counters\":{},\"histograms\":{}}");
    }
}
