//! Edge-case and failure-injection tests across engines: inputs the paper's
//! uniform workloads never produce, which real deployments will.

use fastpubsub::prelude::*;
use fastpubsub::types::{AttrId, Value};

fn all_engines() -> impl Iterator<Item = Broker> {
    EngineKind::PAPER_ENGINES
        .into_iter()
        .map(|k| Broker::new(k).without_event_store())
}

/// Events carrying attributes no subscription ever mentioned.
#[test]
fn unknown_event_attributes_are_ignored() {
    for mut broker in all_engines() {
        let sub = Subscription::builder().eq(AttrId(0), 1i64).build().unwrap();
        let id = broker.subscribe(sub, Validity::forever());
        let event = Event::builder()
            .pair(AttrId(0), 1i64)
            .pair(AttrId(999), 42i64)
            .pair(AttrId(12345), 7i64)
            .build()
            .unwrap();
        assert_eq!(broker.publish(&event), vec![id], "{}", broker.engine_name());
    }
}

/// Mixed string/integer values on the same attribute.
#[test]
fn mixed_value_kinds_on_one_attribute() {
    for kind in EngineKind::PAPER_ENGINES {
        let mut broker = Broker::new(kind).without_event_store();
        let color = broker.attr("color");
        let red = broker.string("red");
        let int_sub = Subscription::builder().eq(color, 5i64).build().unwrap();
        let str_sub = Subscription::builder().eq(color, red).build().unwrap();
        let ne_sub = Subscription::builder()
            .with(color, Operator::Ne, 5i64)
            .build()
            .unwrap();
        let int_id = broker.subscribe(int_sub, Validity::forever());
        let str_id = broker.subscribe(str_sub, Validity::forever());
        let ne_id = broker.subscribe(ne_sub, Validity::forever());

        // Integer event: matches the int subscription, and ≠5 is false.
        let e = Event::builder().pair(color, 5i64).build().unwrap();
        let mut got = broker.publish(&e);
        got.sort();
        assert_eq!(got, vec![int_id], "{}", broker.engine_name());

        // String event: matches the string subscription, and 'red' ≠ 5 so
        // the ≠ subscription matches too (cross-kind inequality).
        let e = Event::builder().pair(color, red).build().unwrap();
        let mut got = broker.publish(&e);
        got.sort();
        assert_eq!(got, vec![str_id, ne_id], "{}", broker.engine_name());
    }
}

/// Extreme integer constants.
#[test]
fn extreme_values() {
    for mut broker in all_engines() {
        let sub = Subscription::builder()
            .with(AttrId(0), Operator::Ge, i64::MIN)
            .with(AttrId(0), Operator::Le, i64::MAX)
            .build()
            .unwrap();
        let id = broker.subscribe(sub, Validity::forever());
        for v in [i64::MIN, -1, 0, 1, i64::MAX] {
            let e = Event::builder().pair(AttrId(0), v).build().unwrap();
            assert_eq!(broker.publish(&e), vec![id], "value {v}");
        }
    }
}

/// Many subscriptions sharing one identical predicate set still notify
/// individually.
#[test]
fn identical_subscriptions_all_match() {
    for mut broker in all_engines() {
        let sub = Subscription::builder()
            .eq(AttrId(0), 1i64)
            .with(AttrId(1), Operator::Lt, 100i64)
            .build()
            .unwrap();
        let ids: Vec<_> = (0..200)
            .map(|_| broker.subscribe(sub.clone(), Validity::forever()))
            .collect();
        let e = Event::builder()
            .pair(AttrId(0), 1i64)
            .pair(AttrId(1), 50i64)
            .build()
            .unwrap();
        let mut got = broker.publish(&e);
        got.sort();
        assert_eq!(got, ids, "{}", broker.engine_name());
    }
}

/// Wide subscriptions exercise the generic (non-specialised) match loop.
#[test]
fn wide_subscriptions_use_generic_kernel() {
    for mut broker in all_engines() {
        // 16 predicates: one equality + 15 range predicates.
        let mut b = Subscription::builder().eq(AttrId(0), 1i64);
        for a in 1..16u32 {
            b = b.with(AttrId(a), Operator::Ge, -(a as i64));
        }
        let sub = b.build().unwrap();
        assert_eq!(sub.size(), 16);
        let id = broker.subscribe(sub, Validity::forever());

        let mut eb = Event::builder().pair(AttrId(0), 1i64);
        for a in 1..16u32 {
            eb = eb.pair(AttrId(a), 0i64);
        }
        let hit = eb.build().unwrap();
        assert_eq!(broker.publish(&hit), vec![id], "{}", broker.engine_name());

        // Break the 15th predicate only: no match.
        let mut eb = Event::builder().pair(AttrId(0), 1i64);
        for a in 1..16u32 {
            let v = if a == 15 { -100i64 } else { 0 };
            eb = eb.pair(AttrId(a), v);
        }
        let miss = eb.build().unwrap();
        assert!(broker.publish(&miss).is_empty(), "{}", broker.engine_name());
    }
}

/// Drain the system completely, then rebuild it; ids and indexes must not
/// leak state.
#[test]
fn drain_and_rebuild() {
    for kind in EngineKind::PAPER_ENGINES {
        let mut broker = Broker::new(kind).without_event_store();
        let sub = |v: i64| {
            Subscription::builder()
                .eq(AttrId(0), v)
                .with(AttrId(1), Operator::Gt, v)
                .build()
                .unwrap()
        };
        let first: Vec<_> = (0..100)
            .map(|v| broker.subscribe(sub(v), Validity::forever()))
            .collect();
        for id in first {
            assert!(broker.unsubscribe(id));
        }
        assert_eq!(broker.subscription_count(), 0);
        // Nothing matches while empty.
        let e = Event::builder()
            .pair(AttrId(0), 5i64)
            .pair(AttrId(1), 50i64)
            .build()
            .unwrap();
        assert!(broker.publish(&e).is_empty());

        // Rebuild with the same shapes; matching works again.
        let second: Vec<_> = (0..100)
            .map(|v| broker.subscribe(sub(v), Validity::forever()))
            .collect();
        assert_eq!(
            broker.publish(&e),
            vec![second[5]],
            "{}",
            broker.engine_name()
        );
    }
}

/// Empty events match nothing but crash nothing.
#[test]
fn empty_event() {
    for mut broker in all_engines() {
        let sub = Subscription::builder().eq(AttrId(0), 1i64).build().unwrap();
        broker.subscribe(sub, Validity::forever());
        let e = Event::from_pairs(vec![]).unwrap();
        assert!(broker.publish(&e).is_empty());
    }
}

/// Negative-domain range predicates work through the B+-tree path.
#[test]
fn negative_ranges() {
    for mut broker in all_engines() {
        let sub = Subscription::builder()
            .with(AttrId(0), Operator::Lt, -10i64)
            .with(AttrId(0), Operator::Ge, -20i64)
            .build()
            .unwrap();
        let id = broker.subscribe(sub, Validity::forever());
        let cases = [
            (-20i64, true),
            (-15, true),
            (-11, true),
            (-10, false),
            (-21, false),
            (0, false),
        ];
        for (v, should) in cases {
            let e = Event::builder().pair(AttrId(0), v).build().unwrap();
            let got = !broker.publish(&e).is_empty();
            assert_eq!(got, should, "{} value {v}", broker.engine_name());
        }
        let _ = id;
    }
}

/// String values flow end to end, including interning-order `<` semantics.
#[test]
fn string_values_end_to_end() {
    let mut broker = Broker::new(EngineKind::Dynamic);
    let city = broker.attr("city");
    // Intern in sorted order so symbol order is lexicographic.
    let amsterdam = broker.string("amsterdam");
    let berlin = broker.string("berlin");
    let cairo = broker.string("cairo");

    let before_cairo = Subscription::builder()
        .with(city, Operator::Lt, cairo)
        .build()
        .unwrap();
    let id = broker.subscribe(before_cairo, Validity::forever());

    for (v, should) in [(amsterdam, true), (berlin, true), (cairo, false)] {
        let e = Event::builder().pair(city, v).build().unwrap();
        assert_eq!(!broker.publish(&e).is_empty(), should);
    }
    let _ = Value::Str; // keep the import obviously used
    let _ = id;
}

/// Subscriptions made only of `≠` predicates carry no equality access
/// predicate, so propagation and clustered engines must route them through
/// their scan-every-event fallback path — with semantics identical to the
/// oracle's across all engines.
#[test]
fn ne_only_subscriptions_use_fallback_path() {
    for mut broker in all_engines() {
        let ne_only = Subscription::builder()
            .with(AttrId(0), Operator::Ne, 5i64)
            .with(AttrId(1), Operator::Ne, 0i64)
            .build()
            .unwrap();
        let id = broker.subscribe(ne_only, Validity::forever());
        let cases = [
            // (attr0, attr1, matches): both ≠ must hold.
            (4i64, 1i64, true),
            (5, 1, false),
            (4, 0, false),
            (5, 0, false),
            (-5, 99, true),
        ];
        for (a, b, should) in cases {
            let e = Event::builder()
                .pair(AttrId(0), a)
                .pair(AttrId(1), b)
                .build()
                .unwrap();
            let got = broker.publish(&e) == vec![id];
            assert_eq!(got, should, "{} event ({a},{b})", broker.engine_name());
        }
        // An event missing attr 1 entirely cannot satisfy its ≠ predicate.
        let e = Event::builder().pair(AttrId(0), 4i64).build().unwrap();
        assert!(broker.publish(&e).is_empty(), "{}", broker.engine_name());
    }
}

/// Duplicate attributes within one event violate the §1.1 "at most one pair
/// per attribute" model and are rejected at construction — identically via
/// `from_pairs` and the builder, never panicking, and never reaching an
/// engine.
#[test]
fn duplicate_event_attributes_are_rejected() {
    use fastpubsub::types::TypeError;

    let dup = vec![
        (AttrId(3), Value::Int(1)),
        (AttrId(3), Value::Int(2)),
        (AttrId(4), Value::Int(9)),
    ];
    let err = Event::from_pairs(dup.clone()).unwrap_err();
    assert!(matches!(err, TypeError::DuplicateEventAttribute(AttrId(3))));

    let mut b = Event::builder();
    for (a, v) in dup {
        b = b.pair(a, v);
    }
    let err = b.build().unwrap_err();
    assert!(matches!(err, TypeError::DuplicateEventAttribute(AttrId(3))));

    // Same value counts as a duplicate too (a set of pairs, not a multiset).
    let err = Event::from_pairs(vec![(AttrId(0), Value::Int(7)), (AttrId(0), Value::Int(7))])
        .unwrap_err();
    assert!(matches!(err, TypeError::DuplicateEventAttribute(AttrId(0))));

    // Engines never see the malformed event; brokers stay fully functional.
    for mut broker in all_engines() {
        let sub = Subscription::builder().eq(AttrId(3), 1i64).build().unwrap();
        let id = broker.subscribe(sub, Validity::forever());
        let ok = Event::builder().pair(AttrId(3), 1i64).build().unwrap();
        assert_eq!(broker.publish(&ok), vec![id], "{}", broker.engine_name());
    }
}

/// An unsubscribe racing a validity expiry on the same tick: whichever side
/// wins, the subscription is gone exactly once, the loser reports `false`/
/// zero, and the broker never double-removes or panics on the expiry heap's
/// stale entry.
#[test]
fn unsubscribe_racing_expiry_on_the_same_tick() {
    use fastpubsub::broker::LogicalTime;

    for kind in EngineKind::PAPER_ENGINES {
        // Expiry first: the tick at t=1 reaps the subscription, so the
        // unsubscribe that "raced in late" finds nothing.
        let mut broker = Broker::new(kind).without_event_store();
        let name = broker.engine_name();
        let sub = Subscription::builder().eq(AttrId(0), 1i64).build().unwrap();
        let id = broker.subscribe(sub.clone(), Validity::until(LogicalTime(1)));
        let (expired, _) = broker.tick();
        assert_eq!(expired, 1, "{name}");
        assert!(!broker.unsubscribe(id), "{name}: expired id must be gone");
        assert_eq!(broker.subscription_count(), 0, "{name}");

        // Unsubscribe first: the tick then finds the heap's entry already
        // dead and must report zero expiries, not one.
        let id = broker.subscribe(sub, Validity::until(LogicalTime(2)));
        assert!(broker.unsubscribe(id), "{name}");
        let (expired, _) = broker.tick();
        assert_eq!(expired, 0, "{name}: removed id must not count as expired");
        assert_eq!(broker.subscription_count(), 0, "{name}");
        let e = Event::builder().pair(AttrId(0), 1i64).build().unwrap();
        assert!(broker.publish(&e).is_empty(), "{name}");
    }
}

/// A re-subscribe after an expiry gets a fresh id — the old id must stay
/// dead (no resurrection through slot reuse), and notifications for the new
/// subscription carry only the new id.
#[test]
fn resubscribe_after_expiry_does_not_resurrect_the_old_id() {
    use fastpubsub::broker::LogicalTime;

    for kind in EngineKind::PAPER_ENGINES {
        let mut broker = Broker::new(kind).without_event_store();
        let name = broker.engine_name();
        let sub = Subscription::builder().eq(AttrId(0), 1i64).build().unwrap();
        let old = broker.subscribe(sub.clone(), Validity::until(LogicalTime(1)));
        let (expired, _) = broker.tick();
        assert_eq!(expired, 1, "{name}");

        let new = broker.subscribe(sub, Validity::forever());
        assert_ne!(new, old, "{name}: ids are never reissued");
        let e = Event::builder().pair(AttrId(0), 1i64).build().unwrap();
        assert_eq!(broker.publish(&e), vec![new], "{name}");
        assert!(!broker.unsubscribe(old), "{name}: old id stays dead");
        assert!(broker.unsubscribe(new), "{name}");
    }
}

/// Duplicate predicates within one subscription: an exact `(attr, op,
/// value)` repeat is rejected at construction (it adds no information and
/// would distort size-based clustering), while distinct predicates on the
/// same attribute — even redundant ones — are legal and match correctly.
#[test]
fn duplicate_predicates_in_one_subscription() {
    use fastpubsub::types::TypeError;

    let err = Subscription::builder()
        .eq(AttrId(0), 1i64)
        .eq(AttrId(0), 1i64)
        .build()
        .unwrap_err();
    assert!(matches!(err, TypeError::DuplicatePredicate));
    let err = Subscription::builder()
        .with(AttrId(2), Operator::Ge, 5i64)
        .with(AttrId(2), Operator::Ge, 5i64)
        .build()
        .unwrap_err();
    assert!(matches!(err, TypeError::DuplicatePredicate));

    // Same attribute, overlapping-but-distinct predicates: legal, and every
    // engine applies them all conjunctively.
    for mut broker in all_engines() {
        let name = broker.engine_name();
        let sub = Subscription::builder()
            .with(AttrId(2), Operator::Ge, 5i64)
            .with(AttrId(2), Operator::Gt, 4i64)
            .with(AttrId(2), Operator::Le, 9i64)
            .build()
            .unwrap();
        let id = broker.subscribe(sub, Validity::forever());
        for (v, should) in [(4i64, false), (5, true), (9, true), (10, false)] {
            let e = Event::builder().pair(AttrId(2), v).build().unwrap();
            assert_eq!(broker.publish(&e) == vec![id], should, "{name} value {v}");
        }
    }
}

/// Unsubscribing an id that was never issued (or already removed) returns
/// `false` without panicking, on every engine, and leaves the broker fully
/// functional — unlike `MatchEngine::remove`, which is allowed to assert.
#[test]
fn unsubscribe_of_unknown_id_is_rejected_not_fatal() {
    for mut broker in all_engines() {
        let name = broker.engine_name();
        // Never-issued ids: far past the lane and id 0 before any subscribe.
        assert!(!broker.unsubscribe(SubscriptionId(0)), "{name}");
        assert!(!broker.unsubscribe(SubscriptionId(999_999)), "{name}");

        let sub = Subscription::builder().eq(AttrId(0), 1i64).build().unwrap();
        let id = broker.subscribe(sub, Validity::forever());
        assert!(broker.unsubscribe(id), "{name}");
        // Double-unsubscribe of a once-valid id.
        assert!(!broker.unsubscribe(id), "{name}");

        // Still functional afterwards.
        let sub = Subscription::builder().eq(AttrId(0), 2i64).build().unwrap();
        let id2 = broker.subscribe(sub, Validity::forever());
        let e = Event::builder().pair(AttrId(0), 2i64).build().unwrap();
        assert_eq!(broker.publish(&e), vec![id2], "{name}");
    }
}
