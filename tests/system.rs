//! End-to-end system tests spanning every crate: broker + engines +
//! workload generator + validity + event store.

use fastpubsub::broker::LogicalTime;
use fastpubsub::prelude::*;
use fastpubsub::workload::{presets, WorkloadGen};

/// The full broker lifecycle works identically on every engine.
#[test]
fn broker_lifecycle_all_engines() {
    for kind in EngineKind::PAPER_ENGINES {
        let mut broker = Broker::new(kind);
        let mut gen = WorkloadGen::new(presets::w0(10_000));

        // Load a batch, with a validity horizon.
        let subs: Vec<Subscription> = (0..2_000).map(|_| gen.subscription()).collect();
        let ids = broker.subscribe_batch(subs.clone(), Validity::until(LogicalTime(100)));
        broker.finalize();
        assert_eq!(
            broker.subscription_count(),
            2_000,
            "{}",
            broker.engine_name()
        );

        // Publish a batch and cross-check against definitional matching.
        let events: Vec<Event> = (0..50).map(|_| gen.event()).collect();
        let notes = broker.publish_batch(&events);
        for (event, note) in events.iter().zip(&notes) {
            let mut got = note.matched.clone();
            got.sort();
            let mut want: Vec<SubscriptionId> = ids
                .iter()
                .zip(&subs)
                .filter(|(_, s)| s.matches_event(event))
                .map(|(id, _)| *id)
                .collect();
            want.sort();
            assert_eq!(got, want, "engine {}", broker.engine_name());
        }

        // Expire everything; nothing matches afterwards.
        broker.advance_to(LogicalTime(100));
        assert_eq!(broker.subscription_count(), 0, "{}", broker.engine_name());
        for event in &events {
            assert!(broker.publish(event).is_empty());
        }
    }
}

/// Churn at equilibrium keeps every engine consistent with brute force.
#[test]
fn churn_consistency_all_engines() {
    let mut gen = WorkloadGen::new(presets::w1(100_000));
    // One shared subscription stream so all engines see identical input.
    let subs: Vec<Subscription> = (0..3_000).map(|_| gen.subscription()).collect();
    let events: Vec<Event> = (0..40).map(|_| gen.event()).collect();

    for kind in EngineKind::PAPER_ENGINES {
        let mut broker = Broker::new(kind).without_event_store();
        let mut live: Vec<(SubscriptionId, usize)> = Vec::new();
        for (i, sub) in subs.iter().enumerate() {
            let id = broker.subscribe(sub.clone(), Validity::forever());
            live.push((id, i));
            // Interleave removals: drop every third subscription.
            if i % 3 == 2 {
                let (victim, _) = live.remove(live.len() / 2);
                assert!(broker.unsubscribe(victim));
            }
        }
        for event in &events {
            let mut got = broker.publish(event);
            got.sort();
            let mut want: Vec<SubscriptionId> = live
                .iter()
                .filter(|(_, i)| subs[*i].matches_event(event))
                .map(|(id, _)| *id)
                .collect();
            want.sort();
            assert_eq!(got, want, "engine {}", broker.engine_name());
        }
    }
}

/// The W2-style operator-heavy workload matches correctly end to end.
#[test]
fn inequality_heavy_workload() {
    let mut gen = WorkloadGen::new(presets::w2(100_000));
    let subs: Vec<Subscription> = (0..1_000).map(|_| gen.subscription()).collect();
    let events: Vec<Event> = (0..30).map(|_| gen.event()).collect();
    let mut expected_total = 0usize;
    for kind in EngineKind::PAPER_ENGINES {
        let mut broker = Broker::new(kind).without_event_store();
        let ids = broker.subscribe_batch(subs.clone(), Validity::forever());
        broker.finalize();
        let mut total = 0usize;
        for event in &events {
            total += broker.publish(event).len();
        }
        let want: usize = events
            .iter()
            .map(|e| subs.iter().filter(|s| s.matches_event(e)).count())
            .sum();
        assert_eq!(total, want, "engine {}", broker.engine_name());
        if expected_total == 0 {
            expected_total = total;
        } else {
            assert_eq!(total, expected_total);
        }
        drop(ids);
    }
}

/// Replay: late subscribers see stored valid events, per §1's two
/// complementary functionalities.
#[test]
fn replay_against_stored_events() {
    let mut broker = Broker::new(EngineKind::Dynamic);
    let a = broker.attr("a");
    for v in 0..10i64 {
        let e = Event::builder().pair(a, v).build().unwrap();
        broker.publish_with_validity(e, Validity::until(LogicalTime(50)));
    }
    let sub = Subscription::builder()
        .with(a, Operator::Lt, 3i64)
        .build()
        .unwrap();
    let (_, replay) = broker.subscribe_with_replay(sub.clone(), Validity::forever());
    assert_eq!(replay.len(), 3, "events 0, 1, 2 are under 3");

    // After the store's horizon, replay returns nothing.
    broker.advance_to(LogicalTime(50));
    let (_, replay) = broker.subscribe_with_replay(sub, Validity::forever());
    assert!(replay.is_empty());
}

/// Engine stats surface sanity: the phase timers and check counters move.
#[test]
fn stats_are_populated() {
    let mut broker = Broker::new(EngineKind::PropagationPrefetch);
    let mut gen = WorkloadGen::new(presets::w0(10_000));
    broker.subscribe_batch(
        (0..500).map(|_| gen.subscription()).collect::<Vec<_>>(),
        Validity::forever(),
    );
    for _ in 0..20 {
        broker.publish(&gen.event());
    }
    let s = broker.engine_stats();
    assert_eq!(s.events, 20);
    assert!(s.subscriptions_checked > 0);
    assert!(s.phase1_nanos > 0);
    assert!(s.phase2_nanos > 0);
}
