//! Example 3.1 of the paper as an executable assertion: the cost-based
//! clustering (C2-style, with multi-attribute tables) must check fewer
//! subscriptions per event than singleton-only clustering (C1), on the
//! exact population the example constructs.

use fastpubsub::core::{ClusteredMatcher, DynamicConfig, MatchEngine};
use fastpubsub::cost::{
    greedy_clustering, CostConstants, GreedyConfig, SubscriptionProfile, UniformEstimator,
};
use fastpubsub::types::{AttrId, AttrSet, Event, Subscription, SubscriptionId, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SUBSETS: [&[u32]; 7] = [&[0], &[1], &[2], &[0, 1], &[1, 2], &[0, 2], &[0, 1, 2]];
// Large enough that a pair table's accumulated saving clearly beats the
// honest per-event probe overhead (~75 K_c units) of creating it.
const PER_SUBSET: usize = 5_000;
const DOMAIN: i64 = 100;

fn population(rng: &mut SmallRng) -> Vec<Subscription> {
    let mut subs = Vec::new();
    for attrs in SUBSETS {
        for _ in 0..PER_SUBSET {
            let mut b = Subscription::builder();
            for &a in attrs {
                b = b.eq(AttrId(a), rng.gen_range(0..DOMAIN));
            }
            subs.push(b.build().unwrap());
        }
    }
    subs
}

fn run(engine: &mut ClusteredMatcher, warm: bool) -> f64 {
    let mut rng = SmallRng::seed_from_u64(7);
    for (i, sub) in population(&mut rng).iter().enumerate() {
        engine.insert(SubscriptionId(i as u32), sub);
    }
    let mut out = Vec::new();
    let mut rng = SmallRng::seed_from_u64(8);
    // Warm statistics with uniform 3-attribute events.
    for _ in 0..800 {
        let e = Event::builder()
            .pair(AttrId(0), rng.gen_range(0..DOMAIN))
            .pair(AttrId(1), rng.gen_range(0..DOMAIN))
            .pair(AttrId(2), rng.gen_range(0..DOMAIN))
            .build()
            .unwrap();
        out.clear();
        engine.match_event(&e, &mut out);
    }
    if warm {
        engine.run_maintenance();
    }
    engine.reset_stats();
    // Measure on (A, B)-events, as the example does.
    for _ in 0..200 {
        let e = Event::builder()
            .pair(AttrId(0), rng.gen_range(0..DOMAIN))
            .pair(AttrId(1), rng.gen_range(0..DOMAIN))
            .build()
            .unwrap();
        out.clear();
        engine.match_event(&e, &mut out);
    }
    engine.stats().checks_per_event()
}

fn example_config() -> DynamicConfig {
    DynamicConfig {
        period: usize::MAX,
        // Scaled thresholds: singleton value-clusters hold ~60 subscriptions
        // at ν = 1/100, i.e. a benefit margin of ~0.6 expected checks/event.
        bm_max: 0.25,
        b_create: 100,
        ..DynamicConfig::default()
    }
}

#[test]
fn cost_based_clustering_beats_singletons() {
    // C1 must stay on singleton access predicates: an infinite margin
    // threshold disables the insert-triggered maintenance entirely.
    let mut c1 = ClusteredMatcher::new_dynamic_with(DynamicConfig {
        bm_max: f64::INFINITY,
        ..example_config()
    });
    let c1_checks = run(&mut c1, false);

    let mut c2 = ClusteredMatcher::new_dynamic_with(example_config());
    let c2_checks = run(&mut c2, true);

    assert!(
        c2_checks < c1_checks * 0.8,
        "C2 ({c2_checks:.0} checks/event) should clearly beat C1 ({c1_checks:.0})"
    );
    // C2 must have created at least one pair table.
    assert!(c2
        .table_summary()
        .iter()
        .any(|(s, p, _)| s.len() >= 2 && *p > 0));
}

/// The analytic side: the greedy optimizer, fed the example's uniform
/// selectivities, chooses multi-attribute schemas and predicts a lower cost
/// than the singleton instance — the comparison §3.1 works through.
#[test]
fn greedy_reproduces_example_arithmetic() {
    let mut rng = SmallRng::seed_from_u64(9);
    let profiles: Vec<SubscriptionProfile> = population(&mut rng)
        .iter()
        .map(SubscriptionProfile::of)
        .collect();
    let est = UniformEstimator::new(DOMAIN as u32);
    let consts = CostConstants::default();

    let singletons_only = greedy_clustering(
        &profiles,
        &est,
        &consts,
        &GreedyConfig {
            max_space: 0.0,
            max_schema_len: 3,
        },
    );
    let optimized = greedy_clustering(&profiles, &est, &consts, &GreedyConfig::default());

    assert!(optimized.expected_cost < singletons_only.expected_cost);
    let has_pair = optimized.schemas.iter().any(|s: &AttrSet| s.len() >= 2);
    assert!(has_pair, "plan uses conjunctions: {:?}", optimized.schemas);

    // Every subscription with multiple equality attributes should sit under
    // a multi-attribute access predicate in the optimized plan.
    let multi_covered = profiles
        .iter()
        .zip(&optimized.assignment)
        .filter(|(p, a)| {
            p.eq_schema().len() >= 2 && a.is_some_and(|si| optimized.schemas[si].len() >= 2)
        })
        .count();
    let multi_total = profiles.iter().filter(|p| p.eq_schema().len() >= 2).count();
    // Under the honest probe-cost constants the optimizer deliberately skips
    // tables whose total saving is below one probe's cost (the example's own
    // C2 also leaves the AC table out), so full coverage is not expected —
    // but the clear majority of multi-attribute subscriptions must sit under
    // multi-attribute access predicates.
    assert!(
        multi_covered * 2 >= multi_total,
        "{multi_covered}/{multi_total} multi-attribute subscriptions clustered multi"
    );
    let _ = Value::Int(0); // silence unused-import lints in minimal builds
}
