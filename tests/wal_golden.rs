//! Golden-file test pinning the WAL's on-disk format.
//!
//! A durable broker's log must stay readable across releases: a byte-level
//! format change silently strands every existing `--durable` directory. Two
//! fixtures pin the format from both sides:
//!
//! * `tests/golden/wal_segment.bin` — the exact segment bytes produced by
//!   writing a fixed op sequence (write-side pin: today's writer emits the
//!   committed encoding).
//! * `tests/golden/wal_dump.txt` — `Wal::dump` of that segment (read-side
//!   pin: today's reader decodes a segment committed by a past writer, and
//!   the `wal dump` rendering the CLI exposes stays stable).
//!
//! Deliberate format changes re-bless both with `UPDATE_GOLDEN=1`
//! (`scripts/check.sh --bless`) — and should bump the segment magic.

use fastpubsub::broker::{LogicalTime, Validity};
use fastpubsub::durability::{DurabilityConfig, Wal, WalOp};
use fastpubsub::types::{AttrId, Operator, Subscription, SubscriptionId, Symbol, Value};
use fastpubsub::workload::golden::{assert_or_bless, assert_or_bless_bytes, blessing};
use std::path::PathBuf;

const SEGMENT_FILE: &str = "wal-00000000000000000000.log";

fn golden_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fp-wal-golden-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A fixed op sequence covering every record tag, with a string-valued
/// equality, a range predicate, a finite validity, an unsubscribe, a
/// clock advance and the four session records (create/bind/release/reap).
fn golden_ops() -> Vec<WalOp> {
    let eq_sub = Subscription::builder()
        .eq(AttrId(0), Value::Str(Symbol(0)))
        .with(AttrId(1), Operator::Le, 10i64)
        .build()
        .unwrap();
    let range_sub = Subscription::builder()
        .with(AttrId(1), Operator::Gt, -3i64)
        .with(AttrId(1), Operator::Lt, 400i64)
        .build()
        .unwrap();
    vec![
        WalOp::InternAttr("movie".to_string()),
        WalOp::InternAttr("price".to_string()),
        WalOp::InternString("groundhog day".to_string()),
        WalOp::Subscribe {
            id: SubscriptionId(0),
            sub: eq_sub,
            validity: Validity::forever(),
        },
        WalOp::Subscribe {
            id: SubscriptionId(1),
            sub: range_sub,
            validity: Validity::until(LogicalTime(5)),
        },
        WalOp::Unsubscribe(SubscriptionId(0)),
        WalOp::AdvanceTo(LogicalTime(5)),
        WalOp::SessionCreate { token: 1 },
        WalOp::SessionBind {
            token: 1,
            id: SubscriptionId(1),
        },
        WalOp::SessionRelease {
            token: 1,
            id: SubscriptionId(1),
        },
        WalOp::SessionReap { token: 1 },
    ]
}

fn write_golden_wal(dir: &std::path::Path) {
    let (mut wal, recovered) = Wal::open(dir, DurabilityConfig::default()).unwrap();
    assert!(recovered.ops.is_empty(), "fresh directory");
    for op in golden_ops() {
        wal.append(&op).unwrap();
    }
    wal.sync().unwrap();
}

/// Write-side pin: the writer reproduces the committed segment bytes.
#[test]
fn writer_reproduces_the_golden_segment() {
    let dir = temp_dir("write");
    write_golden_wal(&dir);
    let bytes = std::fs::read(dir.join(SEGMENT_FILE)).unwrap();
    assert_or_bless_bytes(golden_dir().join("wal_segment.bin"), &bytes);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Read-side pin: the reader decodes the committed segment — a log written
/// by a past build of the workspace — back to the exact op stream, and the
/// `wal dump` rendering stays stable.
#[test]
fn reader_decodes_the_golden_segment() {
    if blessing() {
        // The write-side test refreshes the fixture; nothing to read against
        // until it has (test order is not guaranteed within a bless run).
        let dir = temp_dir("bless");
        write_golden_wal(&dir);
        let bytes = std::fs::read(dir.join(SEGMENT_FILE)).unwrap();
        std::fs::write(golden_dir().join("wal_segment.bin"), &bytes).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
    let dir = temp_dir("read");
    std::fs::copy(golden_dir().join("wal_segment.bin"), dir.join(SEGMENT_FILE)).unwrap();

    let ops = Wal::dump(&dir).unwrap();
    let expected: Vec<(u64, WalOp)> = golden_ops()
        .into_iter()
        .enumerate()
        .map(|(i, op)| (i as u64, op))
        .collect();
    assert_eq!(ops, expected, "recovered op stream drifted");

    let rendered: Vec<String> = ops
        .iter()
        .map(|(lsn, op)| format!("{lsn:>8}  {op}"))
        .collect();
    assert_or_bless(golden_dir().join("wal_dump.txt"), &rendered.join("\n"));

    // The verifier agrees the fixture is healthy and fully accounted for.
    let report = Wal::verify(&dir).unwrap();
    assert!(report.healthy(), "{report:?}");
    assert_eq!(report.total_records(), golden_ops().len() as u64);
    std::fs::remove_dir_all(&dir).unwrap();
}
