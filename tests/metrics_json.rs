//! Golden-file test for the `MetricsSnapshot` JSON encoding.
//!
//! The snapshot schema is consumed by `--json` tooling (`cli stats --json
//! --metrics`, `fig3a_throughput --json`) whose outputs land in `results/`;
//! pinning the encoding to a committed golden file means the schema cannot
//! drift silently. The round-trip half parses the encoder's output with
//! `pubsub-workload::json` — the workspace's only JSON reader — proving the
//! two stay interoperable.
//!
//! This test is feature-independent: the encoder is always compiled; only
//! live capture is gated.

use fastpubsub::types::metrics::{CounterEntry, HistogramEntry, MetricsSnapshot};
use fastpubsub::workload::golden::assert_or_bless;
use fastpubsub::workload::json::{parse, Json};

/// The snapshot encoded by the golden file, built by hand.
fn golden_snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        counters: vec![
            CounterEntry {
                name: "broker.publishes".into(),
                value: 42,
            },
            CounterEntry {
                name: "broker.shared.shed_shards".into(),
                value: 1,
            },
            CounterEntry {
                name: "broker.shared.snapshot_flips".into(),
                value: 5,
            },
            CounterEntry {
                name: "core.counting.matched".into(),
                value: 7,
            },
            CounterEntry {
                name: "core.sharded.quarantined_events".into(),
                value: 1,
            },
            CounterEntry {
                name: "core.sharded.shard_rebuilds".into(),
                value: 3,
            },
            CounterEntry {
                name: "index.phase1.batch_events".into(),
                value: 96,
            },
            CounterEntry {
                name: "index.phase1.batches".into(),
                value: 6,
            },
            CounterEntry {
                name: "index.phase1.bits_set".into(),
                value: 9000,
            },
            CounterEntry {
                name: "net.server.pings".into(),
                value: 11,
            },
            CounterEntry {
                name: "net.server.sessions_restored".into(),
                value: 3,
            },
            CounterEntry {
                name: "rcu.reclaim_deferred".into(),
                value: 2,
            },
            CounterEntry {
                name: "recovery.records_replayed".into(),
                value: 12,
            },
            CounterEntry {
                name: "recovery.torn_tail_truncated".into(),
                value: 1,
            },
            CounterEntry {
                name: "snapshot.written".into(),
                value: 2,
            },
            CounterEntry {
                name: "wal.appends".into(),
                value: 13,
            },
            CounterEntry {
                name: "wal.bytes".into(),
                value: 388,
            },
            CounterEntry {
                name: "wal.fsyncs".into(),
                value: 4,
            },
            CounterEntry {
                name: "wal.rotations".into(),
                value: 2,
            },
            CounterEntry {
                name: "wal.session_records".into(),
                value: 4,
            },
        ],
        histograms: vec![
            HistogramEntry {
                name: "core.phase1_nanos".into(),
                count: 4,
                sum: 6144,
                buckets: vec![(0, 1), (11, 2), (12, 1)],
            },
            HistogramEntry {
                name: "core.sharded.batch_size".into(),
                count: 5,
                sum: 320,
                buckets: vec![(7, 5)],
            },
            HistogramEntry {
                name: "index.phase1.batch_size".into(),
                count: 6,
                sum: 96,
                buckets: vec![(1, 2), (5, 4)],
            },
            HistogramEntry {
                name: "core.sharded.queue_depth".into(),
                count: 9,
                sum: 25,
                buckets: vec![(0, 2), (2, 5), (3, 2)],
            },
            HistogramEntry {
                name: "rcu.readers_active".into(),
                count: 3,
                sum: 4,
                buckets: vec![(0, 1), (1, 2)],
            },
        ],
    }
}

#[test]
fn encoding_matches_the_golden_file() {
    // Blessable (UPDATE_GOLDEN=1 / scripts/check.sh --bless): the fixture
    // only moves on a deliberate schema or counter-set change.
    assert_or_bless(
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/metrics_snapshot.json"
        ),
        &golden_snapshot().to_json(),
    );
}

#[test]
fn encoding_is_deterministic_under_entry_order() {
    // to_json sorts by name, so a permuted snapshot encodes identically.
    let mut snap = golden_snapshot();
    snap.counters.reverse();
    snap.histograms.reverse();
    assert_eq!(snap.to_json(), golden_snapshot().to_json());
}

#[test]
fn round_trips_through_the_workload_json_parser() {
    let doc = parse(&golden_snapshot().to_json()).expect("encoder output parses");
    let Json::Object(top) = &doc else {
        panic!("top level must be an object, got {doc:?}");
    };
    assert_eq!(
        top.keys().collect::<Vec<_>>(),
        vec!["counters", "histograms"]
    );

    let Some(Json::Object(counters)) = top.get("counters") else {
        panic!("counters must be an object");
    };
    assert_eq!(counters.get("broker.publishes"), Some(&Json::Int(42)));
    assert_eq!(counters.get("core.counting.matched"), Some(&Json::Int(7)));
    assert_eq!(
        counters.get("index.phase1.bits_set"),
        Some(&Json::Int(9000))
    );

    let Some(Json::Object(hists)) = top.get("histograms") else {
        panic!("histograms must be an object");
    };
    let Some(Json::Object(h)) = hists.get("core.phase1_nanos") else {
        panic!("histogram must be an object");
    };
    assert_eq!(h.get("count"), Some(&Json::Int(4)));
    assert_eq!(h.get("sum"), Some(&Json::Int(6144)));
    let Some(Json::Object(buckets)) = h.get("buckets") else {
        panic!("buckets must be an object");
    };
    // Fixed-width keys keep lexicographic order == numeric bucket order.
    assert_eq!(buckets.keys().collect::<Vec<_>>(), vec!["00", "11", "12"]);
    assert_eq!(buckets.get("11"), Some(&Json::Int(2)));
}

#[test]
fn live_capture_also_parses() {
    // Whatever the process has recorded so far (possibly nothing): the
    // capture must encode to a parseable document with the two fixed keys.
    let doc = parse(&MetricsSnapshot::capture().to_json()).expect("live capture parses");
    let Json::Object(top) = doc else {
        panic!("top level must be an object");
    };
    assert!(top.contains_key("counters") && top.contains_key("histograms"));
}
