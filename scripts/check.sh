#!/usr/bin/env bash
# Repository gate: formatting, lints, release build, full test suite.
#
# Usage: scripts/check.sh [--online] [--bench-smoke] [--chaos]
#
# By default every cargo invocation runs with --offline: the workspace
# resolves all external dependencies to the in-tree shims (shims/README.md),
# so a network-less container builds from the committed Cargo.lock alone.
# Pass --online to let cargo touch the network (e.g. after intentionally
# updating the lockfile).
#
# --bench-smoke additionally runs every Criterion bench target once in test
# mode (each benchmark body executes a single iteration, no measurement), so
# bench code can't bit-rot without the gate noticing, and re-runs the
# cross-engine differential proptest with a bounded case count (via the
# PROPTEST_CASES cap the proptest shim honours) as a fast smoke lane.
#
# The test suite runs twice: once with default features (metrics layer
# compiled to no-ops) and once with --features metrics (real atomic
# counters), so both halves of the feature gate stay green.
#
# --chaos adds the fault-injection lane: build and test the workspace with
# --features faults,metrics (arming the deterministic fault registry inside
# the supervised sharded engine) and smoke the chaos recovery proptest with
# a bounded case count. The runtime-gated tests in crates/core/tests/chaos.rs
# only exercise injection in this lane.
set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE="--offline"
BENCH_SMOKE=0
CHAOS=0
for arg in "$@"; do
    case "$arg" in
        --online) OFFLINE="" ;;
        --bench-smoke) BENCH_SMOKE=1 ;;
        --chaos) CHAOS=1 ;;
        *)
            echo "unknown flag: $arg (known: --online --bench-smoke --chaos)" >&2
            exit 2
            ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy ${OFFLINE} --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build ${OFFLINE} --release --workspace

echo "==> cargo test (default features: metrics off)"
cargo test ${OFFLINE} --workspace

echo "==> cargo test (--features metrics)"
cargo test ${OFFLINE} --workspace --features metrics

if [[ "$CHAOS" == 1 ]]; then
    echo "==> cargo build (--features faults,metrics)"
    cargo build ${OFFLINE} --workspace --features faults,metrics
    echo "==> cargo test (--features faults,metrics)"
    cargo test ${OFFLINE} --workspace --features faults,metrics
    echo "==> chaos recovery proptest smoke (PROPTEST_CASES=8)"
    PROPTEST_CASES=8 cargo test ${OFFLINE} -p pubsub-core --features pubsub-types/faults \
        --test chaos random_fault_schedules_recover_to_exact_equivalence
fi

if [[ "$BENCH_SMOKE" == 1 ]]; then
    echo "==> bench smoke (one iteration per benchmark)"
    cargo bench ${OFFLINE} --workspace -- --test
    echo "==> differential proptest smoke (PROPTEST_CASES=8)"
    PROPTEST_CASES=8 cargo test ${OFFLINE} -p pubsub-core --test equivalence \
        all_engines_agree_on_identical_interleavings
fi

echo "==> all checks passed"
