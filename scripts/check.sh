#!/usr/bin/env bash
# Repository gate: formatting, lints, release build, full test suite.
#
# Usage: scripts/check.sh [--online] [--bench-smoke] [--chaos] [--durability]
#                         [--contention] [--net] [--replication] [--sessions]
#                         [--bless]
#
# Lanes
#   (default)      fmt + clippy + release build + tests with default features,
#                  with --features metrics, and with --features simd and
#                  simd,metrics (the explicit-SIMD phase-1 kernels with
#                  runtime CPU detection — same tests, vectorized path).
#   --bench-smoke  every Criterion bench target once in test mode (one
#                  iteration, no measurement) so bench code can't bit-rot,
#                  a second phase1_micro pass with the simd feature so the
#                  batched/vectorized variant runs too, plus the
#                  cross-engine differential proptest with a bounded case
#                  count.
#   --chaos        fault-injection lane: build and test the workspace with
#                  --features faults,metrics (arming the deterministic fault
#                  registry inside the supervised sharded engine) and smoke
#                  the chaos recovery proptest. The runtime-gated tests in
#                  crates/core/tests/chaos.rs only exercise injection here.
#   --durability   crash-recovery lane: build and test with --features
#                  faults,metrics so the WAL's fault points (append/fsync/
#                  snapshot failures -> degraded read-only mode) actually
#                  fire, then run the kill-at-any-byte recovery suite and
#                  its randomized proptest with a bounded case count.
#   --contention   lock-free publish lane: the RCU stress/differential
#                  suite with the test-thread count unpinned (so racing
#                  publishers really race the churn threads), a
#                  publish_scaling bench smoke (locked vs rcu × 1/2/4/8
#                  publishers, one iteration), and — when a nightly
#                  toolchain with ThreadSanitizer happens to be installed —
#                  a TSan pass over the stress suite. The TSan step skips
#                  gracefully when nightly or the rust-src component is
#                  unavailable (the offline container ships stable only).
#   --net          network-server lane: the pubsub-net suites (protocol
#                  conformance + adversarial decoder, e2e differential,
#                  kill-anywhere reconnect sweep) with default features and
#                  again with --features faults,metrics so the chaos
#                  scenarios actually inject, then a release netload smoke:
#                  `pubsub serve` on loopback, one netload run with a
#                  one-shot RPS floor, writing results/BENCH_net.json.
#   --replication  WAL-shipping lane: the leader/follower suites at every
#                  layer (durability read_tail/snapshot transfer, broker
#                  follower apply/promote, socket-level replication, session
#                  GC + client reconnect, kill-the-leader chaos sweep) with
#                  --features faults,metrics so the net.repl.* fault points
#                  inject, then a release loopback smoke: a durable leader
#                  `serve`, a `--follow` replica, netload against the
#                  leader, poll `repl status --json` until lag reaches 0,
#                  and `promote` the replica.
#   --sessions     durable-session lane: the session WAL/broker suites and
#                  the kill-the-server-at-any-frame restart + failover
#                  resume sweeps with --features faults,metrics (bounded by
#                  PROPTEST_CASES and FP_SWEEP_STRIDE), then a release
#                  loopback smoke: `serve --durable`, a netload run,
#                  SIGKILL the server mid-run, restart it on the same
#                  address and WAL dir, and require the run to complete —
#                  every client must ride through the restart by resuming
#                  its durable session.
#   --bless        regenerate the golden fixtures (tests/golden/*: the
#                  MetricsSnapshot JSON schema and the WAL on-disk format
#                  pins) from the current code by running the golden tests
#                  under UPDATE_GOLDEN=1, then re-run them without it to
#                  prove the blessed files round-trip. Only for deliberate
#                  format/schema changes — review the diff before committing.
#
# Environment knobs
#   PROPTEST_CASES  caps randomized-test case counts (the proptest shim
#                   honours it); the smoke lanes above set it themselves.
#   UPDATE_GOLDEN   =1 rewrites golden fixtures instead of asserting
#                   (what --bless does for you).
#
# By default every cargo invocation runs with --offline: the workspace
# resolves all external dependencies to the in-tree shims (shims/README.md),
# so a network-less container builds from the committed Cargo.lock alone.
# Pass --online to let cargo touch the network (e.g. after intentionally
# updating the lockfile).
set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE="--offline"
BENCH_SMOKE=0
CHAOS=0
DURABILITY=0
CONTENTION=0
NET=0
REPLICATION=0
SESSIONS=0
BLESS=0
for arg in "$@"; do
    case "$arg" in
        --online) OFFLINE="" ;;
        --bench-smoke) BENCH_SMOKE=1 ;;
        --chaos) CHAOS=1 ;;
        --durability) DURABILITY=1 ;;
        --contention) CONTENTION=1 ;;
        --net) NET=1 ;;
        --replication) REPLICATION=1 ;;
        --sessions) SESSIONS=1 ;;
        --bless) BLESS=1 ;;
        *)
            echo "unknown flag: $arg (known: --online --bench-smoke --chaos --durability --contention --net --replication --sessions --bless)" >&2
            exit 2
            ;;
    esac
done

if [[ "$BLESS" == 1 ]]; then
    echo "==> blessing golden fixtures (UPDATE_GOLDEN=1)"
    UPDATE_GOLDEN=1 cargo test ${OFFLINE} --test metrics_json --test wal_golden
    echo "==> verifying blessed fixtures round-trip"
    cargo test ${OFFLINE} --test metrics_json --test wal_golden
    git --no-pager diff --stat -- tests/golden || true
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy ${OFFLINE} --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build ${OFFLINE} --release --workspace

echo "==> cargo test (default features: metrics off)"
cargo test ${OFFLINE} --workspace

echo "==> cargo test (--features metrics)"
cargo test ${OFFLINE} --workspace --features metrics

echo "==> cargo build (--features simd)"
cargo build ${OFFLINE} --workspace --features simd

echo "==> cargo test (--features simd)"
cargo test ${OFFLINE} --workspace --features simd

echo "==> cargo test (--features simd,metrics)"
cargo test ${OFFLINE} --workspace --features simd,metrics

if [[ "$CHAOS" == 1 ]]; then
    echo "==> cargo build (--features faults,metrics)"
    cargo build ${OFFLINE} --workspace --features faults,metrics
    echo "==> cargo test (--features faults,metrics)"
    cargo test ${OFFLINE} --workspace --features faults,metrics
    echo "==> chaos recovery proptest smoke (PROPTEST_CASES=8)"
    PROPTEST_CASES=8 cargo test ${OFFLINE} -p pubsub-core --features pubsub-types/faults \
        --test chaos random_fault_schedules_recover_to_exact_equivalence
fi

if [[ "$DURABILITY" == 1 ]]; then
    echo "==> cargo test -p pubsub-durability -p pubsub-broker (--features faults,metrics)"
    cargo test ${OFFLINE} -p pubsub-durability -p pubsub-broker \
        --features pubsub-types/faults,pubsub-types/metrics
    echo "==> kill-at-any-byte recovery suite"
    cargo test ${OFFLINE} -p pubsub-broker --test durability \
        kill_at_any_byte_recovers_across_all_engines_and_shard_counts
    echo "==> randomized crash-recovery proptest smoke (PROPTEST_CASES=16)"
    PROPTEST_CASES=16 cargo test ${OFFLINE} -p pubsub-broker --test durability \
        random_workload_survives_a_random_cut
fi

if [[ "$CONTENTION" == 1 ]]; then
    echo "==> RCU stress + differential suite (test threads unpinned)"
    env -u RUST_TEST_THREADS cargo test ${OFFLINE} -p pubsub-broker --test concurrency
    echo "==> publish_scaling bench smoke (one iteration)"
    cargo bench ${OFFLINE} -p pubsub-bench --bench publish_scaling -- --test
    if rustup toolchain list 2>/dev/null | grep -q nightly \
        && rustup component list --toolchain nightly 2>/dev/null | grep -q "rust-src (installed)"; then
        echo "==> ThreadSanitizer pass over the stress suite (nightly)"
        RUSTFLAGS="-Zsanitizer=thread" RUST_TEST_THREADS=4 \
            cargo +nightly test ${OFFLINE} -Zbuild-std --target x86_64-unknown-linux-gnu \
            -p pubsub-broker --test concurrency
    else
        echo "==> ThreadSanitizer pass skipped (no nightly toolchain with rust-src)"
    fi
fi

if [[ "$NET" == 1 ]]; then
    echo "==> cargo test -p pubsub-net (protocol, e2e differential, reconnect sweep)"
    PROPTEST_CASES="${PROPTEST_CASES:-64}" cargo test ${OFFLINE} -p pubsub-net
    echo "==> cargo test -p pubsub-net (--features faults,metrics: chaos with injection live)"
    PROPTEST_CASES="${PROPTEST_CASES:-64}" cargo test ${OFFLINE} -p pubsub-net --features faults,metrics
    echo "==> netload smoke on loopback (release)"
    cargo build ${OFFLINE} --release -p pubsub-cli
    NET_ADDR="127.0.0.1:7939"
    target/release/pubsub serve counting --addr "$NET_ADDR" < /dev/null &
    SERVE_PID=$!
    trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
    for _ in $(seq 1 50); do
        if (exec 3<>"/dev/tcp/127.0.0.1/7939") 2>/dev/null; then break; fi
        sleep 0.1
    done
    target/release/pubsub netload --addr "$NET_ADDR" --subscribers 2 --subs 4 \
        --events 2000 --min-rps 1000 --json results/BENCH_net.json
    kill "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
fi

if [[ "$REPLICATION" == 1 ]]; then
    echo "==> replication suites, every layer (--features faults,metrics)"
    cargo test ${OFFLINE} -p pubsub-durability \
        --features pubsub-types/faults,pubsub-types/metrics replication
    cargo test ${OFFLINE} -p pubsub-broker \
        --features pubsub-types/faults,pubsub-types/metrics --test replication
    PROPTEST_CASES="${PROPTEST_CASES:-64}" cargo test ${OFFLINE} -p pubsub-net \
        --features faults,metrics \
        --test replication --test session_gc --test chaos
    echo "==> leader/follower loopback smoke (release)"
    cargo build ${OFFLINE} --release -p pubsub-cli
    REPL_DIR="$(mktemp -d)"
    REPL_OUT="$REPL_DIR/follower.out"
    REPL_FIFO="$REPL_DIR/follower.in"
    mkfifo "$REPL_FIFO"
    L_ADDR="127.0.0.1:7941"
    F_ADDR="127.0.0.1:7942"
    FOLLOW_PID=""
    target/release/pubsub serve counting --addr "$L_ADDR" \
        --durable "$REPL_DIR/leader" < /dev/null &
    LEADER_PID=$!
    trap 'kill $LEADER_PID $FOLLOW_PID 2>/dev/null || true; rm -rf "$REPL_DIR"' EXIT
    for _ in $(seq 1 50); do
        if (exec 3<>"/dev/tcp/127.0.0.1/7941") 2>/dev/null; then break; fi
        sleep 0.1
    done
    target/release/pubsub serve counting --addr "$F_ADDR" \
        --durable "$REPL_DIR/replica" --follow "$L_ADDR" \
        < "$REPL_FIFO" > "$REPL_OUT" &
    FOLLOW_PID=$!
    exec 4>"$REPL_FIFO"
    # Put real history on the leader, then poll the replica's console
    # until it reports zero lag against the leader's position.
    target/release/pubsub netload --addr "$L_ADDR" --subscribers 2 --subs 4 \
        --events 200 > /dev/null
    CONVERGED=0
    for _ in $(seq 1 100); do
        echo "repl status --json" >&4
        sleep 0.2
        if grep -q '"lag":0' "$REPL_OUT"; then CONVERGED=1; break; fi
    done
    if [[ "$CONVERGED" != 1 ]]; then
        echo "replication smoke: follower never reached lag 0" >&2
        cat "$REPL_OUT" >&2
        exit 1
    fi
    echo "promote" >&4
    echo "repl status --json" >&4
    echo "quit" >&4
    exec 4>&-
    wait "$FOLLOW_PID"
    grep -q "promoted: writable" "$REPL_OUT" || {
        echo "replication smoke: promote failed" >&2
        cat "$REPL_OUT" >&2
        exit 1
    }
    grep -q '"promoted":true' "$REPL_OUT" || {
        echo "replication smoke: promoted status not reported" >&2
        cat "$REPL_OUT" >&2
        exit 1
    }
    kill "$LEADER_PID" 2>/dev/null || true
    wait "$LEADER_PID" 2>/dev/null || true
    rm -rf "$REPL_DIR"
fi

if [[ "$SESSIONS" == 1 ]]; then
    echo "==> session WAL/broker suites (--features faults,metrics)"
    cargo test ${OFFLINE} -p pubsub-broker \
        --features pubsub-types/faults,pubsub-types/metrics --test sessions
    PROPTEST_CASES="${PROPTEST_CASES:-64}" cargo test ${OFFLINE} -p pubsub-durability \
        --features pubsub-types/faults,pubsub-types/metrics --test wal_recovery
    echo "==> restart + failover resume sweeps (--features faults,metrics)"
    PROPTEST_CASES="${PROPTEST_CASES:-64}" FP_SWEEP_STRIDE="${FP_SWEEP_STRIDE:-1}" \
        cargo test ${OFFLINE} -p pubsub-net --features faults,metrics \
        --test restart_resume --test session_gc
    echo "==> SIGKILL-the-server netload smoke (release)"
    cargo build ${OFFLINE} --release -p pubsub-cli
    SESS_DIR="$(mktemp -d)"
    SESS_ADDR="127.0.0.1:7943"
    SESS_RESTART_PID=""
    target/release/pubsub serve counting --addr "$SESS_ADDR" \
        --durable "$SESS_DIR/wal" < /dev/null &
    SESS_PID=$!
    trap 'kill -9 $SESS_PID $SESS_RESTART_PID 2>/dev/null || true; rm -rf "$SESS_DIR"' EXIT
    for _ in $(seq 1 50); do
        if (exec 3<>"/dev/tcp/127.0.0.1/7943") 2>/dev/null; then break; fi
        sleep 0.1
    done
    # A run long enough to straddle the kill/restart window below; every
    # client carries the default reconnect policy, so completing the run
    # requires resuming durable sessions on the restarted server.
    target/release/pubsub netload --addr "$SESS_ADDR" --subscribers 2 --subs 4 \
        --events 100000 > "$SESS_DIR/netload.out" &
    SESS_LOAD_PID=$!
    sleep 0.7
    kill -9 "$SESS_PID" 2>/dev/null || true
    wait "$SESS_PID" 2>/dev/null || true
    sleep 0.5 # a real outage window: clients must retry through it
    for _ in $(seq 1 20); do
        target/release/pubsub serve counting --addr "$SESS_ADDR" \
            --durable "$SESS_DIR/wal" < /dev/null &
        SESS_RESTART_PID=$!
        sleep 0.2
        if kill -0 "$SESS_RESTART_PID" 2>/dev/null; then break; fi
        wait "$SESS_RESTART_PID" 2>/dev/null || true
    done
    if ! wait "$SESS_LOAD_PID"; then
        echo "sessions smoke: netload did not ride through the SIGKILL restart" >&2
        cat "$SESS_DIR/netload.out" >&2
        exit 1
    fi
    cat "$SESS_DIR/netload.out"
    kill "$SESS_RESTART_PID" 2>/dev/null || true
    wait "$SESS_RESTART_PID" 2>/dev/null || true
    rm -rf "$SESS_DIR"
fi

if [[ "$BENCH_SMOKE" == 1 ]]; then
    echo "==> bench smoke (one iteration per benchmark)"
    cargo bench ${OFFLINE} --workspace -- --test
    echo "==> batched phase1_micro smoke (one iteration, simd kernels)"
    cargo bench ${OFFLINE} -p pubsub-bench --features pubsub-index/simd \
        --bench phase1_micro -- --test snapshot_batched64
    echo "==> differential proptest smoke (PROPTEST_CASES=8)"
    PROPTEST_CASES=8 cargo test ${OFFLINE} -p pubsub-core --test equivalence \
        all_engines_agree_on_identical_interleavings
fi

echo "==> all checks passed"
