#!/usr/bin/env bash
# Repository gate: formatting, lints, release build, full test suite.
#
# Usage: scripts/check.sh [--online]
#
# By default every cargo invocation runs with --offline: the workspace
# resolves all external dependencies to the in-tree shims (shims/README.md),
# so a network-less container builds from the committed Cargo.lock alone.
# Pass --online to let cargo touch the network (e.g. after intentionally
# updating the lockfile).
set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE="--offline"
if [[ "${1:-}" == "--online" ]]; then
    OFFLINE=""
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy ${OFFLINE} --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build ${OFFLINE} --release --workspace

echo "==> cargo test"
cargo test ${OFFLINE} --workspace

echo "==> all checks passed"
