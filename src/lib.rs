//! # fastpubsub
//!
//! A complete Rust implementation of the matching algorithms from
//! *"Filtering Algorithms and Implementation for Very Fast Publish/Subscribe
//! Systems"* (SIGMOD 2001): the counting baseline, the propagation algorithm
//! with software prefetching, and the cost-based static and dynamic
//! multi-attribute clustering engines, wrapped in a publish/subscribe broker
//! with subscription/event validity, batching and notification delivery.
//!
//! This crate is a facade that re-exports the workspace crates:
//!
//! * [`types`] — values, predicates, subscriptions, events.
//! * [`index`] — predicate indexes and the predicate bit vector (phase 1).
//! * [`core`] — the matching engines (phase 2).
//! * [`cost`] — statistics, the cost model and the greedy clustering
//!   optimizer.
//! * [`workload`] — the SIGMOD 2001 Table-1 workload generator.
//! * [`broker`] — the surrounding publish/subscribe system.
//! * [`durability`] — the segmented write-ahead log and snapshots behind
//!   [`broker::SharedBroker::open_durable`].
//! * [`lang`] — a textual subscription/event language.
//! * [`net`] — the network-facing server, wire protocol and client.
//!
//! ## Quickstart
//!
//! ```
//! use fastpubsub::prelude::*;
//!
//! let mut broker = Broker::new(EngineKind::Dynamic);
//! let movie = broker.attr("movie");
//! let price = broker.attr("price");
//! let title = broker.string("groundhog day");
//!
//! let sub = Subscription::builder()
//!     .eq(movie, title)
//!     .with(price, Operator::Le, 10i64)
//!     .build()
//!     .unwrap();
//! let id = broker.subscribe(sub, Validity::forever());
//!
//! let event = Event::builder()
//!     .pair(movie, title)
//!     .pair(price, 8i64)
//!     .build()
//!     .unwrap();
//! let matched = broker.publish(&event);
//! assert_eq!(matched, vec![id]);
//! ```

pub use pubsub_broker as broker;
pub use pubsub_core as core;
pub use pubsub_cost as cost;
pub use pubsub_durability as durability;
pub use pubsub_index as index;
pub use pubsub_lang as lang;
pub use pubsub_net as net;
pub use pubsub_types as types;
pub use pubsub_workload as workload;

/// The most common imports, in one place.
pub mod prelude {
    pub use pubsub_broker::{Broker, BrokerError, Notification, SharedBroker, Validity};
    pub use pubsub_core::{EngineKind, MatchEngine};
    pub use pubsub_types::{
        AttrId, Event, Operator, Predicate, Subscription, SubscriptionId, Value, Vocabulary,
    };
}
