//! A thread-safe broker handle.
//!
//! The matching engines are single-writer structures (the paper's system is
//! one process draining batches). `SharedBroker` wraps a [`Broker`] in a
//! `parking_lot::Mutex` so multiple producer threads can publish and
//! subscribe concurrently. Every operation needs exclusive access anyway —
//! even matching mutates per-event workhorse buffers and statistics — so a
//! mutex, not an `RwLock`, is the honest primitive.

use crate::broker::Broker;
use crate::time::Validity;
use parking_lot::Mutex;
use pubsub_types::{Event, Subscription, SubscriptionId};
use std::sync::Arc;

/// A cloneable, thread-safe handle to a broker.
#[derive(Clone, Debug)]
pub struct SharedBroker {
    inner: Arc<Mutex<Broker>>,
}

impl SharedBroker {
    /// Wraps a broker.
    pub fn new(broker: Broker) -> Self {
        Self {
            inner: Arc::new(Mutex::new(broker)),
        }
    }

    /// Registers a subscription.
    pub fn subscribe(&self, sub: Subscription, validity: Validity) -> SubscriptionId {
        self.inner.lock().subscribe(sub, validity)
    }

    /// Removes a subscription.
    pub fn unsubscribe(&self, id: SubscriptionId) -> bool {
        self.inner.lock().unsubscribe(id)
    }

    /// Publishes an event, returning the matched subscriptions.
    pub fn publish(&self, event: &Event) -> Vec<SubscriptionId> {
        self.inner.lock().publish(event)
    }

    /// Number of live subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.inner.lock().subscription_count()
    }

    /// Runs `f` with exclusive access to the broker (interning, clock
    /// control, statistics).
    pub fn with<R>(&self, f: impl FnOnce(&mut Broker) -> R) -> R {
        f(&mut self.inner.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_core::EngineKind;

    #[test]
    fn concurrent_publishers_and_subscribers() {
        let broker = SharedBroker::new(Broker::new(EngineKind::Dynamic));
        let attr = broker.with(|b| b.attr("k"));

        let mut handles = Vec::new();
        for t in 0..4i64 {
            let broker = broker.clone();
            handles.push(std::thread::spawn(move || {
                let sub = Subscription::builder().eq(attr, t).build().unwrap();
                let id = broker.subscribe(sub, Validity::forever());
                let event = Event::builder().pair(attr, t).build().unwrap();
                let mut hits = 0;
                for _ in 0..100 {
                    if broker.publish(&event).contains(&id) {
                        hits += 1;
                    }
                }
                hits
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 100, "own subscription always matches");
        }
        assert_eq!(broker.subscription_count(), 4);
    }

    #[test]
    fn clone_shares_state() {
        let broker = SharedBroker::new(Broker::new(EngineKind::Counting));
        let b2 = broker.clone();
        let attr = broker.with(|b| b.attr("x"));
        let sub = Subscription::builder().eq(attr, 1i64).build().unwrap();
        b2.subscribe(sub, Validity::forever());
        assert_eq!(broker.subscription_count(), 1);
    }
}
