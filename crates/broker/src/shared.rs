//! A thread-safe, shard-locked broker handle.
//!
//! The matching engines are single-writer structures, so concurrency comes
//! from partitioning: `SharedBroker` splits the subscription set across `N`
//! shards, each a complete [`Broker`] behind its own `parking_lot::Mutex`.
//! Ids are striped (`shard = id mod N` via [`Broker::with_id_lane`]), so
//! `subscribe`/`unsubscribe` lock only the owning shard and run fully in
//! parallel across shards. A publish visits the shards one at a time —
//! never holding more than one lock — and merges the partial match sets
//! sorted by [`SubscriptionId`], so concurrent publishers pipeline through
//! the shard array instead of serialising on a global mutex.
//!
//! Clock advancement is the one whole-broker operation: it acquires every
//! shard lock in ascending index order (the only multi-lock path, hence
//! deadlock-free) and advances all shards atomically with respect to
//! publishes and subscribes.
//!
//! Consequences of shard-local state, documented rather than hidden:
//!
//! * A publish is not an atomic snapshot: it may see a subscription added
//!   to a later shard mid-flight. Per-shard the broker is linearizable,
//!   which is exactly the guarantee a distributed event broker gives.
//! * Each shard's engine keeps shard-local optimizer statistics (the
//!   dynamic algorithm clusters each partition independently).
//! * Attribute/string interning lives in one shared [`Vocabulary`] so ids
//!   mean the same thing on every shard.
//!
//! This handle is the broker-level twin of the engine-level
//! [`pubsub_core::ShardedMatcher`]: use `ShardedMatcher` to parallelise one
//! broker's matching; use `SharedBroker` when many threads drive the broker.

use crate::broker::Broker;
use crate::time::{LogicalTime, Validity};
use parking_lot::Mutex;
use pubsub_core::{Backpressure, EngineKind};
use pubsub_types::metrics::Counter;
use pubsub_types::{AttrId, Event, ShardError, Subscription, SubscriptionId, Value, Vocabulary};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Shards skipped by a publish because their lock was contended
/// (`Shed`/downgraded-`ErrorFast` policies only).
static SHED_SHARDS: Counter = Counter::new("broker.shared.shed_shards");

struct Inner {
    shards: Vec<Mutex<Broker>>,
    vocab: Mutex<Vocabulary>,
    /// Round-robin cursor distributing new subscriptions over shards.
    next_shard: AtomicUsize,
    /// Recycled per-shard scratch for [`SharedBroker::publish_batch_into`].
    batch_scratch: Mutex<Vec<Vec<Vec<SubscriptionId>>>>,
    /// Overload policy of the publish paths (subscribe/unsubscribe/clock
    /// operations always block: they must not lose data).
    backpressure: Backpressure,
}

/// A cloneable, thread-safe broker handle with per-shard locking.
#[derive(Clone)]
pub struct SharedBroker {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for SharedBroker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedBroker")
            .field("shards", &self.shard_count())
            .field("subscriptions", &self.subscription_count())
            .finish()
    }
}

impl SharedBroker {
    /// Creates a broker partitioned over `shards` independent engines of the
    /// given kind (clamped to at least 1). Shard brokers run without an
    /// event store: this handle is the fire-and-forget publish surface.
    pub fn new(kind: EngineKind, shards: usize) -> Self {
        Self::with_backpressure(kind, shards, Backpressure::Block)
    }

    /// Like [`SharedBroker::new`] with an explicit overload policy for the
    /// publish paths: `Block` waits for each shard lock (lossless), `Shed`
    /// skips shards whose lock is contended (bounded latency, possibly
    /// missing matches), and `ErrorFast` makes
    /// [`SharedBroker::try_publish_into`] fail with
    /// [`ShardError::Overloaded`] on the first contended shard. The
    /// infallible publish methods degrade `ErrorFast` to `Shed`.
    pub fn with_backpressure(kind: EngineKind, shards: usize, backpressure: Backpressure) -> Self {
        let n = shards.max(1);
        let shards = (0..n)
            .map(|i| {
                Mutex::new(
                    Broker::new(kind)
                        .with_id_lane(i as u32, n as u32)
                        .without_event_store(),
                )
            })
            .collect();
        Self {
            inner: Arc::new(Inner {
                shards,
                vocab: Mutex::new(Vocabulary::new()),
                next_shard: AtomicUsize::new(0),
                batch_scratch: Mutex::new(Vec::new()),
                backpressure,
            }),
        }
    }

    /// The configured overload policy.
    pub fn backpressure(&self) -> Backpressure {
        self.inner.backpressure
    }

    /// Creates a broker with one shard per available hardware thread.
    pub fn with_default_shards(kind: EngineKind) -> Self {
        Self::new(kind, pubsub_core::default_shards())
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// The shard owning `id` (ids are striped across shards).
    fn shard_of(&self, id: SubscriptionId) -> usize {
        id.0 as usize % self.inner.shards.len()
    }

    // ---- vocabulary (shared across shards) -------------------------------

    /// Interns an attribute name in the shared vocabulary.
    pub fn attr(&self, name: &str) -> AttrId {
        self.inner.vocab.lock().attr(name)
    }

    /// Interns a string value in the shared vocabulary.
    pub fn string(&self, s: &str) -> Value {
        self.inner.vocab.lock().string(s)
    }

    // ---- subscriptions (lock one shard) ----------------------------------

    /// Registers a subscription, locking only the shard that receives it
    /// (round-robin assignment keeps shards balanced).
    pub fn subscribe(&self, sub: Subscription, validity: Validity) -> SubscriptionId {
        let shard = self.inner.next_shard.fetch_add(1, Ordering::Relaxed) % self.shard_count();
        self.inner.shards[shard].lock().subscribe(sub, validity)
    }

    /// Removes a subscription, locking only its owning shard.
    pub fn unsubscribe(&self, id: SubscriptionId) -> bool {
        self.inner.shards[self.shard_of(id)].lock().unsubscribe(id)
    }

    /// Number of live subscriptions across all shards.
    pub fn subscription_count(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().subscription_count())
            .sum()
    }

    /// Live subscriptions per shard.
    pub fn shard_subscription_counts(&self) -> Vec<usize> {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().subscription_count())
            .collect()
    }

    // ---- events (lock one shard at a time) -------------------------------

    /// Publishes an event, returning the matched subscriptions sorted by id.
    pub fn publish(&self, event: &Event) -> Vec<SubscriptionId> {
        let mut out = Vec::new();
        self.publish_into(event, &mut out);
        out
    }

    /// Publishes an event, appending the matched ids to `out` (sorted by id
    /// within this publish). Locks one shard at a time and allocates nothing
    /// beyond what `out` needs.
    ///
    /// Infallible: under [`Backpressure::Shed`] (or `ErrorFast`, which this
    /// path degrades to `Shed`) contended shards are skipped and counted,
    /// and the result may be missing their matches.
    pub fn publish_into(&self, event: &Event, out: &mut Vec<SubscriptionId>) {
        let _ = self.publish_policed(event, out, false);
    }

    /// Publishes an event honouring the full [`Backpressure`] policy.
    ///
    /// Returns the number of shards skipped because their lock was contended
    /// (always 0 under [`Backpressure::Block`]). Under
    /// [`Backpressure::ErrorFast`] the first contended shard aborts the
    /// publish with [`ShardError::Overloaded`] and `out` is left truncated
    /// to its original length.
    pub fn try_publish_into(
        &self,
        event: &Event,
        out: &mut Vec<SubscriptionId>,
    ) -> Result<usize, ShardError> {
        self.publish_policed(event, out, true)
    }

    fn publish_policed(
        &self,
        event: &Event,
        out: &mut Vec<SubscriptionId>,
        error_fast: bool,
    ) -> Result<usize, ShardError> {
        let start = out.len();
        let block = self.inner.backpressure == Backpressure::Block;
        let error_fast = error_fast && self.inner.backpressure == Backpressure::ErrorFast;
        let mut skipped = 0usize;
        for (i, shard) in self.inner.shards.iter().enumerate() {
            if block {
                shard.lock().publish_into(event, out);
                continue;
            }
            match shard.try_lock() {
                Some(mut broker) => broker.publish_into(event, out),
                None if error_fast => {
                    out.truncate(start);
                    return Err(ShardError::Overloaded { shard: i });
                }
                None => {
                    skipped += 1;
                    SHED_SHARDS.inc();
                }
            }
        }
        out[start..].sort_unstable();
        Ok(skipped)
    }

    /// Publishes a batch, returning one sorted match set per event. Each
    /// shard is visited once for the whole batch, amortising locking over
    /// `events.len()` events.
    pub fn publish_batch(&self, events: &[Event]) -> Vec<Vec<SubscriptionId>> {
        let mut out = Vec::new();
        self.publish_batch_into(events, &mut out);
        out
    }

    /// Batched publish into a caller-owned buffer (one inner vector per
    /// event, reused across calls). Per-shard scratch buffers are recycled
    /// through an internal pool, so the steady state allocates nothing.
    pub fn publish_batch_into(&self, events: &[Event], out: &mut Vec<Vec<SubscriptionId>>) {
        out.resize_with(events.len(), Vec::new);
        out.truncate(events.len());
        for dst in out.iter_mut() {
            dst.clear();
        }
        if events.is_empty() {
            return;
        }
        let block = self.inner.backpressure == Backpressure::Block;
        let mut scratch = self.inner.batch_scratch.lock().pop().unwrap_or_default();
        for shard in &self.inner.shards {
            // Batch publishes degrade ErrorFast to Shed, like `publish_into`.
            let mut guard = if block {
                shard.lock()
            } else {
                match shard.try_lock() {
                    Some(guard) => guard,
                    None => {
                        SHED_SHARDS.inc();
                        continue;
                    }
                }
            };
            guard.publish_batch_into(events, &mut scratch);
            drop(guard);
            for (dst, src) in out.iter_mut().zip(&scratch) {
                dst.extend_from_slice(src);
            }
        }
        for dst in out.iter_mut() {
            dst.sort_unstable();
        }
        self.inner.batch_scratch.lock().push(scratch);
    }

    // ---- clock (lock all shards in fixed order) --------------------------

    /// Current logical time (all shards tick together).
    pub fn now(&self) -> LogicalTime {
        self.inner.shards[0].lock().now()
    }

    /// Advances every shard's clock to `t`, expiring subscriptions whose
    /// validity ended. Acquires all shard locks in ascending index order —
    /// the only multi-lock operation, so lock ordering is total and
    /// deadlock-free. Returns the number of expired subscriptions.
    pub fn advance_to(&self, t: LogicalTime) -> usize {
        let mut guards: Vec<_> = self.inner.shards.iter().map(|s| s.lock()).collect();
        guards.iter_mut().map(|b| b.advance_to(t).0).sum()
    }

    /// Advances the clock by one tick. Returns expired subscriptions.
    pub fn tick(&self) -> usize {
        let mut guards: Vec<_> = self.inner.shards.iter().map(|s| s.lock()).collect();
        let t = guards[0].now().plus(1);
        guards.iter_mut().map(|b| b.advance_to(t).0).sum()
    }

    // ---- escape hatch ----------------------------------------------------

    /// Runs `f` with exclusive access to one shard broker (statistics,
    /// engine introspection). Prefer the typed methods for normal use.
    pub fn with_shard<R>(&self, shard: usize, f: impl FnOnce(&mut Broker) -> R) -> R {
        f(&mut self.inner.shards[shard].lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_core::EngineKind;

    #[test]
    fn concurrent_publishers_and_subscribers() {
        let broker = SharedBroker::new(EngineKind::Dynamic, 4);
        let attr = broker.attr("k");

        let mut handles = Vec::new();
        for t in 0..4i64 {
            let broker = broker.clone();
            handles.push(std::thread::spawn(move || {
                let sub = Subscription::builder().eq(attr, t).build().unwrap();
                let id = broker.subscribe(sub, Validity::forever());
                let event = Event::builder().pair(attr, t).build().unwrap();
                let mut hits = 0;
                for _ in 0..100 {
                    if broker.publish(&event).contains(&id) {
                        hits += 1;
                    }
                }
                hits
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 100, "own subscription always matches");
        }
        assert_eq!(broker.subscription_count(), 4);
    }

    #[test]
    fn clone_shares_state() {
        let broker = SharedBroker::new(EngineKind::Counting, 2);
        let b2 = broker.clone();
        let attr = broker.attr("x");
        let sub = Subscription::builder().eq(attr, 1i64).build().unwrap();
        b2.subscribe(sub, Validity::forever());
        assert_eq!(broker.subscription_count(), 1);
    }

    #[test]
    fn ids_stripe_across_shards() {
        let broker = SharedBroker::new(EngineKind::Counting, 3);
        let attr = broker.attr("a");
        let mut ids = Vec::new();
        for i in 0..9i64 {
            let sub = Subscription::builder().eq(attr, i).build().unwrap();
            ids.push(broker.subscribe(sub, Validity::forever()));
        }
        let counts = broker.shard_subscription_counts();
        assert_eq!(counts, vec![3, 3, 3], "round-robin keeps shards balanced");
        for id in &ids {
            assert!(broker.unsubscribe(*id));
        }
        assert_eq!(broker.subscription_count(), 0);
    }

    #[test]
    fn publish_batch_matches_individual_publishes() {
        let broker = SharedBroker::new(EngineKind::Dynamic, 3);
        let attr = broker.attr("v");
        for i in 0..30i64 {
            let sub = Subscription::builder().eq(attr, i % 5).build().unwrap();
            broker.subscribe(sub, Validity::forever());
        }
        let events: Vec<Event> = (0..10i64)
            .map(|i| Event::builder().pair(attr, i % 5).build().unwrap())
            .collect();
        let batched = broker.publish_batch(&events);
        for (event, batch_result) in events.iter().zip(&batched) {
            assert_eq!(&broker.publish(event), batch_result);
        }
    }

    #[test]
    fn expiry_ticks_all_shards() {
        let broker = SharedBroker::new(EngineKind::Counting, 4);
        let attr = broker.attr("e");
        for i in 0..8i64 {
            let sub = Subscription::builder().eq(attr, i).build().unwrap();
            broker.subscribe(sub, Validity::until(LogicalTime(5)));
        }
        assert_eq!(broker.subscription_count(), 8);
        let expired = broker.advance_to(LogicalTime(5));
        assert_eq!(expired, 8);
        assert_eq!(broker.subscription_count(), 0);
        assert_eq!(broker.now(), LogicalTime(5));
    }

    /// Holds shard 0's lock on this thread while `f` publishes from another
    /// thread, so the non-blocking policies see real contention.
    fn with_shard0_contended<R: Send + 'static>(
        broker: &SharedBroker,
        f: impl FnOnce(SharedBroker) -> R + Send + 'static,
    ) -> R {
        broker.with_shard(0, |_locked| {
            let clone = broker.clone();
            std::thread::spawn(move || f(clone)).join().unwrap()
        })
    }

    fn two_shard_broker(policy: Backpressure) -> (SharedBroker, Event, Vec<SubscriptionId>) {
        let broker = SharedBroker::with_backpressure(EngineKind::Counting, 2, policy);
        let attr = broker.attr("bp");
        let mut ids = Vec::new();
        for _ in 0..2 {
            let sub = Subscription::builder().eq(attr, 1i64).build().unwrap();
            ids.push(broker.subscribe(sub, Validity::forever()));
        }
        let event = Event::builder().pair(attr, 1i64).build().unwrap();
        (broker, event, ids)
    }

    #[test]
    fn block_policy_waits_for_every_shard() {
        let (broker, event, ids) = two_shard_broker(Backpressure::Block);
        let mut out = Vec::new();
        let skipped = broker.try_publish_into(&event, &mut out).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(out, ids);
    }

    #[test]
    fn shed_policy_skips_contended_shard() {
        let (broker, event, ids) = two_shard_broker(Backpressure::Shed);
        let (skipped, out) = with_shard0_contended(&broker, move |b| {
            let mut out = Vec::new();
            let skipped = b.try_publish_into(&event, &mut out).unwrap();
            (skipped, out)
        });
        assert_eq!(skipped, 1, "shard 0 was locked");
        assert_eq!(out, vec![ids[1]], "shard 1 still answered");
    }

    #[test]
    fn error_fast_policy_reports_overload() {
        let (broker, event, ids) = two_shard_broker(Backpressure::ErrorFast);
        let ev = event.clone();
        let (err, out) = with_shard0_contended(&broker, move |b| {
            let mut out = Vec::new();
            let err = b.try_publish_into(&ev, &mut out).unwrap_err();
            (err, out)
        });
        assert_eq!(err, ShardError::Overloaded { shard: 0 });
        assert!(out.is_empty(), "aborted publish reports no matches");
        // The infallible path degrades ErrorFast to Shed under contention…
        let ev = event.clone();
        let degraded = with_shard0_contended(&broker, move |b| b.publish(&ev));
        assert_eq!(degraded, vec![ids[1]]);
        // …and is exact once the contention clears.
        assert_eq!(broker.publish(&event), ids);
    }

    /// The ISSUE's stress shape: concurrent subscribers, publishers and a
    /// ticker; must not deadlock and counts must stay consistent.
    #[test]
    fn stress_subscribe_publish_tick() {
        let broker = SharedBroker::new(EngineKind::Dynamic, 4);
        let attr = broker.attr("s");
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let mut handles = Vec::new();
        // Subscriber threads: half forever, half expiring.
        for t in 0..3i64 {
            let broker = broker.clone();
            handles.push(std::thread::spawn(move || {
                let mut kept = 0usize;
                for i in 0..200i64 {
                    let sub = Subscription::builder().eq(attr, i % 7).build().unwrap();
                    if i % 2 == 0 {
                        broker.subscribe(sub, Validity::forever());
                        kept += 1;
                    } else {
                        let id = broker.subscribe(sub, Validity::forever());
                        assert!(broker.unsubscribe(id));
                    }
                    let _ = t;
                }
                kept
            }));
        }
        // Publisher threads.
        let mut publishers = Vec::new();
        for _ in 0..2 {
            let broker = broker.clone();
            let stop = stop.clone();
            publishers.push(std::thread::spawn(move || {
                let mut out = Vec::new();
                let mut events = Vec::new();
                for i in 0..4i64 {
                    events.push(Event::builder().pair(attr, i % 7).build().unwrap());
                }
                let mut batches = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    out.clear();
                    broker.publish_into(&events[0], &mut out);
                    assert!(out.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
                    broker.publish_batch_into(&events, &mut batches);
                }
            }));
        }
        // Ticker thread: a fixed tick count so progress is deterministic.
        let ticker = {
            let broker = broker.clone();
            std::thread::spawn(move || {
                for _ in 0..100 {
                    broker.tick();
                }
                broker.now()
            })
        };

        let kept: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        stop.store(true, Ordering::Relaxed);
        for p in publishers {
            p.join().unwrap();
        }
        let end = ticker.join().unwrap();
        assert_eq!(end, LogicalTime(100), "every tick advanced every shard");
        assert_eq!(broker.subscription_count(), kept);
        let counts = broker.shard_subscription_counts();
        assert_eq!(counts.iter().sum::<usize>(), kept);
    }
}
