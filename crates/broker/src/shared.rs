//! A thread-safe broker handle with a lock-free read-mostly publish path.
//!
//! The matching engines are single-writer structures. `SharedBroker` splits
//! the subscription set across `N` shards, each a complete [`Broker`]
//! behind its own `parking_lot::Mutex`. Ids are striped (`shard = id mod N`
//! via [`Broker::with_id_lane`]), so `subscribe`/`unsubscribe` lock only the
//! owning shard and run fully in parallel across shards.
//!
//! **Publishes take no locks at all** in the default
//! [`PublishMode::Rcu`]: every mutation publishes an immutable
//! [`crate::rcu::BrokerSnapshot`] through an epoch-protected
//! [`pubsub_core::RcuCell`], and publishers pin the current snapshot, match
//! it with per-thread scratch ([`pubsub_core::MatchView`]) and unpin — zero
//! contention between concurrent publishers, and between publishers and
//! mutators. Mutators serialize on a small writer mutex, layer the change
//! as a delta/tombstone on the frozen per-shard base engines (merging the
//! delta back once it outgrows a threshold), and flip the snapshot pointer;
//! old snapshots are reclaimed once every reader epoch has passed. See
//! DESIGN.md §12 for the full protocol. [`PublishMode::Locked`] keeps the
//! historical lock-the-shards publish path for comparison benchmarks and
//! for the lock-contention backpressure policies.
//!
//! Clock advancement is the one whole-broker operation: it acquires every
//! shard lock in ascending index order and advances all shards atomically
//! with respect to subscribes; the resulting expiries land in the same
//! single snapshot flip, so publishers see them atomically too.
//!
//! Consequences of shard-local state, documented rather than hidden:
//!
//! * Under RCU, a publish observes one immutable snapshot — it never sees a
//!   torn cut of a concurrent mutation. Mutations become visible in their
//!   serialization order, one flip each.
//! * Each shard's engine keeps shard-local optimizer statistics (the
//!   dynamic algorithm clusters each partition independently).
//! * Attribute/string interning lives in one shared [`Vocabulary`] so ids
//!   mean the same thing on every shard.
//!
//! This handle is the broker-level twin of the engine-level
//! [`pubsub_core::ShardedMatcher`]: use `ShardedMatcher` to parallelise one
//! broker's matching; use `SharedBroker` when many threads drive the broker.

use crate::broker::Broker;
use crate::durable::{BrokerError, DurabilityStatus};
use crate::rcu::{BrokerSnapshot, PublishMode, RcuStatus, ShardSnap};
use crate::time::{LogicalTime, Validity};
use parking_lot::{Mutex, MutexGuard};
use pubsub_core::{Backpressure, EngineKind, EngineStats, RcuCell, ViewScratch};
use pubsub_durability::{
    replication, DurabilityConfig, Lsn, Recovered, RecoveryReport, SnapshotState, Wal, WalError,
    WalOp,
};
use pubsub_types::metrics::Counter;
use pubsub_types::{
    AttrId, Event, ShardError, Subscription, SubscriptionId, Symbol, Value, Vocabulary,
};
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Shards skipped by a publish because their lock was contended
/// ([`PublishMode::Locked`] with `Shed`/downgraded-`ErrorFast` only).
static SHED_SHARDS: Counter = Counter::new("broker.shared.shed_shards");
/// Snapshot pointer flips performed by the RCU writer path.
static SNAPSHOT_FLIPS: Counter = Counter::new("broker.shared.snapshot_flips");

/// Per-thread scratch for the publish paths: the [`ViewScratch`] the RCU
/// read path matches with, plus recycled per-shard result buffers for the
/// batch paths. Thread-local (not a shared pool), so concurrent publishers
/// never serialize on scratch acquisition.
#[derive(Default)]
struct PublishScratch {
    view: ViewScratch,
    shard_results: Vec<Vec<SubscriptionId>>,
}

thread_local! {
    static PUBLISH_SCRATCH: RefCell<PublishScratch> = RefCell::new(PublishScratch::default());
}

/// Relaxed aggregate of the per-thread [`ViewScratch`] engine stats folded
/// in after each RCU publish — the broker-level replacement for the
/// per-shard engine counters the locked path accumulates.
#[derive(Default)]
struct RcuStatsAgg {
    events: AtomicU64,
    phase1_nanos: AtomicU64,
    phase2_nanos: AtomicU64,
    checked: AtomicU64,
    matches: AtomicU64,
}

impl RcuStatsAgg {
    fn fold(&self, s: EngineStats) {
        if s.events == 0 {
            return;
        }
        self.events.fetch_add(s.events, Ordering::Relaxed);
        self.phase1_nanos
            .fetch_add(s.phase1_nanos, Ordering::Relaxed);
        self.phase2_nanos
            .fetch_add(s.phase2_nanos, Ordering::Relaxed);
        self.checked
            .fetch_add(s.subscriptions_checked, Ordering::Relaxed);
        self.matches.fetch_add(s.matches, Ordering::Relaxed);
    }

    fn load(&self) -> EngineStats {
        EngineStats {
            events: self.events.load(Ordering::Relaxed),
            phase1_nanos: self.phase1_nanos.load(Ordering::Relaxed),
            phase2_nanos: self.phase2_nanos.load(Ordering::Relaxed),
            subscriptions_checked: self.checked.load(Ordering::Relaxed),
            matches: self.matches.load(Ordering::Relaxed),
            ..EngineStats::default()
        }
    }
}

/// The durability attachment of a [`SharedBroker`].
///
/// Lock ordering across the whole handle is `writer < vocab < sessions <
/// shards (ascending) < wal`; every multi-lock path acquires in that order, so
/// adding the WAL mutex keeps the broker deadlock-free. Mutations append to
/// the WAL *before* applying in memory (write-ahead discipline): an op that
/// fails to log is never applied, so recovery can only ever observe a
/// prefix of the acknowledged history. The RCU snapshot flip happens *after*
/// the in-memory apply, still under the writer lock — so a publish can
/// trail the WAL (a logged subscription not yet visible to matching) but
/// never lead it.
struct DurableState {
    wal: Mutex<Wal>,
    /// Sticky read-only flag, set by the first failed durability write.
    degraded: AtomicBool,
    /// The error that caused degradation (first one wins).
    cause: Mutex<Option<WalError>>,
    /// What recovery did when this broker was opened.
    recovery: RecoveryReport,
}

impl DurableState {
    /// Refuses mutations once degraded.
    fn check(&self) -> Result<(), BrokerError> {
        if self.degraded.load(Ordering::Acquire) {
            let cause = self.cause.lock().clone().unwrap_or(WalError::Poisoned);
            Err(BrokerError::Degraded(cause))
        } else {
            Ok(())
        }
    }

    /// Flips the broker into read-only degraded mode, recording the first
    /// cause, and returns the error to surface to the caller.
    fn degrade(&self, e: WalError) -> BrokerError {
        let mut cause = self.cause.lock();
        if cause.is_none() {
            *cause = Some(e.clone());
        }
        drop(cause);
        self.degraded.store(true, Ordering::Release);
        BrokerError::Degraded(e)
    }
}

/// The durable token → subscription owner map.
///
/// Sessions exist so a network client can crash, reconnect (possibly to a
/// restarted server or a promoted replica) and find its subscriptions
/// intact. The table is broker state, not server state: every change is
/// logged through the WAL on durable brokers (and therefore replicates),
/// and in-memory brokers keep the same table without the log, so the
/// server's registry behaves identically in both modes.
///
/// The `owner` reverse map serves two jobs: O(1) ownership checks, and
/// **steal semantics** on bind replay — a leader crash between a
/// `SessionBind` and its paired `Subscribe` leaves the peeked id unconsumed,
/// so a later run may reissue it to another session; replaying both binds
/// must leave the id owned by the later (winning) session only.
#[derive(Debug, Clone)]
struct SessionTable {
    /// One past the largest token ever issued. Tokens start at 1: 0 is the
    /// wire protocol's "new session, please" sentinel.
    next_token: u64,
    sessions: HashMap<u64, BTreeSet<u32>>,
    /// Reverse map: subscription id → owning token.
    owner: HashMap<u32, u64>,
}

impl SessionTable {
    fn new() -> Self {
        SessionTable {
            next_token: 1,
            sessions: HashMap::new(),
            owner: HashMap::new(),
        }
    }

    /// Registers `token`, bumping the high-water so it is never reissued.
    /// Idempotent under replay of a log that was recovered with skips.
    fn create(&mut self, token: u64) {
        self.sessions.entry(token).or_default();
        self.next_token = self.next_token.max(token + 1);
    }

    fn contains(&self, token: u64) -> bool {
        self.sessions.contains_key(&token)
    }

    /// Binds `id` to `token`, stealing it from any prior owner. A bind to a
    /// token the table does not hold is dropped (only reachable through a
    /// log recovered under the skip policy, where the `SessionCreate` may
    /// have been lost).
    fn bind(&mut self, token: u64, id: u32) {
        if !self.sessions.contains_key(&token) {
            return;
        }
        if let Some(prev) = self.owner.insert(id, token) {
            if prev != token {
                if let Some(set) = self.sessions.get_mut(&prev) {
                    set.remove(&id);
                }
            }
        }
        self.sessions.entry(token).or_default().insert(id);
    }

    /// Unbinds `id` from `token` (no-op if not bound there).
    fn release(&mut self, token: u64, id: u32) {
        if let Some(set) = self.sessions.get_mut(&token) {
            if set.remove(&id) {
                self.owner.remove(&id);
            }
        }
    }

    /// Removes `token`'s session, returning its bound ids (sorted).
    fn reap(&mut self, token: u64) -> Vec<u32> {
        let Some(set) = self.sessions.remove(&token) else {
            return Vec::new();
        };
        for id in &set {
            self.owner.remove(id);
        }
        set.into_iter().collect()
    }

    /// The token the next [`SessionTable::create`] should use.
    fn peek_next_token(&self) -> u64 {
        self.next_token
    }

    /// The session owning `id`, if any.
    fn owner_of(&self, id: u32) -> Option<u64> {
        self.owner.get(&id).copied()
    }

    /// Drops bindings whose subscription is not alive in `is_live`. This is
    /// the one deterministic repair recovery needs: a crash between a
    /// `SessionBind` and its `Subscribe` (or between an `Unsubscribe` and
    /// its `SessionRelease`) leaves a binding pointing at a dead id — never
    /// the reverse, because binds are logged before subscribes and
    /// unsubscribes before releases. Run **only** on a writable broker
    /// (leader open, promotion): a follower's dangling binding may simply
    /// be a `Subscribe` the stream has not delivered yet.
    fn prune_dangling(&mut self, mut is_live: impl FnMut(u32) -> bool) -> usize {
        let dangling: Vec<(u32, u64)> = self
            .owner
            .iter()
            .filter(|(id, _)| !is_live(**id))
            .map(|(id, token)| (*id, *token))
            .collect();
        for (id, token) in &dangling {
            self.owner.remove(id);
            if let Some(set) = self.sessions.get_mut(token) {
                set.remove(id);
            }
        }
        dangling.len()
    }

    /// The table as sorted `(token, ids)` rows (snapshot encoding order).
    fn to_rows(&self) -> Vec<(u64, Vec<u32>)> {
        let mut rows: Vec<(u64, Vec<u32>)> = self
            .sessions
            .iter()
            .map(|(token, ids)| (*token, ids.iter().copied().collect()))
            .collect();
        rows.sort_by_key(|(token, _)| *token);
        rows
    }

    fn from_snapshot(next_token: u64, rows: Vec<(u64, Vec<u32>)>) -> Self {
        let mut table = SessionTable::new();
        table.next_token = next_token.max(1);
        for (token, ids) in rows {
            table.create(token);
            for id in ids {
                table.bind(token, id);
            }
        }
        table
    }
}

struct Inner {
    shards: Vec<Mutex<Broker>>,
    vocab: Mutex<Vocabulary>,
    /// Round-robin cursor distributing new subscriptions over shards.
    next_shard: AtomicUsize,
    /// Overload policy of the publish paths (subscribe/unsubscribe/clock
    /// operations always block: they must not lose data). Only meaningful
    /// in [`PublishMode::Locked`]; RCU publishes never contend.
    backpressure: Backpressure,
    /// Write-ahead log plus degraded-mode state; `None` for the in-memory
    /// broker of [`SharedBroker::new`].
    durable: Option<DurableState>,
    /// `true` while this broker is a replication follower: its log is a
    /// replica of a remote leader's, so local mutations are refused (they
    /// would fork the history) and state changes arrive only through
    /// [`SharedBroker::apply_replicated`]. Cleared by
    /// [`SharedBroker::promote`].
    follower: AtomicBool,
    /// Engine kind, needed to build fresh frozen bases at merge time.
    kind: EngineKind,
    /// How publishes execute (RCU snapshots vs. per-shard locks).
    mode: PublishMode,
    /// The durable session table (token → owned subscription ids). Kept on
    /// every broker — in-memory brokers just skip the logging — so the net
    /// server's registry has one source of truth in all modes. Sits between
    /// `vocab` and the shard locks in the global lock order:
    /// `writer < vocab < sessions < shards < wal`.
    sessions: Mutex<SessionTable>,
    /// The writer-side authoritative next snapshot (first in the lock
    /// order: `writer < vocab < sessions < shards < wal`). Mutators update
    /// it in place and publish a clone through `published`.
    writer: Mutex<Vec<ShardSnap>>,
    /// The epoch-protected snapshot the RCU publish path reads.
    published: RcuCell<BrokerSnapshot>,
    /// Snapshot flips, mirrored outside the metrics feature so `stats` can
    /// always report it.
    flips: AtomicU64,
    /// Aggregated read-path engine stats (RCU publishes bypass the shard
    /// engines, so their counters live here instead).
    rcu_stats: RcuStatsAgg,
}

/// Captures the full broker state for a point-in-time snapshot. Caller
/// holds the vocabulary lock, the session lock and every shard lock, so the
/// state is a consistent cut.
fn build_snapshot_state(
    vocab: &Vocabulary,
    sessions: &SessionTable,
    shards: &[MutexGuard<'_, Broker>],
) -> SnapshotState {
    // Interners assign dense sequential ids; storing names in id order makes
    // re-interning them in order reproduce identical ids at recovery.
    let mut attrs: Vec<(AttrId, &str)> = vocab.attrs.iter().collect();
    attrs.sort_by_key(|(id, _)| id.0);
    let mut strings: Vec<(Symbol, &str)> = vocab.strings.iter().collect();
    strings.sort_by_key(|(sym, _)| sym.0);
    let mut subs: Vec<(SubscriptionId, Subscription, Validity)> = Vec::new();
    for shard in shards {
        subs.extend(
            shard
                .live_subscriptions()
                .map(|(id, sub, validity)| (id, sub.clone(), validity)),
        );
    }
    subs.sort_by_key(|(id, _, _)| id.0);
    SnapshotState {
        now: shards[0].now(),
        high_water_id: shards
            .iter()
            .map(|shard| shard.assigned_id_high_water())
            .max()
            .unwrap_or(0),
        attrs: attrs
            .into_iter()
            .map(|(_, name)| name.to_string())
            .collect(),
        strings: strings.into_iter().map(|(_, s)| s.to_string()).collect(),
        subs,
        next_token: sessions.peek_next_token(),
        sessions: sessions.to_rows(),
    }
}

/// Rebuilds the in-memory state (vocabulary + shard brokers) that a
/// recovered snapshot-plus-log-tail describes. Shared by durable open,
/// follower open, and mid-run snapshot installation on a follower.
fn rebuild_state(
    kind: EngineKind,
    n: usize,
    snapshot: Option<SnapshotState>,
    ops: Vec<(Lsn, WalOp)>,
) -> (Vocabulary, Vec<Broker>, SessionTable) {
    let mut vocab = Vocabulary::new();
    let mut sessions = SessionTable::new();
    let mut brokers: Vec<Broker> = (0..n)
        .map(|i| {
            Broker::new(kind)
                .with_id_lane(i as u32, n as u32)
                .without_event_store()
        })
        .collect();

    if let Some(snap) = snapshot {
        // Re-interning in stored (id) order reproduces identical ids,
        // so AttrId/Symbol references inside subscriptions stay valid.
        for name in &snap.attrs {
            vocab.attr(name);
        }
        for s in &snap.strings {
            vocab.string(s);
        }
        let mut per_shard: Vec<Vec<(SubscriptionId, Subscription, Validity)>> =
            (0..n).map(|_| Vec::new()).collect();
        for (id, sub, validity) in snap.subs {
            per_shard[id.0 as usize % n].push((id, sub, validity));
        }
        for (broker, entries) in brokers.iter_mut().zip(per_shard) {
            broker.restore(entries, snap.now);
        }
        for broker in &mut brokers {
            // Ids assigned before the snapshot but already retired are
            // absent from it; never reissue them to new subscribers.
            broker.reserve_ids_below(snap.high_water_id);
        }
        sessions = SessionTable::from_snapshot(snap.next_token, snap.sessions);
    }

    // Replay the WAL tail. Per-shard op order matches the original apply
    // order because live mutations append under the owning shard's lock
    // (clock advances under all of them).
    for (_lsn, op) in ops {
        match op {
            WalOp::InternAttr(name) => {
                vocab.attr(&name);
            }
            WalOp::InternString(s) => {
                vocab.string(&s);
            }
            WalOp::Subscribe { id, sub, validity } => {
                brokers[id.0 as usize % n].restore_subscription(id, sub, validity);
            }
            WalOp::Unsubscribe(id) => {
                brokers[id.0 as usize % n].unsubscribe(id);
            }
            WalOp::AdvanceTo(t) => {
                for broker in brokers.iter_mut() {
                    // `t == now` advances are real (they expire stale
                    // validities); the `<` guard only tolerates logs
                    // recovered under the skip policy, where a surviving
                    // op may predate the clock.
                    if t >= broker.now() {
                        broker.advance_to(t);
                    }
                }
            }
            WalOp::SessionCreate { token } => sessions.create(token),
            WalOp::SessionBind { token, id } => sessions.bind(token, id.0),
            WalOp::SessionRelease { token, id } => sessions.release(token, id.0),
            WalOp::SessionReap { token } => {
                // The reaped session's unsubscribes are re-derived from the
                // table, mirroring how AdvanceTo re-derives expiries.
                for id in sessions.reap(token) {
                    brokers[id as usize % n].unsubscribe(SubscriptionId(id));
                }
            }
        }
    }
    (vocab, brokers, sessions)
}

/// A cloneable, thread-safe broker handle with per-shard locking.
#[derive(Clone)]
pub struct SharedBroker {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for SharedBroker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedBroker")
            .field("shards", &self.shard_count())
            .field("subscriptions", &self.subscription_count())
            .finish()
    }
}

impl SharedBroker {
    /// Creates a broker partitioned over `shards` independent engines of the
    /// given kind (clamped to at least 1). Shard brokers run without an
    /// event store: this handle is the fire-and-forget publish surface.
    pub fn new(kind: EngineKind, shards: usize) -> Self {
        Self::with_backpressure(kind, shards, Backpressure::Block)
    }

    /// Like [`SharedBroker::new`] with an explicit overload policy for the
    /// publish paths: `Block` waits for each shard lock (lossless), `Shed`
    /// skips shards whose lock is contended (bounded latency, possibly
    /// missing matches), and `ErrorFast` makes
    /// [`SharedBroker::try_publish_into`] fail with
    /// [`ShardError::Overloaded`] on the first contended shard. The
    /// infallible publish methods degrade `ErrorFast` to `Shed`.
    ///
    /// The policy only distinguishes behaviour in [`PublishMode::Locked`]:
    /// the default RCU mode never takes a lock on the publish path, so
    /// every policy behaves like `Block` minus the blocking — publishes
    /// always see every shard and never shed, error, or wait.
    pub fn with_backpressure(kind: EngineKind, shards: usize, backpressure: Backpressure) -> Self {
        Self::with_publish_mode(kind, shards, backpressure, PublishMode::default())
    }

    /// [`SharedBroker::with_backpressure`] with an explicit [`PublishMode`]
    /// — `Locked` restores the historical lock-the-shards publish path
    /// (required for the lock-contention semantics of `Shed`/`ErrorFast`,
    /// and used by the contention benchmarks as the baseline).
    pub fn with_publish_mode(
        kind: EngineKind,
        shards: usize,
        backpressure: Backpressure,
        mode: PublishMode,
    ) -> Self {
        let n = shards.max(1);
        let shards: Vec<Mutex<Broker>> = (0..n)
            .map(|i| {
                Mutex::new(
                    Broker::new(kind)
                        .with_id_lane(i as u32, n as u32)
                        .without_event_store(),
                )
            })
            .collect();
        let snaps: Vec<ShardSnap> = (0..n).map(|_| ShardSnap::empty(kind)).collect();
        Self {
            inner: Arc::new(Inner {
                shards,
                vocab: Mutex::new(Vocabulary::new()),
                sessions: Mutex::new(SessionTable::new()),
                next_shard: AtomicUsize::new(0),
                backpressure,
                durable: None,
                follower: AtomicBool::new(false),
                kind,
                mode,
                published: RcuCell::new(Arc::new(BrokerSnapshot {
                    shards: snaps.clone(),
                })),
                writer: Mutex::new(snaps),
                flips: AtomicU64::new(0),
                rcu_stats: RcuStatsAgg::default(),
            }),
        }
    }

    /// Opens (or creates) a durable broker backed by a segmented WAL in
    /// `dir`, with the default [`DurabilityConfig`]. Recovers any state a
    /// previous process logged there: the newest decodable snapshot plus the
    /// surviving WAL tail, with a torn final record truncated away. Returns
    /// the broker and a [`RecoveryReport`] describing what recovery did.
    pub fn open_durable(
        kind: EngineKind,
        shards: usize,
        dir: impl AsRef<Path>,
    ) -> Result<(Self, RecoveryReport), BrokerError> {
        Self::open_durable_with(
            kind,
            shards,
            Backpressure::Block,
            dir,
            DurabilityConfig::default(),
        )
    }

    /// [`SharedBroker::open_durable`] with an explicit overload policy and
    /// durability configuration (segment size, fsync cadence, corruption
    /// policy, automatic snapshot threshold).
    ///
    /// The shard count may differ from the one the log was written under:
    /// ids carry their own identity (`shard = id mod N`), so recovery
    /// re-partitions the subscription set over the new shard count.
    pub fn open_durable_with(
        kind: EngineKind,
        shards: usize,
        backpressure: Backpressure,
        dir: impl AsRef<Path>,
        config: DurabilityConfig,
    ) -> Result<(Self, RecoveryReport), BrokerError> {
        Self::open_durable_inner(kind, shards, backpressure, dir, config, true)
    }

    /// The shared open path. `prune_sessions` runs the dangling-binding
    /// repair (a binding whose subscription is dead, left by a crash
    /// between the two records of a bound subscribe/unsubscribe pair).
    /// Leaders prune; followers must not — their dangling binding may be a
    /// `Subscribe` the replication stream has not delivered yet, and
    /// pruning it would orphan the subscription when it arrives. Promotion
    /// runs the same repair once the stream is sealed.
    fn open_durable_inner(
        kind: EngineKind,
        shards: usize,
        backpressure: Backpressure,
        dir: impl AsRef<Path>,
        config: DurabilityConfig,
        prune_sessions: bool,
    ) -> Result<(Self, RecoveryReport), BrokerError> {
        let n = shards.max(1);
        let (wal, recovered) = Wal::open(dir, config).map_err(BrokerError::Recovery)?;
        let Recovered {
            snapshot,
            ops,
            report,
        } = recovered;
        let (vocab, brokers, mut sessions) = rebuild_state(kind, n, snapshot, ops);
        if prune_sessions {
            sessions.prune_dangling(|id| brokers[id as usize % n].contains(SubscriptionId(id)));
        }

        // Freeze the recovered state as the first published snapshot, so
        // lock-free publishes see the pre-crash subscription set from the
        // first event onward.
        let snaps: Vec<ShardSnap> = brokers
            .iter()
            .map(|b| {
                let mut snap = ShardSnap::empty(kind);
                snap.rebuild_from(b, kind);
                snap
            })
            .collect();
        let broker = Self {
            inner: Arc::new(Inner {
                shards: brokers.into_iter().map(Mutex::new).collect(),
                vocab: Mutex::new(vocab),
                sessions: Mutex::new(sessions),
                next_shard: AtomicUsize::new(0),
                backpressure,
                durable: Some(DurableState {
                    wal: Mutex::new(wal),
                    degraded: AtomicBool::new(false),
                    cause: Mutex::new(None),
                    recovery: report,
                }),
                follower: AtomicBool::new(false),
                kind,
                mode: PublishMode::default(),
                published: RcuCell::new(Arc::new(BrokerSnapshot {
                    shards: snaps.clone(),
                })),
                writer: Mutex::new(snaps),
                flips: AtomicU64::new(0),
                rcu_stats: RcuStatsAgg::default(),
            }),
        };
        Ok((broker, report))
    }

    /// Opens a **replication follower**: a durable broker whose WAL
    /// directory replicates a remote leader's log. The broker serves
    /// matching (publishes are read-only) but refuses every local mutation
    /// with [`BrokerError::Follower`]; state changes arrive exclusively via
    /// [`SharedBroker::apply_replicated`] /
    /// [`SharedBroker::install_replicated_snapshot`], and
    /// [`SharedBroker::promote`] turns it into a writable leader.
    ///
    /// The directory is branded with a follower marker file. A directory
    /// holding durable history written by a *non*-follower is refused
    /// ([`BrokerError::ForeignHistory`]): tailing a leader into it would
    /// interleave two unrelated logs.
    pub fn open_follower(
        kind: EngineKind,
        shards: usize,
        dir: impl AsRef<Path>,
        config: DurabilityConfig,
    ) -> Result<(Self, RecoveryReport), BrokerError> {
        let dir = dir.as_ref();
        if replication::dir_has_history(dir).map_err(BrokerError::Recovery)?
            && !replication::is_follower_dir(dir)
        {
            return Err(BrokerError::ForeignHistory(dir.to_path_buf()));
        }
        replication::mark_follower(dir).map_err(BrokerError::Replication)?;
        // `prune_sessions: false` — see `open_durable_inner`.
        let (broker, report) =
            Self::open_durable_inner(kind, shards, Backpressure::Block, dir, config, false)?;
        broker.inner.follower.store(true, Ordering::Release);
        Ok((broker, report))
    }

    /// The configured overload policy.
    pub fn backpressure(&self) -> Backpressure {
        self.inner.backpressure
    }

    /// Warns when this broker's publish-mode/backpressure pairing is
    /// inert — `Shed`/`ErrorFast` under the default [`PublishMode::Rcu`]
    /// silently never fire, because lock-free publishes have no contention
    /// to police (see [`crate::rcu::publish_config_warning`]). Callers
    /// constructing a broker from user configuration should surface this.
    pub fn config_warning(&self) -> Option<&'static str> {
        crate::rcu::publish_config_warning(self.inner.mode, self.inner.backpressure)
    }

    /// Creates a broker with one shard per available hardware thread.
    pub fn with_default_shards(kind: EngineKind) -> Self {
        Self::new(kind, pubsub_core::default_shards())
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// The shard owning `id` (ids are striped across shards).
    fn shard_of(&self, id: SubscriptionId) -> usize {
        id.0 as usize % self.inner.shards.len()
    }

    // ---- RCU snapshot plumbing -------------------------------------------

    /// Takes the writer lock when running in RCU mode (`None` in locked
    /// mode, where publishes read the shard brokers directly). First lock in
    /// the global order `writer < vocab < shards < wal`.
    fn writer_lock(&self) -> Option<MutexGuard<'_, Vec<ShardSnap>>> {
        (self.inner.mode == PublishMode::Rcu).then(|| self.inner.writer.lock())
    }

    /// Publishes the writer state as a new immutable snapshot. Caller holds
    /// the writer lock, which serializes flips.
    fn flip(&self, snaps: &[ShardSnap]) {
        self.inner.published.publish(Arc::new(BrokerSnapshot {
            shards: snaps.to_vec(),
        }));
        self.inner.flips.fetch_add(1, Ordering::Relaxed);
        SNAPSHOT_FLIPS.inc();
    }

    /// Folds a read's scratch stats into the broker-level aggregate.
    fn fold_stats(&self, view: &mut ViewScratch) {
        self.inner.rcu_stats.fold(view.stats);
        view.stats.reset();
    }

    /// The configured publish mode.
    pub fn publish_mode(&self) -> PublishMode {
        self.inner.mode
    }

    /// Point-in-time view of the RCU machinery: flips, epoch, deferred
    /// reclamation and pinned readers.
    pub fn rcu_status(&self) -> RcuStatus {
        RcuStatus {
            mode: self.inner.mode,
            flips: self.inner.flips.load(Ordering::Relaxed),
            epoch: self.inner.published.epoch(),
            retired: self.inner.published.retired_len(),
            active_readers: self.inner.published.active_readers(),
        }
    }

    /// Aggregated engine stats of the RCU publish path. The lock-free reads
    /// bypass the shard engines (their own counters only see writer-side
    /// traffic), so per-event counts and phase timings are folded in here
    /// from every publishing thread's scratch.
    pub fn rcu_stats(&self) -> EngineStats {
        self.inner.rcu_stats.load()
    }

    /// Merges every shard's pending delta/tombstones into fresh frozen
    /// bases and drains reclaimable snapshot garbage. Publishes stay
    /// lock-free throughout. No-op in locked mode. Useful before latency
    /// measurements (a merged snapshot has no brute-forced delta) and in
    /// quiet periods.
    pub fn compact(&self) {
        let Some(mut writer) = self.writer_lock() else {
            return;
        };
        let mut changed = false;
        for (i, snap) in writer.iter_mut().enumerate() {
            if snap.has_pending() {
                let broker = self.inner.shards[i].lock();
                snap.rebuild_from(&broker, self.inner.kind);
                changed = true;
            }
        }
        if changed {
            self.flip(&writer);
        }
        drop(writer);
        self.inner.published.reclaim();
    }

    // ---- vocabulary (shared across shards) -------------------------------

    /// Interns an attribute name in the shared vocabulary.
    ///
    /// On a durable broker a *new* name is logged before being interned, so
    /// recovery reassigns the same [`AttrId`]. Interning stays infallible:
    /// if the log write fails the broker degrades (mutations start refusing)
    /// but the id is still returned — safe because a degraded broker never
    /// logs another op that could reference the unlogged id.
    pub fn attr(&self, name: &str) -> AttrId {
        let mut vocab = self.inner.vocab.lock();
        if let Some(id) = vocab.attrs.get(name) {
            return id;
        }
        assert!(
            !self.is_follower(),
            "interning a new name on a replication follower would fork its \
             vocabulary from the leader's; use lookup_attr / read_vocab"
        );
        self.log_intern(|| WalOp::InternAttr(name.to_string()));
        vocab.attr(name)
    }

    /// Interns a string value in the shared vocabulary (durable brokers log
    /// new strings first — see [`SharedBroker::attr`]).
    pub fn string(&self, s: &str) -> Value {
        let mut vocab = self.inner.vocab.lock();
        if let Some(sym) = vocab.strings.get(s) {
            return Value::Str(sym);
        }
        assert!(
            !self.is_follower(),
            "interning a new string on a replication follower would fork its \
             vocabulary from the leader's; use lookup_string / read_vocab"
        );
        self.log_intern(|| WalOp::InternString(s.to_string()));
        vocab.string(s)
    }

    /// Resolves an attribute name without interning — the publish-side
    /// lookup a replication follower must use: a name the leader never
    /// interned cannot appear in any subscription, so an event pair naming
    /// it can simply be dropped (it can match nothing).
    pub fn lookup_attr(&self, name: &str) -> Option<AttrId> {
        self.inner.vocab.lock().attrs.get(name)
    }

    /// Resolves a string value without interning (see
    /// [`SharedBroker::lookup_attr`] for why followers need this).
    pub fn lookup_string(&self, s: &str) -> Option<Value> {
        self.inner.vocab.lock().strings.get(s).map(Value::Str)
    }

    /// Runs `f` with read-only access to the shared vocabulary. Safe on
    /// followers (cannot intern, so cannot fork the replicated history).
    pub fn read_vocab<R>(&self, f: impl FnOnce(&Vocabulary) -> R) -> R {
        f(&self.inner.vocab.lock())
    }

    /// Logs an interning op on durable brokers, degrading silently on
    /// failure. Caller holds the vocabulary lock (lock order: vocab < wal).
    fn log_intern(&self, op: impl FnOnce() -> WalOp) {
        if let Some(durable) = &self.inner.durable {
            if !durable.degraded.load(Ordering::Acquire) {
                if let Err(e) = durable.wal.lock().append(&op()) {
                    let _ = durable.degrade(e);
                }
            }
        }
    }

    /// Runs `f` with mutable access to the shared vocabulary — the escape
    /// hatch for parsers that intern whole expressions at once. On durable
    /// brokers every interner entry `f` adds is logged afterwards (interner
    /// ids are dense and sequential, so the additions are exactly the id
    /// range grown during the call), with the same silent-degrade contract
    /// as [`SharedBroker::attr`].
    pub fn with_vocab<R>(&self, f: impl FnOnce(&mut Vocabulary) -> R) -> R {
        let mut vocab = self.inner.vocab.lock();
        let attrs_before = vocab.attrs.universe();
        let strings_before = vocab.strings.len();
        let out = f(&mut vocab);
        assert!(
            !self.is_follower()
                || (vocab.attrs.universe() == attrs_before
                    && vocab.strings.len() == strings_before),
            "interning new entries on a replication follower would fork its \
             vocabulary from the leader's; use read_vocab"
        );
        for raw in attrs_before..vocab.attrs.universe() {
            let name = vocab.attrs.name(AttrId(raw as u32)).to_string();
            self.log_intern(move || WalOp::InternAttr(name));
        }
        for raw in strings_before..vocab.strings.len() {
            let s = vocab.strings.resolve(Symbol(raw as u32)).to_string();
            self.log_intern(move || WalOp::InternString(s));
        }
        out
    }

    // ---- subscriptions (lock one shard) ----------------------------------

    /// Registers a subscription, locking only the shard that receives it
    /// (round-robin assignment keeps shards balanced).
    ///
    /// # Panics
    /// Panics if this is a durable broker in degraded mode; use
    /// [`SharedBroker::try_subscribe`] to handle degradation gracefully.
    pub fn subscribe(&self, sub: Subscription, validity: Validity) -> SubscriptionId {
        self.try_subscribe(sub, validity)
            .expect("subscribe failed: durable broker is degraded")
    }

    /// Registers a subscription, logging it to the WAL first on durable
    /// brokers. Fails with [`BrokerError::Degraded`] when the broker has
    /// degraded to read-only mode (a previous durability write failed), or
    /// degrades it now if this op's log write fails — in which case the
    /// subscription is *not* registered.
    pub fn try_subscribe(
        &self,
        sub: Subscription,
        validity: Validity,
    ) -> Result<SubscriptionId, BrokerError> {
        self.check_writable()?;
        let mut writer = self.writer_lock();
        let shard = self.inner.next_shard.fetch_add(1, Ordering::Relaxed) % self.shard_count();
        let mut broker = self.inner.shards[shard].lock();
        if let Some(durable) = &self.inner.durable {
            durable.check()?;
            // Log under the shard lock so this shard's WAL order equals its
            // apply order; the id is peeked (not consumed) so a failed
            // append leaves no gap.
            let id = broker.peek_next_id();
            let op = WalOp::Subscribe {
                id,
                sub: sub.clone(),
                validity,
            };
            if let Err(e) = durable.wal.lock().append(&op) {
                return Err(durable.degrade(e));
            }
        }
        let snap_sub = writer.is_some().then(|| Arc::new(sub.clone()));
        let id = broker.subscribe(sub, validity);
        if let Some(snaps) = writer.as_deref_mut() {
            snaps[shard].note_insert(id, snap_sub.expect("built above"), &broker, self.inner.kind);
            drop(broker);
            self.flip(snaps);
        }
        Ok(id)
    }

    /// Removes a subscription, locking only its owning shard.
    ///
    /// # Panics
    /// Panics if this is a durable broker in degraded mode; use
    /// [`SharedBroker::try_unsubscribe`] to handle degradation gracefully.
    pub fn unsubscribe(&self, id: SubscriptionId) -> bool {
        self.try_unsubscribe(id)
            .expect("unsubscribe failed: durable broker is degraded")
    }

    /// Removes a subscription, logging the removal first on durable brokers.
    /// A miss (unknown or already-removed id) returns `Ok(false)` without
    /// logging anything.
    pub fn try_unsubscribe(&self, id: SubscriptionId) -> Result<bool, BrokerError> {
        self.check_writable()?;
        let mut writer = self.writer_lock();
        let shard = self.shard_of(id);
        let mut broker = self.inner.shards[shard].lock();
        if let Some(durable) = &self.inner.durable {
            durable.check()?;
            if !broker.contains(id) {
                return Ok(false);
            }
            if let Err(e) = durable.wal.lock().append(&WalOp::Unsubscribe(id)) {
                return Err(durable.degrade(e));
            }
        }
        let removed = broker.unsubscribe(id);
        if removed {
            if let Some(snaps) = writer.as_deref_mut() {
                snaps[shard].note_remove(id, &broker, self.inner.kind);
                drop(broker);
                self.flip(snaps);
            }
        }
        Ok(removed)
    }

    /// Number of live subscriptions across all shards.
    pub fn subscription_count(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().subscription_count())
            .sum()
    }

    /// Live subscriptions per shard.
    pub fn shard_subscription_counts(&self) -> Vec<usize> {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().subscription_count())
            .collect()
    }

    // ---- durable sessions ------------------------------------------------

    /// Creates a session, returning its resume token (tokens start at 1; 0
    /// is the wire protocol's "new session" sentinel and is never issued).
    /// On durable brokers the `SessionCreate` record is logged before the
    /// table changes, so a restarted — or promoted — broker reissues
    /// neither this token nor any before it.
    pub fn try_session_create(&self) -> Result<u64, BrokerError> {
        self.check_writable()?;
        let mut sessions = self.inner.sessions.lock();
        let token = sessions.peek_next_token();
        if let Some(durable) = &self.inner.durable {
            durable.check()?;
            if let Err(e) = durable.wal.lock().append(&WalOp::SessionCreate { token }) {
                return Err(durable.degrade(e));
            }
        }
        sessions.create(token);
        Ok(token)
    }

    /// Registers a subscription owned by session `token`
    /// ([`BrokerError::UnknownSession`] if the token was never issued or
    /// its session was reaped). On durable brokers the pair is logged as
    /// `SessionBind` *then* `Subscribe` under one WAL hold: a crash between
    /// the two leaves a dangling binding (repaired at the next writable
    /// open), never an ownerless live subscription.
    pub fn try_subscribe_bound(
        &self,
        token: u64,
        sub: Subscription,
        validity: Validity,
    ) -> Result<SubscriptionId, BrokerError> {
        self.check_writable()?;
        let mut writer = self.writer_lock();
        let mut sessions = self.inner.sessions.lock();
        if !sessions.contains(token) {
            return Err(BrokerError::UnknownSession(token));
        }
        let shard = self.inner.next_shard.fetch_add(1, Ordering::Relaxed) % self.shard_count();
        let mut broker = self.inner.shards[shard].lock();
        if let Some(durable) = &self.inner.durable {
            durable.check()?;
            let id = broker.peek_next_id();
            let mut wal = durable.wal.lock();
            if let Err(e) = wal.append(&WalOp::SessionBind { token, id }) {
                return Err(durable.degrade(e));
            }
            let op = WalOp::Subscribe {
                id,
                sub: sub.clone(),
                validity,
            };
            if let Err(e) = wal.append(&op) {
                // The bind made it to disk alone; recovery's prune repairs
                // it. Nothing was applied in memory.
                return Err(durable.degrade(e));
            }
        }
        let snap_sub = writer.is_some().then(|| Arc::new(sub.clone()));
        let id = broker.subscribe(sub, validity);
        sessions.bind(token, id.0);
        if let Some(snaps) = writer.as_deref_mut() {
            snaps[shard].note_insert(id, snap_sub.expect("built above"), &broker, self.inner.kind);
            drop(broker);
            self.flip(snaps);
        }
        Ok(id)
    }

    /// Removes a subscription owned by session `token`. Returns `Ok(false)`
    /// without logging when `id` is not currently bound to that session
    /// (idempotent, mirroring [`SharedBroker::try_unsubscribe`]); fails
    /// with [`BrokerError::UnknownSession`] when the session itself is
    /// gone. On durable brokers the pair is logged `Unsubscribe` *then*
    /// `SessionRelease` — the crash window again leaves only a dangling
    /// binding.
    pub fn try_unsubscribe_bound(
        &self,
        token: u64,
        id: SubscriptionId,
    ) -> Result<bool, BrokerError> {
        self.check_writable()?;
        let mut writer = self.writer_lock();
        let mut sessions = self.inner.sessions.lock();
        if !sessions.contains(token) {
            return Err(BrokerError::UnknownSession(token));
        }
        if sessions.owner_of(id.0) != Some(token) {
            return Ok(false);
        }
        let shard = self.shard_of(id);
        let mut broker = self.inner.shards[shard].lock();
        if let Some(durable) = &self.inner.durable {
            durable.check()?;
            if !broker.contains(id) {
                // A binding to a dead id cannot arise at runtime (only from
                // a torn log, repaired at open); drop it defensively.
                sessions.release(token, id.0);
                return Ok(false);
            }
            let mut wal = durable.wal.lock();
            if let Err(e) = wal.append(&WalOp::Unsubscribe(id)) {
                return Err(durable.degrade(e));
            }
            if let Err(e) = wal.append(&WalOp::SessionRelease { token, id }) {
                return Err(durable.degrade(e));
            }
        }
        let removed = broker.unsubscribe(id);
        sessions.release(token, id.0);
        if removed {
            if let Some(snaps) = writer.as_deref_mut() {
                snaps[shard].note_remove(id, &broker, self.inner.kind);
                drop(broker);
                self.flip(snaps);
            }
        }
        Ok(removed)
    }

    /// Reaps a session: logs **one** `SessionReap` record, removes the
    /// session from the table, and unsubscribes every subscription it
    /// owned (returned sorted). The per-subscription unsubscribes are not
    /// logged — replay re-derives them from the table, exactly as
    /// `AdvanceTo` re-derives expiries — so reaping a thousand-subscription
    /// session costs one record. All removals land in a single RCU flip.
    pub fn try_session_reap(&self, token: u64) -> Result<Vec<SubscriptionId>, BrokerError> {
        self.check_writable()?;
        let mut writer = self.writer_lock();
        let mut sessions = self.inner.sessions.lock();
        if !sessions.contains(token) {
            return Err(BrokerError::UnknownSession(token));
        }
        if let Some(durable) = &self.inner.durable {
            durable.check()?;
            if let Err(e) = durable.wal.lock().append(&WalOp::SessionReap { token }) {
                return Err(durable.degrade(e));
            }
        }
        let ids: Vec<SubscriptionId> = sessions
            .reap(token)
            .into_iter()
            .map(SubscriptionId)
            .collect();
        for &id in &ids {
            let shard = self.shard_of(id);
            let mut broker = self.inner.shards[shard].lock();
            if broker.unsubscribe(id) {
                if let Some(snaps) = writer.as_deref_mut() {
                    snaps[shard].note_remove(id, &broker, self.inner.kind);
                }
            }
        }
        if !ids.is_empty() {
            if let Some(snaps) = writer.as_deref() {
                self.flip(snaps);
            }
        }
        Ok(ids)
    }

    /// The subscription ids bound to session `token` (sorted), or `None`
    /// for an unknown/reaped token. Works on followers — this is how a
    /// server hydrates its registry from replicated session state.
    pub fn session_subscriptions(&self, token: u64) -> Option<Vec<SubscriptionId>> {
        let sessions = self.inner.sessions.lock();
        sessions
            .sessions
            .get(&token)
            .map(|set| set.iter().map(|&id| SubscriptionId(id)).collect())
    }

    /// Every durable session as sorted `(token, subscription ids)` rows —
    /// the server's startup hydration source.
    pub fn session_rows(&self) -> Vec<(u64, Vec<SubscriptionId>)> {
        self.inner
            .sessions
            .lock()
            .to_rows()
            .into_iter()
            .map(|(token, ids)| (token, ids.into_iter().map(SubscriptionId).collect()))
            .collect()
    }

    /// Number of live sessions in the table.
    pub fn session_count(&self) -> usize {
        self.inner.sessions.lock().sessions.len()
    }

    // ---- events (lock one shard at a time) -------------------------------

    /// Publishes an event, returning the matched subscriptions sorted by id.
    pub fn publish(&self, event: &Event) -> Vec<SubscriptionId> {
        let mut out = Vec::new();
        self.publish_into(event, &mut out);
        out
    }

    /// Publishes an event, appending the matched ids to `out` (sorted by id
    /// within this publish). Locks one shard at a time and allocates nothing
    /// beyond what `out` needs.
    ///
    /// Infallible: under [`Backpressure::Shed`] (or `ErrorFast`, which this
    /// path degrades to `Shed`) contended shards are skipped and counted,
    /// and the result may be missing their matches.
    pub fn publish_into(&self, event: &Event, out: &mut Vec<SubscriptionId>) {
        let _ = self.publish_policed(event, out, false);
    }

    /// Publishes an event honouring the full [`Backpressure`] policy.
    ///
    /// Returns the number of shards skipped because their lock was contended
    /// (always 0 under [`Backpressure::Block`]). Under
    /// [`Backpressure::ErrorFast`] the first contended shard aborts the
    /// publish with [`ShardError::Overloaded`] and `out` is left truncated
    /// to its original length.
    ///
    /// In the default [`PublishMode::Rcu`] there are no shard locks to
    /// contend on: this never sheds and never errors, reporting 0 skipped
    /// shards for every policy.
    pub fn try_publish_into(
        &self,
        event: &Event,
        out: &mut Vec<SubscriptionId>,
    ) -> Result<usize, ShardError> {
        self.publish_policed(event, out, true)
    }

    /// Lock-free publish: pin the current snapshot, match every shard's
    /// view with this thread's scratch, unpin, sort. Nothing here blocks or
    /// contends — the pin is two atomic writes to a thread-owned slot.
    fn publish_rcu(&self, event: &Event, out: &mut Vec<SubscriptionId>) {
        crate::broker::PUBLISHES.inc();
        let start = out.len();
        let snap = self.inner.published.pin();
        PUBLISH_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            for shard in &snap.shards {
                shard.match_into(event, &mut scratch.view, out);
            }
            // Every shard view recorded the event; the aggregate counts it
            // once, matching the locked path's max-across-shards convention.
            scratch.view.stats.events = 1;
            self.fold_stats(&mut scratch.view);
        });
        drop(snap);
        out[start..].sort_unstable();
    }

    fn publish_policed(
        &self,
        event: &Event,
        out: &mut Vec<SubscriptionId>,
        error_fast: bool,
    ) -> Result<usize, ShardError> {
        if self.inner.mode == PublishMode::Rcu {
            self.publish_rcu(event, out);
            return Ok(0);
        }
        let start = out.len();
        let block = self.inner.backpressure == Backpressure::Block;
        let error_fast = error_fast && self.inner.backpressure == Backpressure::ErrorFast;
        let mut skipped = 0usize;
        for (i, shard) in self.inner.shards.iter().enumerate() {
            if block {
                shard.lock().publish_into(event, out);
                continue;
            }
            match shard.try_lock() {
                Some(mut broker) => broker.publish_into(event, out),
                None if error_fast => {
                    out.truncate(start);
                    return Err(ShardError::Overloaded { shard: i });
                }
                None => {
                    skipped += 1;
                    SHED_SHARDS.inc();
                }
            }
        }
        out[start..].sort_unstable();
        Ok(skipped)
    }

    /// Publishes a batch, returning one sorted match set per event. Each
    /// shard is visited once for the whole batch, amortising locking over
    /// `events.len()` events.
    pub fn publish_batch(&self, events: &[Event]) -> Vec<Vec<SubscriptionId>> {
        let mut out = Vec::new();
        self.publish_batch_into(events, &mut out);
        out
    }

    /// Batched publish into a caller-owned buffer (one inner vector per
    /// event, reused across calls). Per-shard scratch buffers are
    /// thread-local, so concurrent batch publishers never serialize on
    /// scratch acquisition and the steady state allocates nothing.
    pub fn publish_batch_into(&self, events: &[Event], out: &mut Vec<Vec<SubscriptionId>>) {
        out.resize_with(events.len(), Vec::new);
        out.truncate(events.len());
        for dst in out.iter_mut() {
            dst.clear();
        }
        if events.is_empty() {
            return;
        }
        if self.inner.mode == PublishMode::Rcu {
            return self.publish_batch_rcu(events, out);
        }
        let block = self.inner.backpressure == Backpressure::Block;
        PUBLISH_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            for shard in &self.inner.shards {
                // Batch publishes degrade ErrorFast to Shed, like
                // `publish_into`.
                let mut guard = if block {
                    shard.lock()
                } else {
                    match shard.try_lock() {
                        Some(guard) => guard,
                        None => {
                            SHED_SHARDS.inc();
                            continue;
                        }
                    }
                };
                guard.publish_batch_into(events, &mut scratch.shard_results);
                drop(guard);
                for (dst, src) in out.iter_mut().zip(&scratch.shard_results) {
                    dst.extend_from_slice(src);
                }
            }
        });
        for dst in out.iter_mut() {
            dst.sort_unstable();
        }
    }

    /// Lock-free batched publish: one snapshot pin covers the whole batch,
    /// so every event in it matches against the same consistent cut.
    fn publish_batch_rcu(&self, events: &[Event], out: &mut [Vec<SubscriptionId>]) {
        crate::broker::PUBLISHES.add(events.len() as u64);
        let snap = self.inner.published.pin();
        PUBLISH_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            for shard in &snap.shards {
                shard.match_batch_into(events, &mut scratch.view, &mut scratch.shard_results);
                for (dst, src) in out.iter_mut().zip(&scratch.shard_results) {
                    dst.extend_from_slice(src);
                }
            }
            // Count each published event once, not once per shard view.
            scratch.view.stats.events = events.len() as u64;
            self.fold_stats(&mut scratch.view);
        });
        drop(snap);
        for dst in out.iter_mut() {
            dst.sort_unstable();
        }
    }

    // ---- clock (lock all shards in fixed order) --------------------------

    /// Current logical time (all shards tick together).
    pub fn now(&self) -> LogicalTime {
        self.inner.shards[0].lock().now()
    }

    /// Advances every shard's clock to `t`, expiring subscriptions whose
    /// validity ended. Acquires all shard locks in ascending index order
    /// (plus the vocabulary and WAL locks on durable brokers, respecting
    /// the global `vocab < shards < wal` order), so lock ordering is total
    /// and deadlock-free. Returns the number of expired subscriptions.
    ///
    /// # Panics
    /// Panics if this is a durable broker in degraded mode; use
    /// [`SharedBroker::try_advance_to`] to handle degradation gracefully.
    pub fn advance_to(&self, t: LogicalTime) -> usize {
        self.try_advance_to(t)
            .expect("advance_to failed: durable broker is degraded")
    }

    /// Advances the clock by one tick. Returns expired subscriptions.
    ///
    /// # Panics
    /// Panics if this is a durable broker in degraded mode; use
    /// [`SharedBroker::try_tick`] to handle degradation gracefully.
    pub fn tick(&self) -> usize {
        self.try_tick()
            .expect("tick failed: durable broker is degraded")
    }

    /// Advances every shard's clock to `t`, logging the advance first on
    /// durable brokers. Expired subscriptions are *not* logged individually:
    /// expiry is deterministic given the validities already in the log, so
    /// recovery re-derives it by replaying the clock.
    pub fn try_advance_to(&self, t: LogicalTime) -> Result<usize, BrokerError> {
        self.advance_locked(Some(t))
    }

    /// Advances the clock by one tick, logging it first on durable brokers.
    /// Returns expired subscriptions.
    pub fn try_tick(&self) -> Result<usize, BrokerError> {
        self.advance_locked(None)
    }

    /// The clock path shared by [`SharedBroker::try_advance_to`] (explicit
    /// target) and [`SharedBroker::try_tick`] (`now + 1`, computed under the
    /// locks). Also the automatic-snapshot trigger point: with every lock
    /// already held, a due snapshot costs no extra synchronisation.
    fn advance_locked(&self, t: Option<LogicalTime>) -> Result<usize, BrokerError> {
        self.check_writable()?;
        let mut writer = self.writer_lock();
        // The vocabulary and session locks are only needed for a potential
        // auto-snapshot, but the global lock order (writer < vocab <
        // sessions < shards < wal) requires taking them before the shard
        // locks — durable brokers pay that cost.
        let vocab = self.inner.durable.as_ref().map(|_| self.inner.vocab.lock());
        let sessions = self
            .inner
            .durable
            .as_ref()
            .map(|_| self.inner.sessions.lock());
        let mut guards: Vec<_> = self.inner.shards.iter().map(|s| s.lock()).collect();
        let t = t.unwrap_or_else(|| guards[0].now().plus(1));
        if let Some(durable) = &self.inner.durable {
            durable.check()?;
            // Validate before logging so a bad target never reaches the log.
            // Even `t == now` is logged: it can expire subscriptions whose
            // validity was already stale when they were registered, and
            // recovery must reproduce that.
            assert!(t >= guards[0].now(), "clock cannot go backwards");
            if let Err(e) = durable.wal.lock().append(&WalOp::AdvanceTo(t)) {
                return Err(durable.degrade(e));
            }
        }
        let expired = if let Some(snaps) = writer.as_deref_mut() {
            // Tombstone every expiry into the snapshot state; all shards'
            // expiries land in the single flip below, so publishers observe
            // the clock advance atomically.
            let mut expired_ids = Vec::new();
            let mut total = 0usize;
            for (snap, b) in snaps.iter_mut().zip(guards.iter_mut()) {
                expired_ids.clear();
                let (n, _) = b.advance_to_collect(t, Some(&mut expired_ids));
                total += n;
                for &id in &expired_ids {
                    snap.note_remove(id, b, self.inner.kind);
                }
            }
            total
        } else {
            guards.iter_mut().map(|b| b.advance_to(t).0).sum()
        };
        if let Some(snaps) = writer.as_deref() {
            self.flip(snaps);
        }
        if let Some(durable) = &self.inner.durable {
            let mut wal = durable.wal.lock();
            if wal.wants_snapshot() {
                let state = build_snapshot_state(
                    vocab.as_ref().expect("durable holds vocab"),
                    sessions.as_ref().expect("durable holds sessions"),
                    &guards,
                );
                if let Err(e) = wal.snapshot(&state) {
                    // The advance itself is already durable; a failed
                    // snapshot only degrades the broker if it poisoned the
                    // WAL (torn append during the pre-snapshot sync path).
                    if wal.is_poisoned() {
                        drop(wal);
                        return Err(durable.degrade(e));
                    }
                }
            }
        }
        Ok(expired)
    }

    // ---- durability ------------------------------------------------------

    /// Whether this broker was opened with [`SharedBroker::open_durable`].
    pub fn is_durable(&self) -> bool {
        self.inner.durable.is_some()
    }

    /// Whether this broker is a replication follower (read-only replica of
    /// a remote leader; see [`SharedBroker::open_follower`]).
    pub fn is_follower(&self) -> bool {
        self.inner.follower.load(Ordering::Acquire)
    }

    /// Refuses local mutations on a replication follower.
    fn check_writable(&self) -> Result<(), BrokerError> {
        if self.is_follower() {
            Err(BrokerError::Follower)
        } else {
            Ok(())
        }
    }

    /// Whether a durability write has failed, flipping the broker into
    /// read-only degraded mode (always `false` for in-memory brokers).
    pub fn is_degraded(&self) -> bool {
        self.inner
            .durable
            .as_ref()
            .is_some_and(|d| d.degraded.load(Ordering::Acquire))
    }

    /// The durability failure that degraded this broker, if any.
    pub fn degraded_cause(&self) -> Option<WalError> {
        self.inner
            .durable
            .as_ref()
            .and_then(|d| d.cause.lock().clone())
    }

    /// What recovery did when this durable broker was opened (`None` for
    /// in-memory brokers).
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.inner.durable.as_ref().map(|d| d.recovery)
    }

    /// Point-in-time durability status (`None` for in-memory brokers).
    pub fn durability(&self) -> Option<DurabilityStatus> {
        self.inner.durable.as_ref().map(|d| {
            let wal = d.wal.lock();
            DurabilityStatus {
                dir: wal.dir().to_path_buf(),
                next_lsn: wal.next_lsn(),
                ops_since_snapshot: wal.ops_since_snapshot(),
                degraded: d.degraded.load(Ordering::Acquire),
                follower: self.is_follower(),
                degraded_cause: d.cause.lock().clone(),
                recovery: d.recovery,
            }
        })
    }

    /// Writes a point-in-time snapshot of the full broker state (clock,
    /// vocabulary, live subscriptions with validities), then compacts WAL
    /// segments the snapshot supersedes. Takes every lock, so it is a
    /// stop-the-world operation — size snapshots via
    /// [`DurabilityConfig::snapshot_every_ops`] or call this in quiet
    /// periods. Returns the snapshot file path.
    pub fn snapshot(&self) -> Result<PathBuf, BrokerError> {
        self.check_writable()?;
        let durable = self.inner.durable.as_ref().ok_or(BrokerError::NotDurable)?;
        durable.check()?;
        let vocab = self.inner.vocab.lock();
        let sessions = self.inner.sessions.lock();
        let guards: Vec<_> = self.inner.shards.iter().map(|s| s.lock()).collect();
        let mut wal = durable.wal.lock();
        let state = build_snapshot_state(&vocab, &sessions, &guards);
        match wal.snapshot(&state) {
            Ok(path) => Ok(path),
            Err(e) => {
                if wal.is_poisoned() {
                    drop(wal);
                    Err(durable.degrade(e))
                } else {
                    Err(BrokerError::Snapshot(e))
                }
            }
        }
    }

    // ---- replication (follower side) -------------------------------------

    /// Applies a batch of replicated record payloads: each is decoded,
    /// appended to the local WAL (write-ahead, exactly like a local
    /// mutation), applied in memory, and the whole batch becomes visible to
    /// publishers in **one** RCU snapshot flip. Returns the LSN the next
    /// batch must start at.
    ///
    /// The batch must start exactly at the local log's append position:
    /// anything else means the stream and the replica have diverged
    /// ([`BrokerError::ReplicationGap`] — nothing is applied). A payload
    /// that fails to decode refuses the whole remainder
    /// ([`BrokerError::Replication`]); payloads already appended stay
    /// applied, and the returned error leaves the log at a record boundary.
    pub fn apply_replicated(
        &self,
        first_lsn: Lsn,
        payloads: &[Vec<u8>],
    ) -> Result<Lsn, BrokerError> {
        let durable = self.inner.durable.as_ref().ok_or(BrokerError::NotDurable)?;
        if !self.is_follower() {
            return Err(BrokerError::NotFollower);
        }
        let mut writer = self.writer_lock();
        let mut vocab = self.inner.vocab.lock();
        let mut sessions = self.inner.sessions.lock();
        let mut guards: Vec<_> = self.inner.shards.iter().map(|s| s.lock()).collect();
        durable.check()?;
        let mut wal = durable.wal.lock();
        let expected = wal.next_lsn();
        if first_lsn != expected {
            return Err(BrokerError::ReplicationGap {
                expected,
                got: first_lsn,
            });
        }
        let n = guards.len();
        let kind = self.inner.kind;
        for (i, payload) in payloads.iter().enumerate() {
            let lsn = first_lsn + i as u64;
            let op = WalOp::decode(payload).map_err(|e| {
                BrokerError::Replication(WalError::Corrupt {
                    segment: lsn,
                    offset: 0,
                    detail: format!("undecodable replicated record: {e}"),
                })
            })?;
            // Write-ahead, same as a local mutation: an op that fails to
            // log is never applied, so the replica stays a prefix of the
            // leader's acknowledged history.
            if let Err(e) = wal.append(&op) {
                return Err(durable.degrade(e));
            }
            match op {
                WalOp::InternAttr(name) => {
                    vocab.attr(&name);
                }
                WalOp::InternString(s) => {
                    vocab.string(&s);
                }
                WalOp::Subscribe { id, sub, validity } => {
                    let shard = id.0 as usize % n;
                    let arc = writer.is_some().then(|| Arc::new(sub.clone()));
                    let broker = &mut *guards[shard];
                    broker.restore_subscription(id, sub, validity);
                    if let Some(snaps) = writer.as_deref_mut() {
                        snaps[shard].note_insert(id, arc.expect("built above"), broker, kind);
                    }
                }
                WalOp::Unsubscribe(id) => {
                    let shard = id.0 as usize % n;
                    let broker = &mut *guards[shard];
                    if broker.unsubscribe(id) {
                        if let Some(snaps) = writer.as_deref_mut() {
                            snaps[shard].note_remove(id, broker, kind);
                        }
                    }
                }
                WalOp::AdvanceTo(t) => {
                    let mut expired = Vec::new();
                    for (shard, broker) in guards.iter_mut().enumerate() {
                        if t >= broker.now() {
                            expired.clear();
                            broker.advance_to_collect(t, Some(&mut expired));
                            if let Some(snaps) = writer.as_deref_mut() {
                                for &eid in &expired {
                                    snaps[shard].note_remove(eid, broker, kind);
                                }
                            }
                        }
                    }
                }
                WalOp::SessionCreate { token } => sessions.create(token),
                WalOp::SessionBind { token, id } => sessions.bind(token, id.0),
                WalOp::SessionRelease { token, id } => sessions.release(token, id.0),
                WalOp::SessionReap { token } => {
                    // One record, many removals — re-derived here exactly as
                    // at local replay.
                    for raw in sessions.reap(token) {
                        let id = SubscriptionId(raw);
                        let shard = raw as usize % n;
                        let broker = &mut *guards[shard];
                        if broker.unsubscribe(id) {
                            if let Some(snaps) = writer.as_deref_mut() {
                                snaps[shard].note_remove(id, broker, kind);
                            }
                        }
                    }
                }
            }
        }
        let next = wal.next_lsn();
        drop(wal);
        drop(guards);
        if !payloads.is_empty() {
            if let Some(snaps) = writer.as_deref() {
                self.flip(snaps);
            }
        }
        Ok(next)
    }

    /// Installs a leader snapshot mid-run (the catch-up path: the
    /// follower's position predates the leader's oldest retained segment).
    /// Validates the raw snapshot-file bytes, installs them atomically into
    /// the WAL directory, reopens the log at `lsn`, and rebuilds the entire
    /// in-memory state — one stop-the-world swap, published to lock-free
    /// readers as a single snapshot flip. Streaming resumes at `lsn`.
    pub fn install_replicated_snapshot(&self, lsn: Lsn, bytes: &[u8]) -> Result<(), BrokerError> {
        let durable = self.inner.durable.as_ref().ok_or(BrokerError::NotDurable)?;
        if !self.is_follower() {
            return Err(BrokerError::NotFollower);
        }
        let mut writer = self.writer_lock();
        let mut vocab = self.inner.vocab.lock();
        let mut sessions = self.inner.sessions.lock();
        let mut guards: Vec<_> = self.inner.shards.iter().map(|s| s.lock()).collect();
        durable.check()?;
        let mut wal = durable.wal.lock();
        let dir = wal.dir().to_path_buf();
        let config = *wal.config();
        replication::install_snapshot(&dir, lsn, bytes).map_err(BrokerError::Replication)?;
        let (new_wal, recovered) = Wal::open(&dir, config).map_err(BrokerError::Recovery)?;
        *wal = new_wal;
        let n = guards.len();
        let (new_vocab, brokers, new_sessions) =
            rebuild_state(self.inner.kind, n, recovered.snapshot, recovered.ops);
        *vocab = new_vocab;
        *sessions = new_sessions;
        for (guard, broker) in guards.iter_mut().zip(brokers) {
            **guard = broker;
        }
        if let Some(snaps) = writer.as_deref_mut() {
            for (snap, guard) in snaps.iter_mut().zip(guards.iter()) {
                snap.rebuild_from(guard, self.inner.kind);
            }
            drop(wal);
            drop(guards);
            self.flip(snaps);
        }
        Ok(())
    }

    /// Promotes this follower to a writable leader (failover): seals the
    /// replicated tail (fsync), clears the directory's follower marker, and
    /// flips the role. The id high-water survives — every id the old leader
    /// ever issued (and that replicated here) is reserved, so a dead id is
    /// never reissued to a new subscriber. Returns the LSN the first
    /// post-promotion mutation will receive.
    pub fn promote(&self) -> Result<Lsn, BrokerError> {
        let durable = self.inner.durable.as_ref().ok_or(BrokerError::NotDurable)?;
        if !self.is_follower() {
            return Err(BrokerError::NotFollower);
        }
        let _writer = self.writer_lock();
        let _vocab = self.inner.vocab.lock();
        let mut sessions = self.inner.sessions.lock();
        let guards: Vec<_> = self.inner.shards.iter().map(|s| s.lock()).collect();
        durable.check()?;
        let mut wal = durable.wal.lock();
        if let Err(e) = wal.sync() {
            drop(wal);
            return Err(durable.degrade(e));
        }
        replication::clear_follower_mark(wal.dir()).map_err(BrokerError::Replication)?;
        let next = wal.next_lsn();
        drop(wal);
        // The broker becomes writable here, so this is the moment the
        // leader-only repair runs: a binding whose `Subscribe` the stream
        // never delivered (the old leader died inside the pair) is now
        // definitively dangling, not merely in flight.
        let n = guards.len();
        sessions.prune_dangling(|id| guards[id as usize % n].contains(SubscriptionId(id)));
        drop(guards);
        drop(sessions);
        self.inner.follower.store(false, Ordering::Release);
        Ok(next)
    }

    // ---- escape hatch ----------------------------------------------------

    /// Runs `f` with exclusive access to one shard broker (statistics,
    /// engine introspection). Prefer the typed methods for normal use.
    pub fn with_shard<R>(&self, shard: usize, f: impl FnOnce(&mut Broker) -> R) -> R {
        f(&mut self.inner.shards[shard].lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_core::EngineKind;

    #[test]
    fn concurrent_publishers_and_subscribers() {
        let broker = SharedBroker::new(EngineKind::Dynamic, 4);
        let attr = broker.attr("k");

        let mut handles = Vec::new();
        for t in 0..4i64 {
            let broker = broker.clone();
            handles.push(std::thread::spawn(move || {
                let sub = Subscription::builder().eq(attr, t).build().unwrap();
                let id = broker.subscribe(sub, Validity::forever());
                let event = Event::builder().pair(attr, t).build().unwrap();
                let mut hits = 0;
                for _ in 0..100 {
                    if broker.publish(&event).contains(&id) {
                        hits += 1;
                    }
                }
                hits
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 100, "own subscription always matches");
        }
        assert_eq!(broker.subscription_count(), 4);
    }

    #[test]
    fn clone_shares_state() {
        let broker = SharedBroker::new(EngineKind::Counting, 2);
        let b2 = broker.clone();
        let attr = broker.attr("x");
        let sub = Subscription::builder().eq(attr, 1i64).build().unwrap();
        b2.subscribe(sub, Validity::forever());
        assert_eq!(broker.subscription_count(), 1);
    }

    #[test]
    fn ids_stripe_across_shards() {
        let broker = SharedBroker::new(EngineKind::Counting, 3);
        let attr = broker.attr("a");
        let mut ids = Vec::new();
        for i in 0..9i64 {
            let sub = Subscription::builder().eq(attr, i).build().unwrap();
            ids.push(broker.subscribe(sub, Validity::forever()));
        }
        let counts = broker.shard_subscription_counts();
        assert_eq!(counts, vec![3, 3, 3], "round-robin keeps shards balanced");
        for id in &ids {
            assert!(broker.unsubscribe(*id));
        }
        assert_eq!(broker.subscription_count(), 0);
    }

    #[test]
    fn publish_batch_matches_individual_publishes() {
        let broker = SharedBroker::new(EngineKind::Dynamic, 3);
        let attr = broker.attr("v");
        for i in 0..30i64 {
            let sub = Subscription::builder().eq(attr, i % 5).build().unwrap();
            broker.subscribe(sub, Validity::forever());
        }
        let events: Vec<Event> = (0..10i64)
            .map(|i| Event::builder().pair(attr, i % 5).build().unwrap())
            .collect();
        let batched = broker.publish_batch(&events);
        for (event, batch_result) in events.iter().zip(&batched) {
            assert_eq!(&broker.publish(event), batch_result);
        }
    }

    #[test]
    fn expiry_ticks_all_shards() {
        let broker = SharedBroker::new(EngineKind::Counting, 4);
        let attr = broker.attr("e");
        for i in 0..8i64 {
            let sub = Subscription::builder().eq(attr, i).build().unwrap();
            broker.subscribe(sub, Validity::until(LogicalTime(5)));
        }
        assert_eq!(broker.subscription_count(), 8);
        let expired = broker.advance_to(LogicalTime(5));
        assert_eq!(expired, 8);
        assert_eq!(broker.subscription_count(), 0);
        assert_eq!(broker.now(), LogicalTime(5));
    }

    /// Holds shard 0's lock on this thread while `f` publishes from another
    /// thread, so the non-blocking policies see real contention.
    fn with_shard0_contended<R: Send + 'static>(
        broker: &SharedBroker,
        f: impl FnOnce(SharedBroker) -> R + Send + 'static,
    ) -> R {
        broker.with_shard(0, |_locked| {
            let clone = broker.clone();
            std::thread::spawn(move || f(clone)).join().unwrap()
        })
    }

    /// Backpressure policies act on shard-lock contention, so these tests
    /// pin the locked publish path; under RCU publishes never contend.
    fn two_shard_broker(policy: Backpressure) -> (SharedBroker, Event, Vec<SubscriptionId>) {
        let broker =
            SharedBroker::with_publish_mode(EngineKind::Counting, 2, policy, PublishMode::Locked);
        let attr = broker.attr("bp");
        let mut ids = Vec::new();
        for _ in 0..2 {
            let sub = Subscription::builder().eq(attr, 1i64).build().unwrap();
            ids.push(broker.subscribe(sub, Validity::forever()));
        }
        let event = Event::builder().pair(attr, 1i64).build().unwrap();
        (broker, event, ids)
    }

    #[test]
    fn block_policy_waits_for_every_shard() {
        let (broker, event, ids) = two_shard_broker(Backpressure::Block);
        let mut out = Vec::new();
        let skipped = broker.try_publish_into(&event, &mut out).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(out, ids);
    }

    #[test]
    fn shed_policy_skips_contended_shard() {
        let (broker, event, ids) = two_shard_broker(Backpressure::Shed);
        let (skipped, out) = with_shard0_contended(&broker, move |b| {
            let mut out = Vec::new();
            let skipped = b.try_publish_into(&event, &mut out).unwrap();
            (skipped, out)
        });
        assert_eq!(skipped, 1, "shard 0 was locked");
        assert_eq!(out, vec![ids[1]], "shard 1 still answered");
    }

    #[test]
    fn error_fast_policy_reports_overload() {
        let (broker, event, ids) = two_shard_broker(Backpressure::ErrorFast);
        let ev = event.clone();
        let (err, out) = with_shard0_contended(&broker, move |b| {
            let mut out = Vec::new();
            let err = b.try_publish_into(&ev, &mut out).unwrap_err();
            (err, out)
        });
        assert_eq!(err, ShardError::Overloaded { shard: 0 });
        assert!(out.is_empty(), "aborted publish reports no matches");
        // The infallible path degrades ErrorFast to Shed under contention…
        let ev = event.clone();
        let degraded = with_shard0_contended(&broker, move |b| b.publish(&ev));
        assert_eq!(degraded, vec![ids[1]]);
        // …and is exact once the contention clears.
        assert_eq!(broker.publish(&event), ids);
    }

    /// The ISSUE's stress shape: concurrent subscribers, publishers and a
    /// ticker; must not deadlock and counts must stay consistent.
    #[test]
    fn stress_subscribe_publish_tick() {
        let broker = SharedBroker::new(EngineKind::Dynamic, 4);
        let attr = broker.attr("s");
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let mut handles = Vec::new();
        // Subscriber threads: half forever, half expiring.
        for t in 0..3i64 {
            let broker = broker.clone();
            handles.push(std::thread::spawn(move || {
                let mut kept = 0usize;
                for i in 0..200i64 {
                    let sub = Subscription::builder().eq(attr, i % 7).build().unwrap();
                    if i % 2 == 0 {
                        broker.subscribe(sub, Validity::forever());
                        kept += 1;
                    } else {
                        let id = broker.subscribe(sub, Validity::forever());
                        assert!(broker.unsubscribe(id));
                    }
                    let _ = t;
                }
                kept
            }));
        }
        // Publisher threads.
        let mut publishers = Vec::new();
        for _ in 0..2 {
            let broker = broker.clone();
            let stop = stop.clone();
            publishers.push(std::thread::spawn(move || {
                let mut out = Vec::new();
                let mut events = Vec::new();
                for i in 0..4i64 {
                    events.push(Event::builder().pair(attr, i % 7).build().unwrap());
                }
                let mut batches = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    out.clear();
                    broker.publish_into(&events[0], &mut out);
                    assert!(out.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
                    broker.publish_batch_into(&events, &mut batches);
                }
            }));
        }
        // Ticker thread: a fixed tick count so progress is deterministic.
        let ticker = {
            let broker = broker.clone();
            std::thread::spawn(move || {
                for _ in 0..100 {
                    broker.tick();
                }
                broker.now()
            })
        };

        let kept: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        stop.store(true, Ordering::Relaxed);
        for p in publishers {
            p.join().unwrap();
        }
        let end = ticker.join().unwrap();
        assert_eq!(end, LogicalTime(100), "every tick advanced every shard");
        assert_eq!(broker.subscription_count(), kept);
        let counts = broker.shard_subscription_counts();
        assert_eq!(counts.iter().sum::<usize>(), kept);
    }
}
