//! The publish/subscribe broker: subscription lifecycle, event publication,
//! validity handling, batching and notification delivery — the system of
//! paper §1 wrapped around a pluggable matching engine.

use crate::store::{EventId, EventStore};
use crate::time::{LogicalTime, Validity};
use pubsub_core::{EngineKind, EngineStats, MatchEngine};
use pubsub_types::metrics::Counter;
use pubsub_types::{AttrId, Event, Subscription, SubscriptionId, TypeError, Value, Vocabulary};

/// Events published through a broker (single events; batched events count
/// each event in the batch). `pub(crate)` so the RCU publish path of
/// [`crate::shared::SharedBroker`], which bypasses the shard brokers, still
/// counts its publishes here.
pub(crate) static PUBLISHES: Counter = Counter::new("broker.publishes");
/// Subscriptions registered.
static SUBSCRIBES: Counter = Counter::new("broker.subscribes");
/// Successful unsubscribes.
static UNSUBSCRIBES: Counter = Counter::new("broker.unsubscribes");
/// Unsubscribe calls for unknown/expired ids (rejected, not fatal).
static UNSUBSCRIBE_MISSES: Counter = Counter::new("broker.unsubscribe_misses");
/// Subscriptions dropped by validity expiry.
static SUBS_EXPIRED: Counter = Counter::new("broker.subs_expired");
/// Stored events evicted by validity expiry.
static EVENTS_EVICTED: Counter = Counter::new("broker.events_evicted");
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A notification: one published event matched these subscriptions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Notification {
    /// Id of the stored event (when the broker stores events) or `None` for
    /// fire-and-forget publication.
    pub event: Option<EventId>,
    /// The matched subscriptions.
    pub matched: Vec<SubscriptionId>,
}

#[derive(Debug)]
struct SubRecord {
    sub: Subscription,
    validity: Validity,
}

/// The broker.
///
/// Owns a [`Vocabulary`] (attribute/string interning), a matching engine,
/// the subscription registry with validity-driven expiry, and the
/// valid-event store used to answer *new-subscription-against-stored-events*
/// queries.
pub struct Broker {
    vocab: Vocabulary,
    engine: Box<dyn MatchEngine + Send>,
    subs: Vec<Option<SubRecord>>,
    /// Count of ids assigned so far; the next id is
    /// `id_base + next_id * id_step`.
    next_id: u32,
    /// First id of this broker's id lane (see [`Broker::with_id_lane`]).
    id_base: u32,
    /// Stride of this broker's id lane.
    id_step: u32,
    live: usize,
    sub_expiry: BinaryHeap<Reverse<(LogicalTime, SubscriptionId)>>,
    events: EventStore,
    now: LogicalTime,
    /// Store published events (enables subscription replay) — on by default;
    /// benchmarks turn it off to isolate matching.
    store_events: bool,
}

impl std::fmt::Debug for Broker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Broker")
            .field("engine", &self.engine.name())
            .field("subscriptions", &self.live)
            .field("stored_events", &self.events.len())
            .field("now", &self.now)
            .finish()
    }
}

impl Broker {
    /// Creates a broker with a fresh engine of the given kind.
    pub fn new(kind: EngineKind) -> Self {
        Self::with_engine(kind.build())
    }

    /// Creates a broker whose engine is a [`pubsub_core::ShardedMatcher`]:
    /// `shards` worker threads, each running a complete engine of kind
    /// `inner`. With `shards == 1` this is the single engine plus channel
    /// overhead; use [`Broker::new`] instead unless measuring that overhead.
    pub fn new_sharded(inner: EngineKind, shards: usize) -> Self {
        Self::with_engine(Box::new(pubsub_core::ShardedMatcher::new(inner, shards)))
    }

    /// Like [`Broker::new_sharded`] with an explicit supervision/backpressure
    /// configuration for the sharded engine.
    pub fn new_sharded_with(
        inner: EngineKind,
        shards: usize,
        config: pubsub_core::ShardedConfig,
    ) -> Self {
        Self::with_engine(Box::new(pubsub_core::ShardedMatcher::with_config(
            inner, shards, config,
        )))
    }

    /// Creates a broker around a caller-built engine.
    pub fn with_engine(engine: Box<dyn MatchEngine + Send>) -> Self {
        Self {
            vocab: Vocabulary::new(),
            engine,
            subs: Vec::new(),
            next_id: 0,
            id_base: 0,
            id_step: 1,
            live: 0,
            sub_expiry: BinaryHeap::new(),
            events: EventStore::new(),
            now: LogicalTime::ZERO,
            store_events: true,
        }
    }

    /// Disables the valid-event store (fire-and-forget publication).
    pub fn without_event_store(mut self) -> Self {
        self.store_events = false;
        self
    }

    /// Restricts id assignment to the lane `base, base + step, base + 2·step,
    /// …`. Brokers on disjoint lanes assign globally unique ids with no
    /// coordination — this is how [`crate::shared::SharedBroker`] gives each
    /// shard its own id space (`shard = id mod shards`) while keeping each
    /// shard's subscription table dense.
    ///
    /// # Panics
    /// Panics if `step == 0`, `base >= step`, or a subscription was already
    /// registered.
    pub fn with_id_lane(mut self, base: u32, step: u32) -> Self {
        assert!(step >= 1, "id lane stride must be at least 1");
        assert!(base < step, "id lane base must be below the stride");
        assert_eq!(self.next_id, 0, "id lane must be set before subscribing");
        self.id_base = base;
        self.id_step = step;
        self
    }

    /// The dense storage slot of `id`, or `None` if `id` lies outside this
    /// broker's id lane.
    fn slot_of(&self, id: SubscriptionId) -> Option<usize> {
        let raw = id.0.checked_sub(self.id_base)?;
        if raw % self.id_step != 0 {
            return None;
        }
        Some((raw / self.id_step) as usize)
    }

    // ---- vocabulary ------------------------------------------------------

    /// Interns an attribute name.
    pub fn attr(&mut self, name: &str) -> AttrId {
        self.vocab.attr(name)
    }

    /// Interns a string value.
    pub fn string(&mut self, s: &str) -> Value {
        self.vocab.string(s)
    }

    /// The broker's vocabulary (for display).
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Mutable access to the vocabulary (for parsers that intern whole
    /// expressions).
    pub fn vocabulary_mut(&mut self) -> &mut Vocabulary {
        &mut self.vocab
    }

    // ---- clock -----------------------------------------------------------

    /// Current logical time.
    pub fn now(&self) -> LogicalTime {
        self.now
    }

    /// Advances the clock, expiring subscriptions and events whose validity
    /// ended. Returns `(subscriptions expired, events evicted)`.
    pub fn advance_to(&mut self, t: LogicalTime) -> (usize, usize) {
        self.advance_to_collect(t, None)
    }

    /// [`Broker::advance_to`] that additionally appends the ids of expired
    /// subscriptions to `expired` — the RCU snapshot writer needs them to
    /// tombstone the published shard snapshots.
    pub fn advance_to_collect(
        &mut self,
        t: LogicalTime,
        mut expired: Option<&mut Vec<SubscriptionId>>,
    ) -> (usize, usize) {
        assert!(t >= self.now, "clock cannot go backwards");
        self.now = t;
        let mut subs_expired = 0;
        while let Some(&Reverse((until, id))) = self.sub_expiry.peek() {
            if until > t {
                break;
            }
            self.sub_expiry.pop();
            let slot = self.slot_of(id).expect("expiry heap only holds own ids");
            // The record may already be gone (explicit unsubscribe).
            if let Some(rec) = &self.subs[slot] {
                if rec.validity.until == Some(until) {
                    self.engine.remove(id);
                    self.subs[slot] = None;
                    self.live -= 1;
                    subs_expired += 1;
                    if let Some(ids) = expired.as_deref_mut() {
                        ids.push(id);
                    }
                }
            }
        }
        let events_evicted = self.events.evict_expired(t);
        SUBS_EXPIRED.add(subs_expired as u64);
        EVENTS_EVICTED.add(events_evicted as u64);
        (subs_expired, events_evicted)
    }

    /// Advances the clock by one tick.
    pub fn tick(&mut self) -> (usize, usize) {
        self.advance_to(self.now.plus(1))
    }

    // ---- subscriptions -----------------------------------------------------

    /// Registers a subscription; returns its id (drawn from this broker's id
    /// lane, see [`Broker::with_id_lane`]).
    pub fn subscribe(&mut self, sub: Subscription, validity: Validity) -> SubscriptionId {
        SUBSCRIBES.inc();
        let slot = self.next_id as usize;
        let id = SubscriptionId(self.id_base + self.next_id * self.id_step);
        self.next_id += 1;
        if self.subs.len() <= slot {
            self.subs.resize_with(slot + 1, || None);
        }
        self.engine.insert(id, &sub);
        if let Some(until) = validity.until {
            self.sub_expiry.push(Reverse((until, id)));
        }
        self.subs[slot] = Some(SubRecord { sub, validity });
        self.live += 1;
        id
    }

    /// Whether `id` refers to a live subscription of this broker.
    pub fn contains(&self, id: SubscriptionId) -> bool {
        self.slot_of(id)
            .is_some_and(|slot| self.subs.get(slot).is_some_and(Option::is_some))
    }

    /// The id the next [`Broker::subscribe`] call will assign. The durable
    /// broker logs the subscribe record (under this broker's lock) *before*
    /// applying it, so the id must be observable without consuming it.
    pub fn peek_next_id(&self) -> SubscriptionId {
        SubscriptionId(self.id_base + self.next_id * self.id_step)
    }

    /// One past the largest raw id this broker has assigned (0 when none) —
    /// the per-shard contribution to a durability snapshot's id high-water
    /// mark.
    pub fn assigned_id_high_water(&self) -> u32 {
        if self.next_id == 0 {
            0
        } else {
            self.id_base + (self.next_id - 1) * self.id_step + 1
        }
    }

    /// Forbids assigning any id whose raw value is below `high_water` —
    /// applied when restoring from a durability snapshot, so ids retired
    /// before the snapshot (and therefore absent from it) are never reissued
    /// to new subscribers after recovery.
    pub fn reserve_ids_below(&mut self, high_water: u32) {
        if high_water > self.id_base {
            // Lane ids strictly below `high_water`: ceil((hw - base) / step).
            let reserved = (high_water - self.id_base).div_ceil(self.id_step);
            self.next_id = self.next_id.max(reserved);
        }
    }

    /// Re-registers a subscription under the id it held before a crash
    /// (replay of a WAL `Subscribe` record). The id must belong to this
    /// broker's lane. Replayed ids need not arrive in order — concurrent
    /// subscribers could have reached the log out of id order — so the
    /// assignment cursor only ever moves forward.
    ///
    /// # Panics
    /// Panics if `id` is outside this broker's id lane.
    pub fn restore_subscription(
        &mut self,
        id: SubscriptionId,
        sub: Subscription,
        validity: Validity,
    ) {
        let slot = self
            .slot_of(id)
            .expect("restored id must belong to this broker's lane");
        if self.subs.len() <= slot {
            self.subs.resize_with(slot + 1, || None);
        }
        if self.subs[slot].take().is_some() {
            // A duplicate id can only come out of a damaged log recovered
            // under the skip policy; last write wins, like a re-subscribe.
            self.engine.remove(id);
            self.live -= 1;
        }
        self.next_id = self.next_id.max(slot as u32 + 1);
        self.engine.insert(id, &sub);
        if let Some(until) = validity.until {
            self.sub_expiry.push(Reverse((until, id)));
        }
        self.subs[slot] = Some(SubRecord { sub, validity });
        self.live += 1;
    }

    /// Bulk-restores a snapshot's subscription set into this (empty) broker
    /// and sets its clock, feeding the engine through
    /// [`MatchEngine::rebuild`] so engines with bulk-load optimisations
    /// (e.g. the static engine's one-shot clustering) use them.
    ///
    /// # Panics
    /// Panics if the broker already holds subscriptions, if the clock has
    /// already advanced, or if an id is outside this broker's lane.
    pub fn restore(
        &mut self,
        entries: Vec<(SubscriptionId, Subscription, Validity)>,
        now: LogicalTime,
    ) {
        assert_eq!(self.live, 0, "restore requires an empty broker");
        assert_eq!(
            self.now,
            LogicalTime::ZERO,
            "restore requires a fresh clock"
        );
        self.now = now;
        let mut max_slot = None;
        for (id, sub, validity) in entries {
            let slot = self
                .slot_of(id)
                .expect("restored id must belong to this broker's lane");
            if self.subs.len() <= slot {
                self.subs.resize_with(slot + 1, || None);
            }
            assert!(self.subs[slot].is_none(), "snapshot ids are unique");
            if let Some(until) = validity.until {
                self.sub_expiry.push(Reverse((until, id)));
            }
            self.subs[slot] = Some(SubRecord { sub, validity });
            self.live += 1;
            max_slot = max_slot.max(Some(slot));
        }
        if let Some(max_slot) = max_slot {
            self.next_id = self.next_id.max(max_slot as u32 + 1);
        }
        let base = self.id_base;
        let step = self.id_step;
        let mut iter = self.subs.iter().enumerate().filter_map(|(slot, rec)| {
            rec.as_ref()
                .map(|r| (SubscriptionId(base + slot as u32 * step), &r.sub))
        });
        self.engine.rebuild(&mut iter);
    }

    /// Iterates over the live subscriptions with their ids and validities,
    /// in id order — the payload of a durability snapshot.
    pub fn live_subscriptions(
        &self,
    ) -> impl Iterator<Item = (SubscriptionId, &Subscription, Validity)> {
        let base = self.id_base;
        let step = self.id_step;
        self.subs.iter().enumerate().filter_map(move |(slot, rec)| {
            rec.as_ref().map(|r| {
                (
                    SubscriptionId(base + slot as u32 * step),
                    &r.sub,
                    r.validity,
                )
            })
        })
    }

    /// Registers a subscription and immediately evaluates it against the
    /// stored valid events — the complementary functionality of §1. Returns
    /// the id and the stored events it already matches.
    pub fn subscribe_with_replay(
        &mut self,
        sub: Subscription,
        validity: Validity,
    ) -> (SubscriptionId, Vec<EventId>) {
        let replay = self.events.matches_for(&sub, self.now);
        let id = self.subscribe(sub, validity);
        (id, replay)
    }

    /// Registers a whole batch (`n_Sb` of Table 1); returns the ids.
    pub fn subscribe_batch(
        &mut self,
        subs: impl IntoIterator<Item = Subscription>,
        validity: Validity,
    ) -> Vec<SubscriptionId> {
        subs.into_iter()
            .map(|s| self.subscribe(s, validity))
            .collect()
    }

    /// Removes a subscription. Returns `false` if the id was unknown or
    /// already expired.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        let Some(slot) = self.slot_of(id) else {
            UNSUBSCRIBE_MISSES.inc();
            return false;
        };
        match self.subs.get_mut(slot).and_then(Option::take) {
            Some(_) => {
                self.engine.remove(id);
                self.live -= 1;
                UNSUBSCRIBES.inc();
                true
            }
            None => {
                UNSUBSCRIBE_MISSES.inc();
                false
            }
        }
    }

    /// The subscription behind an id, if still registered.
    pub fn subscription(&self, id: SubscriptionId) -> Option<&Subscription> {
        self.subs.get(self.slot_of(id)?)?.as_ref().map(|r| &r.sub)
    }

    /// Number of live subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.live
    }

    // ---- events -------------------------------------------------------------

    /// Publishes an event valid only at this instant: matches it and returns
    /// the matched subscription ids (the notification set).
    pub fn publish(&mut self, event: &Event) -> Vec<SubscriptionId> {
        PUBLISHES.inc();
        let mut matched = Vec::new();
        self.engine.match_event(event, &mut matched);
        matched
    }

    /// Publishes an event, appending matches to a caller-owned buffer
    /// (zero-allocation hot path for benchmarks).
    pub fn publish_into(&mut self, event: &Event, out: &mut Vec<SubscriptionId>) {
        PUBLISHES.inc();
        self.engine.match_event(event, out);
    }

    /// Publishes an event with a validity interval: matches it, stores it
    /// (if the store is enabled) for future subscription replay, and returns
    /// the notification.
    pub fn publish_with_validity(&mut self, event: Event, validity: Validity) -> Notification {
        PUBLISHES.inc();
        let mut matched = Vec::new();
        self.engine.match_event(&event, &mut matched);
        let event_id = if self.store_events && !validity.expired_at(self.now) {
            Some(self.events.insert(event, validity))
        } else {
            None
        };
        Notification {
            event: event_id,
            matched,
        }
    }

    /// Publishes a batch (`n_Eb` of Table 1); returns one notification per
    /// event. Routed through [`MatchEngine::match_batch_into`], so a sharded
    /// engine pipelines the whole batch through its worker pool in one
    /// fan-out.
    pub fn publish_batch(&mut self, events: &[Event]) -> Vec<Notification> {
        PUBLISHES.add(events.len() as u64);
        let mut matched = Vec::new();
        self.engine.match_batch_into(events, &mut matched);
        matched
            .into_iter()
            .map(|m| Notification {
                event: None,
                matched: m,
            })
            .collect()
    }

    /// Publishes a batch into a caller-owned buffer of per-event result
    /// vectors (zero-allocation steady state; inner vectors are reused).
    pub fn publish_batch_into(&mut self, events: &[Event], out: &mut Vec<Vec<SubscriptionId>>) {
        PUBLISHES.add(events.len() as u64);
        self.engine.match_batch_into(events, out);
    }

    /// Number of stored valid events.
    pub fn stored_event_count(&self) -> usize {
        self.events.len()
    }

    /// Looks up a stored event.
    pub fn stored_event(&self, id: EventId) -> Option<&Event> {
        self.events.get(id)
    }

    // ---- engine pass-through -------------------------------------------------

    /// Runs the engine's one-time optimization hook (static clustering).
    pub fn finalize(&mut self) {
        self.engine.finalize();
    }

    /// The engine's performance counters.
    pub fn engine_stats(&self) -> &EngineStats {
        self.engine.stats()
    }

    /// The engine's name.
    pub fn engine_name(&self) -> &'static str {
        self.engine.name()
    }

    /// Per-shard subscription counts when the engine is sharded, else
    /// `None`.
    pub fn shard_subscription_counts(&self) -> Option<Vec<usize>> {
        self.engine.shard_subscription_counts()
    }

    /// Robustness counters when the engine has supervised shard workers,
    /// else `None`.
    pub fn shard_health(&self) -> Option<pubsub_core::ShardHealth> {
        self.engine.shard_health()
    }

    /// Convenience: builds an event from `(attr, value)` pairs.
    pub fn event(&self, pairs: Vec<(AttrId, Value)>) -> Result<Event, TypeError> {
        Event::from_pairs(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_types::Operator;

    fn demo_broker(kind: EngineKind) -> (Broker, AttrId, AttrId) {
        let mut b = Broker::new(kind);
        let movie = b.attr("movie");
        let price = b.attr("price");
        (b, movie, price)
    }

    #[test]
    fn paper_quickstart_flow() {
        for kind in EngineKind::PAPER_ENGINES {
            let (mut b, movie, price) = demo_broker(kind);
            let title = b.string("groundhog day");
            let sub = Subscription::builder()
                .eq(movie, title)
                .with(price, Operator::Le, 10i64)
                .build()
                .unwrap();
            let id = b.subscribe(sub, Validity::forever());
            let event = Event::builder()
                .pair(movie, title)
                .pair(price, 8i64)
                .build()
                .unwrap();
            let matched = b.publish(&event);
            assert_eq!(matched, vec![id], "engine {}", b.engine_name());
        }
    }

    #[test]
    fn subscription_expiry_on_clock_advance() {
        let (mut b, movie, _) = demo_broker(EngineKind::Dynamic);
        let title = b.string("up");
        let sub = Subscription::builder().eq(movie, title).build().unwrap();
        let id = b.subscribe(sub.clone(), Validity::until(LogicalTime(10)));
        let keep = b.subscribe(sub, Validity::forever());
        assert_eq!(b.subscription_count(), 2);

        let event = Event::builder().pair(movie, title).build().unwrap();
        assert_eq!(b.publish(&event).len(), 2);

        let (expired, _) = b.advance_to(LogicalTime(10));
        assert_eq!(expired, 1);
        assert_eq!(b.subscription_count(), 1);
        assert!(b.subscription(id).is_none());
        assert!(b.subscription(keep).is_some());
        assert_eq!(b.publish(&event), vec![keep]);
    }

    #[test]
    fn unsubscribe_then_expiry_is_harmless() {
        let (mut b, movie, _) = demo_broker(EngineKind::Counting);
        let title = b.string("x");
        let sub = Subscription::builder().eq(movie, title).build().unwrap();
        let id = b.subscribe(sub, Validity::until(LogicalTime(5)));
        assert!(b.unsubscribe(id));
        assert!(!b.unsubscribe(id), "double unsubscribe is reported");
        // The stale expiry entry must not panic or double-remove.
        let (expired, _) = b.advance_to(LogicalTime(10));
        assert_eq!(expired, 0);
    }

    #[test]
    fn new_subscription_replays_stored_events() {
        let (mut b, movie, price) = demo_broker(EngineKind::Dynamic);
        let title = b.string("brazil");
        let e1 = Event::builder()
            .pair(movie, title)
            .pair(price, 8i64)
            .build()
            .unwrap();
        let e2 = Event::builder()
            .pair(movie, title)
            .pair(price, 15i64)
            .build()
            .unwrap();
        let n1 = b.publish_with_validity(e1, Validity::until(LogicalTime(100)));
        let _n2 = b.publish_with_validity(e2, Validity::until(LogicalTime(100)));
        assert!(n1.matched.is_empty());
        assert_eq!(b.stored_event_count(), 2);

        let sub = Subscription::builder()
            .eq(movie, title)
            .with(price, Operator::Le, 10i64)
            .build()
            .unwrap();
        let (_, replay) = b.subscribe_with_replay(sub, Validity::forever());
        assert_eq!(replay, vec![n1.event.unwrap()], "only the cheap screening");
    }

    #[test]
    fn batch_apis() {
        let (mut b, movie, _) = demo_broker(EngineKind::PropagationPrefetch);
        let t1 = b.string("a");
        let t2 = b.string("b");
        let subs = vec![
            Subscription::builder().eq(movie, t1).build().unwrap(),
            Subscription::builder().eq(movie, t2).build().unwrap(),
        ];
        let ids = b.subscribe_batch(subs, Validity::forever());
        assert_eq!(ids.len(), 2);

        let events = vec![
            Event::builder().pair(movie, t1).build().unwrap(),
            Event::builder().pair(movie, t2).build().unwrap(),
        ];
        let notes = b.publish_batch(&events);
        assert_eq!(notes[0].matched, vec![ids[0]]);
        assert_eq!(notes[1].matched, vec![ids[1]]);
        assert_eq!(b.engine_stats().events, 2);
    }

    #[test]
    fn event_store_can_be_disabled() {
        let mut b = Broker::new(EngineKind::Dynamic).without_event_store();
        let movie = b.attr("movie");
        let t = b.string("y");
        let e = Event::builder().pair(movie, t).build().unwrap();
        let n = b.publish_with_validity(e, Validity::forever());
        assert!(n.event.is_none());
        assert_eq!(b.stored_event_count(), 0);
    }
}
