//! Logical time and validity intervals.
//!
//! The types themselves live in [`pubsub_types::time`] so that crates below
//! the broker (notably `pubsub-durability`, whose WAL records carry
//! validities and clock advances) can name them without depending on this
//! crate; this module re-exports them under their historical path.

pub use pubsub_types::time::{LogicalTime, Validity};
