//! The publish/subscribe broker of `fastpubsub`.
//!
//! Wraps a matching engine in the full system of paper §1: validity
//! intervals for subscriptions *and* events ([`time`]), a valid-event store
//! answering new-subscription-against-stored-events queries ([`store`]),
//! batch submission and notifications ([`broker`]), a thread-safe handle
//! ([`shared`]), DNF subscriptions ([`dnf`]) and the equilibrium churn
//! simulator of §6.2.2 ([`equilibrium`]).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod broker;
pub mod dnf;
pub mod durable;
pub mod equilibrium;
pub mod rcu;
pub mod shared;
pub mod store;
pub mod time;

pub use broker::{Broker, Notification};
pub use dnf::{DnfId, DnfRegistry, DnfSubscription};
pub use durable::{BrokerError, DurabilityStatus};
pub use equilibrium::{EquilibriumConfig, EquilibriumSim, TickReport};
pub use rcu::{publish_config_warning, PublishMode, RcuStatus};
pub use shared::SharedBroker;
pub use store::{EventId, EventStore};
pub use time::{LogicalTime, Validity};
