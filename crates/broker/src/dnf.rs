//! Disjunctive-normal-form subscriptions.
//!
//! The paper's conclusion notes the filtering algorithm "already provides an
//! efficient support to a subscription language consisting of disjunctive
//! normal form conditions on events": a DNF subscription `C₁ ∨ C₂ ∨ …` is
//! registered as one engine subscription per conjunction, and notifications
//! are de-duplicated back to the user-level subscription.

use crate::broker::Broker;
use crate::time::Validity;
use pubsub_types::{Event, FxHashMap, Subscription, SubscriptionId, TypeError};

/// A subscription in disjunctive normal form: an OR of conjunctions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnfSubscription {
    disjuncts: Vec<Subscription>,
}

impl DnfSubscription {
    /// Builds a DNF subscription from its disjuncts. At least one is
    /// required.
    pub fn new(disjuncts: Vec<Subscription>) -> Result<Self, TypeError> {
        if disjuncts.is_empty() {
            return Err(TypeError::EmptySubscription);
        }
        Ok(Self { disjuncts })
    }

    /// The disjuncts.
    pub fn disjuncts(&self) -> &[Subscription] {
        &self.disjuncts
    }

    /// Reference semantics: true iff *any* disjunct is satisfied.
    pub fn matches_event(&self, event: &Event) -> bool {
        self.disjuncts.iter().any(|d| d.matches_event(event))
    }
}

/// Identifier of a registered DNF subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DnfId(pub u64);

impl std::fmt::Display for DnfId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// Maps engine-level subscription ids back to user-level DNF subscriptions.
///
/// Layered on top of a [`Broker`] rather than inside it: conjunctive users
/// pay nothing for the indirection.
#[derive(Debug, Default)]
pub struct DnfRegistry {
    owner: FxHashMap<SubscriptionId, DnfId>,
    members: FxHashMap<DnfId, Vec<SubscriptionId>>,
    next: u64,
}

impl DnfRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered DNF subscriptions.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Registers each disjunct with the broker and records the mapping.
    pub fn subscribe(
        &mut self,
        broker: &mut Broker,
        dnf: DnfSubscription,
        validity: Validity,
    ) -> DnfId {
        let id = DnfId(self.next);
        self.next += 1;
        let mut ids = Vec::with_capacity(dnf.disjuncts.len());
        for d in dnf.disjuncts {
            let sid = broker.subscribe(d, validity);
            self.owner.insert(sid, id);
            ids.push(sid);
        }
        self.members.insert(id, ids);
        id
    }

    /// Unregisters a DNF subscription and its disjuncts. Returns `false` if
    /// the id was unknown.
    pub fn unsubscribe(&mut self, broker: &mut Broker, id: DnfId) -> bool {
        let Some(ids) = self.members.remove(&id) else {
            return false;
        };
        for sid in ids {
            self.owner.remove(&sid);
            broker.unsubscribe(sid);
        }
        true
    }

    /// Translates engine-level matches into de-duplicated DNF ids. Matches
    /// not owned by any DNF subscription (plain conjunctive subscribers) are
    /// passed through in `plain`.
    pub fn translate(
        &self,
        matched: &[SubscriptionId],
        dnf_out: &mut Vec<DnfId>,
        plain: &mut Vec<SubscriptionId>,
    ) {
        for &sid in matched {
            match self.owner.get(&sid) {
                Some(&id) => {
                    // An event can satisfy several disjuncts of the same
                    // subscription; notify once.
                    if !dnf_out.contains(&id) {
                        dnf_out.push(id);
                    }
                }
                None => plain.push(sid),
            }
        }
    }

    /// Publishes an event and returns the de-duplicated DNF notifications
    /// plus the plain conjunctive ones.
    pub fn publish(&self, broker: &mut Broker, event: &Event) -> (Vec<DnfId>, Vec<SubscriptionId>) {
        let matched = broker.publish(event);
        let mut dnf = Vec::new();
        let mut plain = Vec::new();
        self.translate(&matched, &mut dnf, &mut plain);
        (dnf, plain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_core::EngineKind;
    use pubsub_types::{AttrId, Operator};

    fn sub(attr: u32, v: i64) -> Subscription {
        Subscription::builder().eq(AttrId(attr), v).build().unwrap()
    }

    fn range_sub(attr: u32, lo: i64, hi: i64) -> Subscription {
        Subscription::builder()
            .with(AttrId(attr), Operator::Ge, lo)
            .with(AttrId(attr), Operator::Le, hi)
            .build()
            .unwrap()
    }

    #[test]
    fn empty_dnf_rejected() {
        assert!(matches!(
            DnfSubscription::new(vec![]),
            Err(TypeError::EmptySubscription)
        ));
    }

    #[test]
    fn any_disjunct_matches() {
        let dnf = DnfSubscription::new(vec![sub(0, 1), sub(1, 2)]).unwrap();
        let e = Event::builder().pair(AttrId(1), 2i64).build().unwrap();
        assert!(dnf.matches_event(&e));
        let e = Event::builder().pair(AttrId(1), 3i64).build().unwrap();
        assert!(!dnf.matches_event(&e));
    }

    #[test]
    fn notifications_are_deduplicated() {
        let mut broker = Broker::new(EngineKind::Dynamic);
        let mut reg = DnfRegistry::new();
        // Overlapping disjuncts: value 5 satisfies both ranges.
        let dnf = DnfSubscription::new(vec![range_sub(0, 0, 5), range_sub(0, 5, 10)]).unwrap();
        let id = reg.subscribe(&mut broker, dnf, Validity::forever());

        let e = Event::builder().pair(AttrId(0), 5i64).build().unwrap();
        let (dnf_hits, plain) = reg.publish(&mut broker, &e);
        assert_eq!(dnf_hits, vec![id], "one notification despite two disjuncts");
        assert!(plain.is_empty());

        let e = Event::builder().pair(AttrId(0), 11i64).build().unwrap();
        let (dnf_hits, _) = reg.publish(&mut broker, &e);
        assert!(dnf_hits.is_empty());
    }

    #[test]
    fn plain_and_dnf_subscribers_coexist() {
        let mut broker = Broker::new(EngineKind::PropagationPrefetch);
        let mut reg = DnfRegistry::new();
        let plain_id = broker.subscribe(sub(0, 7), Validity::forever());
        let dnf_id = reg.subscribe(
            &mut broker,
            DnfSubscription::new(vec![sub(0, 7), sub(0, 8)]).unwrap(),
            Validity::forever(),
        );

        let e = Event::builder().pair(AttrId(0), 7i64).build().unwrap();
        let (dnf_hits, plain) = reg.publish(&mut broker, &e);
        assert_eq!(dnf_hits, vec![dnf_id]);
        assert_eq!(plain, vec![plain_id]);
    }

    #[test]
    fn unsubscribe_removes_all_disjuncts() {
        let mut broker = Broker::new(EngineKind::Counting);
        let mut reg = DnfRegistry::new();
        let id = reg.subscribe(
            &mut broker,
            DnfSubscription::new(vec![sub(0, 1), sub(1, 1), sub(2, 1)]).unwrap(),
            Validity::forever(),
        );
        assert_eq!(broker.subscription_count(), 3);
        assert!(reg.unsubscribe(&mut broker, id));
        assert!(!reg.unsubscribe(&mut broker, id));
        assert_eq!(broker.subscription_count(), 0);
        assert!(reg.is_empty());
    }
}
