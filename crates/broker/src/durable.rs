//! Durable-broker error and status types.
//!
//! The durable machinery itself lives in two places: the WAL/snapshot layer
//! in `pubsub-durability`, and the logging/replay integration in
//! [`crate::shared::SharedBroker`] (`open_durable`, the `try_*` mutation
//! methods, `snapshot`). This module holds the shared vocabulary between
//! them: the broker-level error type and the status block the CLI's `stats`
//! command renders.
//!
//! # Degraded mode
//!
//! The durable broker's failure contract is *fail the write, never the
//! process*: when a WAL append or fsync fails (disk full, I/O error,
//! injected fault), the broker flips into **degraded read-only mode**
//! rather than panicking or silently dropping the record. In degraded mode:
//!
//! * matching keeps working — publishes touch no durable state,
//! * every mutation (`try_subscribe`, `try_unsubscribe`, `try_advance_to`,
//!   `try_tick`, `snapshot`) fails fast with [`BrokerError::Degraded`]
//!   carrying the original cause,
//! * the in-memory state remains exactly what the log acknowledges: the op
//!   whose append failed was never applied, so a later recovery from the
//!   same directory converges to the same state.
//!
//! Degraded mode is sticky for the life of the handle; recovery is
//! operational (fix the disk, restart, reopen the directory).

use pubsub_durability::{Lsn, RecoveryReport, WalError};
use std::path::PathBuf;

/// Errors surfaced by the durable broker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrokerError {
    /// The broker is in read-only degraded mode: a durability write failed
    /// (cause enclosed) and mutations are refused until the process restarts
    /// and recovers. Matching still works.
    Degraded(WalError),
    /// Opening the durable broker failed: the WAL or a snapshot could not be
    /// recovered under the configured corruption policy.
    Recovery(WalError),
    /// Writing a snapshot failed but the WAL itself stayed healthy: the
    /// broker is still writable and every logged operation remains durable —
    /// only the compaction opportunity was lost. Retry later.
    Snapshot(WalError),
    /// A durability-only operation (e.g. [`crate::SharedBroker::snapshot`])
    /// was invoked on a broker opened without a WAL.
    NotDurable,
    /// The broker is a replication follower: its state is a replica of a
    /// remote leader's log, so local mutations are refused (they would fork
    /// the history). Matching still works; promote to accept writes.
    Follower,
    /// A replication-only operation ([`crate::SharedBroker::apply_replicated`],
    /// [`crate::SharedBroker::promote`], …) was invoked on a broker that is
    /// not a follower.
    NotFollower,
    /// A replicated record batch did not start at the local log's append
    /// position — the stream and the replica have diverged (usually a stale
    /// connection replaying records the follower already has).
    ReplicationGap {
        /// The LSN the local log expects next.
        expected: Lsn,
        /// The first LSN the batch carried.
        got: Lsn,
    },
    /// A replicated transfer (record batch or snapshot) was damaged or
    /// refused validation.
    Replication(WalError),
    /// [`crate::SharedBroker::open_follower`] refused a directory that holds
    /// durable history written by a non-follower: tailing a leader into it
    /// would interleave two unrelated logs.
    ForeignHistory(PathBuf),
    /// A session operation named a token the broker has never issued, or one
    /// whose session was already reaped. The two are indistinguishable by
    /// design: a reaped token behaves exactly as if it never existed.
    UnknownSession(u64),
}

impl std::fmt::Display for BrokerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BrokerError::Degraded(e) => {
                write!(f, "broker degraded to read-only: {e}")
            }
            BrokerError::Recovery(e) => write!(f, "durable broker recovery failed: {e}"),
            BrokerError::Snapshot(e) => write!(f, "snapshot failed (broker still writable): {e}"),
            BrokerError::NotDurable => {
                write!(f, "operation requires a durable broker (open_durable)")
            }
            BrokerError::Follower => {
                write!(
                    f,
                    "broker is a replication follower (read-only); promote it to accept writes"
                )
            }
            BrokerError::NotFollower => {
                write!(f, "operation requires a replication follower")
            }
            BrokerError::ReplicationGap { expected, got } => write!(
                f,
                "replicated batch starts at LSN {got} but the local log expects {expected}"
            ),
            BrokerError::Replication(e) => write!(f, "replicated transfer refused: {e}"),
            BrokerError::ForeignHistory(dir) => write!(
                f,
                "refusing to follow into {}: it holds non-follower durable history",
                dir.display()
            ),
            BrokerError::UnknownSession(token) => {
                write!(f, "session token {token} is unknown or reaped")
            }
        }
    }
}

impl std::error::Error for BrokerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BrokerError::Degraded(e)
            | BrokerError::Recovery(e)
            | BrokerError::Snapshot(e)
            | BrokerError::Replication(e) => Some(e),
            BrokerError::NotDurable
            | BrokerError::Follower
            | BrokerError::NotFollower
            | BrokerError::ReplicationGap { .. }
            | BrokerError::ForeignHistory(_)
            | BrokerError::UnknownSession(_) => None,
        }
    }
}

/// Point-in-time durability status of a [`crate::SharedBroker`]
/// (the CLI `stats` durability block).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityStatus {
    /// The WAL directory.
    pub dir: PathBuf,
    /// LSN the next logged operation will receive (== operations logged
    /// since the directory was created).
    pub next_lsn: Lsn,
    /// Operations logged since the last snapshot (or since open).
    pub ops_since_snapshot: u64,
    /// Whether the broker has degraded to read-only mode.
    pub degraded: bool,
    /// Whether the broker is a replication follower (read-only replica).
    pub follower: bool,
    /// The cause of degradation, when degraded.
    pub degraded_cause: Option<WalError>,
    /// What recovery did when this broker was opened.
    pub recovery: RecoveryReport,
}
