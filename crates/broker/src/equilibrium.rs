//! The equilibrium simulator of paper §6.2.2.
//!
//! The paper's adaptability experiments run the system at *equilibrium*:
//! the store holds `N` subscriptions; every second (one tick) the 50 oldest
//! subscriptions are deleted and 50 new ones inserted, and the remaining
//! time budget of the second is spent matching events. Figures 4(a)/4(b)
//! plot the resulting event throughput while the subscription workload
//! drifts (W3→W4, W5→W6).
//!
//! We reproduce this with a wall-clock per-tick budget (scaled down from one
//! second for laptop-scale runs) around a pluggable engine, swapping the
//! workload generator mid-run to create the drift.

use pubsub_core::MatchEngine;
use pubsub_types::SubscriptionId;
use pubsub_workload::WorkloadGen;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Configuration of an equilibrium run.
#[derive(Debug, Clone, Copy)]
pub struct EquilibriumConfig {
    /// Subscriptions loaded before the run (the paper uses 3,000,000).
    pub initial_subs: usize,
    /// Subscriptions deleted + inserted per tick (the paper uses 50).
    pub churn_per_tick: usize,
    /// Wall-clock window per tick spent matching events, started after the
    /// churn completes (the paper's "remaining time before the next second
    /// tick", with churn negligible at paper scale).
    pub tick_budget: Duration,
    /// Events matched per timing slice (events are submitted in batches).
    pub event_slice: usize,
}

impl Default for EquilibriumConfig {
    fn default() -> Self {
        Self {
            initial_subs: 100_000,
            churn_per_tick: 50,
            tick_budget: Duration::from_millis(20),
            event_slice: 10,
        }
    }
}

/// Result of one simulated tick.
#[derive(Debug, Clone, Copy)]
pub struct TickReport {
    /// Tick number (0-based).
    pub tick: u64,
    /// Events matched within this tick's budget.
    pub events: u64,
    /// Wall time spent on the churn (deletes + inserts).
    pub churn_time: Duration,
    /// Live subscriptions after the tick.
    pub live_subs: usize,
}

/// Drives a matching engine through the insert-50/delete-50/measure loop.
///
/// Generic over the engine type so harnesses can keep direct access to
/// engine-specific controls (e.g. `ClusteredMatcher::freeze`); use
/// `EquilibriumSim<Box<dyn MatchEngine + Send>>` when the engine is chosen
/// at runtime.
pub struct EquilibriumSim<E: MatchEngine = Box<dyn MatchEngine + Send>> {
    engine: E,
    config: EquilibriumConfig,
    /// Live subscription ids, oldest first.
    fifo: VecDeque<SubscriptionId>,
    next_id: u32,
    tick: u64,
    out_buf: Vec<SubscriptionId>,
}

impl<E: MatchEngine> EquilibriumSim<E> {
    /// Creates a simulator around an engine.
    pub fn new(engine: E, config: EquilibriumConfig) -> Self {
        Self {
            engine,
            config,
            fifo: VecDeque::with_capacity(config.initial_subs + config.churn_per_tick),
            next_id: 0,
            tick: 0,
            out_buf: Vec::new(),
        }
    }

    /// Loads the initial population from `gen`. Returns the load wall time.
    pub fn load_initial(&mut self, gen: &mut WorkloadGen) -> Duration {
        let start = Instant::now();
        for _ in 0..self.config.initial_subs {
            let sub = gen.subscription();
            let id = SubscriptionId(self.next_id);
            self.next_id += 1;
            self.engine.insert(id, &sub);
            self.fifo.push_back(id);
        }
        self.engine.finalize();
        start.elapsed()
    }

    /// Runs one tick: deletes the `churn` oldest subscriptions, inserts
    /// `churn` fresh ones from `sub_gen`, then matches events from
    /// `event_gen` until the tick budget is spent.
    pub fn run_tick(
        &mut self,
        sub_gen: &mut WorkloadGen,
        event_gen: &mut WorkloadGen,
    ) -> TickReport {
        let churn_start = Instant::now();
        for _ in 0..self.config.churn_per_tick.min(self.fifo.len()) {
            let victim = self.fifo.pop_front().expect("non-empty fifo");
            self.engine.remove(victim);
        }
        for _ in 0..self.config.churn_per_tick {
            let sub = sub_gen.subscription();
            let id = SubscriptionId(self.next_id);
            self.next_id += 1;
            self.engine.insert(id, &sub);
            self.fifo.push_back(id);
        }
        let churn_time = churn_start.elapsed();

        let mut events = 0u64;
        // The paper spends "the remaining time before the next second tick"
        // matching events; at paper scale churn (50 subscriptions against a
        // one-second tick) is negligible. Our scaled-down ticks carry
        // proportionally much heavier churn, so the event window starts
        // *after* the churn — otherwise churn wall-time, not matching
        // capacity, would dominate the figure (see DESIGN.md §4).
        let deadline = Instant::now() + self.config.tick_budget;
        while Instant::now() < deadline {
            for _ in 0..self.config.event_slice {
                let e = event_gen.event();
                self.out_buf.clear();
                self.engine.match_event(&e, &mut self.out_buf);
                events += 1;
            }
        }

        let report = TickReport {
            tick: self.tick,
            events,
            churn_time,
            live_subs: self.engine.len(),
        };
        self.tick += 1;
        report
    }

    /// Runs `ticks` ticks, reporting each to `on_tick`.
    pub fn run(
        &mut self,
        ticks: u64,
        sub_gen: &mut WorkloadGen,
        event_gen: &mut WorkloadGen,
        mut on_tick: impl FnMut(TickReport),
    ) {
        for _ in 0..ticks {
            let r = self.run_tick(sub_gen, event_gen);
            on_tick(r);
        }
    }

    /// The wrapped engine (e.g. to read its stats).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Mutable access to the wrapped engine (e.g. to freeze a dynamic
    /// matcher's configuration mid-experiment).
    pub fn engine_mut(&mut self) -> &mut E {
        &mut self.engine
    }

    /// Live subscription count.
    pub fn live_subs(&self) -> usize {
        self.fifo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_core::EngineKind;
    use pubsub_workload::presets;

    #[test]
    fn equilibrium_holds_population_constant() {
        let config = EquilibriumConfig {
            initial_subs: 500,
            churn_per_tick: 20,
            tick_budget: Duration::from_millis(2),
            event_slice: 5,
        };
        let mut sim = EquilibriumSim::new(EngineKind::Dynamic.build(), config);
        let mut sub_gen = WorkloadGen::new(presets::w0(1_000_000));
        let mut event_gen = WorkloadGen::new(presets::w0(1_000_000));
        sim.load_initial(&mut sub_gen);
        assert_eq!(sim.live_subs(), 500);

        let mut total_events = 0;
        sim.run(5, &mut sub_gen, &mut event_gen, |r| {
            assert_eq!(r.live_subs, 500, "population stays at equilibrium");
            total_events += r.events;
        });
        assert!(total_events > 0, "events were matched within the budget");
        assert_eq!(sim.engine().stats().events, total_events);
    }

    #[test]
    fn workload_swap_mid_run() {
        let config = EquilibriumConfig {
            initial_subs: 200,
            churn_per_tick: 100,
            tick_budget: Duration::from_millis(1),
            event_slice: 2,
        };
        let mut sim = EquilibriumSim::new(EngineKind::Dynamic.build(), config);
        let mut w3 = WorkloadGen::new(presets::w3(1_000_000));
        let mut w4 = WorkloadGen::new(presets::w4(1_000_000));
        let mut events = WorkloadGen::new(presets::w3(1_000_000));
        sim.load_initial(&mut w3);
        // Two ticks of W3, then drift to W4; population must fully turn over.
        sim.run(2, &mut w3, &mut events, |_| {});
        sim.run(2, &mut w4, &mut events, |_| {});
        assert_eq!(sim.live_subs(), 200);
    }
}
