//! The valid-event store.
//!
//! The paper's system "stores both valid subscriptions and valid events":
//! when a *new subscription* arrives it is evaluated against the stored
//! valid events (the complementary functionality to event matching). The
//! store is a slab with an expiry heap so eviction at clock advance is
//! `O(expired · log n)`.

use crate::time::{LogicalTime, Validity};
use pubsub_types::{Event, Subscription};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifier of a stored event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u64);

#[derive(Debug)]
struct Stored {
    id: EventId,
    event: Event,
    validity: Validity,
}

/// Stores valid events and evaluates new subscriptions against them.
#[derive(Debug, Default)]
pub struct EventStore {
    slots: Vec<Option<Stored>>,
    free: Vec<usize>,
    /// Min-heap of (expiry, slot).
    expiry: BinaryHeap<Reverse<(LogicalTime, usize)>>,
    next_id: u64,
    live: usize,
}

impl EventStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored (not yet evicted) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no event is stored.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Stores an event with its validity; returns its id. Events with no
    /// expiry are kept until explicitly cleared.
    pub fn insert(&mut self, event: Event, validity: Validity) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        let stored = Stored {
            id,
            event,
            validity,
        };
        let slot = if let Some(s) = self.free.pop() {
            self.slots[s] = Some(stored);
            s
        } else {
            self.slots.push(Some(stored));
            self.slots.len() - 1
        };
        if let Some(until) = validity.until {
            self.expiry.push(Reverse((until, slot)));
        }
        self.live += 1;
        id
    }

    /// Evicts every event whose validity ended at or before `now`.
    /// Returns the number evicted.
    pub fn evict_expired(&mut self, now: LogicalTime) -> usize {
        let mut evicted = 0;
        while let Some(&Reverse((until, slot))) = self.expiry.peek() {
            if until > now {
                break;
            }
            self.expiry.pop();
            // The slot may have been recycled for a younger event; only
            // evict if the stored expiry still matches.
            if let Some(stored) = &self.slots[slot] {
                if stored.validity.until == Some(until) {
                    self.slots[slot] = None;
                    self.free.push(slot);
                    self.live -= 1;
                    evicted += 1;
                }
            }
        }
        evicted
    }

    /// Returns the ids of stored events (valid at `now`) that satisfy `sub` —
    /// the "evaluate a new subscription against the valid events" path.
    pub fn matches_for(&self, sub: &Subscription, now: LogicalTime) -> Vec<EventId> {
        self.slots
            .iter()
            .flatten()
            .filter(|s| s.validity.contains(now) && sub.matches_event(&s.event))
            .map(|s| s.id)
            .collect()
    }

    /// Looks up a stored event by id (linear scan; diagnostics only).
    pub fn get(&self, id: EventId) -> Option<&Event> {
        self.slots
            .iter()
            .flatten()
            .find(|s| s.id == id)
            .map(|s| &s.event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_types::AttrId;

    fn ev(v: i64) -> Event {
        Event::builder().pair(AttrId(0), v).build().unwrap()
    }

    fn sub_eq(v: i64) -> Subscription {
        Subscription::builder().eq(AttrId(0), v).build().unwrap()
    }

    #[test]
    fn store_and_match_new_subscription() {
        let mut s = EventStore::new();
        let id1 = s.insert(ev(1), Validity::forever());
        let _id2 = s.insert(ev(2), Validity::forever());
        let hits = s.matches_for(&sub_eq(1), LogicalTime(0));
        assert_eq!(hits, vec![id1]);
        assert!(s.get(id1).is_some());
    }

    #[test]
    fn expired_events_are_not_matched_and_evicted() {
        let mut s = EventStore::new();
        let short = s.insert(ev(1), Validity::until(LogicalTime(5)));
        let long = s.insert(ev(1), Validity::until(LogicalTime(50)));
        // Before expiry both match.
        assert_eq!(s.matches_for(&sub_eq(1), LogicalTime(4)).len(), 2);
        // At t=5 the short one is out of validity even before eviction.
        assert_eq!(s.matches_for(&sub_eq(1), LogicalTime(5)), vec![long]);
        assert_eq!(s.evict_expired(LogicalTime(5)), 1);
        assert_eq!(s.len(), 1);
        assert!(s.get(short).is_none());
        assert!(s.get(long).is_some());
    }

    #[test]
    fn slot_recycling_does_not_evict_young_events() {
        let mut s = EventStore::new();
        let _old = s.insert(ev(1), Validity::until(LogicalTime(5)));
        s.evict_expired(LogicalTime(10));
        assert!(s.is_empty());
        // Recycles the slot with a longer validity.
        let young = s.insert(ev(2), Validity::until(LogicalTime(100)));
        // A stale heap entry for the old expiry must not evict the new event.
        assert_eq!(s.evict_expired(LogicalTime(10)), 0);
        assert_eq!(s.len(), 1);
        assert!(s.get(young).is_some());
    }

    #[test]
    fn future_events_are_not_matched_yet() {
        let mut s = EventStore::new();
        s.insert(ev(1), Validity::between(LogicalTime(10), LogicalTime(20)));
        assert!(s.matches_for(&sub_eq(1), LogicalTime(5)).is_empty());
        assert_eq!(s.matches_for(&sub_eq(1), LogicalTime(15)).len(), 1);
    }
}
