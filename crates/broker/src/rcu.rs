//! Published engine snapshots for the lock-free publish path of
//! [`crate::shared::SharedBroker`].
//!
//! Each shard's subscription set is published as a [`ShardSnap`]: an
//! immutable *base* engine (shared by `Arc`, matched through
//! [`pubsub_core::MatchView`]) plus a small *delta* of subscriptions added
//! since the base was frozen and a *tombstone* list of base subscriptions
//! removed since. Readers match the base engine, drop tombstoned ids, and
//! brute-force the delta — correct for any delta size, and fast because the
//! writer merges the delta back into a fresh base once it outgrows a small
//! threshold (amortised O(n) rebuild, like a log-structured index).
//!
//! A [`BrokerSnapshot`] is one consistent cut across all shards; the writer
//! publishes it through a [`pubsub_core::RcuCell`] after every mutation.

use crate::broker::Broker;
use pubsub_core::{build_frozen, EngineKind, MatchView, SnapshotEngine, ViewScratch};
use pubsub_types::{Event, Subscription, SubscriptionId};
use std::sync::Arc;

/// How [`crate::shared::SharedBroker`] executes publishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PublishMode {
    /// Lock-free reads against an epoch-protected engine snapshot (the
    /// default): publishes never block and never contend, mutators serialize
    /// on a writer mutex and flip the snapshot pointer.
    #[default]
    Rcu,
    /// The pre-RCU behaviour: every publish locks each shard's engine in
    /// turn. Kept for comparison benchmarks and for the lock-contention
    /// backpressure policies (`Shed`/`ErrorFast`), which are meaningless
    /// when reads never take locks.
    Locked,
}

/// Delta size at which the writer merges a shard's delta and tombstones
/// back into a freshly built base engine. Small enough that the
/// brute-forced delta never dominates a publish, large enough that a
/// subscribe burst does not rebuild the base every time.
fn merge_threshold(base_len: usize) -> usize {
    (base_len / 8).clamp(32, 1024)
}

/// An immutable engine built for shared reads.
struct FrozenShard {
    engine: Box<dyn SnapshotEngine>,
}

/// One shard's published state: frozen base + delta + tombstones.
#[derive(Clone)]
pub(crate) struct ShardSnap {
    base: Arc<FrozenShard>,
    /// Subscriptions added since the base was frozen. `Arc` per entry so a
    /// clone of the snapshot (one per flip) copies 16-byte handles, not
    /// predicate vectors.
    delta: Vec<(SubscriptionId, Arc<Subscription>)>,
    /// Base subscriptions removed since the base was frozen, sorted by id.
    /// (Delta removals edit the delta in place and never land here.)
    dead: Vec<SubscriptionId>,
}

impl ShardSnap {
    /// An empty shard snapshot for a fresh broker.
    pub(crate) fn empty(kind: EngineKind) -> Self {
        Self {
            base: Arc::new(FrozenShard {
                engine: build_frozen(kind),
            }),
            delta: Vec::new(),
            dead: Vec::new(),
        }
    }

    /// Rebuilds the base engine from the shard broker's live subscription
    /// set, clearing the delta and tombstones. Called with the shard lock
    /// held (the iterator borrows the broker), off the read path.
    pub(crate) fn rebuild_from(&mut self, broker: &Broker, kind: EngineKind) {
        let mut engine = build_frozen(kind);
        let mut iter = broker.live_subscriptions().map(|(id, sub, _)| (id, sub));
        engine.rebuild(&mut iter);
        self.base = Arc::new(FrozenShard { engine });
        self.delta.clear();
        self.dead.clear();
    }

    /// Records a subscription added after the base was frozen, rebuilding
    /// the base if the delta outgrew its threshold.
    pub(crate) fn note_insert(
        &mut self,
        id: SubscriptionId,
        sub: Arc<Subscription>,
        broker: &Broker,
        kind: EngineKind,
    ) {
        self.delta.push((id, sub));
        self.merge_if_due(broker, kind);
    }

    /// Records a removal (explicit unsubscribe or validity expiry),
    /// rebuilding the base if the tombstone set outgrew its threshold.
    pub(crate) fn note_remove(&mut self, id: SubscriptionId, broker: &Broker, kind: EngineKind) {
        if let Some(pos) = self.delta.iter().position(|&(d, _)| d == id) {
            self.delta.swap_remove(pos);
            return;
        }
        if let Err(pos) = self.dead.binary_search(&id) {
            self.dead.insert(pos, id);
        }
        self.merge_if_due(broker, kind);
    }

    fn merge_if_due(&mut self, broker: &Broker, kind: EngineKind) {
        if self.delta.len() + self.dead.len() > merge_threshold(self.base.engine.len()) {
            self.rebuild_from(broker, kind);
        }
    }

    /// Whether any delta or tombstone entries are pending a merge.
    pub(crate) fn has_pending(&self) -> bool {
        !self.delta.is_empty() || !self.dead.is_empty()
    }

    /// Matches one event: base engine through the read-only view, minus
    /// tombstones, plus the brute-forced delta. Appends to `out` in no
    /// particular order (the caller sorts the merged publish result).
    pub(crate) fn match_into(
        &self,
        event: &Event,
        scratch: &mut ViewScratch,
        out: &mut Vec<SubscriptionId>,
    ) {
        let start = out.len();
        self.base.engine.match_view(event, scratch, out);
        let dropped = self.retain_live(out, start);
        let before_delta = out.len();
        for (id, sub) in &self.delta {
            if sub.matches_event(event) {
                out.push(*id);
            }
        }
        // The engine recorded its own work; account for the snapshot's
        // corrections so the aggregate reflects what was delivered.
        scratch.stats.matches += (out.len() - before_delta) as u64;
        scratch.stats.matches -= dropped as u64;
        scratch.stats.subscriptions_checked += self.delta.len() as u64;
    }

    /// Batched [`ShardSnap::match_into`]: fills `results` with one match
    /// vector per event (reused across calls).
    pub(crate) fn match_batch_into(
        &self,
        events: &[Event],
        scratch: &mut ViewScratch,
        results: &mut Vec<Vec<SubscriptionId>>,
    ) {
        self.base.engine.match_batch_view(events, scratch, results);
        for (event, dst) in events.iter().zip(results.iter_mut()) {
            let dropped = self.retain_live(dst, 0);
            let before_delta = dst.len();
            for (id, sub) in &self.delta {
                if sub.matches_event(event) {
                    dst.push(*id);
                }
            }
            scratch.stats.matches += (dst.len() - before_delta) as u64;
            scratch.stats.matches -= dropped as u64;
            scratch.stats.subscriptions_checked += self.delta.len() as u64;
        }
    }

    /// Drops tombstoned ids from `out[start..]` in place; returns how many
    /// were dropped.
    fn retain_live(&self, out: &mut Vec<SubscriptionId>, start: usize) -> usize {
        if self.dead.is_empty() {
            return 0;
        }
        let end = out.len();
        let mut w = start;
        for r in start..end {
            if self.dead.binary_search(&out[r]).is_err() {
                out[w] = out[r];
                w += 1;
            }
        }
        out.truncate(w);
        end - w
    }
}

/// One consistent cut of the whole broker, published via
/// [`pubsub_core::RcuCell`]. Cloning the shard vector (one clone per flip)
/// copies `Arc` handles and small id vectors only.
pub(crate) struct BrokerSnapshot {
    pub(crate) shards: Vec<ShardSnap>,
}

/// Explains when a `(publish mode, backpressure)` pairing is inert.
///
/// The `Shed`/`ErrorFast` policies police *lock contention* on the publish
/// path — they only mean something in [`PublishMode::Locked`], where a
/// publish competes for per-shard mutexes. Under the default
/// [`PublishMode::Rcu`] a publish takes no locks, so there is nothing to
/// shed or fail fast on: the policy silently never fires. Returns a
/// warning describing that no-op (for construction-time surfacing by the
/// CLI and [`crate::shared::SharedBroker::config_warning`]), or `None`
/// when the pairing is meaningful.
///
/// Note this concerns the *broker publish* path only. The network server
/// (`pubsub-net`) reuses the same policy enum for its per-connection
/// delivery queues, where all three policies are meaningful regardless of
/// publish mode.
pub fn publish_config_warning(
    mode: PublishMode,
    backpressure: pubsub_core::Backpressure,
) -> Option<&'static str> {
    match (mode, backpressure) {
        (PublishMode::Rcu, pubsub_core::Backpressure::Shed) => Some(
            "backpressure policy `shed` has no effect under the default RCU publish mode: \
             publishes are lock-free and never contend, so no shard is ever shed; \
             construct the broker with PublishMode::Locked for contention policing",
        ),
        (PublishMode::Rcu, pubsub_core::Backpressure::ErrorFast) => Some(
            "backpressure policy `error-fast` has no effect under the default RCU publish mode: \
             publishes are lock-free and never contend, so try_publish never fails with \
             Overloaded; construct the broker with PublishMode::Locked for contention policing",
        ),
        _ => None,
    }
}

/// Point-in-time view of the RCU publish machinery, surfaced by
/// [`crate::shared::SharedBroker::rcu_status`] (and the CLI `stats`
/// command).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RcuStatus {
    /// The configured publish mode.
    pub mode: PublishMode,
    /// Snapshot pointer flips since the broker was created.
    pub flips: u64,
    /// Current RCU epoch (1 + flips; grows with every publish of a new
    /// snapshot).
    pub epoch: u64,
    /// Retired snapshots whose reclamation is still deferred by readers.
    pub retired: usize,
    /// Reader slots currently pinned (sampled; readers pin only inside a
    /// publish call, so this is almost always 0 at rest).
    pub active_readers: usize,
}
