//! Broker-level crash recovery and degraded-mode behaviour.
//!
//! The central property: kill the process after **any byte prefix** of the
//! WAL has reached disk, reopen, and the recovered broker equals a
//! brute-force oracle that replays exactly the operations whose records
//! fully survived — across all five paper engines and shard counts
//! {1, 2, 7}, with zero resurrected expired/unsubscribed ids.
//!
//! The oracle is independent of the WAL implementation: the driver mirrors
//! the broker's logging rules (what gets logged, in what order, and how
//! many bytes each record takes), so a framing bug in the log itself shows
//! up as a sweep failure rather than being absorbed by a circular
//! read-back.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::fs::{self, OpenOptions};
use std::path::{Path, PathBuf};

use proptest::prelude::*;
use pubsub_broker::{BrokerError, SharedBroker};
use pubsub_core::{Backpressure, EngineKind, MatchEngine};
use pubsub_durability::{
    CorruptionPolicy, DurabilityConfig, FsyncPolicy, WalOp, FAULT_APPEND, FAULT_FSYNC,
};
use pubsub_types::faults::{self, FaultAction, Schedule};
use pubsub_types::time::{LogicalTime, Validity};
use pubsub_types::{AttrId, Event, Operator, Subscription, SubscriptionId};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fp-durbrk-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn config() -> DurabilityConfig {
    DurabilityConfig {
        segment_bytes: u64::MAX, // single segment: simple byte accounting
        fsync: FsyncPolicy::OsManaged,
        corruption: CorruptionPolicy::Fail,
        snapshot_every_ops: 0,
    }
}

// ---- the driver and its oracle ---------------------------------------------

/// One step of a broker workload, in broker-API terms (not WAL terms).
#[derive(Debug, Clone)]
enum Cmd {
    /// Subscribe on attribute `key` = `val`, optionally with a second
    /// `AttrId(7) > val` predicate; `ttl == 0` means forever.
    Sub {
        key: u32,
        val: i64,
        extra: bool,
        ttl: u64,
    },
    /// Unsubscribe the `pick % ids.len()`-th id ever issued (may be a miss).
    Unsub { pick: usize },
    /// Advance the clock by one tick.
    Tick,
    /// Advance the clock by `dt` ticks (`dt == 0` is a logged no-op-shaped
    /// advance — it can still expire stale validities).
    Advance { dt: u64 },
    /// Intern an attribute name (logged only the first time).
    Intern { n: u8 },
}

fn build_sub(key: u32, val: i64, extra: bool) -> Subscription {
    let mut b = Subscription::builder().eq(AttrId(key % 6), val % 6);
    if extra {
        b = b.with(AttrId(7), Operator::Gt, val % 6);
    }
    b.build().unwrap()
}

/// Applies commands to a live durable broker while predicting, from the
/// broker's documented logging rules alone, the exact op sequence the WAL
/// must now contain.
#[derive(Default)]
struct Driver {
    logged: Vec<WalOp>,
    ids: Vec<SubscriptionId>,
    interned: HashSet<String>,
}

impl Driver {
    fn apply(&mut self, broker: &SharedBroker, cmd: &Cmd) {
        match cmd {
            Cmd::Sub {
                key,
                val,
                extra,
                ttl,
            } => {
                let sub = build_sub(*key, *val, *extra);
                let validity = if *ttl == 0 {
                    Validity::forever()
                } else {
                    Validity::until(broker.now().plus(*ttl))
                };
                let id = broker.try_subscribe(sub.clone(), validity).unwrap();
                self.logged.push(WalOp::Subscribe { id, sub, validity });
                self.ids.push(id);
            }
            Cmd::Unsub { pick } => {
                if self.ids.is_empty() {
                    return;
                }
                let id = self.ids[pick % self.ids.len()];
                if broker.try_unsubscribe(id).unwrap() {
                    self.logged.push(WalOp::Unsubscribe(id));
                }
            }
            Cmd::Tick => {
                let t = broker.now().plus(1);
                broker.try_tick().unwrap();
                self.logged.push(WalOp::AdvanceTo(t));
            }
            Cmd::Advance { dt } => {
                let t = broker.now().plus(*dt);
                broker.try_advance_to(t).unwrap();
                self.logged.push(WalOp::AdvanceTo(t));
            }
            Cmd::Intern { n } => {
                let name = format!("attr-{n}");
                broker.attr(&name);
                if self.interned.insert(name.clone()) {
                    self.logged.push(WalOp::InternAttr(name));
                }
            }
        }
    }
}

/// The brute-force state oracle: a map of live subscriptions plus the set
/// of ids that died (expired or unsubscribed), fed the surviving op prefix.
#[derive(Default)]
struct Model {
    now: LogicalTime,
    live: BTreeMap<u32, (Subscription, Validity)>,
    dead: BTreeSet<u32>,
}

impl Model {
    fn apply(&mut self, op: &WalOp) {
        match op {
            WalOp::InternAttr(_) | WalOp::InternString(_) => {}
            WalOp::Subscribe { id, sub, validity } => {
                self.live.insert(id.0, (sub.clone(), *validity));
            }
            WalOp::Unsubscribe(id) => {
                if self.live.remove(&id.0).is_some() {
                    self.dead.insert(id.0);
                }
            }
            WalOp::AdvanceTo(t) => {
                self.now = *t;
                let expired: Vec<u32> = self
                    .live
                    .iter()
                    .filter(|(_, (_, v))| v.until.is_some_and(|u| u <= *t))
                    .map(|(id, _)| *id)
                    .collect();
                for id in expired {
                    self.live.remove(&id);
                    self.dead.insert(id);
                }
            }
            // This suite drives only the subscription/clock surface; session
            // records have their own model in the net restart-resume sweep.
            WalOp::SessionCreate { .. }
            | WalOp::SessionBind { .. }
            | WalOp::SessionRelease { .. }
            | WalOp::SessionReap { .. } => {}
        }
    }
}

/// Events covering every subscription shape `build_sub` can produce.
fn probe_events() -> Vec<Event> {
    let mut events = Vec::new();
    for key in 0..6u32 {
        for val in 0..6i64 {
            events.push(Event::builder().pair(AttrId(key), val).build().unwrap());
            events.push(
                Event::builder()
                    .pair(AttrId(key), val)
                    .pair(AttrId(7), 5i64)
                    .build()
                    .unwrap(),
            );
        }
    }
    events
}

/// Reopens `dir` and checks the recovered broker against the oracle fed
/// `surviving`: clock, live id/validity sets, zero resurrections, and match
/// behaviour on the probe events.
fn check_recovery(dir: &Path, kind: EngineKind, shards: usize, surviving: &[WalOp]) {
    let mut model = Model::default();
    for op in surviving {
        model.apply(op);
    }
    let (broker, _report) =
        SharedBroker::open_durable_with(kind, shards, Backpressure::Block, dir, config())
            .unwrap_or_else(|e| panic!("recovery failed ({} ops survive): {e}", surviving.len()));
    assert!(!broker.is_degraded());
    assert_eq!(broker.now(), model.now, "clock after recovery");
    assert_eq!(
        broker.subscription_count(),
        model.live.len(),
        "live count after recovery"
    );

    let mut got: Vec<(u32, Validity)> = Vec::new();
    for shard in 0..broker.shard_count() {
        broker.with_shard(shard, |b| {
            got.extend(b.live_subscriptions().map(|(id, _, v)| (id.0, v)));
        });
    }
    got.sort_by_key(|(id, _)| *id);
    let want: Vec<(u32, Validity)> = model.live.iter().map(|(id, (_, v))| (*id, *v)).collect();
    assert_eq!(got, want, "live (id, validity) set after recovery");

    for id in &model.dead {
        if model.live.contains_key(id) {
            continue; // id re-subscribed later in the prefix (cannot happen: ids are never reused)
        }
        let shard = *id as usize % broker.shard_count();
        broker.with_shard(shard, |b| {
            assert!(
                !b.contains(SubscriptionId(*id)),
                "dead id {id} resurrected by recovery"
            );
        });
    }

    let mut oracle = EngineKind::BruteForce.build();
    for (id, (sub, _)) in &model.live {
        oracle.insert(SubscriptionId(*id), sub);
    }
    oracle.finalize();
    for event in probe_events() {
        let recovered = broker.publish(&event);
        let mut expected = Vec::new();
        oracle.match_event(&event, &mut expected);
        expected.sort_unstable();
        assert_eq!(recovered, expected, "match set diverged on {event:?}");
    }
}

/// Drives `cmds` against a fresh durable broker in `dir`, then sweeps
/// truncation cuts over the resulting single-segment WAL: every record
/// boundary, the header edges, and 64 deterministic intra-record offsets.
fn run_kill_sweep(kind: EngineKind, shards: usize, cmds: &[Cmd]) {
    let dir = temp_dir(&format!("sweep-{}-{shards}", kind.label()));
    let (broker, _) =
        SharedBroker::open_durable_with(kind, shards, Backpressure::Block, &dir, config()).unwrap();
    let mut driver = Driver::default();
    for cmd in cmds {
        driver.apply(&broker, cmd);
    }
    drop(broker);

    let seg = dir.join("wal-00000000000000000000.log");
    let pristine = fs::read(&seg).unwrap();
    // Predicted record boundaries: 16-byte segment header, then each op's
    // framed record. The final boundary must equal the real file size — the
    // driver's byte accounting is itself under test here.
    let mut boundaries = Vec::new();
    let mut off = 16u64;
    for op in &driver.logged {
        off += op.to_record().len() as u64;
        boundaries.push(off);
    }
    assert_eq!(
        off,
        pristine.len() as u64,
        "predicted log size diverges from the file ({} {shards})",
        kind.label()
    );

    let mut cuts: BTreeSet<u64> = boundaries.iter().copied().collect();
    cuts.extend([0, 7, 16]); // torn/truncated segment header edges
    let mut rng = 0x9e37_79b9_7f4a_7c15u64 ^ ((shards as u64) << 8) ^ boundaries.len() as u64;
    for _ in 0..64 {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        cuts.insert(16 + rng % (pristine.len() as u64 - 16));
    }

    for cut in cuts {
        fs::write(&seg, &pristine).unwrap();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(cut).unwrap();
        drop(f);
        let survived = if cut < 16 {
            0 // segment header torn: the whole segment is discarded
        } else {
            boundaries.iter().filter(|&&b| b <= cut).count()
        };
        check_recovery(&dir, kind, shards, &driver.logged[..survived]);
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// A fixed, shape-diverse workload: every op kind, expiring and immortal
/// validities, unsubscribe hits and misses, duplicate interning.
fn scripted_cmds() -> Vec<Cmd> {
    let mut cmds = Vec::new();
    for i in 0..28usize {
        cmds.push(match i % 7 {
            0 => Cmd::Sub {
                key: i as u32,
                val: i as i64,
                extra: i % 2 == 0,
                ttl: (i as u64 % 4), // 0 = forever
            },
            1 => Cmd::Intern { n: (i % 3) as u8 },
            2 => Cmd::Sub {
                key: (i + 3) as u32,
                val: (i + 1) as i64,
                extra: false,
                ttl: 2,
            },
            3 => Cmd::Tick,
            4 => Cmd::Unsub { pick: i / 2 },
            5 => Cmd::Advance { dt: (i as u64) % 3 },
            _ => Cmd::Sub {
                key: i as u32,
                val: (i / 2) as i64,
                extra: true,
                ttl: 0,
            },
        });
    }
    cmds
}

#[test]
fn kill_at_any_byte_recovers_across_all_engines_and_shard_counts() {
    for kind in EngineKind::PAPER_ENGINES {
        for shards in [1usize, 2, 7] {
            run_kill_sweep(kind, shards, &scripted_cmds());
        }
    }
}

/// Recovery is shard-count independent: a log written under one partition
/// width must rebuild the identical subscription set under any other,
/// because ids carry their own shard identity (`id mod N`).
#[test]
fn recovery_survives_shard_count_changes() {
    let dir = temp_dir("reshard");
    let (broker, _) = SharedBroker::open_durable_with(
        EngineKind::Dynamic,
        2,
        Backpressure::Block,
        &dir,
        config(),
    )
    .unwrap();
    let mut driver = Driver::default();
    for cmd in scripted_cmds() {
        driver.apply(&broker, &cmd);
    }
    drop(broker);
    for shards in [1usize, 2, 7] {
        check_recovery(&dir, EngineKind::Counting, shards, &driver.logged);
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// An expired subscription's id must not come back when a new subscriber
/// arrives after recovery: the id space only ever moves forward, including
/// across a crash that wiped the in-memory cursor.
#[test]
fn recovered_broker_never_reissues_dead_ids() {
    let dir = temp_dir("no-reissue");
    let (broker, _) = SharedBroker::open_durable_with(
        EngineKind::Counting,
        2,
        Backpressure::Block,
        &dir,
        config(),
    )
    .unwrap();
    let sub = build_sub(1, 1, false);
    let expiring = broker
        .try_subscribe(sub.clone(), Validity::until(LogicalTime(1)))
        .unwrap();
    let removed = broker
        .try_subscribe(sub.clone(), Validity::forever())
        .unwrap();
    broker.try_advance_to(LogicalTime(2)).unwrap(); // expires `expiring`
    assert!(broker.try_unsubscribe(removed).unwrap());
    // Snapshot, so the dead ids are absent from the durable state and only
    // the high-water mark can protect them.
    broker.snapshot().unwrap();
    drop(broker);

    let (broker, _) = SharedBroker::open_durable_with(
        EngineKind::Counting,
        2,
        Backpressure::Block,
        &dir,
        config(),
    )
    .unwrap();
    let mut reissued = Vec::new();
    for _ in 0..8 {
        reissued.push(
            broker
                .try_subscribe(sub.clone(), Validity::forever())
                .unwrap(),
        );
    }
    assert!(
        !reissued.contains(&expiring) && !reissued.contains(&removed),
        "dead ids {expiring:?}/{removed:?} reissued: {reissued:?}"
    );
    fs::remove_dir_all(&dir).unwrap();
}

// ---- randomised sweep (proptest) -------------------------------------------

fn arb_cmd() -> impl Strategy<Value = Cmd> {
    prop_oneof![
        4 => (0u32..6, 0i64..6, any::<bool>(), 0u64..5).prop_map(|(key, val, extra, ttl)| {
            Cmd::Sub { key, val, extra, ttl }
        }),
        2 => (0usize..32).prop_map(|pick| Cmd::Unsub { pick }),
        2 => Just(Cmd::Tick),
        1 => (0u64..3).prop_map(|dt| Cmd::Advance { dt }),
        1 => (0u8..5).prop_map(|n| Cmd::Intern { n }),
    ]
}

fn arb_engine() -> impl Strategy<Value = EngineKind> {
    prop::sample::select(EngineKind::PAPER_ENGINES.to_vec())
}

proptest! {
    /// Random workloads, random engine, random shard count, and a cut drawn
    /// uniformly from the file (so across cases both record boundaries and
    /// intra-record offsets are hit). Each case also verifies the driver's
    /// byte accounting against the real file, via `run`'s assertion.
    #[test]
    fn random_workload_survives_a_random_cut(
        cmds in prop::collection::vec(arb_cmd(), 1..40),
        kind in arb_engine(),
        shards in prop::sample::select(vec![1usize, 2, 7]),
        cut_seed in 0u64..u64::MAX,
    ) {
        let dir = temp_dir(&format!("prop-{cut_seed}"));
        let (broker, _) = SharedBroker::open_durable_with(
            kind, shards, Backpressure::Block, &dir, config(),
        ).unwrap();
        let mut driver = Driver::default();
        for cmd in &cmds {
            driver.apply(&broker, cmd);
        }
        drop(broker);

        let seg = dir.join("wal-00000000000000000000.log");
        let pristine = fs::read(&seg).unwrap();
        let mut boundaries = Vec::new();
        let mut off = 16u64;
        for op in &driver.logged {
            off += op.to_record().len() as u64;
            boundaries.push(off);
        }
        prop_assert_eq!(off, pristine.len() as u64, "driver byte accounting");

        let cut = cut_seed % (pristine.len() as u64 + 1);
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(cut).unwrap();
        drop(f);
        let survived = if cut < 16 {
            0
        } else {
            boundaries.iter().filter(|&&b| b <= cut).count()
        };
        check_recovery(&dir, kind, shards, &driver.logged[..survived]);
        fs::remove_dir_all(&dir).unwrap();
    }
}

// ---- degraded mode under injected faults -----------------------------------

/// A failed WAL append degrades the broker: the op is not applied, further
/// mutations fail with `BrokerError::Degraded`, matching keeps working, and
/// reopening the directory recovers cleanly without the failed op.
#[test]
fn append_failure_degrades_to_read_only() {
    if !faults::enabled() {
        eprintln!("skipping: pubsub-types/faults feature is off");
        return;
    }
    let dir = temp_dir("degrade-append");
    faults::clear();
    let (broker, _) = SharedBroker::open_durable_with(
        EngineKind::Dynamic,
        2,
        Backpressure::Block,
        &dir,
        config(),
    )
    .unwrap();
    let sub = build_sub(2, 3, false);
    let id = broker
        .try_subscribe(sub.clone(), Validity::forever())
        .unwrap();
    let event = Event::builder().pair(AttrId(2), 3i64).build().unwrap();
    assert_eq!(broker.publish(&event), vec![id]);

    faults::arm(FAULT_APPEND, None, FaultAction::Fail, Schedule::Nth(1));
    let err = broker
        .try_subscribe(sub.clone(), Validity::forever())
        .unwrap_err();
    assert!(matches!(err, BrokerError::Degraded(_)), "got {err}");
    faults::clear();

    // Sticky: the fault is gone but the broker stays read-only.
    assert!(broker.is_degraded());
    assert!(broker.degraded_cause().is_some());
    assert!(matches!(
        broker.try_subscribe(sub.clone(), Validity::forever()),
        Err(BrokerError::Degraded(_))
    ));
    assert!(matches!(
        broker.try_unsubscribe(id),
        Err(BrokerError::Degraded(_))
    ));
    assert!(matches!(broker.try_tick(), Err(BrokerError::Degraded(_))));
    assert!(matches!(broker.snapshot(), Err(BrokerError::Degraded(_))));
    let status = broker.durability().unwrap();
    assert!(status.degraded);

    // Matching is unaffected: reads don't touch durable state.
    assert_eq!(broker.publish(&event), vec![id]);
    assert_eq!(
        broker.subscription_count(),
        1,
        "failed op was never applied"
    );
    drop(broker);

    // Recovery heals: the torn append is truncated away and the state is
    // exactly the acknowledged prefix.
    let (broker, report) = SharedBroker::open_durable_with(
        EngineKind::Dynamic,
        2,
        Backpressure::Block,
        &dir,
        config(),
    )
    .unwrap();
    assert!(
        report.torn_tail_truncated.is_some(),
        "torn record truncated"
    );
    assert!(!broker.is_degraded());
    assert_eq!(broker.subscription_count(), 1);
    assert_eq!(broker.publish(&event), vec![id]);
    broker.try_subscribe(sub, Validity::forever()).unwrap();
    fs::remove_dir_all(&dir).unwrap();
}

/// A failed fsync under `FsyncPolicy::Always` also degrades (the append
/// cannot vouch for durability), without panicking.
#[test]
fn fsync_failure_degrades_to_read_only() {
    if !faults::enabled() {
        eprintln!("skipping: pubsub-types/faults feature is off");
        return;
    }
    let dir = temp_dir("degrade-fsync");
    faults::clear();
    let cfg = DurabilityConfig {
        fsync: FsyncPolicy::Always,
        ..config()
    };
    let (broker, _) =
        SharedBroker::open_durable_with(EngineKind::Counting, 1, Backpressure::Block, &dir, cfg)
            .unwrap();
    faults::arm(FAULT_FSYNC, None, FaultAction::Fail, Schedule::Nth(1));
    let err = broker
        .try_subscribe(build_sub(0, 0, false), Validity::forever())
        .unwrap_err();
    faults::clear();
    assert!(matches!(err, BrokerError::Degraded(_)), "got {err}");
    assert!(broker.is_degraded());
    fs::remove_dir_all(&dir).unwrap();
}

/// A failed snapshot write leaves the broker writable: every logged op is
/// still durable, only compaction was lost. Explicitly not degraded.
#[test]
fn snapshot_failure_is_not_fatal() {
    if !faults::enabled() {
        eprintln!("skipping: pubsub-types/faults feature is off");
        return;
    }
    let dir = temp_dir("snap-fail");
    faults::clear();
    let (broker, _) = SharedBroker::open_durable_with(
        EngineKind::Counting,
        1,
        Backpressure::Block,
        &dir,
        config(),
    )
    .unwrap();
    broker
        .try_subscribe(build_sub(1, 2, false), Validity::forever())
        .unwrap();
    faults::arm(
        pubsub_durability::FAULT_SNAPSHOT,
        None,
        FaultAction::Fail,
        Schedule::Nth(1),
    );
    let err = broker.snapshot().unwrap_err();
    faults::clear();
    assert!(matches!(err, BrokerError::Snapshot(_)), "got {err}");
    assert!(!broker.is_degraded(), "snapshot failure must not degrade");
    broker
        .try_subscribe(build_sub(1, 3, false), Validity::forever())
        .unwrap();
    broker.snapshot().unwrap();
    fs::remove_dir_all(&dir).unwrap();
}
