//! Pins the documented interaction of [`PublishMode`] and [`Backpressure`]:
//! under the default RCU publish mode the lock-contention policies
//! (`Shed`/`ErrorFast`) are inert — publishes take no locks, so nothing is
//! ever shed and `try_publish_into` never fails. That pairing used to be a
//! *silent* no-op; it now carries a construction-time warning, and this
//! suite is the regression fence for both halves: the warning fires for
//! exactly the inert pairings, and the runtime behaviour stays what the
//! warning says it is.

use pubsub_broker::{publish_config_warning, PublishMode, SharedBroker, Validity};
use pubsub_core::{Backpressure, EngineKind};
use pubsub_types::{Event, Operator, Predicate, Subscription, Value};

#[test]
fn rcu_with_contention_policies_warns_at_construction() {
    for policy in [Backpressure::Shed, Backpressure::ErrorFast] {
        let warning = publish_config_warning(PublishMode::Rcu, policy);
        assert!(
            warning.is_some(),
            "{policy:?} under RCU is inert and must warn"
        );
        assert!(
            warning.unwrap().contains("no effect"),
            "warning must say the policy is a no-op"
        );
        let broker =
            SharedBroker::with_publish_mode(EngineKind::Counting, 2, policy, PublishMode::Rcu);
        assert_eq!(
            broker.config_warning(),
            warning,
            "the broker surfaces the same warning for its own config"
        );
    }
}

#[test]
fn meaningful_pairings_do_not_warn() {
    for policy in [
        Backpressure::Block,
        Backpressure::Shed,
        Backpressure::ErrorFast,
    ] {
        assert_eq!(
            publish_config_warning(PublishMode::Locked, policy),
            None,
            "{policy:?} polices real lock contention under Locked"
        );
    }
    assert_eq!(
        publish_config_warning(PublishMode::Rcu, Backpressure::Block),
        None
    );
    let broker = SharedBroker::new(EngineKind::Counting, 2);
    assert_eq!(broker.config_warning(), None, "the default config is clean");
}

/// The behaviour the warning describes, pinned: a `Shed` broker in RCU
/// mode never skips a shard and never loses a match, even with publishers
/// racing mutators.
#[test]
fn rcu_publishes_never_shed_despite_shed_policy() {
    let broker = SharedBroker::with_publish_mode(
        EngineKind::Counting,
        2,
        Backpressure::Shed,
        PublishMode::Rcu,
    );
    let attr = broker.attr("k");
    for v in 0..4 {
        let sub =
            Subscription::from_predicates(vec![Predicate::new(attr, Operator::Eq, Value::Int(v))])
                .expect("valid");
        broker.subscribe(sub, Validity::forever());
    }
    std::thread::scope(|scope| {
        for t in 0..2 {
            let broker = &broker;
            scope.spawn(move || {
                let mut out = Vec::new();
                for i in 0..300i64 {
                    let event =
                        Event::from_pairs(vec![(attr, Value::Int((t + i) % 4))]).expect("valid");
                    out.clear();
                    let skipped = broker
                        .try_publish_into(&event, &mut out)
                        .expect("RCU publishes cannot fail");
                    assert_eq!(skipped, 0, "RCU has no shard locks to shed");
                    assert_eq!(out.len(), 1, "the match must never be dropped");
                }
            });
        }
    });
}

/// Same pin for `ErrorFast`: `try_publish_into` never reports overload
/// under RCU.
#[test]
fn rcu_try_publish_never_errors_despite_errorfast_policy() {
    let broker = SharedBroker::with_publish_mode(
        EngineKind::Counting,
        2,
        Backpressure::ErrorFast,
        PublishMode::Rcu,
    );
    let attr = broker.attr("k");
    let sub =
        Subscription::from_predicates(vec![Predicate::new(attr, Operator::Ge, Value::Int(0))])
            .expect("valid");
    broker.subscribe(sub, Validity::forever());
    let mut out = Vec::new();
    for i in 0..300i64 {
        let event = Event::from_pairs(vec![(attr, Value::Int(i))]).expect("valid");
        out.clear();
        let skipped = broker
            .try_publish_into(&event, &mut out)
            .expect("RCU publishes cannot fail with Overloaded");
        assert_eq!((skipped, out.len()), (0, 1));
    }
}
