//! Leader/follower replication at the broker level, including the
//! kill-the-leader chaos sweep.
//!
//! The headline property: cut the leader's log at **every record boundary
//! and mid-record** (the follower's view of a leader killed at an arbitrary
//! byte), replicate what survives into a follower, promote it, and the
//! promoted broker must equal a brute-force oracle — here, crash *recovery*
//! over the same truncated log, whose equivalence to the acked-op prefix is
//! already pinned byte-by-byte by `tests/durability.rs`. On top of state
//! equality: a freshly issued post-promotion id must never resurrect an id
//! the dead leader already handed out.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use pubsub_broker::{BrokerError, SharedBroker};
use pubsub_core::{Backpressure, EngineKind};
use pubsub_durability::replication::{self, TailChunk};
use pubsub_durability::{CorruptionPolicy, DurabilityConfig, FsyncPolicy, WalOp};
use pubsub_types::time::{LogicalTime, Validity};
use pubsub_types::{AttrId, Event, SubscriptionId, Value};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fp-replbrk-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn config() -> DurabilityConfig {
    DurabilityConfig {
        segment_bytes: u64::MAX, // single segment: simple byte accounting
        fsync: FsyncPolicy::OsManaged,
        corruption: CorruptionPolicy::Fail,
        snapshot_every_ops: 0,
    }
}

/// Tails `src` into `follower` until caught up (or the tail is incomplete),
/// installing a catch-up snapshot when the position predates the oldest
/// retained segment. Returns every record payload applied.
fn sync_follower(src: &Path, follower: &SharedBroker) -> Vec<Vec<u8>> {
    let mut applied = Vec::new();
    let mut pos = follower.durability().unwrap().next_lsn;
    loop {
        match replication::read_tail(src, pos, 64 * 1024).unwrap() {
            TailChunk::Records {
                first_lsn,
                payloads,
                ..
            } => {
                assert_eq!(first_lsn, pos, "stream is dense");
                pos = follower.apply_replicated(first_lsn, &payloads).unwrap();
                applied.extend(payloads);
            }
            TailChunk::SnapshotRequired { snapshot_lsn } => {
                let (lsn, bytes) = replication::snapshot_for_catchup(src)
                    .unwrap()
                    .expect("a snapshot must exist when one is demanded");
                assert_eq!(lsn, snapshot_lsn);
                follower.install_replicated_snapshot(lsn, &bytes).unwrap();
                pos = lsn;
            }
            TailChunk::CaughtUp { .. } | TailChunk::Incomplete { .. } => break,
        }
    }
    applied
}

/// A battery of probe events covering every attribute/value the workload
/// uses; two brokers that answer all probes identically (plus equal counts
/// and clocks) hold the same subscription set.
fn probes() -> Vec<Event> {
    let mut out = Vec::new();
    for a in 0..8u32 {
        for v in 0..6i64 {
            out.push(Event::builder().pair(AttrId(a), v).build().unwrap());
        }
    }
    out
}

fn assert_same_state(promoted: &SharedBroker, oracle: &SharedBroker, ctx: &str) {
    assert_eq!(
        promoted.subscription_count(),
        oracle.subscription_count(),
        "{ctx}: subscription count"
    );
    assert_eq!(promoted.now(), oracle.now(), "{ctx}: clock");
    assert_eq!(
        promoted.read_vocab(|v| (v.attrs.universe(), v.strings.len())),
        oracle.read_vocab(|v| (v.attrs.universe(), v.strings.len())),
        "{ctx}: vocabulary"
    );
    for (i, event) in probes().iter().enumerate() {
        assert_eq!(
            promoted.publish(event),
            oracle.publish(event),
            "{ctx}: probe {i}"
        );
    }
}

/// Drives a leader through a mixed workload: subscribes (some expiring),
/// unsubscribes, clock advances, and vocabulary interning.
fn run_leader_workload(leader: &SharedBroker) -> Vec<SubscriptionId> {
    let mut ids = Vec::new();
    for i in 0..40i64 {
        if i % 3 == 0 {
            leader.attr(&format!("name{}", i % 7));
        }
        if i % 6 == 0 {
            leader.string(&format!("val{}", i % 5));
        }
        let sub = Subscription::builder()
            .eq(AttrId((i % 5) as u32), i % 4)
            .build()
            .unwrap();
        let validity = if i % 3 == 1 {
            Validity::until(leader.now().plus(3))
        } else {
            Validity::forever()
        };
        ids.push(leader.try_subscribe(sub, validity).unwrap());
        if i % 5 == 4 {
            let _ = leader.try_unsubscribe(ids[(i as usize) / 2]).unwrap();
        }
        if i % 4 == 3 {
            leader.try_tick().unwrap();
        }
    }
    ids
}

use pubsub_types::Subscription;

#[test]
fn kill_the_leader_sweep_matches_recovery_oracle_at_every_cut() {
    let leader_dir = temp_dir("sweep-leader");
    let (leader, _) = SharedBroker::open_durable_with(
        EngineKind::Dynamic,
        2,
        Backpressure::Block,
        &leader_dir,
        config(),
    )
    .unwrap();
    run_leader_workload(&leader);
    drop(leader);

    let seg = replication::segment_paths(&leader_dir)
        .unwrap()
        .pop()
        .unwrap();
    let seg_name = seg.file_name().unwrap().to_owned();
    let full = fs::read(&seg).unwrap();

    // Cut points: inside the segment header, then for every record a cut
    // inside its header, one mid-payload, and one at its end boundary.
    let mut cuts: Vec<usize> = vec![0, 9, 16];
    let mut o = 16usize;
    while o < full.len() {
        let len = u32::from_le_bytes(full[o..o + 4].try_into().unwrap()) as usize;
        cuts.push(o + 4); // torn record header
        cuts.push(o + 8 + len / 2); // torn payload
        o += 8 + len;
        cuts.push(o); // clean boundary
    }
    assert_eq!(o, full.len());
    assert!(cuts.len() > 100, "the sweep must cover a real workload");

    for &cut in &cuts {
        let ctx = format!("cut at byte {cut}");
        let src_dir = temp_dir("sweep-src");
        fs::write(src_dir.join(&seg_name), &full[..cut]).unwrap();

        // The follower replicates what survives the cut, then takes over.
        let follower_dir = temp_dir("sweep-follower");
        let (follower, _) =
            SharedBroker::open_follower(EngineKind::Dynamic, 3, &follower_dir, config()).unwrap();
        let applied = sync_follower(&src_dir, &follower);
        let promoted_next = follower.promote().unwrap();
        assert!(!follower.is_follower(), "{ctx}: promotion flips the role");
        assert_eq!(promoted_next, applied.len() as u64, "{ctx}: log position");

        // The oracle: crash recovery over the same truncated log (already
        // pinned to equal the acked prefix by the durability sweep). Note
        // the differing shard counts — ids carry their own identity.
        let (oracle, _) = SharedBroker::open_durable_with(
            EngineKind::Counting,
            3,
            Backpressure::Block,
            &src_dir,
            config(),
        )
        .unwrap();
        assert_same_state(&follower, &oracle, &ctx);

        // Zero id resurrection: the first post-promotion id equals the
        // oracle's (same high-water) and names no subscription the dead
        // leader ever issued in the surviving prefix.
        let issued: BTreeSet<SubscriptionId> = applied
            .iter()
            .map(|p| WalOp::decode(p).unwrap())
            .filter_map(|op| match op {
                WalOp::Subscribe { id, .. } => Some(id),
                _ => None,
            })
            .collect();
        let fresh_sub = Subscription::builder()
            .eq(AttrId(0), Value::Int(0))
            .build()
            .unwrap();
        let follower_id = follower
            .try_subscribe(fresh_sub.clone(), Validity::forever())
            .unwrap();
        let oracle_id = oracle
            .try_subscribe(fresh_sub, Validity::forever())
            .unwrap();
        assert_eq!(follower_id, oracle_id, "{ctx}: id high-water preserved");
        assert!(
            !issued.contains(&follower_id),
            "{ctx}: fresh id {follower_id:?} resurrects a dead leader's id"
        );

        fs::remove_dir_all(&src_dir).unwrap();
        fs::remove_dir_all(&follower_dir).unwrap();
    }
    fs::remove_dir_all(&leader_dir).unwrap();
}

#[test]
fn snapshot_catchup_bridges_compacted_history_and_streaming_resumes() {
    let leader_dir = temp_dir("catchup-leader");
    let config = DurabilityConfig {
        segment_bytes: 128, // force many small segments so compaction bites
        ..config()
    };
    let (leader, _) = SharedBroker::open_durable_with(
        EngineKind::Dynamic,
        2,
        Backpressure::Block,
        &leader_dir,
        config,
    )
    .unwrap();
    run_leader_workload(&leader);
    // Snapshot + compact: the early segments vanish, so a follower starting
    // at LSN 0 can only catch up via the snapshot.
    leader.snapshot().unwrap();
    assert_eq!(
        replication::segment_paths(&leader_dir).unwrap().len(),
        1,
        "compaction retired the covered segments"
    );
    // Keep writing after the snapshot so the follower also streams records.
    let post_sub = Subscription::builder().eq(AttrId(1), 1i64).build().unwrap();
    leader.try_subscribe(post_sub, Validity::forever()).unwrap();
    leader.try_tick().unwrap();

    let follower_dir = temp_dir("catchup-follower");
    let (follower, _) =
        SharedBroker::open_follower(EngineKind::Dynamic, 2, &follower_dir, config).unwrap();
    let applied = sync_follower(&leader_dir, &follower);
    assert!(
        !applied.is_empty(),
        "records past the snapshot must stream normally"
    );
    assert_eq!(
        follower.durability().unwrap().next_lsn,
        leader.durability().unwrap().next_lsn,
        "follower caught up to the leader's log position"
    );
    assert_same_state(&follower, &leader, "after catch-up");

    // The replica survives its own restart: reopening the follower
    // directory recovers from the installed snapshot plus streamed tail.
    drop(follower);
    let (follower, _) =
        SharedBroker::open_follower(EngineKind::Dynamic, 2, &follower_dir, config).unwrap();
    assert_same_state(&follower, &leader, "after follower restart");

    fs::remove_dir_all(&leader_dir).unwrap();
    fs::remove_dir_all(&follower_dir).unwrap();
}

#[test]
fn follower_refuses_local_mutations_until_promoted() {
    let dir = temp_dir("readonly");
    let (follower, _) =
        SharedBroker::open_follower(EngineKind::Counting, 2, &dir, config()).unwrap();
    assert!(follower.is_follower());
    assert!(follower.durability().unwrap().follower);

    let sub = Subscription::builder().eq(AttrId(0), 1i64).build().unwrap();
    assert_eq!(
        follower.try_subscribe(sub.clone(), Validity::forever()),
        Err(BrokerError::Follower)
    );
    assert_eq!(
        follower.try_unsubscribe(SubscriptionId(0)),
        Err(BrokerError::Follower)
    );
    assert_eq!(follower.try_tick(), Err(BrokerError::Follower));
    assert_eq!(
        follower.try_advance_to(LogicalTime(5)),
        Err(BrokerError::Follower)
    );
    assert!(matches!(follower.snapshot(), Err(BrokerError::Follower)));

    // Matching stays available (read-only): an empty replica matches nothing,
    // and name resolution is lookup-only.
    let event = Event::builder().pair(AttrId(0), 1i64).build().unwrap();
    assert!(follower.publish(&event).is_empty());
    assert_eq!(follower.lookup_attr("price"), None);

    // Replicate an interning and a subscription, then the lookups resolve.
    let mut payloads = Vec::new();
    for op in [
        WalOp::InternAttr("price".into()),
        WalOp::InternString("nyse".into()),
        WalOp::Subscribe {
            id: SubscriptionId(0),
            sub: sub.clone(),
            validity: Validity::forever(),
        },
    ] {
        let mut p = Vec::new();
        op.encode(&mut p);
        payloads.push(p);
    }
    assert_eq!(follower.apply_replicated(0, &payloads), Ok(3));
    assert_eq!(follower.lookup_attr("price"), Some(AttrId(0)));
    assert!(follower.lookup_string("nyse").is_some());
    assert_eq!(follower.publish(&event), vec![SubscriptionId(0)]);

    // A batch that does not start at the append position is a divergence:
    // refused atomically, nothing applied.
    assert_eq!(
        follower.apply_replicated(7, &payloads),
        Err(BrokerError::ReplicationGap {
            expected: 3,
            got: 7
        })
    );
    // An undecodable payload is damage, not data.
    assert!(matches!(
        follower.apply_replicated(3, &[vec![0xFF, 0xFF]]),
        Err(BrokerError::Replication(_))
    ));

    // Promotion unlocks writes; a second promotion is meaningless.
    follower.promote().unwrap();
    assert!(!follower.is_follower());
    follower.try_subscribe(sub, Validity::forever()).unwrap();
    assert_eq!(follower.promote(), Err(BrokerError::NotFollower));
    assert_eq!(
        follower.apply_replicated(0, &[]),
        Err(BrokerError::NotFollower)
    );
    assert!(
        !replication::is_follower_dir(&dir),
        "promotion clears the marker"
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn foreign_durable_history_is_refused_but_follower_dirs_reopen() {
    let dir = temp_dir("foreign");
    // A plain durable broker writes real history…
    let (plain, _) = SharedBroker::open_durable_with(
        EngineKind::Counting,
        1,
        Backpressure::Block,
        &dir,
        config(),
    )
    .unwrap();
    let sub = Subscription::builder().eq(AttrId(0), 1i64).build().unwrap();
    plain.try_subscribe(sub, Validity::forever()).unwrap();
    drop(plain);

    // …which a follower open must refuse to adopt.
    match SharedBroker::open_follower(EngineKind::Counting, 1, &dir, config()) {
        Err(BrokerError::ForeignHistory(d)) => assert_eq!(d, dir),
        other => panic!("expected ForeignHistory, got {other:?}"),
    }

    // A genuine follower directory reopens across restarts.
    let fdir = temp_dir("foreign-follower");
    let (f, _) = SharedBroker::open_follower(EngineKind::Counting, 1, &fdir, config()).unwrap();
    let mut p = Vec::new();
    WalOp::AdvanceTo(LogicalTime(2)).encode(&mut p);
    f.apply_replicated(0, &[p]).unwrap();
    drop(f);
    let (f, _) = SharedBroker::open_follower(EngineKind::Counting, 1, &fdir, config()).unwrap();
    assert_eq!(f.now(), LogicalTime(2));
    assert_eq!(f.durability().unwrap().next_lsn, 1);

    fs::remove_dir_all(&dir).unwrap();
    fs::remove_dir_all(&fdir).unwrap();
}
