//! Broker-level recovery: the expiry clock, explicit unsubscribe and the
//! supervised sharded engine must agree across shard rebuilds — an id the
//! broker removed (for either reason) must never be resurrected by the
//! shard's replay log.
//!
//! The rebuild-forcing tests are runtime-gated on the `faults` feature
//! (`scripts/check.sh --chaos`); without it they reduce to no-ops.

use std::sync::Mutex;

use pubsub_broker::{Broker, LogicalTime, Validity};
use pubsub_core::{EngineKind, FAULT_WORKER_MATCH};
use pubsub_types::faults::{self, FaultAction, Schedule};
use pubsub_types::{AttrId, Operator, Predicate, Subscription, Value};

/// Serializes the tests that arm the process-global fault registry.
static LOCK: Mutex<()> = Mutex::new(());

fn sub(value: i64) -> Subscription {
    Subscription::from_predicates(vec![Predicate::new(
        AttrId(0),
        Operator::Eq,
        Value::Int(value),
    )])
    .unwrap()
}

#[test]
fn shard_health_is_none_for_unsharded_and_clean_for_sharded() {
    let broker = Broker::new(EngineKind::Counting);
    assert!(broker.shard_health().is_none());

    let broker = Broker::new_sharded(EngineKind::Counting, 2);
    let health = broker
        .shard_health()
        .expect("sharded engines report health");
    assert_eq!(health.worker_panics, 0);
    assert_eq!(health.shard_rebuilds, 0);
    assert_eq!(health.quarantined_events, 0);
}

/// Expired and explicitly unsubscribed ids must stay gone when a crashed
/// shard is rebuilt from its subscription log — the log is maintained on
/// the remove path too, so replay cannot resurrect them.
#[test]
fn expiry_and_unsubscribe_survive_shard_rebuild() {
    if !faults::enabled() {
        return;
    }
    let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    faults::clear();

    let mut broker = Broker::new_sharded(EngineKind::Counting, 2);
    let mut keep = Vec::new();
    let mut doomed = Vec::new();
    for i in 0..16 {
        if i % 2 == 0 {
            keep.push(broker.subscribe(sub(1), Validity::forever()));
        } else {
            doomed.push(broker.subscribe(sub(1), Validity::until(LogicalTime(10))));
        }
    }
    let dropped = keep.remove(0);
    assert!(broker.unsubscribe(dropped));
    let (expired, _) = broker.advance_to(LogicalTime(10));
    assert_eq!(expired, doomed.len());

    // Crash a shard on the next publish; the supervisor rebuilds it by
    // replaying the log, which must no longer contain the removed ids.
    faults::arm(
        FAULT_WORKER_MATCH,
        None,
        FaultAction::Panic,
        Schedule::Nth(1),
    );
    let event = broker.event(vec![(AttrId(0), Value::Int(1))]).unwrap();
    let matched = broker.publish(&event);
    assert_eq!(matched, keep, "exact post-rebuild match set");

    let health = broker.shard_health().unwrap();
    assert!(health.shard_rebuilds >= 1, "the publish forced a rebuild");
    assert!(health.worker_panics >= 1);

    // The expiry clock keeps working against the rebuilt shard: a second
    // wave of timed subscriptions dies on schedule.
    let late = broker.subscribe(sub(1), Validity::until(LogicalTime(20)));
    let matched = broker.publish(&event);
    assert!(matched.contains(&late));
    let (expired, _) = broker.advance_to(LogicalTime(20));
    assert_eq!(expired, 1);
    let matched = broker.publish(&event);
    assert_eq!(matched, keep, "late subscription expired after the rebuild");
    faults::clear();
}

/// A rebuild happening *before* the expiry tick must not detach the expiry
/// heap from the engine: replay restores the still-valid subscription and
/// the later tick still removes it from the rebuilt shard.
#[test]
fn expiry_fires_correctly_after_an_earlier_rebuild() {
    if !faults::enabled() {
        return;
    }
    let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    faults::clear();

    let mut broker = Broker::new_sharded(EngineKind::Counting, 1);
    let keep = broker.subscribe(sub(1), Validity::forever());
    let timed = broker.subscribe(sub(1), Validity::until(LogicalTime(5)));

    faults::arm(
        FAULT_WORKER_MATCH,
        None,
        FaultAction::Panic,
        Schedule::Nth(1),
    );
    let event = broker.event(vec![(AttrId(0), Value::Int(1))]).unwrap();
    let matched = broker.publish(&event);
    assert_eq!(matched, vec![keep, timed], "replay restored the timed sub");
    assert!(broker.shard_health().unwrap().shard_rebuilds >= 1);

    let (expired, _) = broker.advance_to(LogicalTime(5));
    assert_eq!(expired, 1);
    let matched = broker.publish(&event);
    assert_eq!(
        matched,
        vec![keep],
        "expiry removed it from the rebuilt shard"
    );
    faults::clear();
}
