//! Stress and differential tests for the lock-free (RCU) publish path.
//!
//! Three layers of evidence that snapshot publishing is correct:
//!
//! 1. **Racing invariants** — publishers run full speed against
//!    subscribe/unsubscribe/advance churn and assert, *per publish*, that a
//!    set of pinned forever-subscriptions always matches exactly: no torn
//!    match sets, no duplicates, no ids from the churn population (whose
//!    predicates target a disjoint value space), and in particular no ids
//!    from subscriptions that were removed and reclaimed.
//! 2. **Post-quiescence oracle equality** — once the churn threads join, the
//!    broker's answer for every value is compared against a brute-force
//!    model of the surviving subscription set.
//! 3. **Reclamation** — retired snapshots are actually freed: the retired
//!    list drains to zero at quiescence instead of accumulating one garbage
//!    snapshot per mutation.
//!
//! The full matrix runs all five paper engines × shard counts {1, 2, 7}.

use pubsub_broker::{LogicalTime, PublishMode, SharedBroker, Validity};
use pubsub_core::EngineKind;
use pubsub_types::{AttrId, Event, Subscription, SubscriptionId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

const SHARD_COUNTS: [usize; 3] = [1, 2, 7];

/// Values the pinned (never-removed) subscriptions listen on.
const PINNED_VALUES: i64 = 6;
/// Pinned subscriptions per value.
const PINNED_PER_VALUE: usize = 3;
/// Values the churned subscriptions listen on — disjoint from the pinned
/// space so racing publishers can assert exact match sets.
const CHURN_BASE: i64 = 1_000;
const CHURN_VALUES: i64 = 6;

fn event(attr: AttrId, v: i64) -> Event {
    Event::builder().pair(attr, v).build().unwrap()
}

fn sub(attr: AttrId, v: i64) -> Subscription {
    Subscription::builder().eq(attr, v).build().unwrap()
}

/// Registers the pinned population and returns value → sorted ids.
fn pin_subscriptions(broker: &SharedBroker, attr: AttrId) -> BTreeMap<i64, Vec<SubscriptionId>> {
    let mut pinned: BTreeMap<i64, Vec<SubscriptionId>> = BTreeMap::new();
    for v in 0..PINNED_VALUES {
        for _ in 0..PINNED_PER_VALUE {
            pinned
                .entry(v)
                .or_default()
                .push(broker.subscribe(sub(attr, v), Validity::forever()));
        }
    }
    for ids in pinned.values_mut() {
        ids.sort_unstable();
    }
    pinned
}

/// What the churn thread did to one subscription, for the quiescence oracle.
struct ChurnRecord {
    id: SubscriptionId,
    value: i64,
    until: Option<LogicalTime>,
    removed: bool,
}

/// Runs subscribe/unsubscribe/advance churn; returns the full op log.
fn run_churn(broker: &SharedBroker, attr: AttrId, seed: u64, ops: usize) -> Vec<ChurnRecord> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut log: Vec<ChurnRecord> = Vec::new();
    for _ in 0..ops {
        match rng.gen_range(0u32..10) {
            // Subscribe in the churn value space, sometimes with an expiry.
            0..=5 => {
                let value = CHURN_BASE + rng.gen_range(0..CHURN_VALUES);
                let until = rng
                    .gen_bool(0.4)
                    .then(|| broker.now().plus(rng.gen_range(1..12)));
                let validity = match until {
                    Some(u) => Validity::until(u),
                    None => Validity::forever(),
                };
                let id = broker.subscribe(sub(attr, value), validity);
                log.push(ChurnRecord {
                    id,
                    value,
                    until,
                    removed: false,
                });
            }
            // Unsubscribe one of our own earlier subscriptions.
            6..=8 => {
                if log.is_empty() {
                    continue;
                }
                let pick = rng.gen_range(0..log.len());
                let rec = &mut log[pick];
                if !rec.removed {
                    // `false` means an expiry got there first; either way the
                    // subscription is gone and the oracle treats it as such.
                    broker.unsubscribe(rec.id);
                    rec.removed = true;
                }
            }
            // Advance the clock, expiring bounded-validity churn subs.
            _ => {
                broker.tick();
            }
        }
    }
    log
}

/// The racing publishers + churn stress for one engine × shard combination.
fn stress_combo(kind: EngineKind, shards: usize) {
    let broker = SharedBroker::new(kind, shards);
    assert_eq!(broker.publish_mode(), PublishMode::Rcu);
    let attr = broker.attr("stress");
    let pinned = Arc::new(pin_subscriptions(&broker, attr));
    let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));

    // Fixed round counts rather than a stop flag: on a single-core box the
    // churn loop can finish before a publisher is ever scheduled, and both
    // sides must actually run for the race to mean anything.
    let mut publishers = Vec::new();
    for t in 0..2u64 {
        let broker = broker.clone();
        let pinned = Arc::clone(&pinned);
        let failures = Arc::clone(&failures);
        publishers.push(std::thread::spawn(move || {
            let mut rng = SmallRng::seed_from_u64(0xF00D + t);
            for rounds in 1u64..=300 {
                let v = rng.gen_range(0..PINNED_VALUES);
                let expected = &pinned[&v];
                // Alternate the single-event and batched read paths.
                let results = if rounds % 4 == 0 {
                    let batch = [event(attr, v), event(attr, CHURN_BASE + (v % CHURN_VALUES))];
                    broker.publish_batch(&batch)
                } else {
                    vec![broker.publish(&event(attr, v))]
                };
                let got = &results[0];
                if got != expected {
                    failures
                        .lock()
                        .unwrap()
                        .push(format!("value {v}: got {got:?}, want {expected:?}"));
                    return;
                }
                // Churn-space results race with mutators, so only structural
                // invariants hold: sorted, duplicate-free, never a pinned id.
                for out in &results[1..] {
                    if !out.windows(2).all(|w| w[0] < w[1]) {
                        failures
                            .lock()
                            .unwrap()
                            .push(format!("unsorted or duplicated churn matches: {out:?}"));
                        return;
                    }
                    if out
                        .iter()
                        .any(|id| pinned.values().flatten().any(|p| p == id))
                    {
                        failures
                            .lock()
                            .unwrap()
                            .push(format!("pinned id matched a churn-space event: {out:?}"));
                        return;
                    }
                }
            }
        }));
    }

    let log = run_churn(&broker, attr, 0xC0FFEE ^ shards as u64, 250);
    for p in publishers {
        p.join().unwrap();
    }
    let failures = failures.lock().unwrap();
    assert!(
        failures.is_empty(),
        "[{kind:?} × {shards} shards] racing publisher saw inconsistent matches:\n{}",
        failures.join("\n")
    );

    // ---- post-quiescence oracle equality -----------------------------------
    // One last tick expires everything with `until <= now + 1`, then the
    // broker must agree with a brute-force model of the op log.
    broker.tick();
    let now = broker.now();
    let mut alive: BTreeMap<i64, Vec<SubscriptionId>> = BTreeMap::new();
    for rec in &log {
        if !rec.removed && rec.until.is_none_or(|u| u > now) {
            alive.entry(rec.value).or_default().push(rec.id);
        }
    }
    for ids in alive.values_mut() {
        ids.sort_unstable();
    }
    for v in 0..PINNED_VALUES {
        assert_eq!(
            broker.publish(&event(attr, v)),
            pinned[&v],
            "[{kind:?} × {shards} shards] pinned value {v} diverged at quiescence"
        );
    }
    for v in CHURN_BASE..CHURN_BASE + CHURN_VALUES {
        let expected = alive.get(&v).cloned().unwrap_or_default();
        assert_eq!(
            broker.publish(&event(attr, v)),
            expected,
            "[{kind:?} × {shards} shards] churn value {v} diverged at quiescence"
        );
    }

    // ---- reclamation -------------------------------------------------------
    let status = broker.rcu_status();
    assert!(status.flips > 0, "mutations must flip the snapshot");
    assert_eq!(status.epoch, status.flips + 1);
    assert_eq!(status.active_readers, 0, "no publisher left pinned");
    broker.compact();
    let status = broker.rcu_status();
    assert_eq!(
        status.retired, 0,
        "[{kind:?} × {shards} shards] retired snapshots must drain at quiescence"
    );
}

#[test]
fn racing_publishers_see_consistent_snapshots_counting() {
    for shards in SHARD_COUNTS {
        stress_combo(EngineKind::Counting, shards);
    }
}

#[test]
fn racing_publishers_see_consistent_snapshots_propagation() {
    for shards in SHARD_COUNTS {
        stress_combo(EngineKind::Propagation, shards);
    }
}

#[test]
fn racing_publishers_see_consistent_snapshots_propagation_prefetch() {
    for shards in SHARD_COUNTS {
        stress_combo(EngineKind::PropagationPrefetch, shards);
    }
}

#[test]
fn racing_publishers_see_consistent_snapshots_static() {
    for shards in SHARD_COUNTS {
        stress_combo(EngineKind::Static, shards);
    }
}

#[test]
fn racing_publishers_see_consistent_snapshots_dynamic() {
    for shards in SHARD_COUNTS {
        stress_combo(EngineKind::Dynamic, shards);
    }
}

/// Single-threaded randomized differential churn: every operation is
/// mirrored into a plain model map, and every publish must return exactly
/// the model's answer. Exercises base/delta/tombstone bookkeeping and the
/// merge threshold without scheduling noise.
fn differential_combo(kind: EngineKind, shards: usize, seed: u64) {
    let broker = SharedBroker::new(kind, shards);
    let attr = broker.attr("diff");
    let mut rng = SmallRng::seed_from_u64(seed);
    // id → (value, until); engines drop a bounded sub only when the clock
    // passes `until`, so the model prunes on tick, not lazily.
    let mut model: BTreeMap<SubscriptionId, (i64, Option<LogicalTime>)> = BTreeMap::new();
    for _ in 0..500 {
        match rng.gen_range(0u32..10) {
            0..=4 => {
                let value = rng.gen_range(0i64..16);
                let until = rng
                    .gen_bool(0.3)
                    .then(|| broker.now().plus(rng.gen_range(1..8)));
                let validity = match until {
                    Some(u) => Validity::until(u),
                    None => Validity::forever(),
                };
                let id = broker.subscribe(sub(attr, value), validity);
                model.insert(id, (value, until));
            }
            5..=6 => {
                if let Some(&id) = model.keys().nth(rng.gen_range(0..model.len().max(1))) {
                    assert!(broker.unsubscribe(id), "model said {id} was live");
                    model.remove(&id);
                }
            }
            7 => {
                broker.tick();
                let now = broker.now();
                model.retain(|_, (_, until)| until.is_none_or(|u| u > now));
            }
            _ => {
                let v = rng.gen_range(0i64..16);
                let mut expected: Vec<SubscriptionId> = model
                    .iter()
                    .filter(|(_, (value, _))| *value == v)
                    .map(|(&id, _)| id)
                    .collect();
                expected.sort_unstable();
                assert_eq!(
                    broker.publish(&event(attr, v)),
                    expected,
                    "[{kind:?} × {shards} shards, seed {seed}] diverged from model"
                );
            }
        }
    }
}

#[test]
fn differential_churn_matches_model_for_every_engine_and_shard_count() {
    for kind in EngineKind::PAPER_ENGINES {
        for shards in SHARD_COUNTS {
            differential_combo(kind, shards, 0xD1FF ^ ((shards as u64) << 8));
        }
    }
}

/// The RCU and locked publish paths must agree on identical histories.
#[test]
fn rcu_and_locked_modes_agree() {
    use pubsub_core::Backpressure;
    let rcu = SharedBroker::new(EngineKind::Counting, 3);
    let locked = SharedBroker::with_publish_mode(
        EngineKind::Counting,
        3,
        Backpressure::Block,
        PublishMode::Locked,
    );
    assert_eq!(locked.publish_mode(), PublishMode::Locked);
    assert_eq!(locked.rcu_status().flips, 0, "locked mode never flips");
    let attr_r = rcu.attr("m");
    let attr_l = locked.attr("m");
    let mut rng = SmallRng::seed_from_u64(7);
    let mut ids: Vec<(SubscriptionId, SubscriptionId)> = Vec::new();
    for _ in 0..200 {
        if rng.gen_bool(0.7) || ids.is_empty() {
            let v = rng.gen_range(0i64..8);
            ids.push((
                rcu.subscribe(sub(attr_r, v), Validity::forever()),
                locked.subscribe(sub(attr_l, v), Validity::forever()),
            ));
        } else {
            let (a, b) = ids.swap_remove(rng.gen_range(0..ids.len()));
            assert!(rcu.unsubscribe(a));
            assert!(locked.unsubscribe(b));
        }
        let v = rng.gen_range(0i64..8);
        assert_eq!(
            rcu.publish(&event(attr_r, v)),
            locked.publish(&event(attr_l, v)),
            "modes diverged (subscribe order is identical, so ids align)"
        );
    }
}

/// Old snapshots must be freed as mutations retire them — the retired list
/// stays bounded during churn instead of growing by one per flip.
#[test]
fn retired_snapshots_do_not_accumulate() {
    let broker = SharedBroker::new(EngineKind::Counting, 2);
    let attr = broker.attr("r");
    let mut ids = Vec::new();
    for i in 0..400i64 {
        ids.push(broker.subscribe(sub(attr, i % 5), Validity::forever()));
        if i % 3 == 0 {
            broker.unsubscribe(ids.swap_remove(0));
        }
        // With no reader pinned, each flip reclaims its predecessor: the
        // retired list never holds more than the one snapshot just replaced.
        assert!(
            broker.rcu_status().retired <= 1,
            "unbounded epoch garbage at mutation {i}: {:?}",
            broker.rcu_status()
        );
    }
    let status = broker.rcu_status();
    assert!(status.flips >= 400 + 400 / 3);
    broker.compact();
    assert_eq!(broker.rcu_status().retired, 0);
}
