//! Durable session table: WAL replay, snapshot folding, torn-pair repair,
//! reap semantics and replication/promotion of session records.
//!
//! The session table maps resume tokens to the subscription ids they own.
//! Its invariants, each pinned here:
//!
//! * Restart restores the full table — bindings, the token high-water mark
//!   (no token is ever reissued), and nothing else.
//! * `SessionReap` is **one** record; replay re-derives the per-subscription
//!   unsubscribes (like `AdvanceTo` re-derives expiries).
//! * The bind-before-subscribe / unsubscribe-before-release record order
//!   means any crash cut leaves at worst a *dangling binding* (a bound id
//!   with no live subscription), never an ownerless live subscription; the
//!   next writable open prunes danglers. Followers do **not** prune — their
//!   dangling binding may be an in-flight pair — promotion does.

use std::fs;
use std::path::PathBuf;

use pubsub_broker::{BrokerError, SharedBroker};
use pubsub_core::{Backpressure, EngineKind};
use pubsub_durability::{
    CorruptionPolicy, DurabilityConfig, FsyncPolicy, Wal, WalOp, FAULT_APPEND,
};
use pubsub_types::faults::{self, FaultAction, Schedule};
use pubsub_types::time::Validity;
use pubsub_types::{AttrId, Event, Subscription, SubscriptionId};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fp-sessbrk-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn config() -> DurabilityConfig {
    DurabilityConfig {
        segment_bytes: u64::MAX,
        fsync: FsyncPolicy::OsManaged,
        corruption: CorruptionPolicy::Fail,
        snapshot_every_ops: 0,
    }
}

fn open(dir: &PathBuf) -> SharedBroker {
    SharedBroker::open_durable_with(EngineKind::Dynamic, 2, Backpressure::Block, dir, config())
        .unwrap()
        .0
}

fn sub(key: u32, val: i64) -> Subscription {
    Subscription::builder()
        .eq(AttrId(key), val)
        .build()
        .unwrap()
}

fn ids(broker: &SharedBroker, token: u64) -> Vec<u32> {
    broker
        .session_subscriptions(token)
        .unwrap_or_else(|| panic!("session {token} should exist"))
        .into_iter()
        .map(|id| id.0)
        .collect()
}

/// The whole table — tokens, bindings, and the token high-water mark —
/// survives a restart; a released binding stays released.
#[test]
fn sessions_survive_restart() {
    let dir = temp_dir("restart");
    let broker = open(&dir);

    let t1 = broker.try_session_create().unwrap();
    let t2 = broker.try_session_create().unwrap();
    assert_eq!(
        (t1, t2),
        (1, 2),
        "tokens start at 1 (0 is the wire sentinel)"
    );

    let a = broker
        .try_subscribe_bound(t1, sub(0, 1), Validity::forever())
        .unwrap();
    let b = broker
        .try_subscribe_bound(t1, sub(0, 2), Validity::forever())
        .unwrap();
    let c = broker
        .try_subscribe_bound(t2, sub(1, 3), Validity::forever())
        .unwrap();
    assert!(broker.try_unsubscribe_bound(t1, a).unwrap());

    drop(broker);
    let broker = open(&dir);

    assert_eq!(broker.session_count(), 2);
    assert_eq!(ids(&broker, t1), vec![b.0]);
    assert_eq!(ids(&broker, t2), vec![c.0]);
    assert_eq!(broker.subscription_count(), 2);
    assert_eq!(
        broker.session_rows(),
        vec![(t1, vec![b]), (t2, vec![c])],
        "rows are sorted by token"
    );

    // High-water mark: the restarted broker never reissues a token.
    assert_eq!(broker.try_session_create().unwrap(), 3);

    // And the surviving subscriptions still match.
    let ev = Event::builder().pair(AttrId(0), 2i64).build().unwrap();
    assert_eq!(broker.publish(&ev), vec![b]);
    fs::remove_dir_all(&dir).unwrap();
}

/// Reap logs exactly one record, frees every owned subscription now, and
/// replay reproduces both effects; a reaped token is indistinguishable
/// from one never issued.
#[test]
fn reap_is_one_record_and_survives_restart() {
    let dir = temp_dir("reap");
    let broker = open(&dir);

    let t = broker.try_session_create().unwrap();
    let keep = broker.try_session_create().unwrap();
    for v in 0..3 {
        broker
            .try_subscribe_bound(t, sub(0, v), Validity::forever())
            .unwrap();
    }
    let kept = broker
        .try_subscribe_bound(keep, sub(1, 9), Validity::forever())
        .unwrap();

    let reaped = broker.try_session_reap(t).unwrap();
    assert_eq!(
        reaped.len(),
        3,
        "sorted ids of everything the session owned"
    );
    assert!(reaped.windows(2).all(|w| w[0] < w[1]));
    assert_eq!(broker.subscription_count(), 1);
    assert_eq!(broker.session_subscriptions(t), None);

    // Every bound API refuses the reaped token exactly like an unknown one.
    assert_eq!(
        broker.try_subscribe_bound(t, sub(0, 0), Validity::forever()),
        Err(BrokerError::UnknownSession(t))
    );
    assert_eq!(
        broker.try_unsubscribe_bound(t, reaped[0]),
        Err(BrokerError::UnknownSession(t))
    );
    assert_eq!(
        broker.try_session_reap(t),
        Err(BrokerError::UnknownSession(t))
    );
    drop(broker);

    // One record on disk: a thousand-subscription reap would cost the same.
    let reap_records = Wal::dump(&dir)
        .unwrap()
        .iter()
        .filter(|(_, op)| matches!(op, WalOp::SessionReap { .. }))
        .count();
    assert_eq!(reap_records, 1);

    // Replay re-derives the unsubscribes from the table.
    let broker = open(&dir);
    assert_eq!(broker.session_subscriptions(t), None);
    assert_eq!(ids(&broker, keep), vec![kept.0]);
    assert_eq!(broker.subscription_count(), 1);
    assert_eq!(
        broker.try_session_reap(t),
        Err(BrokerError::UnknownSession(t))
    );
    fs::remove_dir_all(&dir).unwrap();
}

/// Unknown tokens are typed refusals; an id owned by a *different* session
/// is an idempotent `Ok(false)`, not an error (and not an unbind).
#[test]
fn unknown_tokens_and_foreign_ids_are_refused() {
    let dir = temp_dir("unknown");
    let broker = open(&dir);

    assert_eq!(
        broker.try_subscribe_bound(99, sub(0, 0), Validity::forever()),
        Err(BrokerError::UnknownSession(99))
    );
    assert_eq!(
        broker.try_unsubscribe_bound(99, SubscriptionId(0)),
        Err(BrokerError::UnknownSession(99))
    );
    assert_eq!(
        broker.try_session_reap(99),
        Err(BrokerError::UnknownSession(99))
    );

    let t1 = broker.try_session_create().unwrap();
    let t2 = broker.try_session_create().unwrap();
    let owned = broker
        .try_subscribe_bound(t1, sub(0, 1), Validity::forever())
        .unwrap();
    assert_eq!(broker.try_unsubscribe_bound(t2, owned), Ok(false));
    assert_eq!(ids(&broker, t1), vec![owned.0], "binding untouched");
    assert_eq!(broker.subscription_count(), 1);
    fs::remove_dir_all(&dir).unwrap();
}

/// The snapshot folds the session table: recovery from snapshot + empty
/// tail restores tokens, bindings and the high-water mark.
#[test]
fn snapshot_folds_the_session_table() {
    let dir = temp_dir("snapshot");
    let broker = open(&dir);

    let t1 = broker.try_session_create().unwrap();
    let gone = broker.try_session_create().unwrap();
    let a = broker
        .try_subscribe_bound(t1, sub(0, 1), Validity::forever())
        .unwrap();
    broker.try_session_reap(gone).unwrap();
    broker.snapshot().unwrap();
    // Post-snapshot tail on top of the folded table.
    let b = broker
        .try_subscribe_bound(t1, sub(0, 2), Validity::forever())
        .unwrap();
    drop(broker);

    let (broker, report) = SharedBroker::open_durable_with(
        EngineKind::Dynamic,
        2,
        Backpressure::Block,
        &dir,
        config(),
    )
    .unwrap();
    assert!(
        report.snapshot_lsn.is_some(),
        "recovery must start from the snapshot"
    );
    assert_eq!(broker.session_count(), 1);
    assert_eq!(ids(&broker, t1), vec![a.0, b.0]);
    assert_eq!(broker.session_subscriptions(gone), None, "reap was folded");
    assert!(
        broker.try_session_create().unwrap() > gone,
        "high-water folded"
    );
    fs::remove_dir_all(&dir).unwrap();
}

/// A crash between `SessionBind` and its `Subscribe` leaves a dangling
/// binding; the next writable open prunes it and the reissued id binds
/// cleanly. (Injected via a WAL append fault on the second record of the
/// pair — the bind reaches disk, the subscribe does not.)
#[test]
fn torn_bind_is_pruned_at_reopen() {
    if !faults::enabled() {
        eprintln!("skipping: pubsub-types/faults feature is off");
        return;
    }
    let dir = temp_dir("torn-bind");
    faults::clear();
    let broker = open(&dir);
    let t = broker.try_session_create().unwrap();
    let a = broker
        .try_subscribe_bound(t, sub(0, 1), Validity::forever())
        .unwrap();

    // Next two appends are the pair; fail the second (the Subscribe).
    faults::arm(FAULT_APPEND, None, FaultAction::Fail, Schedule::Nth(2));
    let err = broker
        .try_subscribe_bound(t, sub(0, 2), Validity::forever())
        .unwrap_err();
    assert!(matches!(err, BrokerError::Degraded(_)), "got {err}");
    faults::clear();
    assert_eq!(
        ids(&broker, t),
        vec![a.0],
        "failed op never applied in memory"
    );
    drop(broker);

    // The log now ends ...SessionBind{t, id} with no Subscribe. Writable
    // recovery prunes the dangler; nothing else is lost.
    let broker = open(&dir);
    assert_eq!(ids(&broker, t), vec![a.0]);
    assert_eq!(broker.subscription_count(), 1);

    // The pruned id is reissued and binds for real this time.
    let b = broker
        .try_subscribe_bound(t, sub(0, 2), Validity::forever())
        .unwrap();
    assert_eq!(ids(&broker, t), vec![a.0, b.0]);
    let ev = Event::builder().pair(AttrId(0), 2i64).build().unwrap();
    assert_eq!(broker.publish(&ev), vec![b]);
    fs::remove_dir_all(&dir).unwrap();
}

/// Replaying a `SessionBind` for an id the dead broker later reissued to a
/// different session must *steal* the binding: the last bind in the log
/// wins, because it is the only one whose Subscribe committed.
#[test]
fn replay_steals_rebound_ids() {
    let dir = temp_dir("steal");
    // Hand-write the exact crash shape: session 1's bind landed but its
    // Subscribe was torn away; the reopened broker reissued id 0 to
    // session 2, whose pair fully committed.
    {
        let (mut wal, _) = Wal::open(&dir, config()).unwrap();
        for op in [
            WalOp::SessionCreate { token: 1 },
            WalOp::SessionBind {
                token: 1,
                id: SubscriptionId(0),
            },
            WalOp::SessionCreate { token: 2 },
            WalOp::SessionBind {
                token: 2,
                id: SubscriptionId(0),
            },
            WalOp::Subscribe {
                id: SubscriptionId(0),
                sub: sub(0, 1),
                validity: Validity::forever(),
            },
        ] {
            wal.append(&op).unwrap();
        }
        wal.sync().unwrap();
    }

    let broker = open(&dir);
    assert_eq!(ids(&broker, 2), vec![0], "last bind wins");
    assert_eq!(
        ids(&broker, 1),
        Vec::<u32>::new(),
        "prior owner lost the id"
    );
    assert_eq!(broker.subscription_count(), 1);
    fs::remove_dir_all(&dir).unwrap();
}

/// Session records flow through `apply_replicated`: a follower mirrors the
/// table (including a dangling bind it must *not* prune — the pair may
/// still be in flight on the leader); promotion prunes and the promoted
/// broker issues tokens above the replicated high-water mark.
#[test]
fn session_records_replicate_and_promotion_prunes() {
    let dir = temp_dir("follower");
    let (follower, _) =
        SharedBroker::open_follower(EngineKind::Dynamic, 2, &dir, config()).unwrap();

    let mut payloads = Vec::new();
    for op in [
        WalOp::SessionCreate { token: 1 },
        WalOp::SessionBind {
            token: 1,
            id: SubscriptionId(0),
        },
        WalOp::Subscribe {
            id: SubscriptionId(0),
            sub: sub(0, 1),
            validity: Validity::forever(),
        },
        WalOp::SessionCreate { token: 2 },
        // Dangling: the leader's Subscribe for id 1 has not arrived (yet).
        WalOp::SessionBind {
            token: 2,
            id: SubscriptionId(1),
        },
    ] {
        let mut p = Vec::new();
        op.encode(&mut p);
        payloads.push(p);
    }
    assert_eq!(follower.apply_replicated(0, &payloads), Ok(5));

    // The replica serves session reads — this is the server's hydration
    // source after failover — and keeps the dangler verbatim.
    assert_eq!(ids(&follower, 1), vec![0]);
    assert_eq!(ids(&follower, 2), vec![1], "follower must not prune");
    assert_eq!(follower.subscription_count(), 1);
    assert_eq!(
        follower.try_session_create(),
        Err(BrokerError::Follower),
        "followers never mint tokens"
    );

    // Promotion is the writable open: the dangler goes, tokens continue
    // above the replicated high-water mark, and bound writes work.
    follower.promote().unwrap();
    assert_eq!(ids(&follower, 2), Vec::<u32>::new(), "pruned at promotion");
    assert_eq!(follower.try_session_create().unwrap(), 3);
    let id = follower
        .try_subscribe_bound(2, sub(1, 5), Validity::forever())
        .unwrap();
    assert_eq!(ids(&follower, 2), vec![id.0]);

    // A replicated reap frees everything the session owned.
    // (On the now-promoted broker the API path covers the same replay arm
    // via restart; here we exercise the local reap for completeness.)
    assert_eq!(
        follower.try_session_reap(1).unwrap(),
        vec![SubscriptionId(0)]
    );
    assert_eq!(follower.session_subscriptions(1), None);
    fs::remove_dir_all(&dir).unwrap();
}

/// A replicated `SessionReap` re-derives the unsubscribes on the follower,
/// exactly as local replay does.
#[test]
fn replicated_reap_frees_subscriptions() {
    let dir = temp_dir("repl-reap");
    let (follower, _) =
        SharedBroker::open_follower(EngineKind::Dynamic, 2, &dir, config()).unwrap();

    let mut payloads = Vec::new();
    for op in [
        WalOp::SessionCreate { token: 1 },
        WalOp::SessionBind {
            token: 1,
            id: SubscriptionId(0),
        },
        WalOp::Subscribe {
            id: SubscriptionId(0),
            sub: sub(0, 1),
            validity: Validity::forever(),
        },
        WalOp::SessionBind {
            token: 1,
            id: SubscriptionId(1),
        },
        WalOp::Subscribe {
            id: SubscriptionId(1),
            sub: sub(0, 2),
            validity: Validity::forever(),
        },
        WalOp::SessionReap { token: 1 },
    ] {
        let mut p = Vec::new();
        op.encode(&mut p);
        payloads.push(p);
    }
    assert_eq!(follower.apply_replicated(0, &payloads), Ok(6));
    assert_eq!(follower.session_subscriptions(1), None);
    assert_eq!(follower.subscription_count(), 0);
    let ev = Event::builder().pair(AttrId(0), 1i64).build().unwrap();
    assert!(
        follower.publish(&ev).is_empty(),
        "no ghost matches after reap"
    );
    fs::remove_dir_all(&dir).unwrap();
}
