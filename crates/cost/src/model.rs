//! The cost model of paper §3.1.
//!
//! Per-event matching cost of a clustering instance `C` with hashing
//! configuration `H` (simplified formula, §3.1):
//!
//! ```text
//! matching(S, C, H) = K_r·|H|  +  Σ_{H∈H} μ(H)·(C_h + K_h·|H.A|)
//!                  +  Σ_{s∈S} ν(C(s).p) · checking(C(s).p, s)
//! ```
//!
//! and space cost
//!
//! ```text
//! Space(S, C, H) = Σ_{H} (i_space + Σ_p h_space)  +  Σ_c c_space(c.p, c)
//! ```
//!
//! All constants are configurable via [`CostConstants`]; the defaults are
//! calibrated in "abstract work units" that roughly track our implementation
//! (one unit ≈ one predicate check).

use crate::stats::SelectivityEstimator;
use pubsub_types::{AttrId, AttrSet, Subscription, Value};

/// The constants of the simplified cost formula.
#[derive(Debug, Clone, Copy)]
pub struct CostConstants {
    /// `K_r` — per-index retrieval cost (per event, per hash table).
    pub k_r: f64,
    /// `C_h` — fixed cost of one hash probe.
    pub c_h: f64,
    /// `K_h` — per-attribute cost of computing a multi-attribute hash.
    pub k_h: f64,
    /// `K_c` — cost of checking one remaining predicate of one subscription.
    pub k_c: f64,
    /// `i_space` — bytes to create an empty hash table.
    pub i_space: f64,
    /// `h_space` — bytes per hash-table entry (access predicate).
    pub h_space: f64,
    /// `K_space` — bytes per remaining-predicate reference in a cluster.
    pub k_space: f64,
}

impl Default for CostConstants {
    /// Calibrated on the reference implementation: one cluster check is a
    /// sequential cache-friendly array read (~1–2 ns); one hash-table probe
    /// is one or two cold cache misses plus tuple hashing (~100–200 ns).
    /// A table must therefore save on the order of a hundred checks per
    /// event before it pays for its probe — with cheap-probe constants the
    /// optimizers build dozens of marginal tables whose probe cost exceeds
    /// their savings (measured on the Figure 4 workloads).
    fn default() -> Self {
        Self {
            k_r: 10.0,
            c_h: 120.0,
            k_h: 5.0,
            k_c: 1.0,
            i_space: 256.0,
            h_space: 32.0,
            k_space: 8.0,
        }
    }
}

impl CostConstants {
    /// `checking(p, s)`: cost of verifying a subscription of `sub_size`
    /// predicates whose access predicate covers `access_len` of them.
    ///
    /// The `1 +` accounts for touching the subscription at all (reading its
    /// id and columns) even when nothing remains to check.
    #[inline]
    pub fn checking(&self, sub_size: usize, access_len: usize) -> f64 {
        debug_assert!(access_len <= sub_size);
        self.k_c * (1.0 + (sub_size - access_len) as f64)
    }

    /// Per-event overhead of one more hash table with schema size
    /// `schema_len` probed with probability `mu`.
    #[inline]
    pub fn table_overhead(&self, mu: f64, schema_len: usize) -> f64 {
        self.k_r + mu * (self.c_h + self.k_h * schema_len as f64)
    }

    /// Cluster bytes for one subscription with `remaining` unchecked
    /// predicates (its bit-vector references plus its id slot).
    #[inline]
    pub fn cluster_bytes(&self, remaining: usize) -> f64 {
        self.k_space * (remaining as f64 + 1.0)
    }
}

/// The cost-relevant abstraction of one subscription.
///
/// The optimizer never sees full [`Subscription`]s — only the equality pairs
/// (candidate access-predicate components) and the total size, which is all
/// formulas 3.1/3.2 depend on.
#[derive(Debug, Clone)]
pub struct SubscriptionProfile {
    /// The equality pairs `(attr, value)`, sorted by attribute id.
    pub eq_pairs: Vec<(AttrId, Value)>,
    /// Total number of predicates (equality + inequality).
    pub size: usize,
}

impl SubscriptionProfile {
    /// Builds the profile of a subscription.
    pub fn of(sub: &Subscription) -> Self {
        Self {
            eq_pairs: sub
                .equality_predicates()
                .iter()
                .map(|p| (p.attr, p.value))
                .collect(),
            size: sub.size(),
        }
    }

    /// The equality schema `A(s)`.
    pub fn eq_schema(&self) -> AttrSet {
        self.eq_pairs.iter().map(|&(a, _)| a).collect()
    }

    /// The pairs restricted to `schema`; `None` if the subscription lacks an
    /// equality predicate on some attribute of `schema` (then `schema` cannot
    /// serve as its access predicate).
    pub fn pairs_for_schema(&self, schema: &AttrSet) -> Option<Vec<(AttrId, Value)>> {
        let mut out = Vec::with_capacity(schema.len());
        for attr in schema.iter() {
            match self.eq_pairs.iter().find(|&&(a, _)| a == attr) {
                Some(&pair) => out.push(pair),
                None => return None,
            }
        }
        Some(out)
    }

    /// Expected per-event checking cost if this subscription is clustered
    /// under `schema`: `ν(pairs) · checking(size, |schema|)`.
    ///
    /// Allocation-free: walks the schema against the sorted pairs directly.
    /// This sits on the innermost loop of the greedy optimizer and the
    /// dynamic maintenance pass.
    pub fn expected_cost<E: SelectivityEstimator + ?Sized>(
        &self,
        schema: &AttrSet,
        est: &E,
        consts: &CostConstants,
    ) -> Option<f64> {
        let mut nu = 1.0f64;
        let mut covered = 0usize;
        for attr in schema.iter() {
            let v = self.eq_pairs.iter().find(|&&(pa, _)| pa == attr)?.1;
            nu *= est.eq_selectivity(attr, v);
            covered += 1;
        }
        Some(nu * consts.checking(self.size, covered))
    }

    /// Expected checking cost with no access predicate at all (fallback
    /// cluster, probed on every event).
    pub fn fallback_cost(&self, consts: &CostConstants) -> f64 {
        consts.checking(self.size, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::UniformEstimator;
    use pubsub_types::{Operator, Subscription};

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    #[test]
    fn checking_counts_remaining_predicates() {
        let c = CostConstants::default();
        assert_eq!(c.checking(5, 2), 4.0); // 1 + (5-2)
        assert_eq!(c.checking(3, 3), 1.0);
    }

    #[test]
    fn profile_of_subscription() {
        let s = Subscription::builder()
            .eq(a(1), 10i64)
            .eq(a(3), 20i64)
            .with(a(2), Operator::Lt, 5i64)
            .build()
            .unwrap();
        let p = SubscriptionProfile::of(&s);
        assert_eq!(p.size, 3);
        assert_eq!(p.eq_pairs.len(), 2);
        assert_eq!(p.eq_schema().to_sorted_vec(), vec![a(1), a(3)]);
    }

    #[test]
    fn pairs_for_schema_requires_full_coverage() {
        let p = SubscriptionProfile {
            eq_pairs: vec![(a(1), Value::Int(10)), (a(3), Value::Int(20))],
            size: 4,
        };
        let s13: AttrSet = [a(1), a(3)].into_iter().collect();
        assert_eq!(p.pairs_for_schema(&s13).unwrap().len(), 2);
        let s12: AttrSet = [a(1), a(2)].into_iter().collect();
        assert_eq!(p.pairs_for_schema(&s12), None);
    }

    #[test]
    fn expected_cost_multiplies_selectivity() {
        // Example 3.1 arithmetic: one attribute, 100 values, 3 predicates.
        let est = UniformEstimator::new(100);
        let consts = CostConstants::default();
        let p = SubscriptionProfile {
            eq_pairs: vec![(a(0), Value::Int(1)), (a(1), Value::Int(2))],
            size: 3,
        };
        let single: AttrSet = [a(0)].into_iter().collect();
        let both: AttrSet = [a(0), a(1)].into_iter().collect();
        let c1 = p.expected_cost(&single, &est, &consts).unwrap();
        let c2 = p.expected_cost(&both, &est, &consts).unwrap();
        // ν=0.01 · (1+2) vs ν=0.0001 · (1+1)
        assert!((c1 - 0.03).abs() < 1e-9);
        assert!((c2 - 0.0002).abs() < 1e-9);
        assert!(c2 < c1, "two-attribute access predicate wins");
    }

    #[test]
    fn table_overhead_grows_with_schema() {
        let c = CostConstants::default();
        assert!(c.table_overhead(1.0, 2) > c.table_overhead(1.0, 1));
        assert!(c.table_overhead(0.1, 1) < c.table_overhead(1.0, 1));
    }
}
