//! The greedy clustering algorithm of paper §3.2.
//!
//! Starting from the "natural" clustering (single-equality access predicates,
//! whose hash structures exist anyway for the predicate phase), the algorithm
//! repeatedly adds the multi-attribute schema with the greatest *benefit per
//! unit space* until the space bound is hit or no schema has positive
//! benefit. For each configuration schema it maintains the *best clustering
//! instance*: every subscription sits under the access predicate in
//! `GP(s) ∩ A` minimising `ν(p)·checking(p, s)`.

use crate::model::{CostConstants, SubscriptionProfile};
use crate::stats::SelectivityEstimator;
use crate::subsets::subsets_up_to;
use pubsub_types::metrics::Counter;
use pubsub_types::{AttrSet, FxHashMap, FxHashSet};

/// Full greedy clustering optimizations executed (static engine finalize,
/// dynamic `reoptimize`).
static GREEDY_RUNS: Counter = Counter::new("cost.greedy.runs");

/// Configuration for the greedy search.
#[derive(Debug, Clone, Copy)]
pub struct GreedyConfig {
    /// Space bound (`Maxsize` in the paper) in model bytes — the same unit
    /// as [`CostConstants::i_space`] etc.
    pub max_space: f64,
    /// Cap on candidate schema size. `GA(S)` enumerates subsets of each
    /// subscription's equality-attribute set; this cap bounds the `2^|A(s)|`
    /// blow-up (DESIGN.md §3).
    pub max_schema_len: usize,
}

impl Default for GreedyConfig {
    fn default() -> Self {
        Self {
            max_space: 64.0 * 1024.0 * 1024.0,
            max_schema_len: 4,
        }
    }
}

/// The result of the greedy search: a hashing-configuration schema plus the
/// best clustering instance for it.
#[derive(Debug, Clone)]
pub struct ClusteringPlan {
    /// Chosen table schemas, singletons first, in the order they were added.
    pub schemas: Vec<AttrSet>,
    /// Per profile: index into `schemas` of its access-predicate schema, or
    /// `None` for subscriptions with no equality predicate (fallback cluster
    /// checked on every event).
    pub assignment: Vec<Option<usize>>,
    /// Expected per-event matching cost of the plan (formula 3.1).
    pub expected_cost: f64,
    /// Model space consumed (formula 3.2, clusters + extra tables).
    pub space: f64,
}

impl ClusteringPlan {
    /// The schema assigned to profile `i`.
    pub fn schema_of(&self, i: usize) -> Option<&AttrSet> {
        self.assignment[i].map(|s| &self.schemas[s])
    }
}

/// Runs the greedy algorithm.
///
/// Uses *lazy* benefit evaluation: candidate benefits only decrease as the
/// configuration grows (a newly added table can only lower the costs other
/// candidates would improve on), so stale heap entries are re-scored on pop
/// instead of rescanning every candidate per iteration. This keeps the
/// paper's `O(|S|·|GA(S)|²)` worst case far away in practice; the static
/// algorithm is still the slowest loader, exactly as Figure 3(d) shows.
pub fn greedy_clustering<E: SelectivityEstimator + ?Sized>(
    profiles: &[SubscriptionProfile],
    est: &E,
    consts: &CostConstants,
    cfg: &GreedyConfig,
) -> ClusteringPlan {
    GREEDY_RUNS.inc();
    // --- Candidate generation -------------------------------------------
    // Group profiles by equality schema; GA(S) is the union of subsets of the
    // distinct schemas.
    let mut schema_groups: FxHashMap<AttrSet, Vec<usize>> = FxHashMap::default();
    for (i, p) in profiles.iter().enumerate() {
        schema_groups.entry(p.eq_schema()).or_default().push(i);
    }
    let mut candidate_set: FxHashSet<AttrSet> = FxHashSet::default();
    for schema in schema_groups.keys() {
        for sub in subsets_up_to(schema, cfg.max_schema_len) {
            candidate_set.insert(sub);
        }
    }

    // Members per candidate: profiles whose A(s) ⊇ candidate.
    let mut candidates: Vec<(AttrSet, Vec<usize>)> = candidate_set
        .into_iter()
        .map(|c| {
            let members: Vec<usize> = schema_groups
                .iter()
                .filter(|(schema, _)| c.is_subset(schema))
                .flat_map(|(_, idxs)| idxs.iter().copied())
                .collect();
            (c, members)
        })
        .collect();
    // Deterministic order (sorted by schema contents) for reproducible plans.
    candidates.sort_by_key(|(c, _)| c.to_sorted_vec());

    // --- Initial instance: singletons only -------------------------------
    let mut schemas: Vec<AttrSet> = Vec::new();
    let mut schema_index: FxHashMap<AttrSet, usize> = FxHashMap::default();
    for (c, _) in &candidates {
        if c.len() == 1 {
            schema_index.insert(c.clone(), schemas.len());
            schemas.push(c.clone());
        }
    }

    let mut assignment: Vec<Option<usize>> = vec![None; profiles.len()];
    let mut cur_cost: Vec<f64> = vec![0.0; profiles.len()];
    let mut space = 0.0f64;
    for (i, p) in profiles.iter().enumerate() {
        // Only this profile's own singleton schemas can cover it.
        let mut best: Option<(usize, f64)> = None;
        for &(attr, v) in &p.eq_pairs {
            let si = schema_index[&AttrSet::from_attrs([attr])];
            let cost = est.eq_selectivity(attr, v) * consts.checking(p.size, 1);
            if best.is_none_or(|(_, b)| cost < b) {
                best = Some((si, cost));
            }
        }
        match best {
            Some((si, cost)) => {
                assignment[i] = Some(si);
                cur_cost[i] = cost;
                space += consts.cluster_bytes(p.size - 1);
            }
            None => {
                cur_cost[i] = p.fallback_cost(consts);
                space += consts.cluster_bytes(p.size);
            }
        }
    }

    // Per-event overhead of the singleton tables (they exist regardless, but
    // formula 3.1 counts them in the matching cost).
    let mut table_cost: f64 = schemas
        .iter()
        .map(|s| consts.table_overhead(est.schema_inclusion(s), s.len()))
        .sum();

    // --- Lazy greedy loop -------------------------------------------------
    // Scores a candidate against the *current* assignment.
    let score_candidate = |ci: usize,
                           cur_cost: &[f64],
                           assignment: &[Option<usize>],
                           schemas: &[AttrSet]|
     -> Option<(f64, f64, f64)> {
        let (schema, members) = &candidates[ci];
        let overhead = consts.table_overhead(est.schema_inclusion(schema), schema.len());
        let mut saving = 0.0f64;
        let mut moved = 0usize;
        let mut cluster_delta = 0.0f64;
        let mut entries: FxHashSet<u64> = FxHashSet::default();
        for &i in members {
            let p = &profiles[i];
            let Some(cost) = p.expected_cost(schema, est, consts) else {
                continue;
            };
            if cost < cur_cost[i] {
                saving += cur_cost[i] - cost;
                moved += 1;
                let old_access = assignment[i].map_or(0, |s| schemas[s].len());
                cluster_delta += consts.cluster_bytes(p.size - schema.len())
                    - consts.cluster_bytes(p.size - old_access);
                if let Some(pairs) = p.pairs_for_schema(schema) {
                    entries.insert(pubsub_types::hash::fx_hash_one(&pairs));
                }
            }
        }
        if moved == 0 {
            return None;
        }
        let benefit = saving - overhead;
        if benefit <= 0.0 {
            return None;
        }
        let ds = consts.i_space + consts.h_space * entries.len() as f64 + cluster_delta;
        let ratio = if ds <= 0.0 {
            f64::INFINITY
        } else {
            benefit / ds
        };
        Some((benefit, ds, ratio))
    };

    #[derive(PartialEq)]
    struct Entry {
        ratio: f64,
        ci: usize,
        ds: f64,
        version: u64,
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.ratio
                .total_cmp(&other.ratio)
                // Deterministic tie-break so plans are reproducible.
                .then_with(|| other.ci.cmp(&self.ci))
        }
    }

    let mut version = 0u64;
    let mut heap: std::collections::BinaryHeap<Entry> = candidates
        .iter()
        .enumerate()
        .filter(|(_, (schema, _))| !schema_index.contains_key(schema))
        .filter_map(|(ci, _)| {
            score_candidate(ci, &cur_cost, &assignment, &schemas).map(|(_, ds, ratio)| Entry {
                ratio,
                ci,
                ds,
                version,
            })
        })
        .collect();

    while space < cfg.max_space {
        let Some(top) = heap.pop() else { break };
        if top.version != version {
            // Stale: re-score against the current assignment and reinsert.
            if let Some((_, ds, ratio)) = score_candidate(top.ci, &cur_cost, &assignment, &schemas)
            {
                heap.push(Entry {
                    ratio,
                    ci: top.ci,
                    ds,
                    version,
                });
            }
            continue;
        }
        if space + top.ds.max(0.0) > cfg.max_space {
            // This candidate alone busts the bound; cheaper ones may follow.
            continue;
        }

        // Apply: move every profile that improves.
        let (schema, members) = candidates[top.ci].clone();
        let si = schemas.len();
        schemas.push(schema.clone());
        schema_index.insert(schema.clone(), si);
        table_cost += consts.table_overhead(est.schema_inclusion(&schema), schema.len());
        for i in members {
            let p = &profiles[i];
            if let Some(cost) = p.expected_cost(&schema, est, consts) {
                if cost < cur_cost[i] {
                    assignment[i] = Some(si);
                    cur_cost[i] = cost;
                }
            }
        }
        space += top.ds;
        version += 1;
    }

    let expected_cost = table_cost + cur_cost.iter().sum::<f64>();
    ClusteringPlan {
        schemas,
        assignment,
        expected_cost,
        space,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::UniformEstimator;
    use pubsub_types::{AttrId, Value};

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    fn profile(attrs: &[u32], size: usize) -> SubscriptionProfile {
        SubscriptionProfile {
            eq_pairs: attrs.iter().map(|&i| (a(i), Value::Int(1))).collect(),
            size,
        }
    }

    #[test]
    fn subsets_enumeration() {
        let s: AttrSet = [a(0), a(1), a(2)].into_iter().collect();
        let subs = subsets_up_to(&s, 2);
        assert_eq!(subs.len(), 6, "3 singletons + 3 pairs");
        let subs = subsets_up_to(&s, 3);
        assert_eq!(subs.len(), 7);
        let subs = subsets_up_to(&s, 10);
        assert_eq!(subs.len(), 7, "cap larger than the set is fine");
    }

    #[test]
    fn single_attribute_subscriptions_stay_on_singletons() {
        let profiles: Vec<_> = (0..10).map(|_| profile(&[0], 3)).collect();
        let plan = greedy_clustering(
            &profiles,
            &UniformEstimator::new(100),
            &CostConstants::default(),
            &GreedyConfig::default(),
        );
        assert_eq!(plan.schemas.len(), 1);
        assert!(plan.assignment.iter().all(|x| *x == Some(0)));
    }

    #[test]
    fn multi_attribute_tables_added_when_beneficial() {
        // Many subscriptions with equality on {0, 1}: a pair table lowers
        // ν from 1/100 to 1/10000; the population is sized so the total
        // saving dwarfs the (honest, probe-cost-calibrated) table overhead.
        let profiles: Vec<_> = (0..4000).map(|_| profile(&[0, 1], 5)).collect();
        let plan = greedy_clustering(
            &profiles,
            &UniformEstimator::new(100),
            &CostConstants::default(),
            &GreedyConfig::default(),
        );
        let pair: AttrSet = [a(0), a(1)].into_iter().collect();
        assert!(
            plan.schemas.contains(&pair),
            "expected pair schema in {:?}",
            plan.schemas
        );
        let pair_idx = plan.schemas.iter().position(|s| *s == pair).unwrap();
        assert!(plan.assignment.iter().all(|&x| x == Some(pair_idx)));
    }

    #[test]
    fn table_not_added_for_tiny_population() {
        // One subscription: the saving (≤ ν·checking ≈ 0.03) cannot beat the
        // per-event table overhead (≥ K_r = 1).
        let profiles = vec![profile(&[0, 1], 5)];
        let plan = greedy_clustering(
            &profiles,
            &UniformEstimator::new(100),
            &CostConstants::default(),
            &GreedyConfig::default(),
        );
        let pair: AttrSet = [a(0), a(1)].into_iter().collect();
        assert!(!plan.schemas.contains(&pair));
    }

    fn profile_with_values(attrs: &[u32], vals: &[i64], size: usize) -> SubscriptionProfile {
        SubscriptionProfile {
            eq_pairs: attrs
                .iter()
                .zip(vals)
                .map(|(&a_, &v)| (a(a_), Value::Int(v)))
                .collect(),
            size,
        }
    }

    #[test]
    fn space_bound_limits_tables() {
        let mut profiles = Vec::new();
        // Two disjoint populations that would each earn a pair table. The
        // value tuples are distinct, so each pair table needs real entry
        // space (with identical tuples the table would *save* space and the
        // paper's rule adds it regardless of the bound).
        for i in 0..4000i64 {
            profiles.push(profile_with_values(&[0, 1], &[i, i + 1], 5));
            profiles.push(profile_with_values(&[2, 3], &[i, i + 1], 5));
        }
        let consts = CostConstants::default();
        let est = UniformEstimator::new(100);
        let unlimited = greedy_clustering(
            &profiles,
            &est,
            &consts,
            &GreedyConfig {
                max_space: f64::INFINITY,
                max_schema_len: 2,
            },
        );
        let n_unlimited = unlimited.schemas.iter().filter(|s| s.len() == 2).count();
        assert_eq!(n_unlimited, 2);

        // A bound just above the singleton baseline allows at most one
        // additional table.
        let base_space: f64 = profiles
            .iter()
            .map(|p| consts.cluster_bytes(p.size - 1))
            .sum();
        let limited = greedy_clustering(
            &profiles,
            &est,
            &consts,
            &GreedyConfig {
                max_space: base_space + 1.0,
                max_schema_len: 2,
            },
        );
        let n_limited = limited.schemas.iter().filter(|s| s.len() == 2).count();
        assert!(n_limited < 2, "space bound must prune tables");
    }

    #[test]
    fn no_equality_subscriptions_fall_back() {
        let profiles = vec![profile(&[], 4)];
        let plan = greedy_clustering(
            &profiles,
            &UniformEstimator::new(100),
            &CostConstants::default(),
            &GreedyConfig::default(),
        );
        assert_eq!(plan.assignment[0], None);
        assert!(plan.expected_cost > 0.0);
    }

    #[test]
    fn example_31_prefers_c2_style_clustering() {
        // Example 3.1: attributes A, B, C with 100 values each; for each
        // non-empty subset X of {A,B,C} a population with equality exactly
        // on X. The best configuration uses multi-attribute tables, beating
        // singletons-only.
        let universe = [
            &[0u32][..],
            &[1],
            &[2],
            &[0, 1],
            &[1, 2],
            &[0, 2],
            &[0, 1, 2],
        ];
        let mut profiles = Vec::new();
        for attrs in universe {
            // Sized so pair tables clearly beat their probe overhead.
            for _ in 0..4000 {
                profiles.push(profile(attrs, attrs.len() + 1));
            }
        }
        let est = UniformEstimator::new(100);
        let consts = CostConstants::default();
        let plan = greedy_clustering(&profiles, &est, &consts, &GreedyConfig::default());
        assert!(
            plan.schemas.iter().any(|s| s.len() >= 2),
            "C2-style plan uses conjunctions: {:?}",
            plan.schemas
        );

        // Compare against the singletons-only instance cost.
        let singleton_plan = greedy_clustering(
            &profiles,
            &est,
            &consts,
            &GreedyConfig {
                max_space: 0.0, // forbid any addition
                max_schema_len: 3,
            },
        );
        assert!(
            plan.expected_cost < singleton_plan.expected_cost,
            "{} < {}",
            plan.expected_cost,
            singleton_plan.expected_cost
        );
    }
}
