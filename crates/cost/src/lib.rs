//! Statistics, selectivity estimation, cost model and clustering optimizer
//! for `fastpubsub` — the machinery of paper §3.
//!
//! * [`stats`] — per-attribute event histograms giving `ν(p)` and `μ(H)`;
//!   [`UniformEstimator`] for analytic workloads.
//! * [`model`] — the matching/space cost formulas and
//!   [`SubscriptionProfile`], the cost-relevant view of a subscription.
//! * [`greedy`] — the benefit-per-unit-space greedy algorithm computing a
//!   locally optimal hashing-configuration schema and clustering instance.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod greedy;
pub mod model;
pub mod stats;
pub mod subsets;

pub use greedy::{greedy_clustering, ClusteringPlan, GreedyConfig};
pub use model::{CostConstants, SubscriptionProfile};
pub use stats::{EventStatistics, SelectivityEstimator, UniformEstimator, DEFAULT_EQ_SELECTIVITY};
pub use subsets::subsets_up_to;
