//! Bounded subset enumeration over attribute sets.
//!
//! `GA(S)` in paper §3.2 is the set of attribute groups occurring in
//! subscriptions; both the greedy optimizer and the dynamic maintenance
//! algorithm enumerate the subsets of a subscription's equality schema as
//! candidate access-predicate schemas, capped in size to bound the
//! `2^|A(s)|` blow-up.

use pubsub_types::AttrSet;

/// Enumerates all subsets of `schema` with `1 ≤ size ≤ max_len`.
pub fn subsets_up_to(schema: &AttrSet, max_len: usize) -> Vec<AttrSet> {
    let attrs = schema.to_sorted_vec();
    let n = attrs.len();
    let mut out = Vec::new();
    let max_len = max_len.min(n);
    for size in 1..=max_len {
        // Standard lexicographic combination enumeration over index vectors.
        let mut idx: Vec<usize> = (0..size).collect();
        'combos: loop {
            out.push(idx.iter().map(|&i| attrs[i]).collect::<AttrSet>());
            // Find the rightmost index that can still advance.
            let mut i = size;
            loop {
                if i == 0 {
                    break 'combos;
                }
                i -= 1;
                if idx[i] != i + n - size {
                    break;
                }
            }
            idx[i] += 1;
            for j in i + 1..size {
                idx[j] = idx[j - 1] + 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_types::AttrId;

    #[test]
    fn empty_schema_has_no_subsets() {
        assert!(subsets_up_to(&AttrSet::new(), 3).is_empty());
    }

    #[test]
    fn counts_match_binomials() {
        let s: AttrSet = (0..5).map(AttrId).collect();
        assert_eq!(subsets_up_to(&s, 1).len(), 5);
        assert_eq!(subsets_up_to(&s, 2).len(), 15); // 5 + 10
        assert_eq!(subsets_up_to(&s, 5).len(), 31); // 2^5 - 1
    }

    #[test]
    fn subsets_are_subsets() {
        let s: AttrSet = [AttrId(1), AttrId(4), AttrId(9)].into_iter().collect();
        for sub in subsets_up_to(&s, 3) {
            assert!(sub.is_subset(&s));
            assert!(!sub.is_empty());
        }
    }
}
