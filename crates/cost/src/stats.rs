//! Statistics over the incoming event stream.
//!
//! The cost-based clustering of paper §3 needs two quantities:
//!
//! * `ν(p)` — the probability that an incoming event satisfies predicate `p`
//!   (and, for conjunctions, the product under the attribute-independence
//!   assumption of Example 3.1);
//! * `μ(H)` — the probability that an event's schema includes the schema of
//!   hash table `H`.
//!
//! Both are estimated from per-attribute value-frequency histograms of
//! observed events. [`EventStatistics::halve`] exponentially decays the
//! counts so the estimates track drifting event patterns (the situation the
//! dynamic algorithm of §4 adapts to).

use pubsub_types::metrics::Counter;
use pubsub_types::{AttrId, AttrSet, Event, FxHashMap, Operator, Predicate, Value};

/// Events folded into the selectivity estimator (cost-model inputs).
static OBSERVATIONS: Counter = Counter::new("cost.stats.observations");
/// Exponential-decay passes over the estimator.
static DECAYS: Counter = Counter::new("cost.stats.decays");

/// How selective we assume an equality predicate to be when no event has been
/// observed yet. 1/35 mirrors the paper's default domain `1..=35`.
pub const DEFAULT_EQ_SELECTIVITY: f64 = 1.0 / 35.0;

/// Supplies selectivity estimates to the cost model and the clustering
/// algorithms.
pub trait SelectivityEstimator {
    /// Estimated probability that an event carries a pair `(attr, value)`.
    fn eq_selectivity(&self, attr: AttrId, value: Value) -> f64;

    /// Estimated probability that an event carries attribute `attr` at all.
    fn attr_presence(&self, attr: AttrId) -> f64;

    /// Estimated probability that an event satisfies `pred`.
    fn predicate_selectivity(&self, pred: &Predicate) -> f64;

    /// Estimated probability that an event satisfies the conjunction of the
    /// given equality pairs (independence assumption).
    fn conjunction_selectivity(&self, pairs: &[(AttrId, Value)]) -> f64 {
        pairs
            .iter()
            .map(|&(a, v)| self.eq_selectivity(a, v))
            .product()
    }

    /// Estimated probability that an event's schema includes `schema`
    /// (the `μ(H)` of cost formula 3.1).
    fn schema_inclusion(&self, schema: &AttrSet) -> f64 {
        schema.iter().map(|a| self.attr_presence(a)).product()
    }
}

#[derive(Debug, Default)]
struct AttrHistogram {
    /// Events that carried this attribute.
    present: f64,
    /// Count per observed value.
    values: FxHashMap<Value, f64>,
}

/// Per-attribute value-frequency histograms over observed events.
#[derive(Debug, Default)]
pub struct EventStatistics {
    attrs: Vec<AttrHistogram>,
    total: f64,
    /// Fallback for never-observed predicates.
    default_eq: f64,
}

impl EventStatistics {
    /// Creates empty statistics with the default fallback selectivity.
    pub fn new() -> Self {
        Self {
            attrs: Vec::new(),
            total: 0.0,
            default_eq: DEFAULT_EQ_SELECTIVITY,
        }
    }

    /// Creates empty statistics with a custom fallback equality selectivity
    /// (used before any event has been observed).
    pub fn with_default_selectivity(default_eq: f64) -> Self {
        Self {
            attrs: Vec::new(),
            total: 0.0,
            default_eq,
        }
    }

    /// Number of (weighted) events observed.
    pub fn total_events(&self) -> f64 {
        self.total
    }

    /// Records one event.
    pub fn observe(&mut self, event: &Event) {
        OBSERVATIONS.inc();
        self.total += 1.0;
        for &(attr, value) in event.pairs() {
            let idx = attr.index();
            if self.attrs.len() <= idx {
                self.attrs.resize_with(idx + 1, AttrHistogram::default);
            }
            let h = &mut self.attrs[idx];
            h.present += 1.0;
            *h.values.entry(value).or_insert(0.0) += 1.0;
        }
    }

    /// Exponentially decays all counts by half and drops negligible entries.
    ///
    /// Called periodically (every maintenance period) so estimates follow
    /// drifting event patterns with a half-life of one period.
    pub fn halve(&mut self) {
        DECAYS.inc();
        self.total *= 0.5;
        for h in &mut self.attrs {
            h.present *= 0.5;
            h.values.retain(|_, c| {
                *c *= 0.5;
                *c > 1e-6
            });
        }
    }

    fn histogram(&self, attr: AttrId) -> Option<&AttrHistogram> {
        self.attrs.get(attr.index())
    }
}

impl SelectivityEstimator for EventStatistics {
    fn eq_selectivity(&self, attr: AttrId, value: Value) -> f64 {
        if self.total <= 0.0 {
            return self.default_eq;
        }
        match self.histogram(attr) {
            Some(h) => {
                let c = h.values.get(&value).copied().unwrap_or(0.0);
                // Half-count smoothing: unseen values keep a small non-zero
                // probability so fresh predicates aren't judged free.
                (c + 0.5) / (self.total + 1.0)
            }
            None => self.default_eq,
        }
    }

    fn attr_presence(&self, attr: AttrId) -> f64 {
        if self.total <= 0.0 {
            return 1.0;
        }
        match self.histogram(attr) {
            Some(h) => (h.present + 0.5) / (self.total + 1.0),
            None => 0.5 / (self.total + 1.0),
        }
    }

    fn predicate_selectivity(&self, pred: &Predicate) -> f64 {
        if pred.op == Operator::Eq {
            return self.eq_selectivity(pred.attr, pred.value);
        }
        if self.total <= 0.0 {
            return 0.5;
        }
        let Some(h) = self.histogram(pred.attr) else {
            return 0.5 / (self.total + 1.0);
        };
        // Walk the histogram: P(v' op c) over events carrying the attribute,
        // scaled by attribute presence.
        let satisfied: f64 = h
            .values
            .iter()
            .filter(|(v, _)| pred.eval(**v))
            .map(|(_, c)| c)
            .sum();
        (satisfied + 0.5) / (self.total + 1.0)
    }
}

/// A closed-form estimator for analytic workloads: every attribute appears
/// with probability `presence` and takes one of `domain_size` equiprobable
/// values (the setting of Example 3.1 and of the paper's uniform workloads).
#[derive(Debug, Clone, Copy)]
pub struct UniformEstimator {
    /// Number of equiprobable values per attribute.
    pub domain_size: u32,
    /// Probability an event carries any given attribute.
    pub presence: f64,
}

impl UniformEstimator {
    /// `domain_size` equiprobable values, attribute always present.
    pub fn new(domain_size: u32) -> Self {
        Self {
            domain_size,
            presence: 1.0,
        }
    }
}

impl SelectivityEstimator for UniformEstimator {
    fn eq_selectivity(&self, _attr: AttrId, _value: Value) -> f64 {
        self.presence / self.domain_size as f64
    }

    fn attr_presence(&self, _attr: AttrId) -> f64 {
        self.presence
    }

    fn predicate_selectivity(&self, pred: &Predicate) -> f64 {
        match pred.op {
            Operator::Eq => self.eq_selectivity(pred.attr, pred.value),
            Operator::Ne => self.presence * (1.0 - 1.0 / self.domain_size as f64),
            // Without knowing the constant's rank, assume the median.
            _ => self.presence * 0.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    fn ev(pairs: &[(u32, i64)]) -> Event {
        Event::from_pairs(
            pairs
                .iter()
                .map(|&(at, v)| (a(at), Value::Int(v)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn frequencies_converge() {
        let mut s = EventStatistics::new();
        for i in 0..100 {
            s.observe(&ev(&[(0, i % 4)]));
        }
        let p = s.eq_selectivity(a(0), Value::Int(1));
        assert!((p - 0.25).abs() < 0.02, "got {p}");
        assert!(s.attr_presence(a(0)) > 0.98);
        assert!(s.attr_presence(a(1)) < 0.02);
    }

    #[test]
    fn defaults_before_any_event() {
        let s = EventStatistics::new();
        assert_eq!(
            s.eq_selectivity(a(0), Value::Int(1)),
            DEFAULT_EQ_SELECTIVITY
        );
        assert_eq!(s.attr_presence(a(0)), 1.0);
    }

    #[test]
    fn inequality_selectivity_from_histogram() {
        let mut s = EventStatistics::new();
        for i in 0..100 {
            s.observe(&ev(&[(0, i % 10)])); // values 0..9 uniform
        }
        let lt5 = Predicate::new(a(0), Operator::Lt, 5i64);
        let p = s.predicate_selectivity(&lt5);
        assert!((p - 0.5).abs() < 0.05, "P(v < 5) ~ 0.5, got {p}");
        let ne0 = Predicate::new(a(0), Operator::Ne, 0i64);
        let p = s.predicate_selectivity(&ne0);
        assert!((p - 0.9).abs() < 0.05, "P(v != 0) ~ 0.9, got {p}");
    }

    #[test]
    fn conjunction_multiplies() {
        let mut s = EventStatistics::new();
        for i in 0..100 {
            s.observe(&ev(&[(0, i % 2), (1, i % 5)]));
        }
        let pair = [(a(0), Value::Int(0)), (a(1), Value::Int(0))];
        let p = s.conjunction_selectivity(&pair);
        assert!((p - 0.1).abs() < 0.02, "0.5 * 0.2 = 0.1, got {p}");
    }

    #[test]
    fn halving_decays_towards_new_pattern() {
        let mut s = EventStatistics::new();
        for _ in 0..100 {
            s.observe(&ev(&[(0, 1)]));
        }
        let before = s.eq_selectivity(a(0), Value::Int(1));
        assert!(before > 0.9);
        // Pattern shifts to value 2.
        for _ in 0..4 {
            s.halve();
            for _ in 0..100 {
                s.observe(&ev(&[(0, 2)]));
            }
        }
        let after1 = s.eq_selectivity(a(0), Value::Int(1));
        let after2 = s.eq_selectivity(a(0), Value::Int(2));
        assert!(after1 < 0.1, "old value fades: {after1}");
        assert!(after2 > 0.8, "new value dominates: {after2}");
    }

    #[test]
    fn schema_inclusion_multiplies_presence() {
        let mut s = EventStatistics::new();
        // attr 0 always present, attr 1 present half the time.
        for i in 0..100 {
            if i % 2 == 0 {
                s.observe(&ev(&[(0, 0), (1, 0)]));
            } else {
                s.observe(&ev(&[(0, 0)]));
            }
        }
        let schema: AttrSet = [a(0), a(1)].into_iter().collect();
        let mu = s.schema_inclusion(&schema);
        assert!((mu - 0.5).abs() < 0.05, "got {mu}");
    }

    #[test]
    fn uniform_estimator_matches_example_31_numbers() {
        // Example 3.1: 100 values per attribute, all equiprobable.
        let u = UniformEstimator::new(100);
        assert!((u.eq_selectivity(a(0), Value::Int(7)) - 0.01).abs() < 1e-12);
        let pairs = [(a(0), Value::Int(1)), (a(1), Value::Int(2))];
        assert!((u.conjunction_selectivity(&pairs) - 1e-4).abs() < 1e-12);
    }
}
