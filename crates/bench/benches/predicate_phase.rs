//! Phase-1 micro-benchmarks: predicate evaluation through the equality hash
//! index, the B+-tree interval index, and the `≠` list index.
//!
//! The paper reports the predicate phase costs 1.3 ms per event at 6M
//! subscriptions / 32 attributes / domain 35 (it is shared by all engines);
//! this bench isolates that phase.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pubsub_index::{PredicateBitVec, PredicateIndex};
use pubsub_types::{AttrId, Event, Operator, Predicate, Value};

/// Interns the distinct predicates of a W0-like universe: `n_attrs`
/// attributes × domain values × the given operators.
fn build_index(n_attrs: u32, domain: i64, ops: &[Operator]) -> PredicateIndex {
    let mut idx = PredicateIndex::new();
    for a in 0..n_attrs {
        for v in 1..=domain {
            for &op in ops {
                idx.intern(Predicate::new(AttrId(a), op, v));
            }
        }
    }
    idx
}

fn w0_event(n_attrs: u32, domain: i64, salt: i64) -> Event {
    Event::from_pairs(
        (0..n_attrs)
            .map(|a| (AttrId(a), Value::Int((a as i64 * 7 + salt) % domain + 1)))
            .collect(),
    )
    .unwrap()
}

fn bench_predicate_phase(c: &mut Criterion) {
    let mut group = c.benchmark_group("predicate_phase");
    let cases: [(&str, &[Operator]); 3] = [
        ("equality-only", &[Operator::Eq]),
        ("with-ranges", &[Operator::Eq, Operator::Lt, Operator::Ge]),
        ("all-operators", &Operator::ALL),
    ];
    for (name, ops) in cases {
        let idx = build_index(32, 35, ops);
        let mut bits = PredicateBitVec::with_capacity(idx.id_bound());
        let mut satisfied = Vec::new();
        let events: Vec<Event> = (0..64).map(|s| w0_event(32, 35, s)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            let mut i = 0;
            b.iter(|| {
                satisfied.clear();
                idx.eval_into(&events[i % events.len()], &mut bits, &mut satisfied);
                bits.clear();
                i += 1;
                satisfied.len()
            })
        });
    }
    group.finish();
}

fn bench_bptree_range(c: &mut Criterion) {
    use pubsub_index::BPlusTree;
    use std::ops::Bound;
    let mut group = c.benchmark_group("bptree");
    for &n in &[1_000i64, 100_000] {
        let mut tree = BPlusTree::new();
        for i in 0..n {
            tree.insert(i, i);
        }
        group.bench_with_input(BenchmarkId::new("point-get", n), &n, |b, &n| {
            let mut k = 0;
            b.iter(|| {
                k = (k + 7919) % n;
                tree.get(&k).copied()
            })
        });
        group.bench_with_input(BenchmarkId::new("scan-100", n), &n, |b, &n| {
            let mut k = 0;
            b.iter(|| {
                k = (k + 7919) % n;
                tree.range(Bound::Included(k), Bound::Excluded(k + 100))
                    .count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_predicate_phase, bench_bptree_range);
criterion_main!(benches);
