//! End-to-end `match_event` comparison of all engines at a fixed
//! subscription count (the Criterion companion to the Figure 3(a) harness;
//! run `fig3a_throughput` for the full sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pubsub_bench::load_engine;
use pubsub_core::EngineKind;
use pubsub_workload::{presets, WorkloadGen};

fn bench_engines(c: &mut Criterion) {
    const N_SUBS: usize = 100_000;
    let mut group = c.benchmark_group("match_event_w0_100k");
    group.sample_size(20);
    for kind in EngineKind::PAPER_ENGINES {
        let mut gen = WorkloadGen::new(presets::w0(N_SUBS));
        let (mut engine, _) = load_engine(kind, &mut gen, N_SUBS);
        let events: Vec<_> = (0..256).map(|_| gen.event()).collect();
        let mut out = Vec::new();
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, _| {
            let mut i = 0;
            b.iter(|| {
                out.clear();
                engine.match_event(&events[i % events.len()], &mut out);
                i += 1;
                out.len()
            })
        });
    }
    group.finish();
}

fn bench_subscription_churn(c: &mut Criterion) {
    // Insert+remove cost per engine (the loading-time story of Figure 3(d)
    // at micro scale).
    use pubsub_types::SubscriptionId;
    let mut group = c.benchmark_group("insert_remove_w0");
    group.sample_size(20);
    for kind in EngineKind::PAPER_ENGINES {
        let mut gen = WorkloadGen::new(presets::w0(50_000));
        let (mut engine, _) = load_engine(kind, &mut gen, 50_000);
        let subs: Vec<_> = (0..512).map(|_| gen.subscription()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, _| {
            let mut next = 1_000_000u32;
            let mut i = 0;
            b.iter(|| {
                let id = SubscriptionId(next);
                next += 1;
                engine.insert(id, &subs[i % subs.len()]);
                engine.remove(id);
                i += 1;
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines, bench_subscription_churn);
criterion_main!(benches);
