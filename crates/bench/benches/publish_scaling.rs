//! Publisher-thread scaling of the broker publish path: the same W0
//! subscription set published concurrently from 1, 2, 4 and 8 threads,
//! once through the locked shard engines and once through the RCU
//! (epoch-protected snapshot) path.
//!
//! The interesting comparisons:
//!   * `locked/1` vs `rcu/1` — the single-threaded cost of matching
//!     through the immutable snapshot view (the acceptable regression is
//!     < 5%);
//!   * `locked/N` vs `rcu/N` — the contention story: locked publishers
//!     serialize on every shard's mutex, RCU publishers share nothing but
//!     a pointer load and a thread-local epoch slot. (On a single-core
//!     host both plateau — the RCU win is the absence of lock hand-offs,
//!     not parallel speedup.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pubsub_bench::load_shared_broker;
use pubsub_broker::PublishMode;
use pubsub_core::EngineKind;
use pubsub_types::SubscriptionId;
use pubsub_workload::{presets, WorkloadGen};

const N_SUBS: usize = 20_000;
const SHARDS: usize = 2;
const N_EVENTS: usize = 64;
const PUBLISHERS: [usize; 4] = [1, 2, 4, 8];

fn bench_publish_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("publish_scaling_w0_20k");
    group.sample_size(10);

    for (label, mode) in [("locked", PublishMode::Locked), ("rcu", PublishMode::Rcu)] {
        let mut gen = WorkloadGen::new(presets::w0(N_SUBS));
        let broker = load_shared_broker(EngineKind::Dynamic, SHARDS, mode, &mut gen, N_SUBS);
        let events: Vec<_> = (0..N_EVENTS).map(|_| gen.event()).collect();
        for publishers in PUBLISHERS {
            group.throughput(Throughput::Elements((N_EVENTS * publishers) as u64));
            group.bench_with_input(
                BenchmarkId::new(label, publishers),
                &publishers,
                |b, &publishers| {
                    b.iter(|| {
                        std::thread::scope(|s| {
                            for _ in 0..publishers {
                                let broker = broker.clone();
                                let events = &events;
                                s.spawn(move || {
                                    let mut out: Vec<SubscriptionId> = Vec::new();
                                    for e in events {
                                        out.clear();
                                        broker.publish_into(e, &mut out);
                                    }
                                });
                            }
                        })
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_publish_scaling);
criterion_main!(benches);
