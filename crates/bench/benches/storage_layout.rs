//! Ablation: columnwise vs. row-wise cluster storage (paper §2.2).
//!
//! The paper stores subscriptions *columnwise* — one array per predicate
//! position — so that when the first predicate fails, the cache lines of the
//! later positions are never touched. "If we had used a row-wise storage
//! method we would have been forced to touch every cache line." This bench
//! implements the row-wise alternative locally and measures both on the
//! same data, across first-column selectivities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pubsub_core::Cluster;
use pubsub_index::PredicateBitVec;
use pubsub_types::SubscriptionId;

/// The row-wise strawman: `rows[j]` holds all predicate refs of
/// subscription `j` contiguously.
struct RowwiseCluster {
    width: usize,
    rows: Vec<u32>,
    subs: Vec<SubscriptionId>,
}

impl RowwiseCluster {
    fn new(width: usize) -> Self {
        Self {
            width,
            rows: Vec::new(),
            subs: Vec::new(),
        }
    }

    fn insert(&mut self, id: SubscriptionId, refs: &[u32]) {
        assert_eq!(refs.len(), self.width);
        self.rows.extend_from_slice(refs);
        self.subs.push(id);
    }

    fn match_into(&self, bits: &PredicateBitVec, out: &mut Vec<SubscriptionId>) {
        for (j, row) in self.rows.chunks_exact(self.width).enumerate() {
            if row.iter().all(|&b| bits.get(b)) {
                out.push(self.subs[j]);
            }
        }
    }
}

fn build(n: usize, width: usize, hit_rate: f64) -> (Cluster, RowwiseCluster, PredicateBitVec) {
    let n_preds = 4096u32;
    let mut col = Cluster::new(width);
    let mut row = RowwiseCluster::new(width);
    let mut bits = PredicateBitVec::with_capacity(n_preds as usize);
    let cut = (n_preds as f64 * hit_rate) as u32;
    for i in 0..cut {
        bits.set(i);
    }
    let mut state = 0xDEADBEEFu64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32 % n_preds
    };
    for i in 0..n {
        let refs: Vec<u32> = (0..width).map(|_| next()).collect();
        col.insert(SubscriptionId(i as u32), &refs);
        row.insert(SubscriptionId(i as u32), &refs);
    }
    (col, row, bits)
}

fn bench_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_layout");
    // Selective first column: columnwise skips later columns' cache lines.
    for &rate in &[0.5f64, 0.1, 0.02] {
        let (col, row, bits) = build(1_000_000, 4, rate);
        let mut out = Vec::with_capacity(1_000_000);
        group.bench_with_input(BenchmarkId::new("columnwise", rate), &rate, |b, _| {
            b.iter(|| {
                out.clear();
                col.match_into::<true>(&bits, &mut out)
            })
        });
        group.bench_with_input(BenchmarkId::new("rowwise", rate), &rate, |b, _| {
            b.iter(|| {
                out.clear();
                row.match_into(&bits, &mut out);
                out.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_layouts);
criterion_main!(benches);
