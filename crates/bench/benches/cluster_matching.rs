//! The prefetch ablation (paper §2.2 / Figure 3(a) inset): the columnwise
//! cluster-matching kernel with and without software prefetching, across
//! cluster widths and selectivities.
//!
//! The paper reports prefetching improves propagation throughput ~1.5× at
//! large subscription counts. The effect needs the cluster arrays to be
//! bigger than the last-level cache to show; the large configuration here
//! is sized for that.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pubsub_core::Cluster;
use pubsub_index::PredicateBitVec;
use pubsub_types::SubscriptionId;

/// Builds a cluster of `n` subscriptions of `width` columns where roughly
/// `hit_rate` of first-column bits are set in the accompanying bit vector.
fn build(n: usize, width: usize, hit_rate: f64) -> (Cluster, PredicateBitVec) {
    let n_preds = 4096u32;
    let mut cluster = Cluster::new(width);
    let mut bits = PredicateBitVec::with_capacity(n_preds as usize);
    // Bits [0, cut) are set; predicate refs are spread over the whole range.
    let cut = (n_preds as f64 * hit_rate) as u32;
    for i in 0..cut {
        bits.set(i);
    }
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32 % n_preds
    };
    let refs: Vec<Vec<u32>> = (0..n)
        .map(|_| (0..width).map(|_| next()).collect())
        .collect();
    for (i, r) in refs.iter().enumerate() {
        cluster.insert(SubscriptionId(i as u32), r);
    }
    (cluster, bits)
}

fn bench_cluster_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_matching");
    for &(n, width) in &[(100_000usize, 3usize), (1_000_000, 3), (1_000_000, 5)] {
        let (cluster, bits) = build(n, width, 0.3);
        let mut out = Vec::with_capacity(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::new(format!("no-prefetch/w{width}"), n),
            &n,
            |b, _| {
                b.iter(|| {
                    out.clear();
                    cluster.match_into::<false>(&bits, &mut out)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("prefetch/w{width}"), n),
            &n,
            |b, _| {
                b.iter(|| {
                    out.clear();
                    cluster.match_into::<true>(&bits, &mut out)
                })
            },
        );
    }
    group.finish();
}

fn bench_selectivity_shortcircuit(c: &mut Criterion) {
    // Columnwise storage should get cheaper as the first column gets more
    // selective (later columns' cache lines are skipped).
    let mut group = c.benchmark_group("first_column_selectivity");
    for &rate in &[0.9f64, 0.3, 0.05] {
        let (cluster, bits) = build(500_000, 4, rate);
        let mut out = Vec::with_capacity(500_000);
        group.bench_with_input(BenchmarkId::from_parameter(rate), &rate, |b, _| {
            b.iter(|| {
                out.clear();
                cluster.match_into::<true>(&bits, &mut out)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cluster_matching,
    bench_selectivity_shortcircuit
);
criterion_main!(benches);
