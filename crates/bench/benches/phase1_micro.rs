//! Phase-1 evaluator shoot-out: flat snapshot index vs. B+-tree range scans.
//!
//! Both paths answer the same question — which ordered predicates does an
//! event pair satisfy — over identical `PredicateIndex` contents. The
//! snapshot path resolves each direction with one binary search plus a
//! contiguous remap-table run (bulk bit-set); the B+-tree path walks linked
//! leaves testing per-key operator slots. The sweep scales the number of
//! range predicates per attribute; the acceptance bar is the snapshot
//! winning from 1k predicates per attribute up.
//!
//! The `snapshot_batched64` rows drive the same workload through the
//! attribute-major `eval_batch_into` path, 64 events per iteration (divide
//! by 64 for per-event time); the reusable `Phase1Batch` scratch lives
//! across iterations, so steady-state allocation is zero.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pubsub_bench::phase1::{build_range_index, range_events, ATTRS};
use pubsub_index::{Phase1Batch, PredicateBitVec};

fn bench_phase1_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase1_micro");
    for &preds_per_attr in &[256usize, 1_024, 4_096] {
        let idx = build_range_index(ATTRS, preds_per_attr);
        let events = range_events(ATTRS, preds_per_attr, 64);
        let mut bits = PredicateBitVec::with_capacity(idx.id_bound());
        let mut satisfied = Vec::new();

        group.bench_with_input(
            BenchmarkId::new("snapshot", preds_per_attr),
            &preds_per_attr,
            |b, _| {
                let mut i = 0;
                b.iter(|| {
                    satisfied.clear();
                    idx.eval_into(&events[i % events.len()], &mut bits, &mut satisfied);
                    bits.clear();
                    i += 1;
                    satisfied.len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("snapshot_batched64", preds_per_attr),
            &preds_per_attr,
            |b, _| {
                let mut batch = Phase1Batch::new();
                b.iter(|| {
                    idx.eval_batch_into(&events, &mut batch);
                    let mut total = 0usize;
                    for i in 0..events.len() {
                        idx.materialize(&mut batch, i);
                        total += batch.satisfied(i).len();
                        batch.clear_event(i);
                    }
                    total
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("btree", preds_per_attr),
            &preds_per_attr,
            |b, _| {
                let mut i = 0;
                b.iter(|| {
                    satisfied.clear();
                    idx.eval_into_btree(&events[i % events.len()], &mut bits, &mut satisfied);
                    bits.clear();
                    i += 1;
                    satisfied.len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_phase1_micro);
criterion_main!(benches);
