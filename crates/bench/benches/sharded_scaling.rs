//! Shard-count scaling of the parallel matching layer: the same W0
//! workload matched by a `ShardedMatcher` over the dynamic engine at
//! 1, 2, 4 and 8 shards, batched and unbatched, against the unsharded
//! engine as baseline.
//!
//! The interesting comparisons:
//!   * `unsharded` vs `shards/1` — pure fan-out/channel overhead;
//!   * `shards/1` vs `shards/4` — parallel speedup on the partial match
//!     phase;
//!   * `batch_*` vs the per-event rows — how much of the wakeup cost the
//!     batched pipeline amortises.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pubsub_bench::{load_engine, load_engine_sharded};
use pubsub_core::EngineKind;
use pubsub_types::SubscriptionId;
use pubsub_workload::{presets, WorkloadGen};

const N_SUBS: usize = 100_000;
const BATCH: usize = 64;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn bench_sharded_match_event(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_match_event_w0_100k");
    group.sample_size(20);

    let mut gen = WorkloadGen::new(presets::w0(N_SUBS));
    let (mut engine, _) = load_engine(EngineKind::Dynamic, &mut gen, N_SUBS);
    let events: Vec<_> = (0..256).map(|_| gen.event()).collect();
    let mut out = Vec::new();
    group.bench_with_input(BenchmarkId::from_parameter("unsharded"), &0, |b, _| {
        let mut i = 0;
        b.iter(|| {
            out.clear();
            engine.match_event(&events[i % events.len()], &mut out);
            i += 1;
            out.len()
        })
    });

    for shards in SHARD_COUNTS {
        let mut gen = WorkloadGen::new(presets::w0(N_SUBS));
        let (mut engine, _) = load_engine_sharded(EngineKind::Dynamic, shards, &mut gen, N_SUBS);
        let events: Vec<_> = (0..256).map(|_| gen.event()).collect();
        let mut out = Vec::new();
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, _| {
            let mut i = 0;
            b.iter(|| {
                out.clear();
                engine.match_event(&events[i % events.len()], &mut out);
                i += 1;
                out.len()
            })
        });
    }
    group.finish();
}

fn bench_sharded_match_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_match_batch_w0_100k");
    group.sample_size(20);
    group.throughput(Throughput::Elements(BATCH as u64));

    for shards in SHARD_COUNTS {
        let mut gen = WorkloadGen::new(presets::w0(N_SUBS));
        let (mut engine, _) = load_engine_sharded(EngineKind::Dynamic, shards, &mut gen, N_SUBS);
        let batches: Vec<Vec<_>> = (0..8)
            .map(|_| (0..BATCH).map(|_| gen.event()).collect())
            .collect();
        let mut out: Vec<Vec<SubscriptionId>> = Vec::new();
        group.bench_with_input(BenchmarkId::new("batch_shards", shards), &shards, |b, _| {
            let mut i = 0;
            b.iter(|| {
                engine.match_batch_into(&batches[i % batches.len()], &mut out);
                i += 1;
                out.len()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sharded_match_event,
    bench_sharded_match_batch
);
criterion_main!(benches);
