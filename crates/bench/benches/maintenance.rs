//! Cost of the dynamic maintenance machinery (paper §4): how expensive is a
//! maintenance pass, and what does subscription churn cost with maintenance
//! amortised in — the overheads behind the "irregular" transition phase of
//! Figure 4(a).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pubsub_core::{ClusteredMatcher, DynamicConfig, MatchEngine};
use pubsub_types::SubscriptionId;
use pubsub_workload::{presets, WorkloadGen};

fn loaded_matcher(n: usize, period: usize) -> (ClusteredMatcher, WorkloadGen) {
    let mut engine = ClusteredMatcher::new_dynamic_with(DynamicConfig {
        period,
        ..DynamicConfig::default()
    });
    let mut gen = WorkloadGen::new(presets::w0(n));
    for i in 0..n {
        engine.insert(SubscriptionId(i as u32), &gen.subscription());
    }
    // Warm statistics so maintenance has realistic selectivities.
    let mut out = Vec::new();
    for _ in 0..200 {
        out.clear();
        engine.match_event(&gen.event(), &mut out);
    }
    (engine, gen)
}

fn bench_maintenance_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("maintenance_pass");
    group.sample_size(10);
    for &n in &[50_000usize, 200_000] {
        // Huge period: we trigger passes manually.
        let (mut engine, _) = loaded_matcher(n, usize::MAX);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| engine.run_maintenance())
        });
    }
    group.finish();
}

fn bench_churn_with_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn_insert_remove");
    group.sample_size(20);
    for &period in &[1024usize, 16 * 1024] {
        let (mut engine, mut gen) = loaded_matcher(100_000, period);
        let subs: Vec<_> = (0..1024).map(|_| gen.subscription()).collect();
        group.bench_with_input(BenchmarkId::new("period", period), &period, |b, _| {
            let mut next = 10_000_000u32;
            let mut i = 0;
            b.iter(|| {
                let id = SubscriptionId(next);
                next += 1;
                engine.insert(id, &subs[i % subs.len()]);
                engine.remove(id);
                i += 1;
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_maintenance_pass,
    bench_churn_with_maintenance
);
criterion_main!(benches);
