//! Harness plumbing: argument parsing, engine loading, series reporting.

use pubsub_broker::{PublishMode, SharedBroker, Validity};
use pubsub_core::{Backpressure, EngineKind, MatchEngine, ShardedMatcher};
use pubsub_types::{Event, SubscriptionId};
use pubsub_workload::WorkloadGen;
use std::time::{Duration, Instant};

/// Command-line arguments common to the figure harnesses.
///
/// Paper-scale runs (6M subscriptions, hours of equilibrium) are possible by
/// raising these; the defaults are laptop-scale and finish in minutes while
/// preserving every qualitative conclusion (DESIGN.md §4).
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Subscription counts to sweep (`--subs 100000,250000`).
    pub subs: Vec<usize>,
    /// Events measured per data point (`--events N`).
    pub events: usize,
    /// Engines to run (`--engines counting,dynamic`).
    pub engines: Vec<EngineKind>,
    /// Equilibrium ticks (`--ticks N`, drift harnesses only).
    pub ticks: u64,
    /// Wall budget per tick in ms (`--tick-ms N`).
    pub tick_ms: u64,
    /// Print per-phase timing split (`--phases`).
    pub phases: bool,
    /// Shard count for the sharded engine layer (`--shards N`); 0 runs the
    /// engines unsharded.
    pub shards: usize,
    /// Events per publish batch for batched measurements (`--batch N`).
    pub batch: usize,
    /// Emit one JSON object per data point instead of the text table
    /// (`--json`).
    pub json: bool,
    /// Publisher-thread counts for the contention sweep
    /// (`--publishers 1,2,4,8`); empty runs the harness's normal figure.
    pub publishers: Vec<usize>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        Self {
            subs: vec![100_000, 250_000, 500_000, 1_000_000],
            events: 400,
            engines: EngineKind::PAPER_ENGINES.to_vec(),
            ticks: 120,
            tick_ms: 25,
            phases: false,
            shards: 0,
            batch: 64,
            json: false,
            publishers: Vec::new(),
        }
    }
}

/// Parses `std::env::args`-style flags into [`HarnessArgs`], starting from
/// the given defaults. Unknown flags abort with a usage message.
pub fn parse_args(defaults: HarnessArgs) -> HarnessArgs {
    let mut args = defaults;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--subs" => {
                args.subs = value("--subs")
                    .split(',')
                    .map(|s| s.trim().parse().expect("integer subscription count"))
                    .collect();
            }
            "--events" => args.events = value("--events").parse().expect("integer"),
            "--engines" => {
                args.engines = value("--engines")
                    .split(',')
                    .map(|s| s.trim().parse().expect("engine name"))
                    .collect();
            }
            "--ticks" => args.ticks = value("--ticks").parse().expect("integer"),
            "--tick-ms" => args.tick_ms = value("--tick-ms").parse().expect("integer"),
            "--phases" => args.phases = true,
            "--shards" => args.shards = value("--shards").parse().expect("integer shard count"),
            "--batch" => args.batch = value("--batch").parse().expect("integer batch size"),
            "--json" => args.json = true,
            "--publishers" => {
                args.publishers = value("--publishers")
                    .split(',')
                    .map(|s| s.trim().parse().expect("integer publisher count"))
                    .collect();
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --subs a,b,c  --events N  --engines a,b  --ticks N  --tick-ms N  \
                     --phases  --shards N  --batch N  --json  --publishers a,b,c"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }
    args
}

/// Loads `n_subs` subscriptions from `gen` into a fresh engine of `kind`
/// (including `finalize`). Returns the engine and the wall-clock loading
/// time — the quantity of Figure 3(d).
pub fn load_engine(
    kind: EngineKind,
    gen: &mut WorkloadGen,
    n_subs: usize,
) -> (Box<dyn MatchEngine + Send>, Duration) {
    load_built_engine(kind.build(), gen, n_subs)
}

/// [`load_engine`] behind a shard dimension: `shards == 0` builds the plain
/// engine, `shards >= 1` wraps it in a [`ShardedMatcher`] with that many
/// worker threads (so `--shards 1` measures pure channel overhead).
pub fn load_engine_sharded(
    kind: EngineKind,
    shards: usize,
    gen: &mut WorkloadGen,
    n_subs: usize,
) -> (Box<dyn MatchEngine + Send>, Duration) {
    let engine: Box<dyn MatchEngine + Send> = if shards == 0 {
        kind.build()
    } else {
        Box::new(ShardedMatcher::new(kind, shards))
    };
    load_built_engine(engine, gen, n_subs)
}

fn load_built_engine(
    mut engine: Box<dyn MatchEngine + Send>,
    gen: &mut WorkloadGen,
    n_subs: usize,
) -> (Box<dyn MatchEngine + Send>, Duration) {
    let start = Instant::now();
    for i in 0..n_subs {
        let sub = gen.subscription();
        engine.insert(SubscriptionId(i as u32), &sub);
    }
    engine.finalize();
    (engine, start.elapsed())
}

/// Measures matching throughput: `events` events drawn from `gen`, matched
/// back to back. Returns `(events per second, mean match latency)`.
pub fn measure_throughput(
    engine: &mut (dyn MatchEngine + Send),
    gen: &mut WorkloadGen,
    events: usize,
) -> (f64, Duration) {
    // Pre-draw events so generation cost stays out of the measurement.
    let batch: Vec<_> = (0..events).map(|_| gen.event()).collect();
    let mut out = Vec::new();
    let start = Instant::now();
    for e in &batch {
        out.clear();
        engine.match_event(e, &mut out);
    }
    let elapsed = start.elapsed();
    let per_event = elapsed / events as u32;
    (events as f64 / elapsed.as_secs_f64(), per_event)
}

/// Measures batched matching throughput: `events` events submitted in
/// batches of `batch_size` via [`MatchEngine::match_batch_into`]. Result
/// buffers are reused across batches, so the steady state allocates
/// nothing. Returns `(events per second, mean match latency)`.
pub fn measure_batched_throughput(
    engine: &mut (dyn MatchEngine + Send),
    gen: &mut WorkloadGen,
    events: usize,
    batch_size: usize,
) -> (f64, Duration) {
    let batch_size = batch_size.max(1);
    let batch: Vec<_> = (0..events).map(|_| gen.event()).collect();
    let mut out: Vec<Vec<SubscriptionId>> = Vec::new();
    let start = Instant::now();
    for chunk in batch.chunks(batch_size) {
        engine.match_batch_into(chunk, &mut out);
    }
    let elapsed = start.elapsed();
    let per_event = elapsed / events as u32;
    (events as f64 / elapsed.as_secs_f64(), per_event)
}

/// Loads `n_subs` subscriptions from `gen` into a [`SharedBroker`] running
/// in the given publish mode, then compacts, so RCU measurements start from
/// a merged snapshot (no brute-forced delta).
pub fn load_shared_broker(
    kind: EngineKind,
    shards: usize,
    mode: PublishMode,
    gen: &mut WorkloadGen,
    n_subs: usize,
) -> SharedBroker {
    let broker = SharedBroker::with_publish_mode(kind, shards.max(1), Backpressure::Block, mode);
    for _ in 0..n_subs {
        broker.subscribe(gen.subscription(), Validity::forever());
    }
    broker.compact();
    broker
}

/// Aggregate publish throughput with `publishers` concurrent threads, each
/// publishing every event in `events` once. Returns total events/second —
/// the contention figure: under the locked mode threads serialize on the
/// shard locks, under RCU they read independent snapshot pins.
pub fn measure_publish_scaling(broker: &SharedBroker, events: &[Event], publishers: usize) -> f64 {
    let publishers = publishers.max(1);
    let total = (events.len() * publishers) as f64;
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..publishers {
            let broker = broker.clone();
            s.spawn(move || {
                let mut out = Vec::new();
                for e in events {
                    out.clear();
                    broker.publish_into(e, &mut out);
                }
            });
        }
    });
    total / start.elapsed().as_secs_f64()
}

/// A printable series: one row per x-value, one column per engine.
#[derive(Debug)]
pub struct SeriesReport {
    /// Figure title.
    pub title: String,
    /// Column header for the x values.
    pub x_label: String,
    /// Series names, in column order.
    pub series: Vec<String>,
    /// Rows: `(x, values)`, one value per series.
    pub rows: Vec<(String, Vec<String>)>,
}

impl SeriesReport {
    /// Creates an empty report.
    pub fn new(title: impl Into<String>, x_label: impl Into<String>, series: Vec<String>) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            series,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, x: impl Into<String>, values: Vec<String>) {
        assert_eq!(values.len(), self.series.len(), "row arity");
        self.rows.push((x.into(), values));
    }

    /// Renders as an aligned text table (the harnesses' output format).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = Vec::with_capacity(self.series.len() + 1);
        widths.push(
            std::iter::once(self.x_label.len())
                .chain(self.rows.iter().map(|(x, _)| x.len()))
                .max()
                .unwrap_or(0),
        );
        for (i, s) in self.series.iter().enumerate() {
            widths.push(
                std::iter::once(s.len())
                    .chain(self.rows.iter().map(|(_, v)| v[i].len()))
                    .max()
                    .unwrap_or(0),
            );
        }
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        out.push_str(&format!("{:>w$}", self.x_label, w = widths[0]));
        for (i, s) in self.series.iter().enumerate() {
            out.push_str(&format!("  {:>w$}", s, w = widths[i + 1]));
        }
        out.push('\n');
        for (x, values) in &self.rows {
            out.push_str(&format!("{x:>w$}", w = widths[0]));
            for (i, v) in values.iter().enumerate() {
                out.push_str(&format!("  {:>w$}", v, w = widths[i + 1]));
            }
            out.push('\n');
        }
        out
    }
}

/// Human-readable byte count.
pub fn fmt_bytes(bytes: usize) -> String {
    if bytes >= 1 << 30 {
        format!("{:.2} GiB", bytes as f64 / (1u64 << 30) as f64)
    } else if bytes >= 1 << 20 {
        format!("{:.1} MiB", bytes as f64 / (1 << 20) as f64)
    } else {
        format!("{:.1} KiB", bytes as f64 / (1 << 10) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_workload::presets;

    #[test]
    fn load_and_measure_small() {
        let mut gen = WorkloadGen::new(presets::w0(10_000));
        let (mut engine, load_time) = load_engine(EngineKind::Dynamic, &mut gen, 2_000);
        assert_eq!(engine.len(), 2_000);
        assert!(load_time.as_nanos() > 0);
        let (eps, lat) = measure_throughput(engine.as_mut(), &mut gen, 50);
        assert!(eps > 0.0);
        assert!(lat.as_nanos() > 0);
        assert_eq!(engine.stats().events, 50);
    }

    #[test]
    fn series_report_renders_aligned() {
        let mut r = SeriesReport::new("T", "n", vec!["a".into(), "bb".into()]);
        r.push_row("100", vec!["1.0".into(), "2.0".into()]);
        r.push_row("100000", vec!["3".into(), "444444".into()]);
        let text = r.render();
        assert!(text.contains("# T"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[1].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(512), "0.5 KiB");
        assert_eq!(fmt_bytes(2 << 20), "2.0 MiB");
        assert!(fmt_bytes(3 << 30).contains("GiB"));
    }
}
