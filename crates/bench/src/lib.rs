//! Shared infrastructure for the figure-reproduction harnesses.
//!
//! One binary per paper figure lives in `src/bin/`; Criterion micro-benches
//! live in `benches/`. This library provides what they share: a counting
//! global allocator (heap-resident bytes for Figure 3(c)), workload loading
//! helpers, and plain-text series reporting.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod alloc;
pub mod drift;
pub mod harness;
pub mod phase1;

pub use alloc::CountingAllocator;
pub use harness::{
    fmt_bytes, load_engine, load_engine_sharded, load_shared_broker, measure_batched_throughput,
    measure_publish_scaling, measure_throughput, parse_args, HarnessArgs, SeriesReport,
};
