//! A counting global allocator.
//!
//! Figure 3(c) reports the memory-resident size of the system per engine and
//! subscription count. We measure the same quantity — live heap bytes —
//! directly at the allocator, which is immune to OS accounting noise
//! (DESIGN.md §4).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Live heap bytes allocated through [`CountingAllocator`].
static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
/// High-water mark of live bytes.
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);

/// A `#[global_allocator]` wrapper around the system allocator that tracks
/// live and peak heap bytes.
///
/// Install in a harness binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: pubsub_bench::CountingAllocator = pubsub_bench::CountingAllocator;
/// ```
pub struct CountingAllocator;

impl CountingAllocator {
    /// Currently live heap bytes.
    pub fn live_bytes() -> usize {
        LIVE_BYTES.load(Ordering::Relaxed)
    }

    /// High-water mark since process start (or the last
    /// [`CountingAllocator::reset_peak`]).
    pub fn peak_bytes() -> usize {
        PEAK_BYTES.load(Ordering::Relaxed)
    }

    /// Resets the peak to the current live count.
    pub fn reset_peak() {
        PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

fn add(n: usize) {
    let live = LIVE_BYTES.fetch_add(n, Ordering::Relaxed) + n;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

fn sub(n: usize) {
    LIVE_BYTES.fetch_sub(n, Ordering::Relaxed);
}

// SAFETY: delegates every operation to `System`; the counters are purely
// observational.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            add(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        sub(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            add(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            sub(layout.size());
            add(new_size);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install the allocator globally; exercise the
    // bookkeeping directly.
    #[test]
    fn counters_track_alloc_and_dealloc() {
        let before = CountingAllocator::live_bytes();
        add(1000);
        assert_eq!(CountingAllocator::live_bytes(), before + 1000);
        assert!(CountingAllocator::peak_bytes() >= before + 1000);
        sub(1000);
        assert_eq!(CountingAllocator::live_bytes(), before);
    }

    #[test]
    fn reset_peak_snaps_to_live() {
        add(500);
        CountingAllocator::reset_peak();
        assert_eq!(
            CountingAllocator::peak_bytes(),
            CountingAllocator::live_bytes()
        );
        sub(500);
    }
}
