//! Shared workload and measurement helpers for the phase-1 evaluator
//! comparison (the `phase1_micro` Criterion bench and the `phase1_compare`
//! binary that emits `BENCH_phase1.json`).

use pubsub_index::{Phase1Batch, PredicateBitVec, PredicateIndex};
use pubsub_types::{AttrId, Event, Operator, Predicate, Value};
use std::time::Instant;

/// Attributes in the comparison universe (and per event).
pub const ATTRS: u32 = 8;

/// The four ordered operators, round-robined over constants.
const ORDERED: [Operator; 4] = [Operator::Lt, Operator::Le, Operator::Ge, Operator::Gt];

/// Interns exactly `preds_per_attr` range predicates on each of `attrs`
/// attributes: the four ordered operators cycling over an integer constant
/// domain of `preds_per_attr / 4` values. Snapshots are compacted after the
/// bulk load so the comparison measures the steady state (no delta-overlay
/// stragglers from the tail of the insert burst).
pub fn build_range_index(attrs: u32, preds_per_attr: usize) -> PredicateIndex {
    let mut idx = PredicateIndex::new();
    for a in 0..attrs {
        for k in 0..preds_per_attr {
            let op = ORDERED[k % 4];
            let c = (k / 4) as i64;
            idx.intern(Predicate::new(AttrId(a), op, c));
        }
    }
    idx.rebuild_snapshots();
    idx
}

/// Deterministic events over the same domain: every attribute present, values
/// spread across the constant range so run lengths vary per pair.
pub fn range_events(attrs: u32, preds_per_attr: usize, n: usize) -> Vec<Event> {
    let domain = (preds_per_attr / 4).max(1) as i64;
    (0..n)
        .map(|i| {
            Event::from_pairs(
                (0..attrs)
                    .map(|a| {
                        let v = (i as i64 * 131 + a as i64 * 17) % domain;
                        (AttrId(a), Value::Int(v))
                    })
                    .collect(),
            )
            .expect("distinct attributes")
        })
        .collect()
}

/// Measures mean phase-1 nanoseconds per event over `rounds` passes of
/// `events`, on the snapshot path (`btree == false`) or the B+-tree
/// reference path (`btree == true`). Returns `(ns_per_event,
/// satisfied_per_event)` — the latter as a self-check that both paths do the
/// same work.
pub fn measure_phase1(
    idx: &PredicateIndex,
    events: &[Event],
    rounds: usize,
    btree: bool,
) -> (f64, f64) {
    let mut bits = PredicateBitVec::with_capacity(idx.id_bound());
    let mut satisfied = Vec::new();
    let mut total_satisfied = 0u64;
    let start = Instant::now();
    for _ in 0..rounds {
        for e in events {
            satisfied.clear();
            if btree {
                idx.eval_into_btree(e, &mut bits, &mut satisfied);
            } else {
                idx.eval_into(e, &mut bits, &mut satisfied);
            }
            bits.clear();
            total_satisfied += satisfied.len() as u64;
        }
    }
    let n = (rounds * events.len()) as f64;
    (
        start.elapsed().as_nanos() as f64 / n,
        total_satisfied as f64 / n,
    )
}

/// Measures mean phase-1 nanoseconds per event on the **batched** snapshot
/// path: events are delivered in chunks of `batch` through
/// [`PredicateIndex::eval_batch_into`] with one reusable [`Phase1Batch`]
/// scratch (zero steady-state allocation). Returns `(ns_per_event,
/// satisfied_per_event)` like [`measure_phase1`]; per-event clearing is
/// inside the timed region, matching the scalar measurement.
pub fn measure_phase1_batched(
    idx: &PredicateIndex,
    events: &[Event],
    rounds: usize,
    batch_size: usize,
) -> (f64, f64) {
    let mut batch = Phase1Batch::new();
    let mut total_satisfied = 0u64;
    let start = Instant::now();
    for _ in 0..rounds {
        for chunk in events.chunks(batch_size.max(1)) {
            idx.eval_batch_into(chunk, &mut batch);
            for i in 0..chunk.len() {
                idx.materialize(&mut batch, i);
                total_satisfied += batch.satisfied(i).len() as u64;
                batch.clear_event(i);
            }
        }
    }
    let n = (rounds * events.len()) as f64;
    (
        start.elapsed().as_nanos() as f64 / n,
        total_satisfied as f64 / n,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universe_has_expected_size_and_paths_agree() {
        let idx = build_range_index(3, 64);
        assert_eq!(idx.len(), 3 * 64);
        let events = range_events(3, 64, 8);
        let (_, sat_snap) = measure_phase1(&idx, &events, 1, false);
        let (_, sat_tree) = measure_phase1(&idx, &events, 1, true);
        assert_eq!(sat_snap, sat_tree, "both paths satisfy the same set");
        assert!(sat_snap > 0.0);
    }

    #[test]
    fn batched_path_does_the_same_work() {
        let idx = build_range_index(3, 64);
        let events = range_events(3, 64, 24);
        let (_, sat_scalar) = measure_phase1(&idx, &events, 1, false);
        for batch in [1usize, 7, 16, 64] {
            let (_, sat_batched) = measure_phase1_batched(&idx, &events, 1, batch);
            assert_eq!(sat_scalar, sat_batched, "batch size {batch}");
        }
    }
}
