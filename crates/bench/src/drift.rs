//! Shared driver for the Figure 4 adaptability experiments.
//!
//! Both figures run the same protocol (paper §6.2.2): bring the system to
//! equilibrium on workload A, run a stable warm phase, then switch the
//! *incoming* subscription stream (and, for 4(b), the event stream) to
//! workload B; with FIFO deletion the population fully turns over, after
//! which a final stable phase runs. Throughput is averaged per window and
//! compared between the *dynamic* strategy (maintenance active throughout)
//! and the *no change* strategy (the same engine with its table
//! configuration frozen at the end of the warm phase).

use crate::harness::SeriesReport;
use pubsub_broker::{EquilibriumConfig, EquilibriumSim};
#[allow(unused_imports)]
use pubsub_core::EngineStats;
use pubsub_core::{ClusteredMatcher, DynamicConfig, MatchEngine};
use pubsub_workload::{WorkloadGen, WorkloadSpec};
use std::time::Duration;

/// Parameters of one drift experiment.
#[derive(Debug, Clone)]
pub struct DriftExperiment {
    /// Figure title.
    pub title: String,
    /// Initial workload (subscriptions *and* events).
    pub before: WorkloadSpec,
    /// Post-drift subscription workload.
    pub after_subs: WorkloadSpec,
    /// Post-drift event workload (same as `before` for Figure 4(a); skewed
    /// for Figure 4(b)).
    pub after_events: WorkloadSpec,
    /// Equilibrium population.
    pub population: usize,
    /// Total ticks; the drift begins after 20% of them and the churn rate is
    /// sized so the population fully turns over by 80%.
    pub ticks: u64,
    /// Wall budget per tick.
    pub tick_budget: Duration,
    /// Ticks averaged per reported window (the paper averages every two
    /// hours of its 20-hour run).
    pub window: u64,
}

fn run_strategy(exp: &DriftExperiment, churn: usize, freeze_at_drift: bool) -> Vec<f64> {
    let config = EquilibriumConfig {
        initial_subs: exp.population,
        churn_per_tick: churn,
        tick_budget: exp.tick_budget,
        event_slice: 5,
    };
    // Several maintenance passes per turnover, as the paper's periodic
    // metric updates imply.
    let engine = ClusteredMatcher::new_dynamic_with(DynamicConfig {
        period: (churn * 8).max(1024),
        // A table is only worth its per-event probe cost if a meaningful
        // fraction of the population benefits; scale Bcreate with the
        // population as the paper's operators would.
        b_create: (exp.population / 50).max(1024),
        ..DynamicConfig::default()
    });
    let mut sim = EquilibriumSim::new(engine, config);
    let mut before_subs = WorkloadGen::new(exp.before.clone());
    let mut after_subs = WorkloadGen::new(exp.after_subs.clone());
    let mut before_events = WorkloadGen::new(exp.before.clone());
    let mut after_events = WorkloadGen::new(exp.after_events.clone());
    sim.load_initial(&mut before_subs);

    let drift_start = exp.ticks / 5;
    let mut series = Vec::with_capacity(exp.ticks as usize);
    let debug = std::env::var_os("FASTPUBSUB_DRIFT_DEBUG").is_some();
    let mut prev = *sim.engine().stats();
    for tick in 0..exp.ticks {
        if tick == drift_start && freeze_at_drift {
            // The no-change strategy: keep the configuration that was
            // optimal for the pre-drift workload.
            sim.engine_mut().freeze();
        }
        let (sg, eg) = if tick >= drift_start {
            (&mut after_subs, &mut after_events)
        } else {
            (&mut before_subs, &mut before_events)
        };
        let r = sim.run_tick(sg, eg);
        if debug && tick % 6 == 0 {
            let s = *sim.engine().stats();
            eprintln!(
                "      tick {tick}: churn {:?}, events {}, p1 {}us p2 {}us checks {}",
                r.churn_time,
                r.events,
                (s.phase1_nanos - prev.phase1_nanos) / 1000 / (s.events - prev.events).max(1),
                (s.phase2_nanos - prev.phase2_nanos) / 1000 / (s.events - prev.events).max(1),
                (s.subscriptions_checked - prev.subscriptions_checked)
                    / (s.events - prev.events).max(1),
            );
            prev = s;
        }
        series.push(r.events as f64 / exp.tick_budget.as_secs_f64());
    }
    if debug {
        let e = sim.engine();
        let s = e.stats();
        eprintln!(
            "    final: {} tables, created {}, deleted {}, moves {}, checks/event {:.0}",
            e.table_summary().len(),
            s.tables_created,
            s.tables_deleted,
            s.subscription_moves,
            s.checks_per_event(),
        );
    }
    series
}

/// Runs both strategies and reports per-window mean throughput.
pub fn run_drift(exp: &DriftExperiment) -> SeriesReport {
    let churn = (exp.population as f64 / (0.6 * exp.ticks as f64)).ceil() as usize;
    let drift_start = exp.ticks / 5;

    eprintln!("  [dynamic strategy]");
    let dynamic_series = run_strategy(exp, churn, false);
    eprintln!("  [no-change strategy]");
    let no_change_series = run_strategy(exp, churn, true);

    let mut report = SeriesReport::new(
        format!(
            "{} — population {}, churn {churn}/tick, drift at tick {drift_start}",
            exp.title, exp.population
        ),
        "tick",
        vec!["dynamic (ev/s)".into(), "no-change (ev/s)".into()],
    );
    for w in 0..(exp.ticks / exp.window.max(1)) {
        let range = (w * exp.window) as usize..((w + 1) * exp.window) as usize;
        let mean = |s: &[f64]| {
            let slice = &s[range.clone()];
            slice.iter().sum::<f64>() / slice.len() as f64
        };
        report.push_row(
            format!("{}", w * exp.window),
            vec![
                format!("{:.0}", mean(&dynamic_series)),
                format!("{:.0}", mean(&no_change_series)),
            ],
        );
    }
    report
}
