//! Figure 4(a): event throughput under *subscription schema drift*
//! (W3 → W4): the incoming subscriptions switch from focusing on the first
//! 16 attributes to the other 16, while events keep valuing all 32.
//!
//! Paper outcome: the no-change strategy ends at roughly half its initial
//! throughput; the dynamic strategy adapts (with some irregularity during
//! the transition while new tables are built) and ends well above it.
//!
//! Usage: `cargo run --release -p pubsub-bench --bin fig4a_schema_drift --
//!         [--subs N] [--ticks N] [--tick-ms N]`

use pubsub_bench::drift::{run_drift, DriftExperiment};
use pubsub_bench::{parse_args, HarnessArgs};
use pubsub_workload::presets;
use std::time::Duration;

fn main() {
    let args = parse_args(HarnessArgs {
        subs: vec![100_000],
        ticks: 150,
        tick_ms: 25,
        ..HarnessArgs::default()
    });
    let population = args.subs[0];
    let exp = DriftExperiment {
        title: "Figure 4(a): schema drift W3 -> W4".into(),
        before: presets::w3(population),
        after_subs: presets::w4(population),
        after_events: presets::w3(population), // events unchanged
        population,
        ticks: args.ticks,
        tick_budget: Duration::from_millis(args.tick_ms),
        window: (args.ticks / 10).max(1),
    };
    println!("{}", run_drift(&exp).render());
}
