//! Figure 3(b): throughput of *dynamic* and *propagation-wp* under
//! different operator mixes — W1 (one inequality per subscription) vs. W2
//! (six inequalities).
//!
//! The paper finds both engines slow down by a similar constant factor from
//! W1 to W2 (they share the inequality handling; the dynamic gain comes
//! from equality predicates), and dynamic stays ahead in both.
//!
//! Usage: `cargo run --release -p pubsub-bench --bin fig3b_operators --
//!         [--subs N] [--events N]`

use pubsub_bench::{load_engine, measure_throughput, parse_args, HarnessArgs, SeriesReport};
use pubsub_core::EngineKind;
use pubsub_workload::{presets, WorkloadGen, WorkloadSpec};

/// A named workload preset constructor.
type Preset = fn(usize) -> WorkloadSpec;

fn main() {
    let args = parse_args(HarnessArgs {
        subs: vec![300_000],
        events: 300,
        engines: vec![EngineKind::PropagationPrefetch, EngineKind::Dynamic],
        ..HarnessArgs::default()
    });
    let n = args.subs[0];
    let workloads: [(&str, Preset); 2] = [("W1", presets::w1), ("W2", presets::w2)];

    let series: Vec<String> = args.engines.iter().map(|e| e.label().to_string()).collect();
    let mut report = SeriesReport::new(
        format!("Figure 3(b): throughput (events/s) by operator mix, {n} subscriptions"),
        "workload",
        series,
    );

    for (name, preset) in workloads {
        let mut row = Vec::new();
        for &kind in &args.engines {
            let mut gen = WorkloadGen::new(preset(n));
            let (mut engine, _) = load_engine(kind, &mut gen, n);
            measure_throughput(engine.as_mut(), &mut gen, 20);
            engine.reset_stats();
            let (eps, _) = measure_throughput(engine.as_mut(), &mut gen, args.events);
            row.push(format!("{eps:.1}"));
            eprintln!("  [{} @ {name}] {eps:.1} events/s", kind.label());
        }
        report.push_row(name, row);
    }

    println!("{}", report.render());
}
