//! Figure 3(a): event matching throughput vs. number of subscriptions,
//! workload W0, for all five engines.
//!
//! The paper's headline numbers at 6,000,000 subscriptions on a 500 MHz
//! Pentium III: counting 1.1 ev/s, propagation 124 ev/s, propagation-wp
//! 196 ev/s, dynamic 602 ev/s. Expect the same *ordering* and roughly the
//! same ratios here; absolute numbers scale with the hardware.
//!
//! With `--phases` also prints the §6.2.1 split: time to compute satisfied
//! predicates (phase 1) vs. time to compute matching subscriptions
//! (phase 2).
//!
//! Usage: `cargo run --release -p pubsub-bench --bin fig3a_throughput --
//!         [--subs 100000,...] [--events N] [--engines a,b] [--phases]`

use pubsub_bench::{load_engine, measure_throughput, parse_args, HarnessArgs, SeriesReport};
use pubsub_workload::{presets, WorkloadGen};

fn main() {
    let args = parse_args(HarnessArgs::default());
    let series: Vec<String> = args.engines.iter().map(|e| e.label().to_string()).collect();
    let mut report = SeriesReport::new(
        "Figure 3(a): throughput (events/s) vs subscriptions, workload W0",
        "subs",
        series.clone(),
    );
    let mut phase_report =
        SeriesReport::new("§6.2.1 split: phase1/phase2 per event (ms)", "subs", series);

    for &n in &args.subs {
        let mut row = Vec::new();
        let mut phase_row = Vec::new();
        for &kind in &args.engines {
            // Counting is orders of magnitude slower (that is the figure's
            // point); cap its event count so a sweep finishes.
            let events = if kind == pubsub_core::EngineKind::Counting {
                args.events.min(60)
            } else {
                args.events
            };
            let mut gen = WorkloadGen::new(presets::w0(n));
            let (mut engine, _) = load_engine(kind, &mut gen, n);
            // Warm-up: one small batch, then reset counters.
            measure_throughput(engine.as_mut(), &mut gen, 20);
            engine.reset_stats();
            let (eps, _) = measure_throughput(engine.as_mut(), &mut gen, events);
            row.push(format!("{eps:.1}"));
            let s = engine.stats();
            phase_row.push(format!(
                "{:.3}/{:.3}",
                s.phase1_nanos as f64 / s.events as f64 / 1e6,
                s.phase2_nanos as f64 / s.events as f64 / 1e6,
            ));
            eprintln!("  [{} @ {n}] {eps:.1} events/s", kind.label());
        }
        report.push_row(n.to_string(), row);
        phase_report.push_row(n.to_string(), phase_row);
    }

    println!("{}", report.render());
    if args.phases {
        println!("{}", phase_report.render());
    }
}
