//! Figure 3(a): event matching throughput vs. number of subscriptions,
//! workload W0, for all five engines — plus the sharding dimension this
//! reproduction adds on top of the paper.
//!
//! The paper's headline numbers at 6,000,000 subscriptions on a 500 MHz
//! Pentium III: counting 1.1 ev/s, propagation 124 ev/s, propagation-wp
//! 196 ev/s, dynamic 602 ev/s. Expect the same *ordering* and roughly the
//! same ratios here; absolute numbers scale with the hardware.
//!
//! With `--phases` also prints the §6.2.1 split: time to compute satisfied
//! predicates (phase 1) vs. time to compute matching subscriptions
//! (phase 2).
//!
//! With `--shards N` every engine runs behind a `ShardedMatcher` with `N`
//! worker threads and events are submitted in batches of `--batch` (the
//! batched pipeline is what amortises the fan-out cost; see DESIGN.md §3).
//! With `--json` each data point is emitted as one JSON object (fields:
//! `figure, workload, engine, subs, shards, batch, events_per_sec,
//! phase1_ms, phase2_ms`) instead of the text table. When the workspace is
//! built with `--features metrics`, each data point is followed by a
//! `metrics_snapshot` JSON line carrying the global `MetricsSnapshot`
//! accumulated during that measurement (metrics are reset between points).
//!
//! Each `--json` data point is also followed by a `phase1_amortization`
//! line: the same workload re-run per-event and through
//! `match_batch_into`, comparing mean phase-1 ns/event (fields:
//! `phase1_scalar_ns, phase1_batched_ns, phase1_batch,
//! phase1_amortization`) — the batch-major amortization win in situ.
//!
//! With `--publishers 1,2,4,8` the harness instead runs the lock-contention
//! experiment: the same loaded subscription set published concurrently from
//! N threads through a `SharedBroker`, once per publish mode (`locked` — the
//! shard-lock path — vs `rcu` — the epoch-protected snapshot path). `--json`
//! rows carry `figure: "contention", mode, publishers, events_per_sec`.
//!
//! Usage: `cargo run --release -p pubsub-bench --bin fig3a_throughput --
//!         [--subs 100000,...] [--events N] [--engines a,b] [--phases]
//!         [--shards N] [--batch N] [--json] [--publishers 1,2,4,8]`

use pubsub_bench::{
    load_engine_sharded, load_shared_broker, measure_batched_throughput, measure_publish_scaling,
    measure_throughput, parse_args, HarnessArgs, SeriesReport,
};
use pubsub_broker::PublishMode;
use pubsub_types::metrics::{self, MetricsSnapshot};
use pubsub_workload::{presets, WorkloadGen};

/// The `--publishers` contention sweep: locked vs RCU aggregate publish
/// throughput at each publisher-thread count.
fn run_contention(args: &HarnessArgs) {
    let shards = args.shards.max(1);
    for &n in &args.subs {
        for &kind in &args.engines {
            let events_n = if kind == pubsub_core::EngineKind::Counting {
                args.events.min(60)
            } else {
                args.events
            };
            let mut report = SeriesReport::new(
                format!(
                    "Contention: publish throughput (events/s), {} @ {n} subs, \
                     {shards} shards, W0",
                    kind.label()
                ),
                "publishers",
                vec!["locked".into(), "rcu".into()],
            );
            let mut columns: Vec<Vec<f64>> = Vec::new();
            for mode in [PublishMode::Locked, PublishMode::Rcu] {
                let mut gen = WorkloadGen::new(presets::w0(n));
                let broker = load_shared_broker(kind, shards, mode, &mut gen, n);
                let events: Vec<_> = (0..events_n).map(|_| gen.event()).collect();
                // Warm-up primes the per-thread scratch and the page cache.
                measure_publish_scaling(&broker, &events[..events.len().min(20)], 1);
                let mut col = Vec::new();
                for &p in &args.publishers {
                    let eps = measure_publish_scaling(&broker, &events, p);
                    col.push(eps);
                    let mode_label = match mode {
                        PublishMode::Locked => "locked",
                        PublishMode::Rcu => "rcu",
                    };
                    if args.json {
                        println!(
                            "{{\"figure\": \"contention\", \"workload\": \"w0\", \
                             \"engine\": \"{}\", \"subs\": {n}, \"shards\": {shards}, \
                             \"mode\": \"{mode_label}\", \"publishers\": {p}, \
                             \"events_per_sec\": {eps:.1}}}",
                            kind.label(),
                        );
                    }
                    eprintln!(
                        "  [{} @ {n} subs, {mode_label}, {p} publishers] {eps:.1} events/s",
                        kind.label(),
                    );
                }
                columns.push(col);
            }
            if !args.json {
                for (i, &p) in args.publishers.iter().enumerate() {
                    report.push_row(
                        p.to_string(),
                        columns.iter().map(|c| format!("{:.1}", c[i])).collect(),
                    );
                }
                println!("{}", report.render());
            }
        }
    }
}

fn main() {
    let args = parse_args(HarnessArgs::default());
    if !args.publishers.is_empty() {
        run_contention(&args);
        return;
    }
    let series: Vec<String> = args.engines.iter().map(|e| e.label().to_string()).collect();
    let title = if args.shards == 0 {
        "Figure 3(a): throughput (events/s) vs subscriptions, workload W0".to_string()
    } else {
        format!(
            "Figure 3(a) sharded: throughput (events/s) vs subscriptions, W0, \
             {} shards, batch {}",
            args.shards, args.batch
        )
    };
    let mut report = SeriesReport::new(title, "subs", series.clone());
    let mut phase_report =
        SeriesReport::new("§6.2.1 split: phase1/phase2 per event (ms)", "subs", series);

    for &n in &args.subs {
        let mut row = Vec::new();
        let mut phase_row = Vec::new();
        for &kind in &args.engines {
            // Counting is orders of magnitude slower (that is the figure's
            // point); cap its event count so a sweep finishes.
            let events = if kind == pubsub_core::EngineKind::Counting {
                args.events.min(60)
            } else {
                args.events
            };
            let mut gen = WorkloadGen::new(presets::w0(n));
            let (mut engine, _) = load_engine_sharded(kind, args.shards, &mut gen, n);
            // Warm-up: one small batch, then reset counters.
            measure_throughput(engine.as_mut(), &mut gen, 20);
            engine.reset_stats();
            // Scope the metrics snapshot to this data point.
            metrics::reset_all();
            let (eps, _) = if args.shards == 0 {
                measure_throughput(engine.as_mut(), &mut gen, events)
            } else {
                measure_batched_throughput(engine.as_mut(), &mut gen, events, args.batch)
            };
            row.push(format!("{eps:.1}"));
            let s = engine.stats();
            let phase1_ms = s.phase1_nanos as f64 / s.events as f64 / 1e6;
            let phase2_ms = s.phase2_nanos as f64 / s.events as f64 / 1e6;
            phase_row.push(format!("{phase1_ms:.3}/{phase2_ms:.3}"));
            if args.json {
                println!(
                    "{{\"figure\": \"3a\", \"workload\": \"w0\", \"engine\": \"{}\", \
                     \"subs\": {n}, \"shards\": {}, \"batch\": {}, \
                     \"events_per_sec\": {eps:.1}, \"phase1_ms\": {phase1_ms:.4}, \
                     \"phase2_ms\": {phase2_ms:.4}}}",
                    kind.label(),
                    args.shards,
                    if args.shards == 0 { 1 } else { args.batch },
                );
                if metrics::enabled() {
                    println!(
                        "{{\"figure\": \"3a\", \"engine\": \"{}\", \"subs\": {n}, \
                         \"metrics_snapshot\": {}}}",
                        kind.label(),
                        MetricsSnapshot::capture().to_json(),
                    );
                }
                // Phase-1 batch amortization probe: same workload, same
                // warmed engine, per-event vs. batched submission.
                let amort_batch = if args.shards == 0 {
                    64
                } else {
                    args.batch.max(1)
                };
                engine.reset_stats();
                measure_throughput(engine.as_mut(), &mut gen, events);
                let s1 = engine.stats();
                let scalar_ns = s1.phase1_nanos as f64 / s1.events.max(1) as f64;
                engine.reset_stats();
                measure_batched_throughput(engine.as_mut(), &mut gen, events, amort_batch);
                let s2 = engine.stats();
                let batched_ns = s2.phase1_nanos as f64 / s2.events.max(1) as f64;
                println!(
                    "{{\"figure\": \"3a\", \"engine\": \"{}\", \"subs\": {n}, \
                     \"phase1_scalar_ns\": {scalar_ns:.1}, \
                     \"phase1_batched_ns\": {batched_ns:.1}, \
                     \"phase1_batch\": {amort_batch}, \
                     \"phase1_amortization\": {:.2}}}",
                    kind.label(),
                    scalar_ns / batched_ns.max(f64::MIN_POSITIVE),
                );
            }
            eprintln!(
                "  [{} @ {n} subs, {} shards] {eps:.1} events/s",
                kind.label(),
                args.shards
            );
        }
        report.push_row(n.to_string(), row);
        phase_report.push_row(n.to_string(), phase_row);
    }

    if !args.json {
        println!("{}", report.render());
        if args.phases {
            println!("{}", phase_report.render());
        }
    }
}
