//! Figure 4(b): event throughput under combined *subscription and event
//! skew* (W5 → W6): one of the two fixed attributes collapses from 35
//! equiprobable values to 2, in both new subscriptions and new events (the
//! "everyone asks about the election" scenario).
//!
//! Paper outcome: no-change degrades ~20% by the end; dynamic recovers to
//! nearly the original throughput once reorganisation amortises (note the
//! paper's caveat: the skew also raises the number of actual matches, which
//! no clustering can avoid).
//!
//! Usage: `cargo run --release -p pubsub-bench --bin fig4b_skew_drift --
//!         [--subs N] [--ticks N] [--tick-ms N]`

use pubsub_bench::drift::{run_drift, DriftExperiment};
use pubsub_bench::{parse_args, HarnessArgs};
use pubsub_workload::presets;
use std::time::Duration;

fn main() {
    let args = parse_args(HarnessArgs {
        subs: vec![100_000],
        ticks: 150,
        tick_ms: 25,
        ..HarnessArgs::default()
    });
    let population = args.subs[0];
    let exp = DriftExperiment {
        title: "Figure 4(b): subscription + event skew W5 -> W6".into(),
        before: presets::w5(population),
        after_subs: presets::w6(population),
        after_events: presets::w6(population), // events drift too
        population,
        ticks: args.ticks,
        tick_budget: Duration::from_millis(args.tick_ms),
        window: (args.ticks / 10).max(1),
    };
    println!("{}", run_drift(&exp).render());
}
