//! Snapshot vs. B+-tree phase-1 comparison, one JSON line per data point —
//! the harness behind `results/BENCH_phase1.json` (EXPERIMENTS.md E14).
//!
//! Sweeps the number of range predicates per attribute and measures mean
//! phase-1 nanoseconds per event on both evaluator paths over the identical
//! `PredicateIndex`. Fields: `bench, preds_per_attr, attrs, path,
//! ns_per_event, satisfied_per_event, speedup` (speedup only on the
//! `snapshot` lines, relative to the `btree` line of the same sweep point).
//!
//! `batched` lines additionally carry `batch` (events per
//! `eval_batch_into` call), `speedup` (vs. the `btree` line) and
//! `vs_snapshot` (vs. the per-event `snapshot` line) — the amortization win
//! of the attribute-major batch path at each batch size.
//!
//! Usage: `cargo run --release -p pubsub-bench --bin phase1_compare --
//!         [--preds 256,1024,4096] [--events N] [--rounds N]
//!         [--batches 1,16,64,256]`

use pubsub_bench::phase1::{
    build_range_index, measure_phase1, measure_phase1_batched, range_events, ATTRS,
};

fn main() {
    let mut preds: Vec<usize> = vec![256, 1_024, 4_096, 16_384];
    let mut events = 256usize;
    let mut rounds = 40usize;
    let mut batches: Vec<usize> = vec![1, 16, 64, 256];
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--preds" => {
                preds = value("--preds")
                    .split(',')
                    .map(|s| s.trim().parse().expect("integer predicate count"))
                    .collect();
            }
            "--events" => events = value("--events").parse().expect("integer"),
            "--rounds" => rounds = value("--rounds").parse().expect("integer"),
            "--batches" => {
                batches = value("--batches")
                    .split(',')
                    .map(|s| s.trim().parse().expect("integer batch size"))
                    .collect();
            }
            "--help" | "-h" => {
                eprintln!("flags: --preds a,b,c  --events N  --rounds N  --batches a,b,c");
                std::process::exit(0);
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }

    for &n in &preds {
        let idx = build_range_index(ATTRS, n);
        let evts = range_events(ATTRS, n, events);
        // Warm-up both paths once before timing.
        measure_phase1(&idx, &evts, 1, false);
        measure_phase1(&idx, &evts, 1, true);
        let (tree_ns, tree_sat) = measure_phase1(&idx, &evts, rounds, true);
        let (snap_ns, snap_sat) = measure_phase1(&idx, &evts, rounds, false);
        assert_eq!(
            snap_sat, tree_sat,
            "paths must satisfy identical predicate sets"
        );
        println!(
            "{{\"bench\": \"phase1\", \"preds_per_attr\": {n}, \"attrs\": {ATTRS}, \
             \"path\": \"btree\", \"ns_per_event\": {tree_ns:.1}, \
             \"satisfied_per_event\": {tree_sat:.1}}}"
        );
        println!(
            "{{\"bench\": \"phase1\", \"preds_per_attr\": {n}, \"attrs\": {ATTRS}, \
             \"path\": \"snapshot\", \"ns_per_event\": {snap_ns:.1}, \
             \"satisfied_per_event\": {snap_sat:.1}, \"speedup\": {:.2}}}",
            tree_ns / snap_ns
        );
        eprintln!(
            "  [{n} preds/attr] btree {tree_ns:.0} ns/event, snapshot {snap_ns:.0} ns/event \
             ({:.2}x)",
            tree_ns / snap_ns
        );
        for &batch in &batches {
            measure_phase1_batched(&idx, &evts, 1, batch); // warm-up
            let (bat_ns, bat_sat) = measure_phase1_batched(&idx, &evts, rounds, batch);
            assert_eq!(
                bat_sat, snap_sat,
                "batched path must satisfy identical predicate sets"
            );
            println!(
                "{{\"bench\": \"phase1\", \"preds_per_attr\": {n}, \"attrs\": {ATTRS}, \
                 \"path\": \"batched\", \"batch\": {batch}, \"ns_per_event\": {bat_ns:.1}, \
                 \"satisfied_per_event\": {bat_sat:.1}, \"speedup\": {:.2}, \
                 \"vs_snapshot\": {:.2}}}",
                tree_ns / bat_ns,
                snap_ns / bat_ns
            );
            eprintln!(
                "  [{n} preds/attr] batched({batch}) {bat_ns:.0} ns/event \
                 ({:.2}x vs snapshot)",
                snap_ns / bat_ns
            );
        }
    }
}
