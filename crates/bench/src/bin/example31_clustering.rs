//! Example 3.1 of the paper, executed for real: three attributes A, B, C
//! with 100 equiprobable values; for each non-empty subset X of {A, B, C},
//! a population of subscriptions with equality predicates on exactly X.
//!
//! The paper compares clustering `C1` (singleton access predicates only)
//! with `C2` (singletons plus the AB and BC pair tables) on events valuing
//! A and B but not C, predicting ~46,600 subscription checks for C1 vs.
//! ~26,500 for C2 at 7 million subscriptions. We build both configurations
//! and *count actual checks*, scaled by population.
//!
//! Usage: `cargo run --release -p pubsub-bench --bin example31_clustering --
//!         [--subs N]` where N is the per-subset population (paper: 1M).

use pubsub_bench::{parse_args, HarnessArgs, SeriesReport};
use pubsub_core::{ClusteredMatcher, DynamicConfig, MatchEngine};
use pubsub_types::{AttrId, Event, Subscription, SubscriptionId};
use pubsub_workload::ValueDomain;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SUBSETS: [&[u32]; 7] = [&[0], &[1], &[2], &[0, 1], &[1, 2], &[0, 2], &[0, 1, 2]];

fn build(per_subset: usize, optimize: bool) -> ClusteredMatcher {
    // Thresholds scale with the population: a singleton value-cluster holds
    // ~7·N/300 subscriptions at ν = 1/100, so its benefit margin is ~N/4300;
    // anything above a few expected checks/event is worth redistributing.
    // The C1 baseline disables maintenance entirely (infinite margin).
    let mut m = ClusteredMatcher::new_dynamic_with(DynamicConfig {
        period: usize::MAX, // manual control only
        bm_max: if optimize {
            (per_subset as f64 / 10_000.0).max(1.0)
        } else {
            f64::INFINITY
        },
        b_create: (per_subset / 20).max(10),
        ..DynamicConfig::default()
    });
    let mut rng = SmallRng::seed_from_u64(31);
    let domain = ValueDomain::new(0, 99);
    let mut id = 0u32;
    for attrs in SUBSETS {
        for _ in 0..per_subset {
            let mut b = Subscription::builder();
            for &a in attrs {
                b = b.eq(AttrId(a), rng.gen_range(domain.lo..=domain.hi));
            }
            m.insert(SubscriptionId(id), &b.build().unwrap());
            id += 1;
        }
    }
    // Feed uniform A/B/C events so ν estimates match the example's setup.
    let mut out = Vec::new();
    let mut rng = SmallRng::seed_from_u64(32);
    for _ in 0..2000 {
        let e = Event::builder()
            .pair(AttrId(0), rng.gen_range(0..100i64))
            .pair(AttrId(1), rng.gen_range(0..100i64))
            .pair(AttrId(2), rng.gen_range(0..100i64))
            .build()
            .unwrap();
        out.clear();
        m.match_event(&e, &mut out);
    }
    if optimize {
        m.run_maintenance();
    }
    m.reset_stats();
    m
}

fn measure(m: &mut ClusteredMatcher, events: usize) -> f64 {
    // Events mention A and B but not C, as in the example.
    let mut rng = SmallRng::seed_from_u64(33);
    let mut out = Vec::new();
    for _ in 0..events {
        let e = Event::builder()
            .pair(AttrId(0), rng.gen_range(0..100i64))
            .pair(AttrId(1), rng.gen_range(0..100i64))
            .build()
            .unwrap();
        out.clear();
        m.match_event(&e, &mut out);
    }
    m.stats().checks_per_event()
}

fn main() {
    let args = parse_args(HarnessArgs {
        subs: vec![20_000],
        events: 300,
        ..HarnessArgs::default()
    });
    let per_subset = args.subs[0];

    let mut c1 = build(per_subset, false);
    let c1_checks = measure(&mut c1, args.events);

    let mut c2 = build(per_subset, true);
    let c2_checks = measure(&mut c2, args.events);

    let mut report = SeriesReport::new(
        format!(
            "Example 3.1: subscription checks per (A,B)-event, {} subscriptions per subset",
            per_subset
        ),
        "clustering",
        vec!["checks/event".into(), "tables".into()],
    );
    report.push_row(
        "C1 (singletons)",
        vec![
            format!("{c1_checks:.0}"),
            format!("{}", c1.table_summary().len()),
        ],
    );
    report.push_row(
        "C2 (cost-based)",
        vec![
            format!("{c2_checks:.0}"),
            format!("{}", c2.table_summary().len()),
        ],
    );
    println!("{}", report.render());

    // The paper's analytic prediction, scaled from 1M to our population:
    // C1: 46,600 checks/event per million per subset; C2: 26,500.
    let scale = per_subset as f64 / 1.0e6;
    println!(
        "paper prediction at this scale: C1 ~ {:.0}, C2 ~ {:.0} (ratio ~1.76x)",
        46_600.0 * scale,
        26_500.0 * scale
    );
    println!("measured ratio: {:.2}x", c1_checks / c2_checks);
    if c2_checks < c1_checks {
        println!("RESULT: C2 beats C1, as Example 3.1 predicts");
    } else {
        println!("RESULT: MISMATCH — C2 did not beat C1");
    }
}
