//! Figure 3(d): subscription loading time vs. number of subscriptions per
//! engine, workload W0.
//!
//! The paper's ordering: counting loads fastest (simplest structures),
//! static slowest (it computes the full cost-based clustering from scratch);
//! dynamic sits in between, amortising reorganisation across processing.
//!
//! Usage: `cargo run --release -p pubsub-bench --bin fig3d_loading --
//!         [--subs a,b,c] [--engines a,b]`

use pubsub_bench::{load_engine, parse_args, HarnessArgs, SeriesReport};
use pubsub_workload::{presets, WorkloadGen};

fn main() {
    let args = parse_args(HarnessArgs::default());
    let series: Vec<String> = args.engines.iter().map(|e| e.label().to_string()).collect();
    let mut report = SeriesReport::new(
        "Figure 3(d): subscription loading time (s) vs subscriptions, workload W0",
        "subs",
        series,
    );

    for &n in &args.subs {
        let mut row = Vec::new();
        for &kind in &args.engines {
            let mut gen = WorkloadGen::new(presets::w0(n));
            let (_engine, load_time) = load_engine(kind, &mut gen, n);
            row.push(format!("{:.2}", load_time.as_secs_f64()));
            eprintln!("  [{} @ {n}] {:.2}s", kind.label(), load_time.as_secs_f64());
        }
        report.push_row(n.to_string(), row);
    }

    println!("{}", report.render());
}
