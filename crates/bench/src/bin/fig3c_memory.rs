//! Figure 3(c): memory-resident size vs. number of subscriptions per engine,
//! workload W0, measured as live heap bytes at the global allocator.
//!
//! The paper's ordering: the propagation engines use the least memory
//! (shared internal structures), counting slightly more, and dynamic the
//! most (the multi-attribute hash tables).
//!
//! Usage: `cargo run --release -p pubsub-bench --bin fig3c_memory --
//!         [--subs a,b,c] [--engines a,b]`

use pubsub_bench::harness::fmt_bytes;
use pubsub_bench::{load_engine, parse_args, CountingAllocator, HarnessArgs, SeriesReport};
use pubsub_workload::{presets, WorkloadGen};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn main() {
    let args = parse_args(HarnessArgs::default());
    let series: Vec<String> = args.engines.iter().map(|e| e.label().to_string()).collect();
    let mut report = SeriesReport::new(
        "Figure 3(c): live heap bytes vs subscriptions, workload W0",
        "subs",
        series,
    );

    for &n in &args.subs {
        let mut row = Vec::new();
        for &kind in &args.engines {
            let mut gen = WorkloadGen::new(presets::w0(n));
            let before = CountingAllocator::live_bytes();
            let (engine, _) = load_engine(kind, &mut gen, n);
            // Warm the match path once so workhorse buffers are included.
            {
                let mut engine = engine;
                let e = gen.event();
                let mut out = Vec::new();
                engine.match_event(&e, &mut out);
                let used = CountingAllocator::live_bytes().saturating_sub(before);
                row.push(fmt_bytes(used));
                eprintln!(
                    "  [{} @ {n}] {} live ({} self-reported)",
                    kind.label(),
                    fmt_bytes(used),
                    fmt_bytes(engine.heap_bytes())
                );
            } // engine dropped here so the next engine starts clean
        }
        report.push_row(n.to_string(), row);
    }

    println!("{}", report.render());
}
