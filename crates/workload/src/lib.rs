//! The SIGMOD 2001 workload generator.
//!
//! [`spec`] mirrors the parameter vocabulary of the paper's Table 1
//! (`n_t, n_S, n_Sb, n_P, n_Pfix`, per-predicate value domains, `n_Eb, n_A`,
//! event domains and skew); [`presets`] provides the named workloads W0–W6
//! used by the evaluation; [`gen`] draws deterministic subscription and
//! event streams from a spec; [`golden`] holds the golden-file assertion
//! helpers (with the `UPDATE_GOLDEN=1` blessing path) used by the
//! workspace's fixture-pinned tests; [`json`] is the workspace's JSON
//! reader for `--json` tool output.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod gen;
pub mod golden;
pub mod json;
pub mod presets;
pub mod spec;

pub use gen::WorkloadGen;
pub use spec::{
    EventSpec, FixedPredicateSpec, SubscriptionSpec, ValueDomain, WorkloadSpec, DEFAULT_DOMAIN,
};
