//! The named workloads of the paper's evaluation (§6.2).
//!
//! Every preset takes `n_s` (the subscription count) so experiments can run
//! at paper scale or scaled down; all other parameters match the paper's
//! specification verbatim.

use crate::spec::{
    EventSpec, FixedPredicateSpec, SubscriptionSpec, ValueDomain, WorkloadSpec, DEFAULT_DOMAIN,
};
use pubsub_types::Operator;

const N_T: usize = 32;
const SUB_BATCH: usize = 10_000;
const EVENT_BATCH: usize = 100;

fn base_events() -> EventSpec {
    EventSpec {
        batch: EVENT_BATCH,
        n_a: N_T,
        domain: DEFAULT_DOMAIN,
        overrides: Vec::new(),
    }
}

fn fixed_eq(attrs: &[usize]) -> Vec<FixedPredicateSpec> {
    attrs
        .iter()
        .map(|&attr| FixedPredicateSpec {
            attr,
            op: Operator::Eq,
            domain: DEFAULT_DOMAIN,
        })
        .collect()
}

/// `W0`: `n_t = 32`, `n_P = 5` (2 fixed, all equality), `n_A = 32`,
/// domains `1..=35`, batches 10,000 / 100. The workload of Figures 3(a),
/// 3(c), 3(d).
pub fn w0(n_s: usize) -> WorkloadSpec {
    WorkloadSpec {
        n_t: N_T,
        subs: SubscriptionSpec {
            count: n_s,
            batch: SUB_BATCH,
            fixed: fixed_eq(&[0, 1]),
            free_count: 3,
            free_op: Operator::Eq,
            free_domain: DEFAULT_DOMAIN,
            free_pool: (2, N_T),
        },
        events: base_events(),
        seed: 0xF0,
    }
}

/// `W1`: `n_P = 4` — 2 fixed equality, 1 fixed `<`, 1 free equality
/// (Figure 3(b), the lighter operator mix).
pub fn w1(n_s: usize) -> WorkloadSpec {
    let mut fixed = fixed_eq(&[0, 1]);
    fixed.push(FixedPredicateSpec {
        attr: 2,
        op: Operator::Lt,
        domain: DEFAULT_DOMAIN,
    });
    WorkloadSpec {
        n_t: N_T,
        subs: SubscriptionSpec {
            count: n_s,
            batch: SUB_BATCH,
            fixed,
            free_count: 1,
            free_op: Operator::Eq,
            free_domain: DEFAULT_DOMAIN,
            free_pool: (3, N_T),
        },
        events: base_events(),
        seed: 0xF1,
    }
}

/// `W2`: `n_P = 9` — 2 fixed equality, 5 fixed `<`, 1 fixed `>`, 1 free
/// equality (Figure 3(b), the heavier operator mix).
pub fn w2(n_s: usize) -> WorkloadSpec {
    let mut fixed = fixed_eq(&[0, 1]);
    for attr in 2..7 {
        fixed.push(FixedPredicateSpec {
            attr,
            op: Operator::Lt,
            domain: DEFAULT_DOMAIN,
        });
    }
    fixed.push(FixedPredicateSpec {
        attr: 7,
        op: Operator::Gt,
        domain: DEFAULT_DOMAIN,
    });
    WorkloadSpec {
        n_t: N_T,
        subs: SubscriptionSpec {
            count: n_s,
            batch: SUB_BATCH,
            fixed,
            free_count: 1,
            free_op: Operator::Eq,
            free_domain: DEFAULT_DOMAIN,
            free_pool: (8, N_T),
        },
        events: base_events(),
        seed: 0xF2,
    }
}

/// `W3`: subscriptions focus on the *first* 16 of 32 attributes
/// (`n_P = 5`, 1 fixed); events value all 32 attributes (Figure 4(a), the
/// initial phase).
pub fn w3(n_s: usize) -> WorkloadSpec {
    WorkloadSpec {
        n_t: N_T,
        subs: SubscriptionSpec {
            count: n_s,
            batch: SUB_BATCH,
            fixed: fixed_eq(&[0]),
            free_count: 4,
            free_op: Operator::Eq,
            free_domain: DEFAULT_DOMAIN,
            free_pool: (1, 16),
        },
        events: base_events(),
        seed: 0xF3,
    }
}

/// `W4`: like `W3` but focused on the *other* 16 attributes (Figure 4(a),
/// the drifted phase).
pub fn w4(n_s: usize) -> WorkloadSpec {
    WorkloadSpec {
        n_t: N_T,
        subs: SubscriptionSpec {
            count: n_s,
            batch: SUB_BATCH,
            fixed: fixed_eq(&[16]),
            free_count: 4,
            free_op: Operator::Eq,
            free_domain: DEFAULT_DOMAIN,
            free_pool: (17, N_T),
        },
        events: base_events(),
        seed: 0xF4,
    }
}

/// `W5`: `n_P = 5`, 2 fixed equality, uniform values (Figure 4(b), the
/// initial phase) — structurally `W0`.
pub fn w5(n_s: usize) -> WorkloadSpec {
    let mut spec = w0(n_s);
    spec.seed = 0xF5;
    spec
}

/// `W6`: like `W5` with combined subscription *and* event skew: one of the
/// two fixed attributes draws from 2 values instead of 35 (Figure 4(b), the
/// drifted phase).
pub fn w6(n_s: usize) -> WorkloadSpec {
    let mut spec = w5(n_s);
    let skewed = ValueDomain::new(1, 2);
    spec.subs.fixed[0].domain = skewed;
    spec.events.overrides.push((0, skewed));
    spec.seed = 0xF6;
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn w0_shape_matches_table_1() {
        let s = w0(6_000_000);
        assert_eq!(s.n_t, 32);
        assert_eq!(s.subs.count, 6_000_000);
        assert_eq!(s.subs.batch, 10_000);
        assert_eq!(s.subs.n_p(), 5);
        assert_eq!(s.subs.fixed.len(), 2);
        assert_eq!(s.events.batch, 100);
        assert_eq!(s.events.n_a, 32);
        assert_eq!(s.events.domain.cardinality(), 35);
    }

    #[test]
    fn w1_w2_operator_mix() {
        let w1 = w1(1);
        assert_eq!(w1.subs.n_p(), 4);
        let lt = w1
            .subs
            .fixed
            .iter()
            .filter(|f| f.op == Operator::Lt)
            .count();
        assert_eq!(lt, 1);

        let w2 = w2(1);
        assert_eq!(w2.subs.n_p(), 9);
        let lt = w2
            .subs
            .fixed
            .iter()
            .filter(|f| f.op == Operator::Lt)
            .count();
        let gt = w2
            .subs
            .fixed
            .iter()
            .filter(|f| f.op == Operator::Gt)
            .count();
        let eq = w2
            .subs
            .fixed
            .iter()
            .filter(|f| f.op == Operator::Eq)
            .count();
        assert_eq!((eq, lt, gt), (2, 5, 1));
    }

    #[test]
    fn w3_w4_focus_on_disjoint_halves() {
        let w3 = w3(1);
        let w4 = w4(1);
        assert!(w3.subs.free_pool.1 <= 16);
        assert!(w4.subs.free_pool.0 >= 16);
        assert!(w3.subs.fixed[0].attr < 16);
        assert!(w4.subs.fixed[0].attr >= 16);
    }

    #[test]
    fn w6_adds_both_skews() {
        let w6 = w6(1);
        assert_eq!(w6.subs.fixed[0].domain.cardinality(), 2);
        assert_eq!(w6.events.domain_of(0).cardinality(), 2);
        assert_eq!(w6.events.domain_of(1).cardinality(), 35);
    }
}
