//! Golden-file assertions with a blessing path.
//!
//! Golden tests pin an encoding (a JSON schema, an on-disk format) to a
//! committed fixture so it cannot drift silently. When the change *is*
//! deliberate, regenerating fixtures by hand is error-prone; instead run the
//! test with `UPDATE_GOLDEN=1` (or `scripts/check.sh --bless`) and the
//! helpers below rewrite the fixture from the live value, then re-run
//! without the variable to confirm the blessed file round-trips.

use std::path::Path;

/// Whether this run should rewrite fixtures instead of asserting.
///
/// Any non-empty value other than `0` blesses.
pub fn blessing() -> bool {
    std::env::var("UPDATE_GOLDEN").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Asserts that `actual` matches the text fixture at `path`, or rewrites the
/// fixture when [`blessing`].
///
/// Comparison ignores a single trailing newline (fixtures are stored
/// newline-terminated; generators usually aren't).
///
/// # Panics
///
/// On mismatch (with a hint to re-run under `UPDATE_GOLDEN=1`), or when the
/// fixture is missing/unwritable.
pub fn assert_or_bless(path: impl AsRef<Path>, actual: &str) {
    let path = path.as_ref();
    if blessing() {
        std::fs::write(path, format!("{}\n", actual.trim_end_matches('\n')))
            .unwrap_or_else(|e| panic!("blessing {} failed: {e}", path.display()));
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); generate it with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual.trim_end_matches('\n'),
        golden.trim_end_matches('\n'),
        "output drifted from golden file {}; if the change is deliberate, re-bless \
         with UPDATE_GOLDEN=1 (scripts/check.sh --bless)",
        path.display()
    );
}

/// Byte-exact variant of [`assert_or_bless`] for binary fixtures (e.g. a WAL
/// segment pinning the on-disk record framing).
///
/// # Panics
///
/// On mismatch (reporting the first differing offset), or when the fixture
/// is missing/unwritable.
pub fn assert_or_bless_bytes(path: impl AsRef<Path>, actual: &[u8]) {
    let path = path.as_ref();
    if blessing() {
        std::fs::write(path, actual)
            .unwrap_or_else(|e| panic!("blessing {} failed: {e}", path.display()));
        eprintln!("blessed {} ({} bytes)", path.display(), actual.len());
        return;
    }
    let golden = std::fs::read(path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); generate it with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    if actual != golden.as_slice() {
        let diverge = actual
            .iter()
            .zip(&golden)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| actual.len().min(golden.len()));
        panic!(
            "binary output drifted from golden file {} (len {} vs {}, first difference at \
             byte {diverge}); if the format change is deliberate, re-bless with \
             UPDATE_GOLDEN=1 (scripts/check.sh --bless)",
            path.display(),
            actual.len(),
            golden.len(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_text_passes_modulo_trailing_newline() {
        let dir = std::env::temp_dir().join(format!("fp-golden-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("text.golden");
        std::fs::write(&path, "hello\nworld\n").unwrap();
        assert_or_bless(&path, "hello\nworld");
        assert_or_bless(&path, "hello\nworld\n");
        let bytes = dir.join("bytes.golden");
        std::fs::write(&bytes, [1u8, 2, 3]).unwrap();
        assert_or_bless_bytes(&bytes, &[1, 2, 3]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "drifted from golden file")]
    fn mismatching_text_panics_with_bless_hint() {
        let dir = std::env::temp_dir().join(format!("fp-golden-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("text.golden");
        std::fs::write(&path, "expected\n").unwrap();
        assert_or_bless(&path, "got");
    }
}
