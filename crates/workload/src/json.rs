//! Hand-rolled JSON encoding/decoding for [`WorkloadSpec`].
//!
//! The workspace builds without registry access, so instead of `serde` the
//! spec serializes through this module: a ~100-line recursive-descent JSON
//! parser plus explicit encode/decode functions. The wire format is stable
//! and human-editable — specs can be saved next to benchmark results and
//! replayed later.

use crate::spec::{EventSpec, FixedPredicateSpec, SubscriptionSpec, ValueDomain, WorkloadSpec};
use pubsub_types::Operator;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value (the subset the spec format needs: no floats).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer (the spec format has no fractional numbers).
    Int(i64),
    /// String
    Str(String),
    /// Array
    Array(Vec<Json>),
    /// Object (order-insensitive).
    Object(BTreeMap<String, Json>),
}

impl Json {
    fn as_int(&self) -> Result<i64, String> {
        match self {
            Json::Int(i) => Ok(*i),
            other => Err(format!("expected integer, got {other:?}")),
        }
    }

    fn as_usize(&self) -> Result<usize, String> {
        usize::try_from(self.as_int()?).map_err(|e| e.to_string())
    }

    fn as_str(&self) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("expected string, got {other:?}")),
        }
    }

    fn as_array(&self) -> Result<&[Json], String> {
        match self {
            Json::Array(a) => Ok(a),
            other => Err(format!("expected array, got {other:?}")),
        }
    }

    fn field<'a>(&'a self, name: &str) -> Result<&'a Json, String> {
        match self {
            Json::Object(m) => m.get(name).ok_or_else(|| format!("missing field {name:?}")),
            other => Err(format!("expected object, got {other:?}")),
        }
    }
}

/// Parses one JSON document (trailing content is an error).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'n' => self.literal("null", Json::Null),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'"' => Ok(Json::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Json::Array(items));
                        }
                        c => return Err(format!("expected , or ] got {:?}", c as char)),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    map.insert(key, self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Json::Object(map));
                        }
                        c => return Err(format!("expected , or }} got {:?}", c as char)),
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(format!("unexpected {:?} at byte {}", c as char, self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let c = std::str::from_utf8(rest)
                .map_err(|e| e.to_string())?
                .chars()
                .next()
                .ok_or("unterminated string")?;
            self.pos += c.len_utf8();
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let esc = self.bytes.get(self.pos).copied().ok_or("bad escape")?;
                    self.pos += 1;
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        b'b' => '\u{8}',
                        b'f' => '\u{c}',
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("bad \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            char::from_u32(code).ok_or("surrogate \\u escape")?
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    });
                }
                c => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes[self.pos] == b'-' {
            self.pos += 1;
        }
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse()
            .map(Json::Int)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

/// Escapes and quotes a string for JSON output.
fn quote(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn encode_domain(d: &ValueDomain, out: &mut String) {
    let _ = write!(out, r#"{{"lo":{},"hi":{}}}"#, d.lo, d.hi);
}

fn decode_domain(j: &Json) -> Result<ValueDomain, String> {
    Ok(ValueDomain::new(
        j.field("lo")?.as_int()?,
        j.field("hi")?.as_int()?,
    ))
}

impl WorkloadSpec {
    /// Serializes the spec as a single-line JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        let _ = write!(
            out,
            r#"{{"n_t":{},"seed":{},"subs":{{"#,
            self.n_t, self.seed
        );
        let s = &self.subs;
        let _ = write!(
            out,
            r#""count":{},"batch":{},"free_count":{},"free_op":"#,
            s.count, s.batch, s.free_count
        );
        quote(s.free_op.symbol(), &mut out);
        out.push_str(",\"free_domain\":");
        encode_domain(&s.free_domain, &mut out);
        let _ = write!(
            out,
            r#","free_pool":[{},{}],"fixed":["#,
            s.free_pool.0, s.free_pool.1
        );
        for (i, f) in s.fixed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, r#"{{"attr":{},"op":"#, f.attr);
            quote(f.op.symbol(), &mut out);
            out.push_str(",\"domain\":");
            encode_domain(&f.domain, &mut out);
            out.push('}');
        }
        out.push_str("]},\"events\":{");
        let e = &self.events;
        let _ = write!(out, r#""batch":{},"n_a":{},"domain":"#, e.batch, e.n_a);
        encode_domain(&e.domain, &mut out);
        out.push_str(",\"overrides\":[");
        for (i, (attr, d)) in e.overrides.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, r#"{{"attr":{},"domain":"#, attr);
            encode_domain(d, &mut out);
            out.push('}');
        }
        out.push_str("]}}");
        out
    }

    /// Parses a spec serialized by [`WorkloadSpec::to_json`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        let j = parse(text)?;
        let parse_op = |j: &Json| -> Result<Operator, String> {
            let sym = j.as_str()?;
            Operator::parse(sym).ok_or_else(|| format!("unknown operator {sym:?}"))
        };
        let s = j.field("subs")?;
        let fixed = s
            .field("fixed")?
            .as_array()?
            .iter()
            .map(|f| {
                Ok(FixedPredicateSpec {
                    attr: f.field("attr")?.as_usize()?,
                    op: parse_op(f.field("op")?)?,
                    domain: decode_domain(f.field("domain")?)?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let pool = s.field("free_pool")?.as_array()?;
        if pool.len() != 2 {
            return Err("free_pool must be a 2-element array".into());
        }
        let e = j.field("events")?;
        let overrides = e
            .field("overrides")?
            .as_array()?
            .iter()
            .map(|o| {
                Ok((
                    o.field("attr")?.as_usize()?,
                    decode_domain(o.field("domain")?)?,
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let spec = WorkloadSpec {
            n_t: j.field("n_t")?.as_usize()?,
            seed: j.field("seed")?.as_int()? as u64,
            subs: SubscriptionSpec {
                count: s.field("count")?.as_usize()?,
                batch: s.field("batch")?.as_usize()?,
                fixed,
                free_count: s.field("free_count")?.as_usize()?,
                free_op: parse_op(s.field("free_op")?)?,
                free_domain: decode_domain(s.field("free_domain")?)?,
                free_pool: (pool[0].as_usize()?, pool[1].as_usize()?),
            },
            events: EventSpec {
                batch: e.field("batch")?.as_usize()?,
                n_a: e.field("n_a")?.as_usize()?,
                domain: decode_domain(e.field("domain")?)?,
                overrides,
            },
        };
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_scalars_and_nesting() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(
            parse(r#""a\"b\\c\ndA""#).unwrap(),
            Json::Str("a\"b\\c\nd\u{41}".into())
        );
        let v = parse(r#"{"xs": [1, 2, {"y": []}]}"#).unwrap();
        assert_eq!(v.field("xs").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn quoting_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f✓";
        let mut out = String::new();
        quote(nasty, &mut out);
        assert_eq!(parse(&out).unwrap(), Json::Str(nasty.into()));
    }
}
