//! The workload generator: draws subscriptions and events from a
//! [`WorkloadSpec`], deterministically from its seed (paper §6.1).

use crate::spec::WorkloadSpec;
use pubsub_types::metrics::Counter;
use pubsub_types::{AttrId, Event, Predicate, Subscription, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Subscriptions drawn from the Table-1 generator.
static SUBS_GENERATED: Counter = Counter::new("workload.subscriptions_generated");
/// Events drawn from the Table-1 generator.
static EVENTS_GENERATED: Counter = Counter::new("workload.events_generated");

/// Draws subscriptions and events according to a workload specification.
#[derive(Debug)]
pub struct WorkloadGen {
    spec: WorkloadSpec,
    rng: SmallRng,
    /// Scratch: candidate attribute indexes for free predicates.
    pool: Vec<usize>,
    /// Scratch: candidate attribute indexes for event pairs.
    event_attrs: Vec<usize>,
}

impl WorkloadGen {
    /// Creates a generator. Panics if the spec is inconsistent.
    pub fn new(spec: WorkloadSpec) -> Self {
        spec.validate().expect("invalid workload spec");
        let (lo, hi) = spec.subs.free_pool;
        let fixed_attrs: Vec<usize> = spec.subs.fixed.iter().map(|f| f.attr).collect();
        let pool: Vec<usize> = (lo..hi).filter(|a| !fixed_attrs.contains(a)).collect();
        let event_attrs: Vec<usize> = (0..spec.n_t).collect();
        let rng = SmallRng::seed_from_u64(spec.seed);
        Self {
            spec,
            rng,
            pool,
            event_attrs,
        }
    }

    /// The spec this generator draws from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Draws one subscription.
    pub fn subscription(&mut self) -> Subscription {
        SUBS_GENERATED.inc();
        let subs = &self.spec.subs;
        let mut preds = Vec::with_capacity(subs.n_p());
        for f in &subs.fixed {
            let v = self.rng.gen_range(f.domain.lo..=f.domain.hi);
            preds.push(Predicate::new(AttrId(f.attr as u32), f.op, Value::Int(v)));
        }
        // Free predicates: distinct attributes sampled without replacement
        // via a partial Fisher-Yates over the scratch pool.
        let k = subs.free_count;
        for i in 0..k {
            let j = self.rng.gen_range(i..self.pool.len());
            self.pool.swap(i, j);
        }
        for i in 0..k {
            let attr = self.pool[i];
            let v = self
                .rng
                .gen_range(subs.free_domain.lo..=subs.free_domain.hi);
            preds.push(Predicate::new(
                AttrId(attr as u32),
                subs.free_op,
                Value::Int(v),
            ));
        }
        Subscription::from_predicates(preds).expect("generated subscription is valid")
    }

    /// Draws one event.
    pub fn event(&mut self) -> Event {
        EVENTS_GENERATED.inc();
        let n_a = self.spec.events.n_a;
        // Choose which attributes the event values (all of them when
        // n_a == n_t, as in the paper's runs).
        if n_a < self.spec.n_t {
            for i in 0..n_a {
                let j = self.rng.gen_range(i..self.event_attrs.len());
                self.event_attrs.swap(i, j);
            }
        }
        let mut pairs = Vec::with_capacity(n_a);
        for i in 0..n_a {
            let attr = self.event_attrs[i];
            let d = self.spec.events.domain_of(attr);
            let v = self.rng.gen_range(d.lo..=d.hi);
            pairs.push((AttrId(attr as u32), Value::Int(v)));
        }
        Event::from_pairs(pairs).expect("generated event is valid")
    }

    /// Draws one subscription batch (`n_Sb` subscriptions).
    pub fn sub_batch(&mut self) -> Vec<Subscription> {
        let n = self.spec.subs.batch;
        (0..n).map(|_| self.subscription()).collect()
    }

    /// Draws one event batch (`n_Eb` events).
    pub fn event_batch(&mut self) -> Vec<Event> {
        let n = self.spec.events.batch;
        (0..n).map(|_| self.event()).collect()
    }

    /// Iterator over all `n_S` subscriptions of the workload.
    pub fn all_subscriptions(&mut self) -> impl Iterator<Item = Subscription> + '_ {
        let n = self.spec.subs.count;
        (0..n).map(move |_| self.subscription())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use pubsub_types::Operator;

    #[test]
    fn deterministic_given_seed() {
        let mut a = WorkloadGen::new(presets::w0(100));
        let mut b = WorkloadGen::new(presets::w0(100));
        for _ in 0..50 {
            assert_eq!(a.subscription(), b.subscription());
            assert_eq!(a.event(), b.event());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut spec = presets::w0(100);
        let mut a = WorkloadGen::new(spec.clone());
        spec.seed += 1;
        let mut b = WorkloadGen::new(spec);
        let same = (0..20)
            .filter(|_| a.subscription() == b.subscription())
            .count();
        assert!(same < 20, "different seeds should diverge");
    }

    #[test]
    fn w0_subscription_shape() {
        let mut g = WorkloadGen::new(presets::w0(100));
        for _ in 0..200 {
            let s = g.subscription();
            assert_eq!(s.size(), 5);
            assert_eq!(s.equality_count(), 5, "W0 is all-equality");
            // The two fixed attributes are always present.
            assert!(s.equality_schema().contains(AttrId(0)));
            assert!(s.equality_schema().contains(AttrId(1)));
            // Free attributes are distinct (5 distinct attrs total).
            assert_eq!(s.equality_schema().len(), 5);
            // All values within 1..=35.
            for p in s.predicates() {
                let v = p.value.as_int().unwrap();
                assert!((1..=35).contains(&v));
            }
        }
    }

    #[test]
    fn w2_operator_counts() {
        let mut g = WorkloadGen::new(presets::w2(100));
        for _ in 0..50 {
            let s = g.subscription();
            assert_eq!(s.size(), 9);
            let lt = s
                .predicates()
                .iter()
                .filter(|p| p.op == Operator::Lt)
                .count();
            let gt = s
                .predicates()
                .iter()
                .filter(|p| p.op == Operator::Gt)
                .count();
            assert_eq!((lt, gt), (5, 1));
            assert_eq!(s.equality_count(), 3);
        }
    }

    #[test]
    fn events_value_every_attribute() {
        let mut g = WorkloadGen::new(presets::w0(100));
        for _ in 0..50 {
            let e = g.event();
            assert_eq!(e.len(), 32);
            for (a, v) in e.pairs() {
                assert!(a.index() < 32);
                let v = v.as_int().unwrap();
                assert!((1..=35).contains(&v));
            }
        }
    }

    #[test]
    fn partial_event_schema() {
        let mut spec = presets::w0(100);
        spec.events.n_a = 5;
        let mut g = WorkloadGen::new(spec);
        for _ in 0..50 {
            let e = g.event();
            assert_eq!(e.len(), 5, "n_A honoured");
        }
    }

    #[test]
    fn w6_event_skew_narrows_attribute_0() {
        let mut g = WorkloadGen::new(presets::w6(100));
        for _ in 0..100 {
            let e = g.event();
            let v0 = e.value(AttrId(0)).unwrap().as_int().unwrap();
            assert!((1..=2).contains(&v0), "skewed attribute");
            let v1 = e.value(AttrId(1)).unwrap().as_int().unwrap();
            assert!((1..=35).contains(&v1));
        }
        // Subscription skew too.
        for _ in 0..100 {
            let s = g.subscription();
            let p0 = s.predicates().iter().find(|p| p.attr == AttrId(0)).unwrap();
            let v = p0.value.as_int().unwrap();
            assert!((1..=2).contains(&v));
        }
    }

    #[test]
    fn batches_have_spec_sizes() {
        let mut g = WorkloadGen::new(presets::w0(100));
        assert_eq!(g.sub_batch().len(), 10_000);
        assert_eq!(g.event_batch().len(), 100);
    }

    #[test]
    fn w3_focuses_on_first_half() {
        let mut g = WorkloadGen::new(presets::w3(100));
        for _ in 0..100 {
            let s = g.subscription();
            for p in s.predicates() {
                assert!(p.attr.index() < 16, "W3 attrs in the first half");
            }
        }
        let mut g = WorkloadGen::new(presets::w4(100));
        for _ in 0..100 {
            let s = g.subscription();
            for p in s.predicates() {
                assert!(p.attr.index() >= 16, "W4 attrs in the second half");
            }
        }
    }
}
