//! Workload specifications — the parameter vocabulary of paper Table 1.
//!
//! A [`WorkloadSpec`] fixes the attribute universe (`n_t`), the subscription
//! shape (`n_S`, `n_Sb`, `n_P`, `n_Pfix` with its per-operator breakdown,
//! per-predicate value domains) and the event shape (`n_Eb`, `n_A`, value
//! domains). Skew is modelled exactly as in §6.1: by narrowing the value
//! domain of individual predicates/attributes.

use pubsub_types::Operator;

/// An inclusive integer value domain `[lo, hi]` (`l_P`/`u_P`, `l_A`/`u_A`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueDomain {
    /// Lower bound (inclusive).
    pub lo: i64,
    /// Upper bound (inclusive).
    pub hi: i64,
}

impl ValueDomain {
    /// Creates `[lo, hi]`.
    pub fn new(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "empty value domain");
        Self { lo, hi }
    }

    /// Number of values in the domain.
    pub fn cardinality(&self) -> u64 {
        (self.hi - self.lo + 1) as u64
    }
}

/// The paper's default domain `1..=35` (the workloads of §6.2.1).
pub const DEFAULT_DOMAIN: ValueDomain = ValueDomain { lo: 1, hi: 35 };

/// One *fixed* predicate: an attribute common to every subscription of the
/// workload, with a fixed operator and its own value domain
/// (`n_P_fix=`, `n_P_fix<`, `n_P_fix>` of Table 1).
#[derive(Debug, Clone, Copy)]
pub struct FixedPredicateSpec {
    /// Index of the attribute in the universe.
    pub attr: usize,
    /// The operator of this predicate in every subscription.
    pub op: Operator,
    /// Value domain the constant is drawn from.
    pub domain: ValueDomain,
}

/// Subscription-side parameters.
#[derive(Debug, Clone)]
pub struct SubscriptionSpec {
    /// `n_S` — total number of subscriptions the workload provides.
    pub count: usize,
    /// `n_Sb` — subscriptions submitted to the system at once.
    pub batch: usize,
    /// The fixed (common-attribute) predicates.
    pub fixed: Vec<FixedPredicateSpec>,
    /// Number of free predicates, each on an attribute drawn uniformly from
    /// `free_pool` (without replacement, excluding fixed attributes).
    pub free_count: usize,
    /// Operator of the free predicates (the paper's free predicates are
    /// equality).
    pub free_op: Operator,
    /// Value domain of the free predicates.
    pub free_domain: ValueDomain,
    /// Half-open index range `[lo, hi)` of the universe that free predicates
    /// draw attributes from (W3/W4 "focus on 16 of the 32 attributes").
    pub free_pool: (usize, usize),
}

impl SubscriptionSpec {
    /// `n_P` — predicates per subscription.
    pub fn n_p(&self) -> usize {
        self.fixed.len() + self.free_count
    }
}

/// Event-side parameters.
#[derive(Debug, Clone)]
pub struct EventSpec {
    /// `n_Eb` — events submitted to the system at once.
    pub batch: usize,
    /// `n_A` — attribute/value pairs per event. Equal to the universe size in
    /// the paper's runs (events value every attribute); smaller values pick a
    /// uniform random subset.
    pub n_a: usize,
    /// Default value domain for every attribute.
    pub domain: ValueDomain,
    /// Per-attribute domain overrides `(attr index, domain)` — the event-skew
    /// mechanism (W6 narrows one attribute to 2 values).
    pub overrides: Vec<(usize, ValueDomain)>,
}

impl EventSpec {
    /// The value domain in force for attribute `attr`.
    pub fn domain_of(&self, attr: usize) -> ValueDomain {
        self.overrides
            .iter()
            .find(|(a, _)| *a == attr)
            .map(|(_, d)| *d)
            .unwrap_or(self.domain)
    }
}

/// A full workload: universe + subscription and event shapes + RNG seed.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// `n_t` — size of the attribute universe (attributes are `AttrId(0..n_t)`).
    pub n_t: usize,
    /// Subscription-side parameters.
    pub subs: SubscriptionSpec,
    /// Event-side parameters.
    pub events: EventSpec,
    /// RNG seed: runs are fully deterministic given the spec.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Validates internal consistency (attribute indexes within the universe,
    /// enough free attributes to draw without replacement, …).
    pub fn validate(&self) -> Result<(), String> {
        for f in &self.subs.fixed {
            if f.attr >= self.n_t {
                return Err(format!(
                    "fixed attr {} outside universe {}",
                    f.attr, self.n_t
                ));
            }
        }
        let (lo, hi) = self.subs.free_pool;
        if lo > hi || hi > self.n_t {
            return Err(format!(
                "free pool ({lo}, {hi}) outside universe {}",
                self.n_t
            ));
        }
        let fixed_in_pool = self
            .subs
            .fixed
            .iter()
            .filter(|f| f.attr >= lo && f.attr < hi)
            .count();
        let available = (hi - lo) - fixed_in_pool;
        if self.subs.free_count > available {
            return Err(format!(
                "{} free predicates but only {available} free attributes in the pool",
                self.subs.free_count
            ));
        }
        if self.events.n_a > self.n_t {
            return Err(format!(
                "n_A = {} exceeds universe {}",
                self.events.n_a, self.n_t
            ));
        }
        for (a, _) in &self.events.overrides {
            if *a >= self.n_t {
                return Err(format!("event override attr {a} outside universe"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn domain_cardinality() {
        assert_eq!(ValueDomain::new(1, 35).cardinality(), 35);
        assert_eq!(ValueDomain::new(5, 5).cardinality(), 1);
    }

    #[test]
    #[should_panic(expected = "empty value domain")]
    fn inverted_domain_panics() {
        ValueDomain::new(3, 2);
    }

    #[test]
    fn event_domain_overrides() {
        let e = EventSpec {
            batch: 100,
            n_a: 32,
            domain: DEFAULT_DOMAIN,
            overrides: vec![(3, ValueDomain::new(1, 2))],
        };
        assert_eq!(e.domain_of(3), ValueDomain::new(1, 2));
        assert_eq!(e.domain_of(4), DEFAULT_DOMAIN);
    }

    #[test]
    fn presets_validate() {
        for spec in [
            presets::w0(1000),
            presets::w1(1000),
            presets::w2(1000),
            presets::w3(1000),
            presets::w4(1000),
            presets::w5(1000),
            presets::w6(1000),
        ] {
            spec.validate().expect("preset is internally consistent");
        }
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut spec = presets::w0(10);
        spec.subs.fixed[0].attr = 99;
        assert!(spec.validate().is_err());

        let mut spec = presets::w0(10);
        spec.subs.free_count = 1000;
        assert!(spec.validate().is_err());

        let mut spec = presets::w0(10);
        spec.events.n_a = 99;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn spec_round_trips_through_json() {
        for spec in [presets::w0(5000), presets::w2(5000), presets::w6(5000)] {
            let json = spec.to_json();
            let back = WorkloadSpec::from_json(&json).unwrap();
            assert_eq!(back.n_t, spec.n_t);
            assert_eq!(back.subs.n_p(), spec.subs.n_p());
            assert_eq!(back.subs.free_pool, spec.subs.free_pool);
            assert_eq!(back.events.overrides, spec.events.overrides);
            assert_eq!(back.seed, spec.seed);
        }
    }
}
