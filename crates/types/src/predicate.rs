//! Subscription predicates.

use crate::attr::AttrId;
use crate::event::Event;
use crate::operator::Operator;
use crate::value::Value;
use crate::Vocabulary;

/// A single predicate `(attribute, operator, constant)`.
///
/// This is the unit the predicate indexes intern and evaluate: each *distinct*
/// predicate in the system occupies one entry of the predicate bit vector
/// (paper §2.2), no matter how many subscriptions share it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Predicate {
    /// The attribute the predicate constrains.
    pub attr: AttrId,
    /// The comparison operator.
    pub op: Operator,
    /// The constant the event value is compared against.
    pub value: Value,
}

impl Predicate {
    /// Creates a predicate.
    pub fn new(attr: AttrId, op: Operator, value: impl Into<Value>) -> Self {
        Self {
            attr,
            op,
            value: value.into(),
        }
    }

    /// Shorthand for an equality predicate.
    pub fn eq(attr: AttrId, value: impl Into<Value>) -> Self {
        Self::new(attr, Operator::Eq, value)
    }

    /// True for equality predicates (the only kind usable in access
    /// predicates).
    #[inline]
    pub fn is_equality(&self) -> bool {
        self.op.is_equality()
    }

    /// Evaluates the predicate against an event value for its attribute.
    #[inline]
    pub fn eval(&self, event_value: Value) -> bool {
        self.op.eval(event_value, self.value)
    }

    /// Evaluates the predicate against a whole event. A missing attribute
    /// never matches (the paper requires *some pair* of the event to match).
    #[inline]
    pub fn matches_event(&self, event: &Event) -> bool {
        match event.value(self.attr) {
            Some(v) => self.eval(v),
            None => false,
        }
    }

    /// Renders the predicate with resolved attribute/string names.
    pub fn display<'a>(&'a self, vocab: &'a Vocabulary) -> impl std::fmt::Display + 'a {
        struct D<'a>(&'a Predicate, &'a Vocabulary);
        impl std::fmt::Display for D<'_> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(
                    f,
                    "{} {} {}",
                    self.1.attrs.name(self.0.attr),
                    self.0.op,
                    self.0.value.display(&self.1.strings)
                )
            }
        }
        D(self, vocab)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    #[test]
    fn eval_and_matches_event() {
        let price = AttrId(0);
        let p = Predicate::new(price, Operator::Le, 10i64);
        assert!(p.eval(Value::Int(8)));
        assert!(!p.eval(Value::Int(12)));

        let e = Event::from_pairs(vec![(price, Value::Int(8))]).unwrap();
        assert!(p.matches_event(&e));
        let other = Event::from_pairs(vec![(AttrId(1), Value::Int(8))]).unwrap();
        assert!(!p.matches_event(&other), "missing attribute never matches");
    }

    #[test]
    fn display_uses_names() {
        let mut v = Vocabulary::new();
        let price = v.attr("price");
        let p = Predicate::new(price, Operator::Lt, 400i64);
        assert_eq!(p.display(&v).to_string(), "price < 400");
        let movie = v.attr("movie");
        let val = v.string("groundhog day");
        let q = Predicate::new(movie, Operator::Eq, val);
        assert_eq!(q.display(&v).to_string(), "movie = \"groundhog day\"");
    }

    #[test]
    fn equality_shorthand() {
        let p = Predicate::eq(AttrId(2), 5i64);
        assert!(p.is_equality());
        assert_eq!(p.op, Operator::Eq);
    }
}
