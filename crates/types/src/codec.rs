//! Binary record codec for durable broker state.
//!
//! The write-ahead log and snapshot files of `pubsub-durability` persist the
//! data-model types of this crate; the byte-level encoding lives here, next
//! to the types it serialises, so the two cannot drift apart. The format is
//! deliberately simple and versioned by the WAL container, not per value:
//!
//! * integers are fixed-width little-endian (`u32`/`u64`/`i64`),
//! * strings are a `u32` byte length followed by UTF-8 bytes,
//! * enums are a one-byte tag followed by their payload,
//! * optional values are a presence byte (`0`/`1`) followed by the payload.
//!
//! Encoding (into a `Vec<u8>`) is infallible. Decoding reads from a
//! [`Reader`] and reports truncation, bad tags and invariant violations as
//! [`CodecError`] — WAL bytes may be torn or corrupted, so nothing here
//! panics on malformed input.
//!
//! The module also provides [`crc32c`], the Castagnoli CRC the WAL uses to
//! checksum every record and snapshot payload.

use crate::error::CodecError;
use crate::operator::Operator;
use crate::predicate::Predicate;
use crate::subscription::{Subscription, SubscriptionId};
use crate::time::{LogicalTime, Validity};
use crate::value::Value;
use crate::{AttrId, Symbol};

// ---- CRC32C ---------------------------------------------------------------

/// The CRC32C (Castagnoli) lookup table, built at compile time from the
/// reflected polynomial 0x82F63B78.
const CRC32C_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0x82F6_3B78
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Computes the CRC32C checksum of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ CRC32C_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---- primitive writers ----------------------------------------------------

/// Appends a `u32` in little-endian order.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian order.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `i64` in little-endian order.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed raw byte string.
pub fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// Encodes a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

// ---- reader ---------------------------------------------------------------

/// A cursor over a byte slice with typed, error-reporting accessors.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::ShortRead {
                needed: n - self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| CodecError::BadUtf8)
    }

    /// Reads a length-prefixed raw byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.u32()? as usize;
        self.take(len)
    }
}

// ---- domain types ---------------------------------------------------------

const VALUE_INT: u8 = 0;
const VALUE_STR: u8 = 1;

/// Encodes a [`Value`] (tag byte + payload).
pub fn put_value(out: &mut Vec<u8>, v: Value) {
    match v {
        Value::Int(i) => {
            out.push(VALUE_INT);
            put_i64(out, i);
        }
        Value::Str(s) => {
            out.push(VALUE_STR);
            put_u32(out, s.0);
        }
    }
}

/// Decodes a [`Value`].
pub fn get_value(r: &mut Reader<'_>) -> Result<Value, CodecError> {
    match r.u8()? {
        VALUE_INT => Ok(Value::Int(r.i64()?)),
        VALUE_STR => Ok(Value::Str(Symbol(r.u32()?))),
        tag => Err(CodecError::BadTag { what: "value", tag }),
    }
}

/// Encodes an [`Operator`] as one byte.
pub fn put_operator(out: &mut Vec<u8>, op: Operator) {
    let tag = match op {
        Operator::Lt => 0u8,
        Operator::Le => 1,
        Operator::Eq => 2,
        Operator::Ne => 3,
        Operator::Ge => 4,
        Operator::Gt => 5,
    };
    out.push(tag);
}

/// Decodes an [`Operator`].
pub fn get_operator(r: &mut Reader<'_>) -> Result<Operator, CodecError> {
    Ok(match r.u8()? {
        0 => Operator::Lt,
        1 => Operator::Le,
        2 => Operator::Eq,
        3 => Operator::Ne,
        4 => Operator::Ge,
        5 => Operator::Gt,
        tag => {
            return Err(CodecError::BadTag {
                what: "operator",
                tag,
            })
        }
    })
}

/// Encodes a [`Predicate`] (`attr`, `op`, `value`).
pub fn put_predicate(out: &mut Vec<u8>, p: &Predicate) {
    put_u32(out, p.attr.0);
    put_operator(out, p.op);
    put_value(out, p.value);
}

/// Decodes a [`Predicate`].
pub fn get_predicate(r: &mut Reader<'_>) -> Result<Predicate, CodecError> {
    let attr = AttrId(r.u32()?);
    let op = get_operator(r)?;
    let value = get_value(r)?;
    Ok(Predicate { attr, op, value })
}

/// Encodes a [`Subscription`] as a predicate count plus predicates.
pub fn put_subscription(out: &mut Vec<u8>, sub: &Subscription) {
    put_u32(out, sub.predicates().len() as u32);
    for p in sub.predicates() {
        put_predicate(out, p);
    }
}

/// Decodes a [`Subscription`], re-validating its invariants (non-empty, no
/// duplicate predicates).
pub fn get_subscription(r: &mut Reader<'_>) -> Result<Subscription, CodecError> {
    let n = r.u32()? as usize;
    // Guard the allocation: a corrupt count must not OOM the decoder. The
    // remaining bytes bound the real count (every predicate is > 1 byte).
    if n > r.remaining() {
        return Err(CodecError::ShortRead {
            needed: n - r.remaining(),
        });
    }
    let mut preds = Vec::with_capacity(n);
    for _ in 0..n {
        preds.push(get_predicate(r)?);
    }
    Ok(Subscription::from_predicates(preds)?)
}

/// Encodes a [`LogicalTime`].
pub fn put_time(out: &mut Vec<u8>, t: LogicalTime) {
    put_u64(out, t.0);
}

/// Decodes a [`LogicalTime`].
pub fn get_time(r: &mut Reader<'_>) -> Result<LogicalTime, CodecError> {
    Ok(LogicalTime(r.u64()?))
}

/// Encodes a [`Validity`] (`from`, presence byte, optional `until`).
pub fn put_validity(out: &mut Vec<u8>, v: Validity) {
    put_time(out, v.from);
    match v.until {
        None => out.push(0),
        Some(u) => {
            out.push(1);
            put_time(out, u);
        }
    }
}

/// Decodes a [`Validity`].
pub fn get_validity(r: &mut Reader<'_>) -> Result<Validity, CodecError> {
    let from = get_time(r)?;
    let until = match r.u8()? {
        0 => None,
        1 => Some(get_time(r)?),
        tag => {
            return Err(CodecError::BadTag {
                what: "validity",
                tag,
            })
        }
    };
    Ok(Validity { from, until })
}

/// Encodes a [`SubscriptionId`].
pub fn put_subscription_id(out: &mut Vec<u8>, id: SubscriptionId) {
    put_u32(out, id.0);
}

/// Decodes a [`SubscriptionId`].
pub fn get_subscription_id(r: &mut Reader<'_>) -> Result<SubscriptionId, CodecError> {
    Ok(SubscriptionId(r.u32()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subscription::SubscriptionBuilder;

    #[test]
    fn crc32c_known_vectors() {
        // RFC 3720 test vectors.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn crc32c_detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let clean = crc32c(data);
        for byte in 0..data.len() {
            for bit in 0..8u8 {
                let mut flipped = data.to_vec();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32c(&flipped), clean, "flip at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 7);
        put_i64(&mut buf, i64::MIN);
        put_str(&mut buf, "groundhog day");
        let mut r = Reader::new(&buf);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 7);
        assert_eq!(r.i64().unwrap(), i64::MIN);
        assert_eq!(r.str().unwrap(), "groundhog day");
        assert!(r.is_empty());
    }

    #[test]
    fn short_reads_report_missing_bytes() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(r.u32(), Err(CodecError::ShortRead { needed: 2 }));
        // Failed reads consume nothing.
        assert_eq!(r.u8().unwrap(), 1);
    }

    #[test]
    fn values_and_predicates_round_trip() {
        for v in [Value::Int(-42), Value::Int(i64::MAX), Value::Str(Symbol(9))] {
            let mut buf = Vec::new();
            put_value(&mut buf, v);
            assert_eq!(get_value(&mut Reader::new(&buf)).unwrap(), v);
        }
        for op in [
            Operator::Lt,
            Operator::Le,
            Operator::Eq,
            Operator::Ne,
            Operator::Ge,
            Operator::Gt,
        ] {
            let p = Predicate::new(AttrId(3), op, 17i64);
            let mut buf = Vec::new();
            put_predicate(&mut buf, &p);
            assert_eq!(get_predicate(&mut Reader::new(&buf)).unwrap(), p);
        }
    }

    #[test]
    fn subscriptions_round_trip_canonically() {
        let sub = SubscriptionBuilder::default()
            .eq(AttrId(1), Value::Str(Symbol(4)))
            .with(AttrId(0), Operator::Le, 10i64)
            .with(AttrId(0), Operator::Gt, 5i64)
            .build()
            .unwrap();
        let mut buf = Vec::new();
        put_subscription(&mut buf, &sub);
        let back = get_subscription(&mut Reader::new(&buf)).unwrap();
        assert_eq!(back, sub);
    }

    #[test]
    fn corrupt_subscription_count_is_rejected_not_oom() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        assert!(matches!(
            get_subscription(&mut Reader::new(&buf)),
            Err(CodecError::ShortRead { .. })
        ));
        // An in-bounds count with no predicate bytes is also a short read.
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        buf.extend_from_slice(&[0u8; 8]);
        assert!(get_subscription(&mut Reader::new(&buf)).is_err());
    }

    #[test]
    fn empty_subscription_is_structurally_invalid() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0);
        assert!(matches!(
            get_subscription(&mut Reader::new(&buf)),
            Err(CodecError::BadStructure(_))
        ));
    }

    #[test]
    fn validity_round_trips() {
        for v in [
            Validity::forever(),
            Validity::until(LogicalTime(77)),
            Validity::between(LogicalTime(3), LogicalTime(9)),
        ] {
            let mut buf = Vec::new();
            put_validity(&mut buf, v);
            assert_eq!(get_validity(&mut Reader::new(&buf)).unwrap(), v);
        }
    }

    #[test]
    fn bad_tags_are_reported() {
        assert!(matches!(
            get_value(&mut Reader::new(&[9])),
            Err(CodecError::BadTag { what: "value", .. })
        ));
        assert!(matches!(
            get_operator(&mut Reader::new(&[200])),
            Err(CodecError::BadTag {
                what: "operator",
                ..
            })
        ));
    }
}
