//! Attribute names and their dense ids.

use crate::hash::FxHashMap;

/// A dense id for an attribute name.
///
/// Attribute ids index directly into per-attribute arrays in the predicate
/// indexes and into [`crate::AttrSet`] bitsets, so they must stay dense and
/// small (the paper's workloads use `n_t = 32` attributes; we support any
/// number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub u32);

impl AttrId {
    /// The raw index of this attribute.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for AttrId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Interns attribute names to dense [`AttrId`]s.
#[derive(Debug, Default)]
pub struct AttributeInterner {
    map: FxHashMap<Box<str>, AttrId>,
    names: Vec<Box<str>>,
}

impl AttributeInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an attribute name, returning its id.
    pub fn intern(&mut self, name: &str) -> AttrId {
        if let Some(&id) = self.map.get(name) {
            return id;
        }
        let id = AttrId(u32::try_from(self.names.len()).expect("attribute universe overflow"));
        self.names.push(name.into());
        self.map.insert(name.into(), id);
        id
    }

    /// Looks up an attribute without interning.
    pub fn get(&self, name: &str) -> Option<AttrId> {
        self.map.get(name).copied()
    }

    /// Resolves an id back to the attribute name.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn name(&self, id: AttrId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct attributes seen so far (the attribute universe size).
    pub fn universe(&self) -> usize {
        self.names.len()
    }

    /// True if no attribute has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (AttrId(i as u32), n.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_assigns_dense_ids() {
        let mut a = AttributeInterner::new();
        assert_eq!(a.intern("price"), AttrId(0));
        assert_eq!(a.intern("movie"), AttrId(1));
        assert_eq!(a.intern("price"), AttrId(0));
        assert_eq!(a.universe(), 2);
    }

    #[test]
    fn name_round_trips() {
        let mut a = AttributeInterner::new();
        let id = a.intern("theater");
        assert_eq!(a.name(id), "theater");
        assert_eq!(a.get("theater"), Some(id));
        assert_eq!(a.get("unknown"), None);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut a = AttributeInterner::new();
        a.intern("x");
        a.intern("y");
        let collected: Vec<_> = a.iter().map(|(id, n)| (id.0, n.to_string())).collect();
        assert_eq!(collected, vec![(0, "x".into()), (1, "y".into())]);
    }
}
