//! A compact bitset over attribute ids.
//!
//! Used for event schemas, subscription equality-attribute sets (`A(s)` in the
//! paper), and multi-attribute hash-table schemas. The paper's workloads use
//! 32 attributes; we inline up to 128 bits and spill to the heap beyond that,
//! so schema-inclusion tests (`is_subset`) in the hot path stay branch-cheap.

use crate::attr::AttrId;

const INLINE_WORDS: usize = 2; // 128 attributes inline

/// A set of [`AttrId`]s represented as a bitset.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct AttrSet {
    inline: [u64; INLINE_WORDS],
    /// Overflow words for attribute ids ≥ 128; empty for typical workloads.
    spill: Vec<u64>,
}

impl AttrSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set from an iterator of attribute ids.
    pub fn from_attrs<I: IntoIterator<Item = AttrId>>(attrs: I) -> Self {
        let mut s = Self::new();
        for a in attrs {
            s.insert(a);
        }
        s
    }

    #[inline]
    fn word_index(attr: AttrId) -> (usize, u64) {
        let idx = attr.index();
        (idx / 64, 1u64 << (idx % 64))
    }

    #[inline]
    fn word(&self, w: usize) -> u64 {
        if w < INLINE_WORDS {
            self.inline[w]
        } else {
            self.spill.get(w - INLINE_WORDS).copied().unwrap_or(0)
        }
    }

    #[inline]
    fn word_mut(&mut self, w: usize) -> &mut u64 {
        if w < INLINE_WORDS {
            &mut self.inline[w]
        } else {
            let s = w - INLINE_WORDS;
            if self.spill.len() <= s {
                self.spill.resize(s + 1, 0);
            }
            &mut self.spill[s]
        }
    }

    /// Inserts an attribute. Returns `true` if it was newly inserted.
    pub fn insert(&mut self, attr: AttrId) -> bool {
        let (w, bit) = Self::word_index(attr);
        let word = self.word_mut(w);
        let fresh = *word & bit == 0;
        *word |= bit;
        fresh
    }

    /// Removes an attribute. Returns `true` if it was present.
    pub fn remove(&mut self, attr: AttrId) -> bool {
        let (w, bit) = Self::word_index(attr);
        if w >= INLINE_WORDS + self.spill.len() {
            return false;
        }
        let word = self.word_mut(w);
        let present = *word & bit != 0;
        *word &= !bit;
        // Keep the representation canonical so derived Eq/Hash stay correct:
        // trailing all-zero spill words must not distinguish equal sets.
        while self.spill.last() == Some(&0) {
            self.spill.pop();
        }
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, attr: AttrId) -> bool {
        let (w, bit) = Self::word_index(attr);
        self.word(w) & bit != 0
    }

    /// True if `self ⊆ other`. This is the schema-inclusion test used to
    /// decide which multi-attribute hash tables an event must probe.
    #[inline]
    pub fn is_subset(&self, other: &AttrSet) -> bool {
        let words = INLINE_WORDS + self.spill.len();
        for w in 0..words {
            if self.word(w) & !other.word(w) != 0 {
                return false;
            }
        }
        true
    }

    /// True if the sets share no attribute.
    pub fn is_disjoint(&self, other: &AttrSet) -> bool {
        let words = INLINE_WORDS + self.spill.len().max(other.spill.len());
        (0..words).all(|w| self.word(w) & other.word(w) == 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &AttrSet) {
        for w in 0..INLINE_WORDS + other.spill.len() {
            let o = other.word(w);
            if o != 0 {
                *self.word_mut(w) |= o;
            }
        }
    }

    /// Number of attributes in the set.
    pub fn len(&self) -> usize {
        self.inline
            .iter()
            .chain(self.spill.iter())
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.inline.iter().all(|&w| w == 0) && self.spill.iter().all(|&w| w == 0)
    }

    /// Iterates over attribute ids in ascending order.
    pub fn iter(&self) -> AttrSetIter<'_> {
        AttrSetIter {
            set: self,
            word: 0,
            bits: self.word(0),
            words: INLINE_WORDS + self.spill.len(),
        }
    }

    /// Collects the ids into a sorted `Vec`; useful as a stable hash-table
    /// schema key.
    pub fn to_sorted_vec(&self) -> Vec<AttrId> {
        self.iter().collect()
    }
}

impl FromIterator<AttrId> for AttrSet {
    fn from_iter<I: IntoIterator<Item = AttrId>>(iter: I) -> Self {
        Self::from_attrs(iter)
    }
}

/// Iterator over the attribute ids of an [`AttrSet`].
pub struct AttrSetIter<'a> {
    set: &'a AttrSet,
    word: usize,
    bits: u64,
    words: usize,
}

impl Iterator for AttrSetIter<'_> {
    type Item = AttrId;

    fn next(&mut self) -> Option<AttrId> {
        loop {
            if self.bits != 0 {
                let tz = self.bits.trailing_zeros();
                self.bits &= self.bits - 1;
                return Some(AttrId((self.word * 64) as u32 + tz));
            }
            self.word += 1;
            if self.word >= self.words {
                return None;
            }
            self.bits = self.set.word(self.word);
        }
    }
}

impl<'a> IntoIterator for &'a AttrSet {
    type Item = AttrId;
    type IntoIter = AttrSetIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> AttrSet {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = AttrSet::new();
        assert!(s.insert(AttrId(5)));
        assert!(!s.insert(AttrId(5)));
        assert!(s.contains(AttrId(5)));
        assert!(!s.contains(AttrId(6)));
        assert!(s.remove(AttrId(5)));
        assert!(!s.remove(AttrId(5)));
        assert!(s.is_empty());
    }

    #[test]
    fn subset_inclusion() {
        let small = set(&[1, 3]);
        let big = set(&[1, 2, 3, 4]);
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        assert!(small.is_subset(&small));
        assert!(AttrSet::new().is_subset(&small));
    }

    #[test]
    fn spill_beyond_128_attributes() {
        let mut s = AttrSet::new();
        s.insert(AttrId(200));
        s.insert(AttrId(3));
        assert!(s.contains(AttrId(200)));
        assert_eq!(s.len(), 2);
        assert_eq!(
            s.to_sorted_vec(),
            vec![AttrId(3), AttrId(200)],
            "iteration is ascending across the spill boundary"
        );
        let big = set(&[3]);
        assert!(!s.is_subset(&big));
        let mut bigger = big.clone();
        bigger.insert(AttrId(200));
        assert!(s.is_subset(&bigger));
    }

    #[test]
    fn subset_with_spill_on_one_side_only() {
        let mut spilled = AttrSet::new();
        spilled.insert(AttrId(130));
        let inline_only = set(&[1, 2]);
        assert!(!spilled.is_subset(&inline_only));
        assert!(inline_only.is_subset(&inline_only));
        // An inline-only set is a subset of a spilled superset.
        let mut sup = spilled.clone();
        sup.insert(AttrId(1));
        sup.insert(AttrId(2));
        assert!(inline_only.is_subset(&sup));
    }

    #[test]
    fn union_and_disjoint() {
        let mut a = set(&[0, 1]);
        let b = set(&[2, 64]);
        assert!(a.is_disjoint(&b));
        a.union_with(&b);
        assert_eq!(a.len(), 4);
        assert!(!a.is_disjoint(&b));
        assert!(b.is_subset(&a));
    }

    #[test]
    fn iteration_order_is_ascending() {
        let s = set(&[64, 0, 7, 127]);
        let ids: Vec<u32> = s.iter().map(|a| a.0).collect();
        assert_eq!(ids, vec![0, 7, 64, 127]);
    }

    #[test]
    fn equal_sets_hash_equal() {
        use crate::hash::fx_hash_one;
        let a = set(&[1, 2, 3]);
        let b = set(&[3, 2, 1]);
        assert_eq!(a, b);
        assert_eq!(fx_hash_one(&a), fx_hash_one(&b));
    }
}
