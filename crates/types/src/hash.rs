//! A fast, non-cryptographic hasher for the hot matching path.
//!
//! The standard library's SipHash is designed to resist hash-flooding attacks
//! and is comparatively slow for the short integer keys that dominate this
//! system (attribute ids, interned values, value tuples). We implement the
//! well-known *Fx* multiply-xor hash (used by rustc) from scratch so the
//! workspace needs no extra dependency.
//!
//! HashDoS resistance is irrelevant here: keys are produced by our own
//! interners, not attacker-controlled byte strings.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant for the Fx hash (64-bit golden-ratio derived).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-xor hasher.
///
/// Each write folds the input word into the state with
/// `state = (state.rotate_left(5) ^ word) * SEED`.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume full 8-byte words, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
            self.add_to_hash(word);
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = 0u64;
            for (i, &b) in tail.iter().enumerate() {
                word |= (b as u64) << (8 * i);
            }
            // Mix in the tail length so "ab" and "ab\0" differ.
            self.add_to_hash(word ^ ((tail.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast Fx hash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fast Fx hash.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hashes a single value with [`FxHasher`]; handy for building composite keys.
#[inline]
pub fn fx_hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_small_keys_hash_differently() {
        let hashes: Vec<u64> = (0u32..1000).map(|i| fx_hash_one(&i)).collect();
        let unique: std::collections::HashSet<_> = hashes.iter().collect();
        assert_eq!(unique.len(), hashes.len());
    }

    #[test]
    fn byte_strings_with_shared_prefix_differ() {
        assert_ne!(fx_hash_one(&"abc"), fx_hash_one(&"abcd"));
        assert_ne!(fx_hash_one(&"ab"), fx_hash_one(&"ab\0"));
        assert_ne!(fx_hash_one(&""), fx_hash_one(&"\0"));
    }

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(fx_hash_one(&(1u32, 2u64)), fx_hash_one(&(1u32, 2u64)));
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(42);
        assert!(s.contains(&42));
    }

    #[test]
    fn tail_bytes_affect_hash() {
        // Exercise the non-multiple-of-8 write path.
        let a: &[u8] = &[1, 2, 3, 4, 5, 6, 7, 8, 9];
        let b: &[u8] = &[1, 2, 3, 4, 5, 6, 7, 8, 10];
        assert_ne!(fx_hash_one(&a), fx_hash_one(&b));
    }
}
