//! Deterministic fault injection, feature-gated like [`crate::metrics`].
//!
//! Production-scale brokers treat matcher workers as fallible components:
//! threads die, allocators fail, a bad event tickles a latent bug. The
//! supervised sharded engine (`pubsub_core::sharded`) recovers from such
//! faults by rebuilding crashed shards from an authoritative subscription
//! log — and this module exists to *prove* that recovery works, by letting
//! tests and the CLI `chaos` command force faults at exact, reproducible
//! points.
//!
//! # Model
//!
//! Code under test declares **fault points** — named call sites (e.g.
//! `core.sharded.worker.match`) that consult the registry via [`hit`] before
//! doing their work. Tests **arm** rules against those points: a rule pairs a
//! [`FaultAction`] (panic, corrupt-then-panic, delay) with a [`Schedule`]
//! (fire at the n-th hit, every n-th hit, or pseudo-randomly from a seed).
//! Hit counting is per-rule, so schedules are deterministic regardless of
//! which thread reaches the point first.
//!
//! ```
//! use pubsub_types::faults::{self, FaultAction, Schedule};
//!
//! faults::clear();
//! faults::arm("example.point", None, FaultAction::Panic, Schedule::Nth(2));
//! assert_eq!(faults::hit("example.point", 0), None); // first hit passes
//! if faults::enabled() {
//!     assert_eq!(faults::hit("example.point", 0), Some(FaultAction::Panic));
//! }
//! faults::clear();
//! ```
//!
//! # Feature gate
//!
//! The registry is compiled behind the `faults` cargo feature of
//! `pubsub-types`. With the feature **off** (the default), [`hit`] is an
//! `#[inline(always)]` body returning `None` and [`arm`]/[`clear`] are
//! no-ops, so instrumented hot paths cost nothing in production builds.
//! [`enabled`] reports the compile-time state so tests can skip themselves
//! when injection is unavailable.

/// What an armed rule does when its schedule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic at the fault point (contained by the site's `catch_unwind`).
    Panic,
    /// Corrupt local state first, then panic — the site is expected to
    /// mutate its data structure into an invalid state before unwinding, so
    /// recovery must discard the survivor rather than resume it.
    Corrupt,
    /// Sleep for this many milliseconds before proceeding normally (models
    /// a slow or wedged worker for backpressure tests).
    Delay(u64),
    /// Fail the operation with an injected I/O-style error instead of
    /// performing it. Durability sites interpret this per point: a failed
    /// append leaves a torn record prefix on disk, a failed fsync or
    /// rotation reports the error without touching the file. The caller is
    /// expected to surface a typed error (degraded mode), never to panic.
    Fail,
}

/// When an armed rule fires, in per-rule hit counts (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Fire exactly once, at the n-th hit of the point, then disarm.
    Nth(u64),
    /// Fire at every n-th hit (n ≥ 1; `EveryNth(1)` fires on every hit).
    EveryNth(u64),
    /// Fire pseudo-randomly: a SplitMix64 stream seeded by `seed` is
    /// advanced on every hit and fires with probability `prob_ppm` parts
    /// per million. Deterministic for a given seed and hit sequence.
    Seeded {
        /// RNG seed.
        seed: u64,
        /// Firing probability in parts per million (clamped to 1e6).
        prob_ppm: u32,
    },
}

#[cfg(feature = "faults")]
mod imp {
    use super::{FaultAction, Schedule};
    use std::sync::Mutex;

    struct Rule {
        point: String,
        lane: Option<usize>,
        action: FaultAction,
        schedule: Schedule,
        hits: u64,
        rng: u64,
        spent: bool,
    }

    static REGISTRY: Mutex<Vec<Rule>> = Mutex::new(Vec::new());

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Arms a rule: when `point` is hit on `lane` (or any lane for `None`)
    /// and `schedule` fires, the site performs `action`.
    pub fn arm(point: &str, lane: Option<usize>, action: FaultAction, schedule: Schedule) {
        let seed = match schedule {
            Schedule::Seeded { seed, .. } => seed,
            _ => 0,
        };
        REGISTRY.lock().unwrap().push(Rule {
            point: point.to_string(),
            lane,
            action,
            schedule,
            hits: 0,
            rng: seed,
            spent: false,
        });
    }

    /// Disarms every rule.
    pub fn clear() {
        REGISTRY.lock().unwrap().clear();
    }

    /// Number of rules still armed (spent one-shot rules excluded).
    pub fn armed() -> usize {
        REGISTRY.lock().unwrap().iter().filter(|r| !r.spent).count()
    }

    /// Records one hit of `point` on `lane` against every matching rule and
    /// returns the action of the first rule whose schedule fires.
    pub fn hit(point: &str, lane: usize) -> Option<FaultAction> {
        let mut reg = REGISTRY.lock().unwrap();
        let mut fired = None;
        for rule in reg.iter_mut() {
            if rule.spent || rule.point != point {
                continue;
            }
            if let Some(l) = rule.lane {
                if l != lane {
                    continue;
                }
            }
            rule.hits += 1;
            let fire = match rule.schedule {
                Schedule::Nth(n) => {
                    if rule.hits == n {
                        rule.spent = true;
                        true
                    } else {
                        false
                    }
                }
                Schedule::EveryNth(n) => n >= 1 && rule.hits % n == 0,
                Schedule::Seeded { prob_ppm, .. } => {
                    (splitmix(&mut rule.rng) % 1_000_000) < u64::from(prob_ppm.min(1_000_000))
                }
            };
            if fire && fired.is_none() {
                fired = Some(rule.action);
            }
        }
        fired
    }

    /// `true` when the `faults` feature is compiled in.
    pub const fn enabled() -> bool {
        true
    }
}

#[cfg(not(feature = "faults"))]
mod imp {
    use super::{FaultAction, Schedule};

    /// Arms a rule (no-op: the `faults` feature is off).
    #[inline(always)]
    pub fn arm(_point: &str, _lane: Option<usize>, _action: FaultAction, _schedule: Schedule) {}

    /// Disarms every rule (no-op).
    #[inline(always)]
    pub fn clear() {}

    /// Number of armed rules (always 0).
    #[inline(always)]
    pub fn armed() -> usize {
        0
    }

    /// Records a hit (no-op; never fires).
    #[inline(always)]
    pub fn hit(_point: &str, _lane: usize) -> Option<FaultAction> {
        None
    }

    /// `true` when the `faults` feature is compiled in.
    pub const fn enabled() -> bool {
        false
    }
}

pub use imp::{arm, armed, clear, enabled, hit};

/// Well-known fault-point names of the network server (`pubsub-net`).
///
/// The older subsystems (sharded matcher, durability) declare their points
/// as string literals at the call site; the network layer centralises its
/// names here so the server, the chaos tests and the CLI `chaos` help text
/// cannot drift apart. The `lane` passed to [`hit`] at every network point
/// is the server-assigned connection index, so rules can target one
/// connection out of many.
pub mod points {
    /// Hit once per accepted TCP connection, before the handshake.
    /// `Fail` drops the connection without reading a byte (models an
    /// accept-time resource failure); `Delay` stalls the accept path.
    pub const NET_ACCEPT: &str = "net.server.accept";
    /// Hit while waiting for the `Hello` frame. `Fail` kills the
    /// connection mid-handshake — no session may be created or resumed.
    pub const NET_HANDSHAKE: &str = "net.server.handshake";
    /// Hit before decoding each inbound frame. `Fail` severs the
    /// connection mid-stream (a kill between or inside frames); `Delay`
    /// models a slow peer.
    pub const NET_FRAME_READ: &str = "net.server.frame.read";
    /// Hit before each outbound frame write. `Fail` severs the connection
    /// mid-delivery (a kill mid-batch on the notify path).
    pub const NET_NOTIFY_WRITE: &str = "net.server.frame.write";
    /// Hit on the leader when a follower's `ReplHello` arrives, before any
    /// WAL data is served. `Fail` rejects the replication stream (models a
    /// leader refusing followers under load).
    pub const REPL_ACCEPT: &str = "net.repl.accept";
    /// Hit on the follower before each frame read from the leader's
    /// replication stream. `Fail` severs the stream mid-flight (a kill
    /// between or inside record batches); `Delay` models a slow WAN link.
    pub const REPL_STREAM_READ: &str = "net.repl.stream.read";
    /// Hit on the follower before each replicated record is applied to the
    /// local WAL + broker. `Fail` aborts the apply (the record is neither
    /// logged nor applied) and drops the stream so reconnection re-fetches
    /// it — applies must stay atomic per record.
    pub const REPL_APPLY: &str = "net.repl.apply";
    /// Hit on the follower while fetching/installing a catch-up snapshot.
    /// `Fail` aborts the transfer before anything is installed.
    pub const REPL_SNAPSHOT_FETCH: &str = "net.repl.snapshot.fetch";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "faults")]
    mod enabled {
        use super::*;
        use std::sync::Mutex;

        /// The registry is process-global; serialize the tests touching it.
        static LOCK: Mutex<()> = Mutex::new(());

        #[test]
        fn nth_fires_once_then_disarms() {
            let _g = LOCK.lock().unwrap();
            clear();
            arm("t.nth", None, FaultAction::Panic, Schedule::Nth(3));
            assert_eq!(hit("t.nth", 0), None);
            assert_eq!(hit("t.nth", 1), None);
            assert_eq!(hit("t.nth", 0), Some(FaultAction::Panic));
            assert_eq!(hit("t.nth", 0), None, "one-shot rule is spent");
            assert_eq!(armed(), 0);
            clear();
        }

        #[test]
        fn lanes_filter_and_every_nth_repeats() {
            let _g = LOCK.lock().unwrap();
            clear();
            arm(
                "t.lane",
                Some(2),
                FaultAction::Delay(5),
                Schedule::EveryNth(2),
            );
            assert_eq!(hit("t.lane", 1), None, "wrong lane never counts");
            assert_eq!(hit("t.lane", 2), None, "hit 1 of 2");
            assert_eq!(hit("t.lane", 2), Some(FaultAction::Delay(5)));
            assert_eq!(hit("t.lane", 2), None);
            assert_eq!(hit("t.lane", 2), Some(FaultAction::Delay(5)));
            clear();
        }

        #[test]
        fn seeded_is_deterministic() {
            let _g = LOCK.lock().unwrap();
            let run = || {
                clear();
                arm(
                    "t.seed",
                    None,
                    FaultAction::Panic,
                    Schedule::Seeded {
                        seed: 42,
                        prob_ppm: 250_000,
                    },
                );
                let fired: Vec<bool> = (0..64).map(|_| hit("t.seed", 0).is_some()).collect();
                clear();
                fired
            };
            let a = run();
            let b = run();
            assert_eq!(a, b, "same seed, same firing pattern");
            assert!(a.iter().any(|&f| f), "25% over 64 hits fires some");
            assert!(!a.iter().all(|&f| f), "…but not all");
        }
    }

    #[cfg(not(feature = "faults"))]
    #[test]
    fn everything_is_a_no_op() {
        arm("t.off", None, FaultAction::Panic, Schedule::Nth(1));
        assert_eq!(hit("t.off", 0), None);
        assert_eq!(armed(), 0);
        assert!(!enabled());
        clear();
    }
}
