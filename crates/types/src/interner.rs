//! String interning.
//!
//! String values appearing in predicates and events ("groundhog day",
//! "odeon", …) are interned once into a dense [`Symbol`] so that the matching
//! hot path compares and hashes 4-byte ids instead of string data. Interned
//! symbols also give string values a cheap total order (the order used by the
//! inequality index) via [`StringInterner::resolve`].

use crate::hash::FxHashMap;

/// A dense id for an interned string value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The raw index of this symbol.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interns strings to dense [`Symbol`]s and resolves them back.
///
/// Symbols are assigned in first-seen order. NOTE: `Symbol` ordering is
/// assignment order, *not* lexicographic order; components that need
/// lexicographic comparisons (the inequality index) must compare resolved
/// strings, which [`StringInterner::cmp_lexicographic`] does.
#[derive(Debug, Default)]
pub struct StringInterner {
    map: FxHashMap<Box<str>, Symbol>,
    strings: Vec<Box<str>>,
}

impl StringInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its symbol (existing or freshly assigned).
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.strings.len()).expect("interner overflow"));
        self.strings.push(s.into());
        self.map.insert(s.into(), sym);
        sym
    }

    /// Looks up a string without interning it.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Lexicographic comparison of two interned strings.
    pub fn cmp_lexicographic(&self, a: Symbol, b: Symbol) -> std::cmp::Ordering {
        self.resolve(a).cmp(self.resolve(b))
    }

    /// Iterates over `(symbol, string)` pairs in symbol order — the order a
    /// snapshot must re-intern them in to reproduce identical ids.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = StringInterner::new();
        let a = i.intern("odeon");
        let b = i.intern("odeon");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut i = StringInterner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "a");
        assert_eq!(i.resolve(b), "b");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = StringInterner::new();
        assert_eq!(i.get("x"), None);
        let s = i.intern("x");
        assert_eq!(i.get("x"), Some(s));
    }

    #[test]
    fn lexicographic_comparison_uses_string_content() {
        let mut i = StringInterner::new();
        // Intern out of lexicographic order on purpose.
        let z = i.intern("zebra");
        let a = i.intern("aardvark");
        assert_eq!(i.cmp_lexicographic(a, z), std::cmp::Ordering::Less);
        assert_eq!(i.cmp_lexicographic(z, a), std::cmp::Ordering::Greater);
        assert_eq!(i.cmp_lexicographic(z, z), std::cmp::Ordering::Equal);
    }

    #[test]
    fn symbols_are_dense() {
        let mut i = StringInterner::new();
        for (n, word) in ["p", "q", "r"].iter().enumerate() {
            assert_eq!(i.intern(word).index(), n);
        }
    }
}
