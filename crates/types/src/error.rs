//! Error types for the data model.

use crate::attr::AttrId;

/// Errors building events or subscriptions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// An event listed the same attribute twice (forbidden by §1.1: "No two
    /// pairs have the same attribute").
    DuplicateEventAttribute(AttrId),
    /// A subscription had no predicates.
    EmptySubscription,
    /// A subscription repeated the exact same `(attr, op, value)` predicate.
    DuplicatePredicate,
}

impl std::fmt::Display for TypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TypeError::DuplicateEventAttribute(a) => {
                write!(f, "event has two pairs for attribute {a}")
            }
            TypeError::EmptySubscription => write!(f, "subscription has no predicates"),
            TypeError::DuplicatePredicate => {
                write!(f, "subscription repeats the same predicate twice")
            }
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        assert!(TypeError::DuplicateEventAttribute(AttrId(3))
            .to_string()
            .contains("a3"));
        assert!(!TypeError::EmptySubscription.to_string().is_empty());
        assert!(!TypeError::DuplicatePredicate.to_string().is_empty());
    }
}
