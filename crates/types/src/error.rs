//! Error types for the data model.

use crate::attr::AttrId;

/// Errors building events or subscriptions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// An event listed the same attribute twice (forbidden by §1.1: "No two
    /// pairs have the same attribute").
    DuplicateEventAttribute(AttrId),
    /// A subscription had no predicates.
    EmptySubscription,
    /// A subscription repeated the exact same `(attr, op, value)` predicate.
    DuplicatePredicate,
}

impl std::fmt::Display for TypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TypeError::DuplicateEventAttribute(a) => {
                write!(f, "event has two pairs for attribute {a}")
            }
            TypeError::EmptySubscription => write!(f, "subscription has no predicates"),
            TypeError::DuplicatePredicate => {
                write!(f, "subscription repeats the same predicate twice")
            }
        }
    }
}

impl std::error::Error for TypeError {}

/// Errors decoding the binary record format of [`crate::codec`].
///
/// Encoding is infallible; decoding consumes bytes that may come from a
/// truncated or corrupted write-ahead log, so every reader reports malformed
/// input through this type instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value was complete. Carries the number of
    /// additional bytes the decoder needed.
    ShortRead {
        /// Bytes missing from the input.
        needed: usize,
    },
    /// An enum discriminant byte had no defined meaning.
    BadTag {
        /// What was being decoded (e.g. `"value"`, `"operator"`).
        what: &'static str,
        /// The unexpected discriminant.
        tag: u8,
    },
    /// An embedded string was not valid UTF-8.
    BadUtf8,
    /// A decoded structure violated its own invariants (e.g. an empty
    /// subscription or a duplicate predicate).
    BadStructure(TypeError),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::ShortRead { needed } => {
                write!(f, "record truncated ({needed} more byte(s) needed)")
            }
            CodecError::BadTag { what, tag } => {
                write!(f, "bad {what} tag byte 0x{tag:02x}")
            }
            CodecError::BadUtf8 => write!(f, "embedded string is not valid UTF-8"),
            CodecError::BadStructure(e) => write!(f, "decoded structure invalid: {e}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<TypeError> for CodecError {
    fn from(e: TypeError) -> Self {
        CodecError::BadStructure(e)
    }
}

/// Errors surfaced by a sharded engine or broker instead of panicking the
/// caller: shard workers are supervised, fallible components, and the publish
/// path reports their state through this type rather than unwinding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// The shard's bounded request queue is full and the backpressure policy
    /// is `ErrorFast`: the caller should back off and retry.
    Overloaded {
        /// Index of the overloaded shard.
        shard: usize,
    },
    /// The shard worker could not be rebuilt (respawn or log replay failed
    /// repeatedly); it is out of service until the next recovery attempt.
    Sealed {
        /// Index of the sealed shard.
        shard: usize,
    },
}

impl ShardError {
    /// Index of the shard the error refers to.
    pub fn shard(&self) -> usize {
        match self {
            ShardError::Overloaded { shard } | ShardError::Sealed { shard } => *shard,
        }
    }
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Overloaded { shard } => {
                write!(f, "shard {shard} request queue is full (backpressure)")
            }
            ShardError::Sealed { shard } => {
                write!(f, "shard {shard} is sealed pending recovery")
            }
        }
    }
}

impl std::error::Error for ShardError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        assert!(TypeError::DuplicateEventAttribute(AttrId(3))
            .to_string()
            .contains("a3"));
        assert!(!TypeError::EmptySubscription.to_string().is_empty());
        assert!(!TypeError::DuplicatePredicate.to_string().is_empty());
    }

    #[test]
    fn shard_errors_carry_their_shard() {
        let e = ShardError::Overloaded { shard: 3 };
        assert_eq!(e.shard(), 3);
        assert!(e.to_string().contains("shard 3"));
        let e = ShardError::Sealed { shard: 7 };
        assert_eq!(e.shard(), 7);
        assert!(e.to_string().contains("sealed"));
    }
}
