//! Error types for the data model.

use crate::attr::AttrId;

/// Errors building events or subscriptions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// An event listed the same attribute twice (forbidden by §1.1: "No two
    /// pairs have the same attribute").
    DuplicateEventAttribute(AttrId),
    /// A subscription had no predicates.
    EmptySubscription,
    /// A subscription repeated the exact same `(attr, op, value)` predicate.
    DuplicatePredicate,
}

impl std::fmt::Display for TypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TypeError::DuplicateEventAttribute(a) => {
                write!(f, "event has two pairs for attribute {a}")
            }
            TypeError::EmptySubscription => write!(f, "subscription has no predicates"),
            TypeError::DuplicatePredicate => {
                write!(f, "subscription repeats the same predicate twice")
            }
        }
    }
}

impl std::error::Error for TypeError {}

/// Errors surfaced by a sharded engine or broker instead of panicking the
/// caller: shard workers are supervised, fallible components, and the publish
/// path reports their state through this type rather than unwinding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// The shard's bounded request queue is full and the backpressure policy
    /// is `ErrorFast`: the caller should back off and retry.
    Overloaded {
        /// Index of the overloaded shard.
        shard: usize,
    },
    /// The shard worker could not be rebuilt (respawn or log replay failed
    /// repeatedly); it is out of service until the next recovery attempt.
    Sealed {
        /// Index of the sealed shard.
        shard: usize,
    },
}

impl ShardError {
    /// Index of the shard the error refers to.
    pub fn shard(&self) -> usize {
        match self {
            ShardError::Overloaded { shard } | ShardError::Sealed { shard } => *shard,
        }
    }
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Overloaded { shard } => {
                write!(f, "shard {shard} request queue is full (backpressure)")
            }
            ShardError::Sealed { shard } => {
                write!(f, "shard {shard} is sealed pending recovery")
            }
        }
    }
}

impl std::error::Error for ShardError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        assert!(TypeError::DuplicateEventAttribute(AttrId(3))
            .to_string()
            .contains("a3"));
        assert!(!TypeError::EmptySubscription.to_string().is_empty());
        assert!(!TypeError::DuplicatePredicate.to_string().is_empty());
    }

    #[test]
    fn shard_errors_carry_their_shard() {
        let e = ShardError::Overloaded { shard: 3 };
        assert_eq!(e.shard(), 3);
        assert!(e.to_string().contains("shard 3"));
        let e = ShardError::Sealed { shard: 7 };
        assert_eq!(e.shard(), 7);
        assert!(e.to_string().contains("sealed"));
    }
}
