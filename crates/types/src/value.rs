//! Predicate and event values.

use crate::interner::{StringInterner, Symbol};
use std::cmp::Ordering;

/// A value appearing in a predicate or an event pair.
///
/// The paper's experiments use positive-integer domains; the running examples
/// in its introduction use strings ("groundhog day"). We support both.
/// Strings are interned ([`Symbol`]) so this type is `Copy` and 16 bytes,
/// keeping the hot path free of allocation and pointer chasing.
///
/// Values of different kinds never compare: a predicate `(price, <, 10)` is
/// simply not matched by an event pair `(price, "cheap")`. This is what
/// [`Value::typed_cmp`] encodes by returning `None` across kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// A 64-bit signed integer.
    Int(i64),
    /// An interned string.
    Str(Symbol),
}

impl Value {
    /// True if this is an integer value.
    #[inline]
    pub fn is_int(&self) -> bool {
        matches!(self, Value::Int(_))
    }

    /// True if this is a string value.
    #[inline]
    pub fn is_str(&self) -> bool {
        matches!(self, Value::Str(_))
    }

    /// Returns the integer payload, if any.
    #[inline]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// Returns the interned-string payload, if any.
    #[inline]
    pub fn as_symbol(&self) -> Option<Symbol> {
        match self {
            Value::Str(s) => Some(*s),
            Value::Int(_) => None,
        }
    }

    /// Type-aware comparison.
    ///
    /// Integers compare numerically. Interned strings compare by *symbol id*,
    /// which is consistent (a total order) but not lexicographic; callers that
    /// need lexicographic order must go through
    /// [`StringInterner::cmp_lexicographic`]. Cross-kind comparisons return
    /// `None`, meaning "the predicate does not match".
    ///
    /// The inequality index orders string predicates by symbol id too, so as
    /// long as both sides use the same interner the semantics are coherent:
    /// `<` on strings means "earlier interned", which is an arbitrary but
    /// stable total order. Workloads that need true lexicographic inequality
    /// should pre-sort their vocabulary (interning in sorted order makes
    /// symbol order lexicographic).
    #[inline]
    pub fn typed_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Renders the value using `strings` to resolve symbols.
    pub fn display<'a>(&'a self, strings: &'a StringInterner) -> impl std::fmt::Display + 'a {
        struct D<'a>(&'a Value, &'a StringInterner);
        impl std::fmt::Display for D<'_> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                match self.0 {
                    Value::Int(i) => write!(f, "{i}"),
                    Value::Str(s) => write!(f, "{:?}", self.1.resolve(*s)),
                }
            }
        }
        D(self, strings)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<Symbol> for Value {
    fn from(s: Symbol) -> Self {
        Value::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_comparison_is_numeric() {
        assert_eq!(
            Value::Int(3).typed_cmp(&Value::Int(5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Int(5).typed_cmp(&Value::Int(5)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn cross_kind_comparison_is_none() {
        assert_eq!(Value::Int(3).typed_cmp(&Value::Str(Symbol(0))), None);
        assert_eq!(Value::Str(Symbol(0)).typed_cmp(&Value::Int(3)), None);
    }

    #[test]
    fn string_comparison_uses_symbol_order() {
        assert_eq!(
            Value::Str(Symbol(1)).typed_cmp(&Value::Str(Symbol(2))),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn value_is_small_and_copy() {
        assert!(std::mem::size_of::<Value>() <= 16);
        let v = Value::Int(1);
        let w = v; // Copy
        assert_eq!(v, w);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from(7i32), Value::Int(7));
        assert_eq!(Value::from(Symbol(3)), Value::Str(Symbol(3)));
    }

    #[test]
    fn display_resolves_strings() {
        let mut si = StringInterner::new();
        let sym = si.intern("odeon");
        assert_eq!(Value::Str(sym).display(&si).to_string(), "\"odeon\"");
        assert_eq!(Value::Int(8).display(&si).to_string(), "8");
    }
}
