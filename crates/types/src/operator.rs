//! The six comparison operators of the subscription language.

use crate::value::Value;
use std::cmp::Ordering;

/// A relational comparison operator.
///
/// The paper's subscription language supports exactly these six operators
/// (Section 1.1). [`Operator::Eq`] is special throughout the system: only
/// equality predicates can serve as (components of) *access predicates* for
/// clustering, and the predicate phase evaluates them with a hash lookup
/// instead of a range scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Operator {
    /// `<` — event value strictly less than the predicate constant.
    Lt,
    /// `≤`
    Le,
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `≥`
    Ge,
    /// `>` — event value strictly greater than the predicate constant.
    Gt,
}

impl Operator {
    /// All six operators, in declaration order.
    pub const ALL: [Operator; 6] = [
        Operator::Lt,
        Operator::Le,
        Operator::Eq,
        Operator::Ne,
        Operator::Ge,
        Operator::Gt,
    ];

    /// True for the equality operator.
    #[inline]
    pub fn is_equality(self) -> bool {
        matches!(self, Operator::Eq)
    }

    /// True for `<, ≤, ≥, >` — the operators evaluated by the interval index.
    #[inline]
    pub fn is_ordered(self) -> bool {
        matches!(
            self,
            Operator::Lt | Operator::Le | Operator::Ge | Operator::Gt
        )
    }

    /// Evaluates `event_value self constant`.
    ///
    /// Returns `false` when the two values have different kinds (an integer
    /// never matches a string predicate and vice versa), except for `≠` where
    /// a kind mismatch counts as "different" and therefore matches. This
    /// follows from reading `(a', v')` matches `(a, v, ≠)` as `v' ≠ v`.
    #[inline]
    pub fn eval(self, event_value: Value, constant: Value) -> bool {
        match event_value.typed_cmp(&constant) {
            Some(ord) => self.accepts(ord),
            None => matches!(self, Operator::Ne),
        }
    }

    /// True if an `Ordering` between event value and constant satisfies the
    /// operator.
    #[inline]
    pub fn accepts(self, ord: Ordering) -> bool {
        match self {
            Operator::Lt => ord == Ordering::Less,
            Operator::Le => ord != Ordering::Greater,
            Operator::Eq => ord == Ordering::Equal,
            Operator::Ne => ord != Ordering::Equal,
            Operator::Ge => ord != Ordering::Less,
            Operator::Gt => ord == Ordering::Greater,
        }
    }

    /// The textual form used by `Display`.
    pub fn symbol(self) -> &'static str {
        match self {
            Operator::Lt => "<",
            Operator::Le => "<=",
            Operator::Eq => "=",
            Operator::Ne => "!=",
            Operator::Ge => ">=",
            Operator::Gt => ">",
        }
    }

    /// Parses the textual form produced by [`Operator::symbol`].
    pub fn parse(s: &str) -> Option<Operator> {
        Some(match s {
            "<" => Operator::Lt,
            "<=" | "≤" => Operator::Le,
            "=" | "==" => Operator::Eq,
            "!=" | "≠" | "<>" => Operator::Ne,
            ">=" | "≥" => Operator::Ge,
            ">" => Operator::Gt,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Operator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_matches_paper_example() {
        // (price, $8) matches (price, $10, <=) because 8 <= 10.
        assert!(Operator::Le.eval(Value::Int(8), Value::Int(10)));
        // (price, $8) matches (price, $5, >) because 8 > 5.
        assert!(Operator::Gt.eval(Value::Int(8), Value::Int(5)));
        assert!(!Operator::Gt.eval(Value::Int(5), Value::Int(5)));
    }

    #[test]
    fn all_operators_on_ordered_ints() {
        let cases = [
            (Operator::Lt, [true, false, false]),
            (Operator::Le, [true, true, false]),
            (Operator::Eq, [false, true, false]),
            (Operator::Ne, [true, false, true]),
            (Operator::Ge, [false, true, true]),
            (Operator::Gt, [false, false, true]),
        ];
        // event value 1,2,3 against constant 2.
        for (op, expected) in cases {
            for (i, ev) in [1i64, 2, 3].into_iter().enumerate() {
                assert_eq!(
                    op.eval(Value::Int(ev), Value::Int(2)),
                    expected[i],
                    "{op} with event value {ev}"
                );
            }
        }
    }

    #[test]
    fn kind_mismatch_only_matches_ne() {
        use crate::interner::Symbol;
        let s = Value::Str(Symbol(0));
        let i = Value::Int(0);
        for op in Operator::ALL {
            assert_eq!(op.eval(s, i), op == Operator::Ne);
            assert_eq!(op.eval(i, s), op == Operator::Ne);
        }
    }

    #[test]
    fn parse_round_trips() {
        for op in Operator::ALL {
            assert_eq!(Operator::parse(op.symbol()), Some(op));
        }
        assert_eq!(Operator::parse("=="), Some(Operator::Eq));
        assert_eq!(Operator::parse("<>"), Some(Operator::Ne));
        assert_eq!(Operator::parse("~"), None);
    }

    #[test]
    fn classification() {
        assert!(Operator::Eq.is_equality());
        for op in [Operator::Lt, Operator::Le, Operator::Ge, Operator::Gt] {
            assert!(op.is_ordered());
            assert!(!op.is_equality());
        }
        assert!(!Operator::Ne.is_ordered());
        assert!(!Operator::Ne.is_equality());
    }
}
