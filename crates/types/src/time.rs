//! Logical time and validity intervals.
//!
//! "Each subscription and each event is associated with a time interval
//! during which it is considered valid" (paper §1). The broker runs on an
//! injectable logical clock so experiments (and the 16-hour equilibrium runs
//! of §6.2.2) are simulated deterministically instead of in wall time.

/// A point in logical time (ticks; the equilibrium experiments treat one
/// tick as one second).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LogicalTime(pub u64);

impl LogicalTime {
    /// The epoch.
    pub const ZERO: LogicalTime = LogicalTime(0);

    /// `self + ticks`.
    pub fn plus(self, ticks: u64) -> LogicalTime {
        LogicalTime(self.0 + ticks)
    }
}

impl std::fmt::Display for LogicalTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A half-open validity interval `[from, until)`; `until = None` means
/// forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Validity {
    /// First instant at which the item is valid.
    pub from: LogicalTime,
    /// First instant at which the item is no longer valid (exclusive);
    /// `None` = never expires.
    pub until: Option<LogicalTime>,
}

impl Validity {
    /// Valid from the epoch, forever.
    pub fn forever() -> Self {
        Self {
            from: LogicalTime::ZERO,
            until: None,
        }
    }

    /// Valid from the epoch until `until` (exclusive).
    pub fn until(until: LogicalTime) -> Self {
        Self {
            from: LogicalTime::ZERO,
            until: Some(until),
        }
    }

    /// Valid on `[from, until)`.
    pub fn between(from: LogicalTime, until: LogicalTime) -> Self {
        assert!(from < until, "empty validity interval");
        Self {
            from,
            until: Some(until),
        }
    }

    /// Valid for `ticks` starting at `from`.
    pub fn starting_at(from: LogicalTime, ticks: u64) -> Self {
        Self {
            from,
            until: Some(from.plus(ticks)),
        }
    }

    /// True if the interval covers instant `t`.
    pub fn contains(&self, t: LogicalTime) -> bool {
        t >= self.from && self.until.is_none_or(|u| t < u)
    }

    /// True if the interval is entirely in the past at instant `t`.
    pub fn expired_at(&self, t: LogicalTime) -> bool {
        self.until.is_some_and(|u| u <= t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forever_never_expires() {
        let v = Validity::forever();
        assert!(v.contains(LogicalTime(0)));
        assert!(v.contains(LogicalTime(u64::MAX)));
        assert!(!v.expired_at(LogicalTime(u64::MAX)));
    }

    #[test]
    fn interval_is_half_open() {
        let v = Validity::between(LogicalTime(5), LogicalTime(10));
        assert!(!v.contains(LogicalTime(4)));
        assert!(v.contains(LogicalTime(5)));
        assert!(v.contains(LogicalTime(9)));
        assert!(!v.contains(LogicalTime(10)));
        assert!(!v.expired_at(LogicalTime(9)));
        assert!(v.expired_at(LogicalTime(10)));
    }

    #[test]
    #[should_panic(expected = "empty validity interval")]
    fn empty_interval_panics() {
        Validity::between(LogicalTime(5), LogicalTime(5));
    }

    #[test]
    fn starting_at_spans_ticks() {
        let v = Validity::starting_at(LogicalTime(100), 16 * 3600);
        assert!(v.contains(LogicalTime(100)));
        assert!(v.contains(LogicalTime(100 + 16 * 3600 - 1)));
        assert!(!v.contains(LogicalTime(100 + 16 * 3600)));
    }
}
