//! Core data model for the `fastpubsub` publish/subscribe system.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace, directly mirroring Section 1.1 of the paper:
//!
//! * A [`Predicate`] is a triple `(attribute, operator, value)` with
//!   `operator ∈ {<, ≤, =, ≠, ≥, >}`.
//! * A [`Subscription`] is a conjunction of predicates.
//! * An [`Event`] is a set of `(attribute, value)` pairs, at most one pair per
//!   attribute.
//!
//! An event pair `(a', v')` *matches* a predicate `(a, op, v)` iff `a = a'`
//! and `v' op v`. An event *satisfies* a subscription iff every predicate of
//! the subscription is matched by some pair of the event.
//!
//! Attributes and string values are interned to dense integer ids
//! ([`AttrId`], [`Symbol`]) so the hot matching path never touches string
//! data; see [`AttributeInterner`] and [`StringInterner`].
//!
//! The crate also provides [`AttrSet`], a small bitset over attribute ids used
//! for event/subscription schemas and multi-attribute hash-table schemas.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod attr;
pub mod attrset;
pub mod codec;
pub mod error;
pub mod event;
pub mod faults;
pub mod hash;
pub mod interner;
pub mod metrics;
pub mod operator;
pub mod predicate;
pub mod subscription;
pub mod time;
pub mod value;

pub use attr::{AttrId, AttributeInterner};
pub use attrset::AttrSet;
pub use error::{CodecError, ShardError, TypeError};
pub use event::{Event, EventBuilder};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use interner::{StringInterner, Symbol};
pub use operator::Operator;
pub use predicate::Predicate;
pub use subscription::{Subscription, SubscriptionBuilder, SubscriptionId};
pub use time::{LogicalTime, Validity};
pub use value::Value;

/// A convenient bundle of the two interners every component needs.
///
/// The matcher, broker and workload generator all resolve attribute names and
/// string values through a shared `Vocabulary` so that dense ids are
/// consistent across the system.
#[derive(Debug, Default)]
pub struct Vocabulary {
    /// Attribute-name interner.
    pub attrs: AttributeInterner,
    /// String-value interner.
    pub strings: StringInterner,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an attribute name.
    pub fn attr(&mut self, name: &str) -> AttrId {
        self.attrs.intern(name)
    }

    /// Interns a string value.
    pub fn string(&mut self, s: &str) -> Value {
        Value::Str(self.strings.intern(s))
    }
}
