//! Zero-dependency, feature-gated observability layer.
//!
//! The paper's evaluation (Section 6) is built on per-phase measurements —
//! predicate-phase vs. subscription-phase time, cluster-table hit rates, the
//! dynamic optimizer's create/remove decisions. This module gives every crate
//! in the workspace a shared, machine-readable way to report those numbers:
//!
//! * [`Counter`] — a monotonic `u64` counter.
//! * [`Histogram`] — a `u64` histogram with fixed log2 buckets (bucket `k`
//!   holds values whose bit width is `k`, i.e. `v ∈ [2^(k-1), 2^k)`; bucket 0
//!   holds zero). 65 buckets cover the full `u64` range.
//! * [`Span`] — a drop-guard timer recording elapsed nanoseconds into a
//!   histogram.
//!
//! Metrics are declared as `static` items and register themselves in a global
//! lock-free intrusive list on first touch, so a [`MetricsSnapshot`] can
//! enumerate every metric the process has actually used without any central
//! registration ceremony:
//!
//! ```
//! use pubsub_types::metrics::{Counter, MetricsSnapshot};
//!
//! static EVENTS: Counter = Counter::new("example.events");
//! EVENTS.inc();
//! let snap = MetricsSnapshot::capture();
//! # let _ = snap;
//! ```
//!
//! # Feature gate
//!
//! The whole layer is compiled behind the `metrics` cargo feature of
//! `pubsub-types`. With the feature **off** (the default), [`Counter`],
//! [`Histogram`] and [`Span`] are zero-sized types whose methods are empty
//! `#[inline(always)]` bodies — call sites compile to nothing, which is how
//! the instrumented hot loops keep their benchmarked performance. Downstream
//! crates instrument unconditionally; only this crate carries `cfg` logic.
//! [`MetricsSnapshot::capture`] returns an empty snapshot when the feature is
//! off.
//!
//! # Snapshots
//!
//! [`MetricsSnapshot`] is always compiled (so its JSON schema is testable in
//! every configuration). Capture sorts metrics by name, giving deterministic
//! ordering regardless of registration (first-touch) order, and
//! [`MetricsSnapshot::to_json`] emits a stable single-line JSON document
//! following the same conventions as `pubsub-workload::json`: objects with
//! lexicographically sorted keys, integer values only, no whitespace.

/// One captured counter: `(name, value)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterEntry {
    /// Dotted metric name, e.g. `broker.publishes`.
    pub name: String,
    /// Counter value at capture time.
    pub value: u64,
}

/// One captured histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramEntry {
    /// Dotted metric name, e.g. `core.phase1_nanos`.
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (wrapping on overflow).
    pub sum: u64,
    /// Non-empty log2 buckets as `(bucket_index, count)`, ascending by index.
    /// Bucket `k` counts values of bit width `k` (`v ∈ [2^(k-1), 2^k)`);
    /// bucket 0 counts zeros.
    pub buckets: Vec<(u8, u64)>,
}

/// A point-in-time capture of every registered metric, sorted by name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// All counters, ascending by name.
    pub counters: Vec<CounterEntry>,
    /// All histograms, ascending by name.
    pub histograms: Vec<HistogramEntry>,
}

impl MetricsSnapshot {
    /// Captures every metric touched so far. Empty when the `metrics`
    /// feature is off.
    pub fn capture() -> Self {
        imp::capture()
    }

    /// `true` when no metric has been captured.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramEntry> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Encodes the snapshot as a single-line JSON document.
    ///
    /// Schema (all values are unsigned integers):
    ///
    /// ```json
    /// {"counters":{"<name>":<value>,...},
    ///  "histograms":{"<name>":{"buckets":{"<k>":<n>,...},
    ///                          "count":<n>,"sum":<n>},...}}
    /// ```
    ///
    /// Object keys are emitted in ascending lexicographic order, so the
    /// encoding of a given snapshot is byte-stable; the output parses with
    /// `pubsub_workload::json::parse`.
    pub fn to_json(&self) -> String {
        let mut counters: Vec<&CounterEntry> = self.counters.iter().collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let mut histograms: Vec<&HistogramEntry> = self.histograms.iter().collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));

        let mut out = String::from("{\"counters\":{");
        for (i, c) in counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            quote_into(&mut out, &c.name);
            out.push(':');
            out.push_str(&c.value.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            quote_into(&mut out, &h.name);
            out.push_str(":{\"buckets\":{");
            for (j, (bucket, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                // Bucket keys are fixed-width ("04", "17") so that sorted
                // JSON object order equals numeric bucket order.
                out.push_str(&format!("\"{bucket:02}\":{n}"));
            }
            out.push_str(&format!("}},\"count\":{},\"sum\":{}}}", h.count, h.sum));
        }
        out.push_str("}}");
        out
    }
}

/// Appends `s` as a JSON string literal (same escaping rules as
/// `pubsub-workload::json`).
fn quote_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The log2 bucket index of a value: its bit width (0 for 0).
pub fn bucket_of(v: u64) -> u8 {
    (u64::BITS - v.leading_zeros()) as u8
}

#[cfg(feature = "metrics")]
mod imp {
    use super::{bucket_of, CounterEntry, HistogramEntry, MetricsSnapshot};
    use std::ptr;
    use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
    use std::time::Instant;

    /// A monotonic counter. Declare as a `static`; it registers itself in
    /// the global metric list on first touch.
    pub struct Counter {
        name: &'static str,
        value: AtomicU64,
        next: AtomicPtr<Counter>,
        claimed: AtomicBool,
    }

    static COUNTER_HEAD: AtomicPtr<Counter> = AtomicPtr::new(ptr::null_mut());
    static HISTOGRAM_HEAD: AtomicPtr<Histogram> = AtomicPtr::new(ptr::null_mut());

    impl Counter {
        /// Creates a counter with a dotted name (`layer.component.what`).
        pub const fn new(name: &'static str) -> Self {
            Self {
                name,
                value: AtomicU64::new(0),
                next: AtomicPtr::new(ptr::null_mut()),
                claimed: AtomicBool::new(false),
            }
        }

        /// Adds `n`.
        #[inline]
        pub fn add(&'static self, n: u64) {
            self.register();
            self.value.fetch_add(n, Ordering::Relaxed);
        }

        /// Adds 1.
        #[inline]
        pub fn inc(&'static self) {
            self.add(1);
        }

        /// Current value.
        pub fn get(&self) -> u64 {
            self.value.load(Ordering::Relaxed)
        }

        #[inline]
        fn register(&'static self) {
            if !self.claimed.load(Ordering::Relaxed) {
                self.register_slow();
            }
        }

        #[cold]
        fn register_slow(&'static self) {
            push(&COUNTER_HEAD, self, &self.claimed, &self.next);
        }
    }

    /// A `u64` histogram with one bucket per bit width (65 buckets).
    /// Declare as a `static`; registers itself on first touch.
    pub struct Histogram {
        name: &'static str,
        count: AtomicU64,
        sum: AtomicU64,
        buckets: [AtomicU64; 65],
        next: AtomicPtr<Histogram>,
        claimed: AtomicBool,
    }

    impl Histogram {
        /// Creates a histogram with a dotted name.
        pub const fn new(name: &'static str) -> Self {
            #[allow(clippy::declare_interior_mutable_const)]
            const ZERO: AtomicU64 = AtomicU64::new(0);
            Self {
                name,
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                buckets: [ZERO; 65],
                next: AtomicPtr::new(ptr::null_mut()),
                claimed: AtomicBool::new(false),
            }
        }

        /// Records one value.
        #[inline]
        pub fn record(&'static self, v: u64) {
            self.register();
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            self.buckets[bucket_of(v) as usize].fetch_add(1, Ordering::Relaxed);
        }

        /// Starts a drop-guard span; elapsed nanoseconds are recorded when
        /// the guard drops.
        #[inline]
        pub fn span(&'static self) -> Span {
            Span {
                hist: self,
                start: Instant::now(),
            }
        }

        #[inline]
        fn register(&'static self) {
            if !self.claimed.load(Ordering::Relaxed) {
                self.register_slow();
            }
        }

        #[cold]
        fn register_slow(&'static self) {
            push(&HISTOGRAM_HEAD, self, &self.claimed, &self.next);
        }
    }

    /// Records elapsed nanoseconds into its histogram on drop.
    pub struct Span {
        hist: &'static Histogram,
        start: Instant,
    }

    impl Drop for Span {
        fn drop(&mut self) {
            self.hist.record(self.start.elapsed().as_nanos() as u64);
        }
    }

    /// CAS-pushes `node` onto the intrusive list at `head`, exactly once.
    fn push<T>(head: &AtomicPtr<T>, node: &'static T, claimed: &AtomicBool, next: &AtomicPtr<T>) {
        if claimed
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return; // another thread won the registration race
        }
        let node_ptr = node as *const T as *mut T;
        let mut cur = head.load(Ordering::Acquire);
        loop {
            next.store(cur, Ordering::Relaxed);
            match head.compare_exchange_weak(cur, node_ptr, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    pub(super) fn capture() -> MetricsSnapshot {
        let mut counters = Vec::new();
        let mut p = COUNTER_HEAD.load(Ordering::Acquire);
        while !p.is_null() {
            // SAFETY: only `&'static` nodes are ever pushed onto the list.
            let c: &'static Counter = unsafe { &*p };
            counters.push(CounterEntry {
                name: c.name.to_string(),
                value: c.get(),
            });
            p = c.next.load(Ordering::Acquire);
        }
        counters.sort_by(|a, b| a.name.cmp(&b.name));

        let mut histograms = Vec::new();
        let mut p = HISTOGRAM_HEAD.load(Ordering::Acquire);
        while !p.is_null() {
            // SAFETY: only `&'static` nodes are ever pushed onto the list.
            let h: &'static Histogram = unsafe { &*p };
            let buckets: Vec<(u8, u64)> = h
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((i as u8, n))
                })
                .collect();
            histograms.push(HistogramEntry {
                name: h.name.to_string(),
                count: h.count.load(Ordering::Relaxed),
                sum: h.sum.load(Ordering::Relaxed),
                buckets,
            });
            p = h.next.load(Ordering::Acquire);
        }
        histograms.sort_by(|a, b| a.name.cmp(&b.name));

        MetricsSnapshot {
            counters,
            histograms,
        }
    }

    /// Zeroes every registered counter and histogram (metrics stay
    /// registered). Intended for tests and benchmark harnesses; concurrent
    /// recorders may interleave with the reset.
    pub fn reset_all() {
        let mut p = COUNTER_HEAD.load(Ordering::Acquire);
        while !p.is_null() {
            // SAFETY: only `&'static` nodes are ever pushed onto the list.
            let c: &'static Counter = unsafe { &*p };
            c.value.store(0, Ordering::Relaxed);
            p = c.next.load(Ordering::Acquire);
        }
        let mut p = HISTOGRAM_HEAD.load(Ordering::Acquire);
        while !p.is_null() {
            // SAFETY: only `&'static` nodes are ever pushed onto the list.
            let h: &'static Histogram = unsafe { &*p };
            h.count.store(0, Ordering::Relaxed);
            h.sum.store(0, Ordering::Relaxed);
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
            p = h.next.load(Ordering::Acquire);
        }
    }

    /// `true` when the `metrics` feature is compiled in.
    pub const fn enabled() -> bool {
        true
    }
}

#[cfg(not(feature = "metrics"))]
mod imp {
    use super::MetricsSnapshot;

    /// A monotonic counter (no-op: the `metrics` feature is off).
    pub struct Counter(());

    impl Counter {
        /// Creates a counter (no-op).
        pub const fn new(_name: &'static str) -> Self {
            Self(())
        }

        /// Adds `n` (no-op).
        #[inline(always)]
        pub fn add(&'static self, _n: u64) {}

        /// Adds 1 (no-op).
        #[inline(always)]
        pub fn inc(&'static self) {}

        /// Current value (always 0).
        #[inline(always)]
        pub fn get(&self) -> u64 {
            0
        }
    }

    /// A log2-bucket histogram (no-op: the `metrics` feature is off).
    pub struct Histogram(());

    impl Histogram {
        /// Creates a histogram (no-op).
        pub const fn new(_name: &'static str) -> Self {
            Self(())
        }

        /// Records one value (no-op).
        #[inline(always)]
        pub fn record(&'static self, _v: u64) {}

        /// Starts a span guard (no-op).
        #[inline(always)]
        pub fn span(&'static self) -> Span {
            Span(())
        }
    }

    /// A drop-guard timer (no-op: the `metrics` feature is off).
    pub struct Span(());

    pub(super) fn capture() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Zeroes every registered metric (no-op).
    pub fn reset_all() {}

    /// `true` when the `metrics` feature is compiled in.
    pub const fn enabled() -> bool {
        false
    }
}

pub use imp::{enabled, reset_all, Counter, Histogram, Span};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_is_bit_width() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn empty_snapshot_encodes_stably() {
        let snap = MetricsSnapshot::default();
        assert!(snap.is_empty());
        assert_eq!(snap.to_json(), "{\"counters\":{},\"histograms\":{}}");
    }

    #[cfg(feature = "metrics")]
    mod enabled {
        use super::super::*;

        static TEST_COUNTER: Counter = Counter::new("test.types.counter");
        static TEST_HIST: Histogram = Histogram::new("test.types.hist");

        #[test]
        fn counters_and_histograms_register_and_capture() {
            TEST_COUNTER.add(3);
            TEST_COUNTER.inc();
            TEST_HIST.record(0);
            TEST_HIST.record(5);
            let snap = MetricsSnapshot::capture();
            assert!(snap.counter("test.types.counter").unwrap() >= 4);
            let h = snap.histogram("test.types.hist").unwrap();
            assert!(h.count >= 2);
            assert!(h.buckets.iter().any(|&(b, _)| b == bucket_of(5)));
            // Deterministic ordering: names ascend.
            for w in snap.counters.windows(2) {
                assert!(w[0].name < w[1].name);
            }
        }

        #[test]
        fn span_records_elapsed_nanos() {
            static SPAN_HIST: Histogram = Histogram::new("test.types.span");
            {
                let _s = SPAN_HIST.span();
            }
            let snap = MetricsSnapshot::capture();
            assert!(snap.histogram("test.types.span").unwrap().count >= 1);
        }
    }

    #[cfg(not(feature = "metrics"))]
    mod disabled {
        use super::super::*;

        static OFF_COUNTER: Counter = Counter::new("test.types.off");

        #[test]
        fn everything_is_a_no_op() {
            OFF_COUNTER.add(10);
            assert_eq!(OFF_COUNTER.get(), 0);
            assert!(!enabled());
            assert!(MetricsSnapshot::capture().is_empty());
        }
    }
}
