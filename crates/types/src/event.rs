//! Events: sets of `(attribute, value)` pairs.

use crate::attr::AttrId;
use crate::attrset::AttrSet;
use crate::error::TypeError;
use crate::value::Value;
use crate::Vocabulary;

/// An event — a conjunction of `(attribute, value)` pairs with no attribute
/// repeated (paper §1.1).
///
/// Pairs are kept sorted by attribute id so lookups are a binary search and
/// two events with the same content compare equal regardless of insertion
/// order. The event's *schema* (its attribute set) is materialised as an
/// [`AttrSet`] because the clustered matcher tests schema inclusion per
/// multi-attribute hash table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    pairs: Vec<(AttrId, Value)>,
    schema: AttrSet,
}

impl Event {
    /// Builds an event from pairs, rejecting duplicate attributes.
    pub fn from_pairs(mut pairs: Vec<(AttrId, Value)>) -> Result<Self, TypeError> {
        pairs.sort_unstable_by_key(|(a, _)| *a);
        for w in pairs.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(TypeError::DuplicateEventAttribute(w[0].0));
            }
        }
        let schema = pairs.iter().map(|(a, _)| *a).collect();
        Ok(Self { pairs, schema })
    }

    /// Starts an [`EventBuilder`].
    pub fn builder() -> EventBuilder {
        EventBuilder::default()
    }

    /// The value for `attr`, if the event carries that attribute.
    #[inline]
    pub fn value(&self, attr: AttrId) -> Option<Value> {
        self.pairs
            .binary_search_by_key(&attr, |(a, _)| *a)
            .ok()
            .map(|i| self.pairs[i].1)
    }

    /// The event's pairs, sorted by attribute id.
    #[inline]
    pub fn pairs(&self) -> &[(AttrId, Value)] {
        &self.pairs
    }

    /// The event's schema (set of attributes it provides values for).
    #[inline]
    pub fn schema(&self) -> &AttrSet {
        &self.schema
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if the event carries no pair.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Renders the event with resolved names.
    pub fn display<'a>(&'a self, vocab: &'a Vocabulary) -> impl std::fmt::Display + 'a {
        struct D<'a>(&'a Event, &'a Vocabulary);
        impl std::fmt::Display for D<'_> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{{")?;
                for (i, (a, v)) in self.0.pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(
                        f,
                        "{}: {}",
                        self.1.attrs.name(*a),
                        v.display(&self.1.strings)
                    )?;
                }
                write!(f, "}}")
            }
        }
        D(self, vocab)
    }
}

/// Incremental builder for [`Event`].
#[derive(Debug, Default)]
pub struct EventBuilder {
    pairs: Vec<(AttrId, Value)>,
}

impl EventBuilder {
    /// Adds a pair. Duplicates are detected at [`EventBuilder::build`] time.
    pub fn pair(mut self, attr: AttrId, value: impl Into<Value>) -> Self {
        self.pairs.push((attr, value.into()));
        self
    }

    /// Finalises the event.
    pub fn build(self) -> Result<Event, TypeError> {
        Event::from_pairs(self.pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_are_sorted_and_looked_up() {
        let e = Event::from_pairs(vec![
            (AttrId(3), Value::Int(30)),
            (AttrId(1), Value::Int(10)),
        ])
        .unwrap();
        assert_eq!(e.pairs()[0].0, AttrId(1));
        assert_eq!(e.value(AttrId(3)), Some(Value::Int(30)));
        assert_eq!(e.value(AttrId(2)), None);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = Event::from_pairs(vec![(AttrId(1), Value::Int(1)), (AttrId(1), Value::Int(2))])
            .unwrap_err();
        assert!(matches!(err, TypeError::DuplicateEventAttribute(AttrId(1))));
    }

    #[test]
    fn builder_and_schema() {
        let e = Event::builder()
            .pair(AttrId(0), 5i64)
            .pair(AttrId(2), 7i64)
            .build()
            .unwrap();
        assert!(e.schema().contains(AttrId(0)));
        assert!(e.schema().contains(AttrId(2)));
        assert!(!e.schema().contains(AttrId(1)));
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let a = Event::from_pairs(vec![(AttrId(1), Value::Int(1)), (AttrId(2), Value::Int(2))])
            .unwrap();
        let b = Event::from_pairs(vec![(AttrId(2), Value::Int(2)), (AttrId(1), Value::Int(1))])
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn display_renders_pairs() {
        let mut v = Vocabulary::new();
        let movie = v.attr("movie");
        let price = v.attr("price");
        let title = v.string("groundhog day");
        let e = Event::builder()
            .pair(movie, title)
            .pair(price, 8i64)
            .build()
            .unwrap();
        assert_eq!(
            e.display(&v).to_string(),
            "{movie: \"groundhog day\", price: 8}"
        );
    }
}
