//! Subscriptions: conjunctions of predicates.

use crate::attr::AttrId;
use crate::attrset::AttrSet;
use crate::error::TypeError;
use crate::event::Event;
use crate::operator::Operator;
use crate::predicate::Predicate;
use crate::value::Value;
use crate::Vocabulary;

/// Identifier assigned to a subscription by the matcher/broker.
///
/// Ids are dense and never reused within one matcher instance, which lets the
/// engines index per-subscription state (hit counters, cluster locations) by
/// plain arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubscriptionId(pub u32);

impl SubscriptionId {
    /// The raw index of this subscription.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for SubscriptionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A subscription — a non-empty conjunction of predicates.
///
/// Following the paper's notation, `P(s)` is the set of *equality* predicates
/// of `s` ([`Subscription::equality_predicates`]) and `A(s)` is the set of
/// attributes occurring in them ([`Subscription::equality_schema`]).
///
/// Predicates are stored equality-first; the matching engines rely on this so
/// inequality bits are only inspected once all equality predicates of a
/// candidate subscription have passed (paper §6.2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subscription {
    predicates: Vec<Predicate>,
    eq_count: usize,
    eq_schema: AttrSet,
}

impl Subscription {
    /// Builds a subscription from predicates.
    ///
    /// Rejects empty conjunctions and exact duplicate predicates (the same
    /// `(attr, op, value)` twice adds no information and would distort the
    /// size-based clustering).
    pub fn from_predicates(mut predicates: Vec<Predicate>) -> Result<Self, TypeError> {
        if predicates.is_empty() {
            return Err(TypeError::EmptySubscription);
        }
        // Sort equality-first, then by attribute, for canonical storage.
        predicates.sort_unstable_by_key(|p| (!p.is_equality(), p.attr, p.op, p.value_sort_key()));
        for w in predicates.windows(2) {
            if w[0] == w[1] {
                return Err(TypeError::DuplicatePredicate);
            }
        }
        let eq_count = predicates.iter().filter(|p| p.is_equality()).count();
        let eq_schema = predicates
            .iter()
            .filter(|p| p.is_equality())
            .map(|p| p.attr)
            .collect();
        Ok(Self {
            predicates,
            eq_count,
            eq_schema,
        })
    }

    /// Starts a [`SubscriptionBuilder`].
    pub fn builder() -> SubscriptionBuilder {
        SubscriptionBuilder::default()
    }

    /// All predicates, equality predicates first.
    #[inline]
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// The equality predicates `P(s)`.
    #[inline]
    pub fn equality_predicates(&self) -> &[Predicate] {
        &self.predicates[..self.eq_count]
    }

    /// The non-equality predicates.
    #[inline]
    pub fn inequality_predicates(&self) -> &[Predicate] {
        &self.predicates[self.eq_count..]
    }

    /// The set `A(s)` of attributes with equality predicates.
    #[inline]
    pub fn equality_schema(&self) -> &AttrSet {
        &self.eq_schema
    }

    /// Total number of predicates (the subscription's *size* for clustering).
    #[inline]
    pub fn size(&self) -> usize {
        self.predicates.len()
    }

    /// Number of equality predicates.
    #[inline]
    pub fn equality_count(&self) -> usize {
        self.eq_count
    }

    /// Reference semantics: true iff every predicate is matched by the event.
    ///
    /// This is the slow, obviously-correct definition used as the oracle in
    /// tests; the engines must agree with it exactly.
    pub fn matches_event(&self, event: &Event) -> bool {
        self.predicates.iter().all(|p| p.matches_event(event))
    }

    /// Renders the subscription with resolved names.
    pub fn display<'a>(&'a self, vocab: &'a Vocabulary) -> impl std::fmt::Display + 'a {
        struct D<'a>(&'a Subscription, &'a Vocabulary);
        impl std::fmt::Display for D<'_> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                for (i, p) in self.0.predicates.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "{}", p.display(self.1))?;
                }
                Ok(())
            }
        }
        D(self, vocab)
    }
}

impl Predicate {
    /// A sort key making subscription canonicalisation deterministic.
    fn value_sort_key(&self) -> (u8, i64) {
        match self.value {
            Value::Int(i) => (0, i),
            Value::Str(s) => (1, s.0 as i64),
        }
    }
}

/// Incremental builder for [`Subscription`].
#[derive(Debug, Default)]
pub struct SubscriptionBuilder {
    predicates: Vec<Predicate>,
}

impl SubscriptionBuilder {
    /// Adds an arbitrary predicate.
    pub fn predicate(mut self, p: Predicate) -> Self {
        self.predicates.push(p);
        self
    }

    /// Adds `(attr, op, value)`.
    pub fn with(self, attr: AttrId, op: Operator, value: impl Into<Value>) -> Self {
        self.predicate(Predicate::new(attr, op, value))
    }

    /// Adds an equality predicate.
    pub fn eq(self, attr: AttrId, value: impl Into<Value>) -> Self {
        self.with(attr, Operator::Eq, value)
    }

    /// Finalises the subscription.
    pub fn build(self) -> Result<Subscription, TypeError> {
        Subscription::from_predicates(self.predicates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    #[test]
    fn paper_running_example() {
        // s = (movie = groundhog day) AND (price <= 10) AND (price > 5)
        let mut v = Vocabulary::new();
        let movie = v.attr("movie");
        let price = v.attr("price");
        let theater = v.attr("theater");
        let title = v.string("groundhog day");
        let s = Subscription::builder()
            .eq(movie, title)
            .with(price, Operator::Le, 10i64)
            .with(price, Operator::Gt, 5i64)
            .build()
            .unwrap();

        assert_eq!(s.size(), 3);
        assert_eq!(s.equality_count(), 1);
        assert_eq!(s.equality_schema().to_sorted_vec(), vec![movie]);

        // Event (movie, groundhog day), (price, 8), (theater, odeon)
        let odeon = v.string("odeon");
        let e = Event::builder()
            .pair(movie, title)
            .pair(price, 8i64)
            .pair(theater, odeon)
            .build()
            .unwrap();
        assert!(s.matches_event(&e));

        // price 12 breaks the <= 10 predicate.
        let e2 = Event::builder()
            .pair(movie, title)
            .pair(price, 12i64)
            .build()
            .unwrap();
        assert!(!s.matches_event(&e2));
    }

    #[test]
    fn empty_subscription_rejected() {
        assert!(matches!(
            Subscription::from_predicates(vec![]),
            Err(TypeError::EmptySubscription)
        ));
    }

    #[test]
    fn duplicate_predicate_rejected() {
        let p = Predicate::eq(a(0), 1i64);
        assert!(matches!(
            Subscription::from_predicates(vec![p, p]),
            Err(TypeError::DuplicatePredicate)
        ));
    }

    #[test]
    fn predicates_are_equality_first() {
        let s = Subscription::builder()
            .with(a(0), Operator::Lt, 5i64)
            .eq(a(1), 2i64)
            .with(a(2), Operator::Ge, 0i64)
            .eq(a(3), 4i64)
            .build()
            .unwrap();
        assert_eq!(s.equality_count(), 2);
        assert!(s.predicates()[0].is_equality());
        assert!(s.predicates()[1].is_equality());
        assert!(!s.predicates()[2].is_equality());
        assert_eq!(s.equality_predicates().len(), 2);
        assert_eq!(s.inequality_predicates().len(), 2);
    }

    #[test]
    fn same_attr_two_ops_is_allowed() {
        // The paper's example has price <= 10 AND price > 5.
        let s = Subscription::builder()
            .with(a(0), Operator::Le, 10i64)
            .with(a(0), Operator::Gt, 5i64)
            .build()
            .unwrap();
        assert_eq!(s.size(), 2);
        assert_eq!(s.equality_count(), 0);
        assert!(s.equality_schema().is_empty());
    }

    #[test]
    fn canonicalisation_makes_equal_subscriptions_equal() {
        let s1 = Subscription::builder()
            .eq(a(1), 2i64)
            .with(a(0), Operator::Lt, 5i64)
            .build()
            .unwrap();
        let s2 = Subscription::builder()
            .with(a(0), Operator::Lt, 5i64)
            .eq(a(1), 2i64)
            .build()
            .unwrap();
        assert_eq!(s1, s2);
    }
}
