//! Property tests for the data model.

use proptest::prelude::*;
use pubsub_types::{AttrId, AttrSet, Event, Operator, Predicate, Subscription, Symbol, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-50i64..50).prop_map(Value::Int),
        (0u32..8).prop_map(|s| Value::Str(Symbol(s))),
    ]
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    (
        0u32..8,
        prop::sample::select(Operator::ALL.to_vec()),
        arb_value(),
    )
        .prop_map(|(a, op, v)| Predicate::new(AttrId(a), op, v))
}

proptest! {
    /// Predicate order never affects subscription semantics or equality.
    #[test]
    fn subscription_is_order_independent(
        preds in prop::collection::hash_set(arb_predicate(), 1..8),
        shuffle in any::<u64>(),
        pairs in prop::collection::btree_map(0u32..8, arb_value(), 0..8),
    ) {
        let original: Vec<Predicate> = preds.iter().copied().collect();
        let mut shuffled = original.clone();
        // Cheap deterministic shuffle.
        let mut state = shuffle | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            shuffled.swap(i, (state >> 33) as usize % (i + 1));
        }
        let a = Subscription::from_predicates(original).unwrap();
        let b = Subscription::from_predicates(shuffled).unwrap();
        prop_assert_eq!(&a, &b);

        let event = Event::from_pairs(
            pairs.into_iter().map(|(k, v)| (AttrId(k), v)).collect(),
        ).unwrap();
        prop_assert_eq!(a.matches_event(&event), b.matches_event(&event));
    }

    /// A subscription matches exactly when all its predicates do.
    #[test]
    fn subscription_matching_is_conjunction(
        preds in prop::collection::hash_set(arb_predicate(), 1..8),
        pairs in prop::collection::btree_map(0u32..8, arb_value(), 0..8),
    ) {
        let preds: Vec<Predicate> = preds.into_iter().collect();
        let sub = Subscription::from_predicates(preds.clone()).unwrap();
        let event = Event::from_pairs(
            pairs.into_iter().map(|(k, v)| (AttrId(k), v)).collect(),
        ).unwrap();
        let want = preds.iter().all(|p| p.matches_event(&event));
        prop_assert_eq!(sub.matches_event(&event), want);
    }

    /// Equality-first storage invariant.
    #[test]
    fn equality_predicates_come_first(
        preds in prop::collection::hash_set(arb_predicate(), 1..8),
    ) {
        let sub = Subscription::from_predicates(preds.into_iter().collect()).unwrap();
        let eq_count = sub.equality_count();
        for (i, p) in sub.predicates().iter().enumerate() {
            prop_assert_eq!(p.is_equality(), i < eq_count);
        }
        // A(s) holds exactly the equality attributes.
        let schema: AttrSet = sub
            .equality_predicates()
            .iter()
            .map(|p| p.attr)
            .collect();
        prop_assert_eq!(&schema, sub.equality_schema());
    }

    /// Event lookup agrees with a linear scan, and the schema is exact.
    #[test]
    fn event_lookup_and_schema(
        pairs in prop::collection::btree_map(0u32..200, arb_value(), 0..16),
    ) {
        let vec_pairs: Vec<(AttrId, Value)> =
            pairs.iter().map(|(&k, &v)| (AttrId(k), v)).collect();
        let event = Event::from_pairs(vec_pairs.clone()).unwrap();
        for a in 0..200u32 {
            let want = vec_pairs.iter().find(|(k, _)| *k == AttrId(a)).map(|(_, v)| *v);
            prop_assert_eq!(event.value(AttrId(a)), want);
            prop_assert_eq!(event.schema().contains(AttrId(a)), want.is_some());
        }
        prop_assert_eq!(event.schema().len(), vec_pairs.len());
    }

    /// AttrSet behaves like a HashSet<u32> under inserts and removes.
    #[test]
    fn attrset_matches_hashset(ops in prop::collection::vec((0u32..300, any::<bool>()), 0..80)) {
        let mut set = AttrSet::new();
        let mut oracle = std::collections::HashSet::new();
        for (a, insert) in ops {
            if insert {
                prop_assert_eq!(set.insert(AttrId(a)), oracle.insert(a));
            } else {
                prop_assert_eq!(set.remove(AttrId(a)), oracle.remove(&a));
            }
        }
        prop_assert_eq!(set.len(), oracle.len());
        let mut got: Vec<u32> = set.iter().map(|a| a.0).collect();
        let mut want: Vec<u32> = oracle.into_iter().collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Operator evaluation is consistent with `typed_cmp`.
    #[test]
    fn operator_eval_consistency(a in arb_value(), b in arb_value()) {
        match a.typed_cmp(&b) {
            Some(ord) => {
                for op in Operator::ALL {
                    prop_assert_eq!(op.eval(a, b), op.accepts(ord));
                }
            }
            None => {
                for op in Operator::ALL {
                    prop_assert_eq!(op.eval(a, b), op == Operator::Ne);
                }
            }
        }
    }
}
