//! The segmented append-only write-ahead log.
//!
//! # Physical layout
//!
//! A WAL directory contains numbered **segment files** plus snapshot files
//! (see [`crate::snapshot`]):
//!
//! ```text
//! wal-00000000000000000000.log      segments: 16-byte header + records
//! wal-00000000000000000214.log
//! snap-00000000000000000214.snap    snapshot covering LSNs < 214
//! ```
//!
//! Each segment starts with a header (`b"FPWAL1\0\0"` magic + the `u64`
//! first LSN, doubling as a check against renamed files) followed by framed
//! records ([`WalOp::to_record`]). The number in a segment's file name is
//! the LSN of its first record, so the record stream orders and anchors
//! itself by file name alone.
//!
//! # Recovery semantics
//!
//! [`Wal::open`] recovers in three steps: pick the newest decodable
//! snapshot whose covered position is still on disk; scan the segments from
//! there; open the last segment for appending. Damage is classified by
//! *where* it sits:
//!
//! * **Torn tail** — damage in the *last* segment. This is what a crash
//!   mid-append (or mid-rotation) produces, and it is expected, not
//!   exceptional: the file is physically truncated back to the last fully
//!   valid record and the log continues from there. A last segment whose
//!   header never made it to disk is removed entirely (a crash between
//!   creating the file and writing its header).
//! * **Mid-log corruption** — damage *behind* later valid data (in a
//!   non-last segment). No crash produces this; it means bit rot or
//!   operator error, and it follows [`CorruptionPolicy`]: `Fail` refuses to
//!   open, `Skip` drops the damaged record (resynchronising via the length
//!   frame when plausible, else via the next segment header) and keeps
//!   everything that decodes.
//!
//! Replayed, skipped and truncated work is tallied in a [`RecoveryReport`]
//! and in the `recovery.*` metrics. [`Wal::verify`] and [`Wal::dump`] run
//! the same scanner read-only (no truncation, no fault injection) for the
//! CLI's offline inspection commands.

use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use pubsub_types::codec;
use pubsub_types::faults::{self, FaultAction};
use pubsub_types::metrics::Counter;

use crate::record::{Lsn, WalOp, MAX_RECORD_BYTES, RECORD_HEADER_BYTES};
use crate::snapshot::{self, SnapshotState};
use crate::{
    CorruptionPolicy, DurabilityConfig, FsyncPolicy, WalError, FAULT_APPEND, FAULT_FSYNC,
    FAULT_READ, FAULT_ROTATE,
};

/// Records appended (`wal.appends`).
pub static WAL_APPENDS: Counter = Counter::new("wal.appends");
/// Record bytes appended, framing included (`wal.bytes`).
pub static WAL_BYTES: Counter = Counter::new("wal.bytes");
/// Explicit fsyncs issued (`wal.fsyncs`).
pub static WAL_FSYNCS: Counter = Counter::new("wal.fsyncs");
/// Segment rotations (`wal.rotations`).
pub static WAL_ROTATIONS: Counter = Counter::new("wal.rotations");
/// Session-table records appended (`wal.session_records`).
pub static WAL_SESSION_RECORDS: Counter = Counter::new("wal.session_records");
/// Records replayed during recovery (`recovery.records_replayed`).
pub static RECOVERY_RECORDS: Counter = Counter::new("recovery.records_replayed");
/// Torn tails truncated during recovery (`recovery.torn_tail_truncated`).
pub static RECOVERY_TORN: Counter = Counter::new("recovery.torn_tail_truncated");

const MAGIC: &[u8; 8] = b"FPWAL1\0\0";
pub(crate) const SEGMENT_HEADER_BYTES: u64 = 16; // magic + first LSN

/// The file name of the segment whose first record is `lsn`.
pub(crate) fn segment_file_name(lsn: Lsn) -> String {
    format!("wal-{lsn:020}.log")
}

/// Parses a segment file name back to its first LSN.
fn parse_segment_name(name: &str) -> Option<Lsn> {
    let digits = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

// ---- recovery output ------------------------------------------------------

/// What [`Wal::open`] recovered from disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovered {
    /// The snapshot replay starts from, if one was usable.
    pub snapshot: Option<SnapshotState>,
    /// The surviving log tail (LSNs at or after the snapshot position), in
    /// order. The caller applies the snapshot, then these.
    pub ops: Vec<(Lsn, WalOp)>,
    /// What recovery did to get here.
    pub report: RecoveryReport,
}

/// Tally of a recovery pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Log position of the snapshot used (`None` = replayed from scratch).
    pub snapshot_lsn: Option<Lsn>,
    /// Snapshot files that were present but damaged or unusable.
    pub snapshots_discarded: u64,
    /// Records replayed from segments.
    pub records_replayed: u64,
    /// Bytes truncated off a torn tail (`None` = the tail was clean).
    pub torn_tail_truncated: Option<u64>,
    /// Records dropped under [`CorruptionPolicy::Skip`].
    pub records_skipped: u64,
    /// Bytes abandoned mid-segment where the length frame could not
    /// resynchronise the scan (Skip policy only).
    pub bytes_abandoned: u64,
    /// Segment files scanned.
    pub segments_scanned: u64,
    /// Segment files removed because their header never made it to disk
    /// (crash during rotation).
    pub segments_removed: u64,
}

// ---- offline inspection ---------------------------------------------------

/// Read-only health report over a WAL directory ([`Wal::verify`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WalReport {
    /// Per-segment findings, in LSN order.
    pub segments: Vec<SegmentReport>,
    /// Per-snapshot findings, newest first.
    pub snapshots: Vec<SnapshotReport>,
}

impl WalReport {
    /// `true` when every segment and snapshot decodes end to end.
    pub fn healthy(&self) -> bool {
        self.segments.iter().all(|s| s.damage.is_none()) && self.snapshots.iter().all(|s| s.valid)
    }

    /// Total valid records across all segments.
    pub fn total_records(&self) -> u64 {
        self.segments.iter().map(|s| s.records).sum()
    }
}

/// One segment's verification result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentReport {
    /// Segment file name.
    pub file: String,
    /// LSN of the segment's first record.
    pub first_lsn: Lsn,
    /// Valid records decoded.
    pub records: u64,
    /// File size in bytes.
    pub bytes: u64,
    /// Description of the first damage found, if any.
    pub damage: Option<String>,
}

/// One snapshot's verification result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotReport {
    /// Snapshot file name.
    pub file: String,
    /// Log position the snapshot covers (from its file name).
    pub lsn: Lsn,
    /// Whether the payload decoded and passed its CRC.
    pub valid: bool,
    /// Live subscriptions captured (0 when invalid).
    pub subs: u64,
}

// ---- segment scanning -----------------------------------------------------

/// Result of scanning one segment's records.
struct SegScan {
    /// Valid `(lsn, op)` pairs in order.
    records: Vec<(Lsn, WalOp)>,
    /// Records consumed, valid and skipped — `first_lsn + consumed` anchors
    /// the next LSN when this is the last segment.
    consumed: u64,
    /// File offset just past the last valid record (truncation point).
    good_bytes: u64,
    /// Offset and description of the first damage, if any.
    first_damage: Option<(u64, String)>,
    /// Records dropped by skip-resynchronisation.
    skipped: u64,
    /// `true` when the scan abandoned the rest of the segment (unframeable
    /// damage under skip policy).
    abandoned: bool,
}

/// Scans the records of one segment held in memory.
///
/// `skip_damage` selects [`CorruptionPolicy::Skip`] behaviour: frameable
/// damage (intact length prefix, bad payload) is stepped over, unframeable
/// damage abandons the rest of the segment. With `skip_damage` off the scan
/// stops at the first damage — the caller either truncates (torn tail) or
/// fails (mid-log corruption under `Fail`).
///
/// `inject` enables the `durability.wal.read` fault point; read-only
/// inspection passes `false` so `verify`/`dump` never see injected damage.
fn scan_records(first_lsn: Lsn, bytes: &[u8], skip_damage: bool, inject: bool) -> SegScan {
    let start = SEGMENT_HEADER_BYTES as usize;
    let mut scan = SegScan {
        records: Vec::new(),
        consumed: 0,
        good_bytes: start as u64,
        first_damage: None,
        skipped: 0,
        abandoned: false,
    };
    let mut o = start;
    while o < bytes.len() {
        // Classify this record; `Ok` carries the payload length, `Err`
        // carries (frameable-skip length, description).
        let outcome: Result<usize, (Option<usize>, String)> = (|| {
            let injected = if inject {
                faults::hit(FAULT_READ, 0)
            } else {
                None
            };
            if matches!(injected, Some(FaultAction::Fail)) {
                return Err((None, "injected short read".to_string()));
            }
            if bytes.len() - o < RECORD_HEADER_BYTES as usize {
                return Err((None, "torn record header".to_string()));
            }
            let len = u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
            let crc = u32::from_le_bytes(bytes[o + 4..o + 8].try_into().unwrap());
            if len > MAX_RECORD_BYTES {
                return Err((None, format!("implausible record length {len}")));
            }
            let len = len as usize;
            let body_start = o + RECORD_HEADER_BYTES as usize;
            if bytes.len() - body_start < len {
                return Err((None, "torn record payload".to_string()));
            }
            let payload = &bytes[body_start..body_start + len];
            let crc_ok = if matches!(injected, Some(FaultAction::Corrupt)) && !payload.is_empty() {
                let mut flipped = payload.to_vec();
                flipped[0] ^= 1;
                codec::crc32c(&flipped) == crc
            } else {
                codec::crc32c(payload) == crc
            };
            if !crc_ok {
                return Err((Some(len), "crc mismatch".to_string()));
            }
            match WalOp::decode(payload) {
                Ok(op) => {
                    scan.records.push((first_lsn + scan.consumed, op));
                    Ok(len)
                }
                Err(e) => Err((Some(len), format!("undecodable op: {e}"))),
            }
        })();
        match outcome {
            Ok(len) => {
                scan.consumed += 1;
                o += RECORD_HEADER_BYTES as usize + len;
                scan.good_bytes = o as u64;
            }
            Err((frameable, detail)) => {
                if scan.first_damage.is_none() {
                    scan.first_damage = Some((o as u64, detail));
                }
                if !skip_damage {
                    break;
                }
                match frameable {
                    Some(len) => {
                        // The length prefix is intact: step over the damaged
                        // record. It still consumed an LSN when written.
                        scan.consumed += 1;
                        scan.skipped += 1;
                        o += RECORD_HEADER_BYTES as usize + len;
                    }
                    None => {
                        scan.abandoned = true;
                        break;
                    }
                }
            }
        }
    }
    scan
}

/// Reads and validates a segment header, returning its stored first LSN.
pub(crate) fn check_header(bytes: &[u8], expected_lsn: Lsn) -> Result<(), String> {
    if bytes.len() < SEGMENT_HEADER_BYTES as usize {
        return Err("torn segment header".to_string());
    }
    if &bytes[0..8] != MAGIC {
        return Err("bad segment magic".to_string());
    }
    let stored = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    if stored != expected_lsn {
        return Err(format!(
            "segment header LSN {stored} disagrees with file name {expected_lsn}"
        ));
    }
    Ok(())
}

/// Files of one kind in a WAL directory, as `(lsn, path)` pairs.
pub(crate) type LsnFiles = Vec<(Lsn, PathBuf)>;

/// Lists a WAL directory: segments ascending by first LSN, snapshots
/// descending by covered LSN. `*.tmp` leftovers from interrupted snapshot
/// writes are removed.
pub(crate) fn list_dir(dir: &Path) -> Result<(LsnFiles, LsnFiles), WalError> {
    let mut segments = Vec::new();
    let mut snapshots = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| WalError::io("read dir", dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| WalError::io("read dir", dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.ends_with(".tmp") {
            let _ = fs::remove_file(entry.path());
        } else if let Some(lsn) = parse_segment_name(name) {
            segments.push((lsn, entry.path()));
        } else if let Some(lsn) = snapshot::parse_file_name(name) {
            snapshots.push((lsn, entry.path()));
        }
    }
    segments.sort_by_key(|(lsn, _)| *lsn);
    snapshots.sort_by_key(|(lsn, _)| std::cmp::Reverse(*lsn));
    Ok((segments, snapshots))
}

// ---- the WAL itself -------------------------------------------------------

/// A segmented, checksummed, crash-recoverable write-ahead log.
///
/// See the [module docs](self) for the on-disk layout and recovery
/// semantics. A `Wal` is single-owner: the broker serialises appends behind
/// its own locks, so the WAL itself does no locking.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    config: DurabilityConfig,
    file: File,
    file_path: PathBuf,
    segment_first_lsn: Lsn,
    segment_records: u64,
    segment_bytes: u64,
    next_lsn: Lsn,
    unsynced: u32,
    ops_since_snapshot: u64,
    last_snapshot_lsn: Option<Lsn>,
    poisoned: bool,
}

impl Wal {
    /// Opens (creating if absent) the WAL in `dir`, recovering whatever
    /// state survives on disk. Returns the writable log positioned after
    /// the last valid record, plus the recovered snapshot + op tail.
    pub fn open(
        dir: impl AsRef<Path>,
        config: DurabilityConfig,
    ) -> Result<(Wal, Recovered), WalError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| WalError::io("create dir", dir.clone(), e))?;
        let (mut segments, snapshots) = list_dir(&dir)?;
        let mut report = RecoveryReport::default();

        // A last segment whose header never made it to disk is a crash
        // during rotation: the file holds nothing anchorable. Remove it and
        // let the previous segment be the tail.
        while let Some((lsn, path)) = segments.last() {
            let meta = fs::metadata(path).map_err(|e| WalError::io("stat", path, e))?;
            if meta.len() >= SEGMENT_HEADER_BYTES {
                let mut head = [0u8; SEGMENT_HEADER_BYTES as usize];
                let bytes = fs::read(path).map_err(|e| WalError::io("read", path, e))?;
                head.copy_from_slice(&bytes[..SEGMENT_HEADER_BYTES as usize]);
                if check_header(&head, *lsn).is_ok() {
                    break;
                }
            }
            fs::remove_file(path).map_err(|e| WalError::io("remove", path, e))?;
            report.segments_removed += 1;
            segments.pop();
        }

        // Newest decodable snapshot. An older snapshot can never cover a
        // position a newer one misses (compaction only deletes below the
        // newest), so one coverage check suffices.
        let mut chosen: Option<(Lsn, SnapshotState)> = None;
        for (lsn, path) in &snapshots {
            match snapshot::read(path)? {
                Some((stored, state)) if stored == *lsn => {
                    chosen = Some((*lsn, state));
                    break;
                }
                _ => report.snapshots_discarded += 1,
            }
        }
        let replay_from = chosen.as_ref().map(|(l, _)| *l).unwrap_or(0);
        let covered = match segments.first() {
            None => true,
            Some((first, _)) => *first <= replay_from,
        };
        if !covered {
            match config.corruption {
                CorruptionPolicy::Fail => {
                    return Err(WalError::Corrupt {
                        segment: segments[0].0,
                        offset: 0,
                        detail: format!(
                            "log starts at LSN {} but no usable snapshot covers LSNs below it",
                            segments[0].0
                        ),
                    });
                }
                CorruptionPolicy::Skip => {
                    // Best effort: accept the gap and replay what exists.
                }
            }
        }

        // Scan segments from the one containing `replay_from`.
        let start_idx = segments
            .iter()
            .rposition(|(first, _)| *first <= replay_from)
            .unwrap_or(0);
        let mut ops: Vec<(Lsn, WalOp)> = Vec::new();
        let mut tail: Option<(PathBuf, Lsn, u64, u64)> = None; // path, first_lsn, records, bytes
        for (i, (first_lsn, path)) in segments.iter().enumerate().skip(start_idx) {
            let is_last = i == segments.len() - 1;
            let bytes = fs::read(path).map_err(|e| WalError::io("read", path, e))?;
            report.segments_scanned += 1;
            if let Err(detail) = check_header(&bytes, *first_lsn) {
                // The last segment's header was validated above; this is a
                // non-last segment, i.e. mid-log damage.
                match config.corruption {
                    CorruptionPolicy::Fail => {
                        return Err(WalError::Corrupt {
                            segment: *first_lsn,
                            offset: 0,
                            detail,
                        });
                    }
                    CorruptionPolicy::Skip => {
                        report.bytes_abandoned += bytes.len() as u64;
                        continue;
                    }
                }
            }
            let skip_damage = !is_last && config.corruption == CorruptionPolicy::Skip;
            let scan = scan_records(*first_lsn, &bytes, skip_damage, true);
            report.records_skipped += scan.skipped;
            if scan.abandoned {
                report.bytes_abandoned += bytes.len() as u64 - scan.good_bytes;
            }
            if is_last {
                if let Some((offset, _)) = scan.first_damage {
                    // Torn tail: physically truncate back to the last valid
                    // record so the next append starts on a clean boundary.
                    let f = OpenOptions::new()
                        .write(true)
                        .open(path)
                        .map_err(|e| WalError::io("truncate", path, e))?;
                    f.set_len(scan.good_bytes)
                        .map_err(|e| WalError::io("truncate", path, e))?;
                    f.sync_data()
                        .map_err(|e| WalError::io("truncate", path, e))?;
                    report.torn_tail_truncated = Some(bytes.len() as u64 - scan.good_bytes);
                    RECOVERY_TORN.inc();
                    let _ = offset;
                }
                tail = Some((path.clone(), *first_lsn, scan.consumed, scan.good_bytes));
            } else if scan.first_damage.is_some() && config.corruption == CorruptionPolicy::Fail {
                let (offset, detail) = scan.first_damage.unwrap();
                return Err(WalError::Corrupt {
                    segment: *first_lsn,
                    offset,
                    detail,
                });
            }
            ops.extend(
                scan.records
                    .into_iter()
                    .filter(|(lsn, _)| *lsn >= replay_from),
            );
        }

        report.records_replayed = ops.len() as u64;
        RECOVERY_RECORDS.add(ops.len() as u64);
        report.snapshot_lsn = chosen.as_ref().map(|(l, _)| *l);

        // Open (or create) the active segment for appending.
        let fsync = !matches!(config.fsync, FsyncPolicy::OsManaged);
        let (file, file_path, segment_first_lsn, segment_records, segment_bytes, next_lsn) =
            match tail {
                // Reuse the tail only if appending there continues the LSN
                // sequence at or past the snapshot. A crash can persist a
                // snapshot at LSN s while losing the post-snapshot segment
                // (and part of the pre-snapshot one); the surviving tail then
                // ends below s, and appending to it would mint LSNs the
                // snapshot already claims to cover — the next recovery would
                // drop those acknowledged ops as already-applied.
                Some((path, first, records, good_bytes)) if first + records >= replay_from => {
                    let mut f = OpenOptions::new()
                        .read(true)
                        .write(true)
                        .open(&path)
                        .map_err(|e| WalError::io("open segment", path.clone(), e))?;
                    f.seek(SeekFrom::End(0))
                        .map_err(|e| WalError::io("open segment", path.clone(), e))?;
                    (f, path, first, records, good_bytes, first + records)
                }
                _ => {
                    let first = replay_from;
                    let (f, path) = create_segment(&dir, first, fsync)?;
                    (f, path, first, 0, SEGMENT_HEADER_BYTES, first)
                }
            };

        let wal = Wal {
            dir,
            config,
            file,
            file_path,
            segment_first_lsn,
            segment_records,
            segment_bytes,
            next_lsn,
            unsynced: 0,
            ops_since_snapshot: 0,
            last_snapshot_lsn: report.snapshot_lsn,
            poisoned: false,
        };
        let recovered = Recovered {
            snapshot: chosen.map(|(_, s)| s),
            ops,
            report,
        };
        Ok((wal, recovered))
    }

    /// Appends one op, durably per the configured [`FsyncPolicy`], and
    /// returns its LSN. On an I/O failure the WAL poisons itself — the
    /// on-disk tail may be torn, so further appends are refused until the
    /// log is reopened (which truncates the tear).
    pub fn append(&mut self, op: &WalOp) -> Result<Lsn, WalError> {
        if self.poisoned {
            return Err(WalError::Poisoned);
        }
        if self.segment_bytes >= self.config.segment_bytes && self.segment_records > 0 {
            self.rotate()?;
        }
        let mut rec = op.to_record();
        match faults::hit(FAULT_APPEND, 0) {
            Some(FaultAction::Fail) => {
                // A torn write: half the record reaches the disk, then the
                // device errors. Recovery must truncate this back off.
                let torn = rec.len() / 2;
                let _ = self.file.write_all(&rec[..torn]);
                self.poisoned = true;
                return Err(WalError::injected("append", self.file_path.clone()));
            }
            Some(FaultAction::Corrupt) => {
                // Silent on-disk corruption: the write "succeeds" but a
                // payload bit flips. CRC catches it at the next recovery.
                let body = RECORD_HEADER_BYTES as usize;
                if rec.len() > body {
                    rec[body] ^= 1;
                }
            }
            Some(FaultAction::Delay(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            Some(FaultAction::Panic) => panic!("injected fault: wal append"),
            None => {}
        }
        if let Err(e) = self.file.write_all(&rec) {
            self.poisoned = true;
            return Err(WalError::io("append", self.file_path.clone(), e));
        }
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        self.segment_records += 1;
        self.segment_bytes += rec.len() as u64;
        self.ops_since_snapshot += 1;
        WAL_APPENDS.inc();
        WAL_BYTES.add(rec.len() as u64);
        if op.is_session_op() {
            WAL_SESSION_RECORDS.inc();
        }
        match self.config.fsync {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::OsManaged => {}
        }
        Ok(lsn)
    }

    /// Forces appended records to stable storage (regardless of policy).
    pub fn sync(&mut self) -> Result<(), WalError> {
        if let Some(FaultAction::Fail) = faults::hit(FAULT_FSYNC, 0) {
            return Err(WalError::injected("fsync", self.file_path.clone()));
        }
        self.file
            .sync_data()
            .map_err(|e| WalError::io("fsync", self.file_path.clone(), e))?;
        self.unsynced = 0;
        WAL_FSYNCS.inc();
        Ok(())
    }

    /// Closes the current segment and opens a fresh one at the next LSN.
    fn rotate(&mut self) -> Result<(), WalError> {
        if let Some(FaultAction::Fail) = faults::hit(FAULT_ROTATE, 0) {
            return Err(WalError::injected(
                "rotate",
                self.dir.join(segment_file_name(self.next_lsn)),
            ));
        }
        let fsync = !matches!(self.config.fsync, FsyncPolicy::OsManaged);
        if fsync {
            self.sync()?;
        }
        let (file, path) = create_segment(&self.dir, self.next_lsn, fsync)?;
        self.file = file;
        self.file_path = path;
        self.segment_first_lsn = self.next_lsn;
        self.segment_records = 0;
        self.segment_bytes = SEGMENT_HEADER_BYTES;
        WAL_ROTATIONS.inc();
        Ok(())
    }

    /// Writes a snapshot of `state` covering everything appended so far,
    /// rotates to a fresh segment, and compacts the segments (and older
    /// snapshots) the new snapshot supersedes. Returns the snapshot path.
    pub fn snapshot(&mut self, state: &SnapshotState) -> Result<PathBuf, WalError> {
        if self.poisoned {
            return Err(WalError::Poisoned);
        }
        let fsync = !matches!(self.config.fsync, FsyncPolicy::OsManaged);
        if fsync {
            // The snapshot claims to cover every LSN below `next_lsn`; make
            // sure those records are themselves durable first.
            self.sync()?;
        }
        let path = snapshot::write(&self.dir, self.next_lsn, state, fsync)?;
        self.last_snapshot_lsn = Some(self.next_lsn);
        self.ops_since_snapshot = 0;
        if self.segment_records > 0 {
            self.rotate()?;
        }
        self.compact()?;
        Ok(path)
    }

    /// Deletes segments fully covered by the latest snapshot, and snapshots
    /// older than it. Returns the number of files removed.
    pub fn compact(&mut self) -> Result<usize, WalError> {
        let Some(snap_lsn) = self.last_snapshot_lsn else {
            return Ok(0);
        };
        let (segments, snapshots) = list_dir(&self.dir)?;
        let mut removed = 0;
        // A segment's records end where the next segment begins; the last
        // (active) segment is never removed.
        for pair in segments.windows(2) {
            let (_, path) = &pair[0];
            let (next_first, _) = &pair[1];
            if *next_first <= snap_lsn {
                fs::remove_file(path).map_err(|e| WalError::io("compact", path, e))?;
                removed += 1;
            }
        }
        for (lsn, path) in &snapshots {
            if *lsn < snap_lsn {
                fs::remove_file(path).map_err(|e| WalError::io("compact", path, e))?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// The LSN the next appended record will receive.
    pub fn next_lsn(&self) -> Lsn {
        self.next_lsn
    }

    /// Records appended since the last snapshot (or open).
    pub fn ops_since_snapshot(&self) -> u64 {
        self.ops_since_snapshot
    }

    /// `true` when the configured automatic-snapshot threshold has been
    /// reached.
    pub fn wants_snapshot(&self) -> bool {
        self.config.snapshot_every_ops > 0
            && self.ops_since_snapshot >= self.config.snapshot_every_ops
    }

    /// `true` once an append has failed and the log refuses further writes.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// The directory this WAL lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configuration the WAL was opened with.
    pub fn config(&self) -> &DurabilityConfig {
        &self.config
    }

    // ---- offline inspection (read-only: no truncation, no faults) --------

    /// Verifies every segment and snapshot in `dir` without modifying
    /// anything, reporting per-file damage.
    pub fn verify(dir: impl AsRef<Path>) -> Result<WalReport, WalError> {
        let dir = dir.as_ref();
        let (segments, snapshots) = list_dir(dir)?;
        let mut report = WalReport::default();
        for (first_lsn, path) in &segments {
            let bytes = fs::read(path).map_err(|e| WalError::io("read", path, e))?;
            let file = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            let damage = match check_header(&bytes, *first_lsn) {
                Err(d) => Some((SEGMENT_HEADER_BYTES.min(bytes.len() as u64), d)),
                Ok(()) => {
                    let scan = scan_records(*first_lsn, &bytes, false, false);
                    scan.first_damage
                }
            };
            let records = if damage.is_some() {
                scan_records(*first_lsn, &bytes, true, false).records.len() as u64
            } else {
                scan_records(*first_lsn, &bytes, false, false).consumed
            };
            report.segments.push(SegmentReport {
                file,
                first_lsn: *first_lsn,
                records,
                bytes: bytes.len() as u64,
                damage: damage.map(|(off, d)| format!("{d} at byte {off}")),
            });
        }
        for (lsn, path) in &snapshots {
            let file = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            let parsed = snapshot::read(path)?;
            let valid = matches!(&parsed, Some((stored, _)) if *stored == *lsn);
            report.snapshots.push(SnapshotReport {
                file,
                lsn: *lsn,
                valid,
                subs: parsed.map(|(_, s)| s.subs.len() as u64).unwrap_or(0),
            });
        }
        Ok(report)
    }

    /// Dumps every decodable record in `dir`, in LSN order, without
    /// modifying anything. Damaged records are stepped over where the
    /// framing allows (lenient by design — this is a forensics tool).
    pub fn dump(dir: impl AsRef<Path>) -> Result<Vec<(Lsn, WalOp)>, WalError> {
        let dir = dir.as_ref();
        let (segments, _) = list_dir(dir)?;
        let mut ops = Vec::new();
        for (first_lsn, path) in &segments {
            let bytes = fs::read(path).map_err(|e| WalError::io("read", path, e))?;
            if check_header(&bytes, *first_lsn).is_err() {
                continue;
            }
            ops.extend(scan_records(*first_lsn, &bytes, true, false).records);
        }
        Ok(ops)
    }
}

/// Creates a fresh segment file with its header written (and optionally
/// fsynced).
fn create_segment(dir: &Path, first_lsn: Lsn, fsync: bool) -> Result<(File, PathBuf), WalError> {
    let path = dir.join(segment_file_name(first_lsn));
    let mut f = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(true)
        .open(&path)
        .map_err(|e| WalError::io("create segment", path.clone(), e))?;
    let mut header = Vec::with_capacity(SEGMENT_HEADER_BYTES as usize);
    header.extend_from_slice(MAGIC);
    codec::put_u64(&mut header, first_lsn);
    f.write_all(&header)
        .map_err(|e| WalError::io("create segment", path.clone(), e))?;
    if fsync {
        f.sync_data()
            .map_err(|e| WalError::io("create segment", path.clone(), e))?;
        // Make the new directory entry durable too (best-effort).
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok((f, path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_types::time::LogicalTime;
    use pubsub_types::SubscriptionId;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fp-wal-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ops(n: u64) -> Vec<WalOp> {
        (0..n)
            .map(|i| match i % 3 {
                0 => WalOp::InternAttr(format!("attr-{i}")),
                1 => WalOp::AdvanceTo(LogicalTime(i)),
                _ => WalOp::Unsubscribe(SubscriptionId(i as u32)),
            })
            .collect()
    }

    #[test]
    fn append_reopen_round_trips() {
        let dir = temp_dir("round-trip");
        let cfg = DurabilityConfig::default();
        let (mut wal, rec) = Wal::open(&dir, cfg).unwrap();
        assert!(rec.ops.is_empty());
        let written = ops(10);
        for (i, op) in written.iter().enumerate() {
            assert_eq!(wal.append(op).unwrap(), i as Lsn);
        }
        drop(wal);
        let (wal, rec) = Wal::open(&dir, cfg).unwrap();
        assert_eq!(wal.next_lsn(), 10);
        let replayed: Vec<WalOp> = rec.ops.into_iter().map(|(_, op)| op).collect();
        assert_eq!(replayed, written);
        assert_eq!(rec.report.torn_tail_truncated, None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_splits_segments_and_replay_spans_them() {
        let dir = temp_dir("rotate");
        let cfg = DurabilityConfig {
            segment_bytes: 64, // tiny: force many rotations
            fsync: FsyncPolicy::OsManaged,
            ..Default::default()
        };
        let (mut wal, _) = Wal::open(&dir, cfg).unwrap();
        let written = ops(40);
        for op in &written {
            wal.append(op).unwrap();
        }
        drop(wal);
        let (segments, _) = list_dir(&dir).unwrap();
        assert!(segments.len() > 2, "expected several segments");
        let (_, rec) = Wal::open(&dir, cfg).unwrap();
        let replayed: Vec<WalOp> = rec.ops.into_iter().map(|(_, op)| op).collect();
        assert_eq!(replayed, written);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_to_record_boundary() {
        let dir = temp_dir("torn");
        let cfg = DurabilityConfig {
            fsync: FsyncPolicy::OsManaged,
            ..Default::default()
        };
        let (mut wal, _) = Wal::open(&dir, cfg).unwrap();
        for op in ops(5) {
            wal.append(&op).unwrap();
        }
        let path = wal.file_path.clone();
        drop(wal);
        // Tear mid-record: cut 3 bytes off the file.
        let len = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        let (wal, rec) = Wal::open(&dir, cfg).unwrap();
        assert_eq!(rec.ops.len(), 4, "last record was torn away");
        assert_eq!(wal.next_lsn(), 4);
        assert!(rec.report.torn_tail_truncated.is_some());
        // The file is physically clean again: a fresh reopen sees no tear.
        let (_, rec2) = Wal::open(&dir, cfg).unwrap();
        assert_eq!(rec2.report.torn_tail_truncated, None);
        assert_eq!(rec2.ops.len(), 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_compacts_and_replay_resumes_from_it() {
        let dir = temp_dir("snap");
        let cfg = DurabilityConfig {
            segment_bytes: 64,
            fsync: FsyncPolicy::OsManaged,
            ..Default::default()
        };
        let (mut wal, _) = Wal::open(&dir, cfg).unwrap();
        for op in ops(20) {
            wal.append(&op).unwrap();
        }
        let state = SnapshotState {
            now: LogicalTime(19),
            high_water_id: 7,
            ..Default::default()
        };
        wal.snapshot(&state).unwrap();
        let tail = ops(3);
        for op in &tail {
            wal.append(op).unwrap();
        }
        drop(wal);
        let (segments, snapshots) = list_dir(&dir).unwrap();
        assert_eq!(snapshots.len(), 1);
        assert_eq!(segments.len(), 1, "compaction retired covered segments");
        let (_, rec) = Wal::open(&dir, cfg).unwrap();
        assert_eq!(rec.snapshot.as_ref().unwrap(), &state);
        assert_eq!(rec.report.snapshot_lsn, Some(20));
        let replayed: Vec<WalOp> = rec.ops.into_iter().map(|(_, op)| op).collect();
        assert_eq!(replayed, tail, "only the post-snapshot tail replays");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_full_replay() {
        let dir = temp_dir("snap-fallback");
        let cfg = DurabilityConfig {
            fsync: FsyncPolicy::OsManaged,
            ..Default::default()
        };
        let (mut wal, _) = Wal::open(&dir, cfg).unwrap();
        let written = ops(6);
        for op in &written {
            wal.append(op).unwrap();
        }
        // Write a snapshot but keep the segments (no compaction damage):
        // corrupt the snapshot afterwards, so recovery must fall back.
        let state = SnapshotState::default();
        let snap_path = snapshot::write(&dir, 6, &state, false).unwrap();
        drop(wal);
        let mut bytes = fs::read(&snap_path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&snap_path, &bytes).unwrap();
        let (_, rec) = Wal::open(&dir, cfg).unwrap();
        assert_eq!(rec.snapshot, None);
        assert_eq!(rec.report.snapshots_discarded, 1);
        assert_eq!(rec.ops.len(), written.len(), "full replay from scratch");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_log_corruption_fails_or_skips_per_policy() {
        let dir = temp_dir("mid-corrupt");
        let base = DurabilityConfig {
            segment_bytes: 64,
            fsync: FsyncPolicy::OsManaged,
            ..Default::default()
        };
        let (mut wal, _) = Wal::open(&dir, base).unwrap();
        let written = ops(40);
        for op in &written {
            wal.append(op).unwrap();
        }
        drop(wal);
        let (segments, _) = list_dir(&dir).unwrap();
        assert!(segments.len() > 2);
        // Flip one payload byte in the FIRST segment (mid-log, not a tail).
        let (_, first_path) = &segments[0];
        let mut bytes = fs::read(first_path).unwrap();
        let off = SEGMENT_HEADER_BYTES as usize + RECORD_HEADER_BYTES as usize;
        bytes[off] ^= 1;
        fs::write(first_path, &bytes).unwrap();

        let fail = Wal::open(&dir, base);
        assert!(
            matches!(fail, Err(WalError::Corrupt { .. })),
            "Fail policy refuses: {fail:?}"
        );

        let skip_cfg = DurabilityConfig {
            corruption: CorruptionPolicy::Skip,
            ..base
        };
        let (_, rec) = Wal::open(&dir, skip_cfg).unwrap();
        assert_eq!(rec.report.records_skipped, 1);
        assert_eq!(rec.ops.len(), written.len() - 1, "one record dropped");
        // LSNs stay aligned: the skipped record's LSN is simply absent.
        assert!(rec
            .ops
            .iter()
            .all(|(lsn, op)| written[*lsn as usize] == *op));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_rotation_header_is_removed() {
        let dir = temp_dir("torn-rotation");
        let cfg = DurabilityConfig {
            fsync: FsyncPolicy::OsManaged,
            ..Default::default()
        };
        let (mut wal, _) = Wal::open(&dir, cfg).unwrap();
        for op in ops(4) {
            wal.append(&op).unwrap();
        }
        drop(wal);
        // Simulate a crash between creating the next segment and writing
        // its header: an anchorless 5-byte file.
        fs::write(dir.join(segment_file_name(4)), b"FPWA\0").unwrap();
        let (wal, rec) = Wal::open(&dir, cfg).unwrap();
        assert_eq!(rec.report.segments_removed, 1);
        assert_eq!(rec.ops.len(), 4);
        assert_eq!(wal.next_lsn(), 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_and_dump_are_read_only() {
        let dir = temp_dir("verify");
        let cfg = DurabilityConfig {
            fsync: FsyncPolicy::OsManaged,
            ..Default::default()
        };
        let (mut wal, _) = Wal::open(&dir, cfg).unwrap();
        let written = ops(5);
        for op in &written {
            wal.append(op).unwrap();
        }
        let path = wal.file_path.clone();
        drop(wal);
        let report = Wal::verify(&dir).unwrap();
        assert!(report.healthy());
        assert_eq!(report.total_records(), 5);
        assert_eq!(Wal::dump(&dir).unwrap().len(), 5, "dump sees every record");
        // Tear the tail: verify reports damage but must NOT truncate.
        let len = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 2).unwrap();
        drop(f);
        let report = Wal::verify(&dir).unwrap();
        assert!(!report.healthy());
        assert_eq!(report.total_records(), 4);
        assert_eq!(
            fs::metadata(&path).unwrap().len(),
            len - 2,
            "verify left the torn file untouched"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn poisoned_wal_refuses_appends_and_snapshot() {
        let dir = temp_dir("poison");
        let cfg = DurabilityConfig {
            fsync: FsyncPolicy::OsManaged,
            ..Default::default()
        };
        let (mut wal, _) = Wal::open(&dir, cfg).unwrap();
        wal.append(&WalOp::AdvanceTo(LogicalTime(1))).unwrap();
        wal.poisoned = true;
        assert_eq!(
            wal.append(&WalOp::AdvanceTo(LogicalTime(2))),
            Err(WalError::Poisoned)
        );
        assert_eq!(
            wal.snapshot(&SnapshotState::default()),
            Err(WalError::Poisoned)
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
