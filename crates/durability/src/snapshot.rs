//! Point-in-time snapshots of full broker state.
//!
//! A snapshot is the checkpoint half of the WAL + checkpoint pair: it
//! captures everything replay would otherwise have to reconstruct from the
//! beginning of the log, so recovery cost is bounded by the log tail written
//! since the last snapshot, and [`crate::Wal::compact`] can retire the
//! segments underneath it.
//!
//! The captured state is exactly what the broker cannot re-derive from an
//! empty start:
//!
//! * the **vocabulary** (attribute names and string values, in id order, so
//!   re-interning reproduces identical `AttrId`s/`Symbol`s),
//! * the **logical clock**,
//! * the **id high-water mark** — one past the largest subscription id ever
//!   assigned, including ids unsubscribed or expired before the snapshot.
//!   Without it, a recovered broker could re-issue a retired id and a
//!   pre-crash acknowledgement would suddenly name a different subscription,
//! * the **live subscriptions** with their validity intervals (the expiry
//!   heap and quarantine state are re-derived from these on restore).
//!
//! On disk a snapshot is a single file, `snap-<lsn>.snap`, where `<lsn>` is
//! the log position the snapshot covers (replay resumes there). The file is
//! written to a temp name, fsynced, then renamed into place — readers never
//! observe a half-written snapshot, and a crash mid-write leaves only a
//! `.tmp` that recovery ignores. The payload carries its own CRC32C, so a
//! damaged snapshot is detected and recovery falls back to the next older
//! one (or to a full log replay).

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use pubsub_types::codec::{self, Reader};
use pubsub_types::error::CodecError;
use pubsub_types::faults::{self, FaultAction};
use pubsub_types::metrics::Counter;
use pubsub_types::time::{LogicalTime, Validity};
use pubsub_types::{Subscription, SubscriptionId};

use crate::record::Lsn;
use crate::{WalError, FAULT_SNAPSHOT};

/// Snapshots successfully written (`snapshot.written`).
pub static SNAPSHOT_WRITTEN: Counter = Counter::new("snapshot.written");

const MAGIC: &[u8; 8] = b"FPSNAP1\0";
const HEADER_BYTES: usize = 8 + 8 + 4 + 4; // magic, lsn, payload_len, crc

/// A point-in-time capture of full broker state.
///
/// This is the durability layer's view: plain vectors, no engine structures.
/// The broker produces one by walking its interners and live-subscription
/// table, and consumes one by re-interning and re-inserting in order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SnapshotState {
    /// The logical clock at capture time.
    pub now: LogicalTime,
    /// One past the largest raw subscription id ever assigned (0 = none).
    pub high_water_id: u32,
    /// Attribute names in `AttrId` order.
    pub attrs: Vec<String>,
    /// String values in `Symbol` order.
    pub strings: Vec<String>,
    /// Live subscriptions with their ids and validities.
    pub subs: Vec<(SubscriptionId, Subscription, Validity)>,
    /// One past the largest session token ever issued (0 = none). Like
    /// `high_water_id`, it guards against re-issuing a retired token after
    /// recovery.
    pub next_token: u64,
    /// Durable sessions: `(token, bound subscription ids)` in token order.
    pub sessions: Vec<(u64, Vec<u32>)>,
}

impl SnapshotState {
    /// Encodes the snapshot payload (everything after the file header).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        codec::put_time(&mut out, self.now);
        codec::put_u32(&mut out, self.high_water_id);
        codec::put_u32(&mut out, self.attrs.len() as u32);
        for a in &self.attrs {
            codec::put_str(&mut out, a);
        }
        codec::put_u32(&mut out, self.strings.len() as u32);
        for s in &self.strings {
            codec::put_str(&mut out, s);
        }
        codec::put_u32(&mut out, self.subs.len() as u32);
        for (id, sub, validity) in &self.subs {
            codec::put_subscription_id(&mut out, *id);
            codec::put_validity(&mut out, *validity);
            codec::put_subscription(&mut out, sub);
        }
        codec::put_u64(&mut out, self.next_token);
        codec::put_u32(&mut out, self.sessions.len() as u32);
        for (token, ids) in &self.sessions {
            codec::put_u64(&mut out, *token);
            codec::put_u32(&mut out, ids.len() as u32);
            for id in ids {
                codec::put_u32(&mut out, *id);
            }
        }
        out
    }

    /// Decodes a snapshot payload. Rejects trailing garbage.
    pub fn decode(payload: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(payload);
        let now = codec::get_time(&mut r)?;
        let high_water_id = r.u32()?;
        let mut state = SnapshotState {
            now,
            high_water_id,
            ..Default::default()
        };
        let n_attrs = guarded_count(&mut r)?;
        for _ in 0..n_attrs {
            state.attrs.push(r.str()?.to_string());
        }
        let n_strings = guarded_count(&mut r)?;
        for _ in 0..n_strings {
            state.strings.push(r.str()?.to_string());
        }
        let n_subs = guarded_count(&mut r)?;
        for _ in 0..n_subs {
            let id = codec::get_subscription_id(&mut r)?;
            let validity = codec::get_validity(&mut r)?;
            let sub = codec::get_subscription(&mut r)?;
            state.subs.push((id, sub, validity));
        }
        // The session section was appended to the format later; a payload
        // ending here is a pre-session snapshot and decodes with an empty
        // table, so existing `--durable` directories stay readable.
        if !r.is_empty() {
            state.next_token = r.u64()?;
            let n_sessions = guarded_count(&mut r)?;
            for _ in 0..n_sessions {
                let token = r.u64()?;
                let n_ids = guarded_count(&mut r)?;
                let mut ids = Vec::with_capacity(n_ids);
                for _ in 0..n_ids {
                    ids.push(r.u32()?);
                }
                state.sessions.push((token, ids));
            }
        }
        if !r.is_empty() {
            return Err(CodecError::BadTag {
                what: "snapshot trailing bytes",
                tag: 0,
            });
        }
        Ok(state)
    }
}

/// Reads an element count, bounding it by the bytes actually present so a
/// corrupt count cannot drive a huge allocation.
fn guarded_count(r: &mut Reader<'_>) -> Result<usize, CodecError> {
    let n = r.u32()? as usize;
    if n > r.remaining() {
        return Err(CodecError::ShortRead {
            needed: n - r.remaining(),
        });
    }
    Ok(n)
}

/// The file name of a snapshot covering `lsn`.
pub(crate) fn file_name(lsn: Lsn) -> String {
    format!("snap-{lsn:020}.snap")
}

/// Parses a snapshot file name back to its LSN.
pub(crate) fn parse_file_name(name: &str) -> Option<Lsn> {
    let digits = name.strip_prefix("snap-")?.strip_suffix(".snap")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Writes `state` as the snapshot covering `lsn`, atomically (temp file +
/// fsync + rename). Returns the final path.
pub(crate) fn write(
    dir: &Path,
    lsn: Lsn,
    state: &SnapshotState,
    fsync: bool,
) -> Result<PathBuf, WalError> {
    let final_path = dir.join(file_name(lsn));
    if let Some(FaultAction::Fail) = faults::hit(FAULT_SNAPSHOT, 0) {
        return Err(WalError::injected("snapshot", final_path));
    }

    let payload = state.encode();
    let mut bytes = Vec::with_capacity(HEADER_BYTES + payload.len());
    bytes.extend_from_slice(MAGIC);
    codec::put_u64(&mut bytes, lsn);
    codec::put_u32(&mut bytes, payload.len() as u32);
    codec::put_u32(&mut bytes, codec::crc32c(&payload));
    bytes.extend_from_slice(&payload);

    let tmp_path = dir.join(format!("{}.tmp", file_name(lsn)));
    let mut tmp = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp_path)
        .map_err(|e| WalError::io("snapshot", tmp_path.clone(), e))?;
    tmp.write_all(&bytes)
        .map_err(|e| WalError::io("snapshot", tmp_path.clone(), e))?;
    if fsync {
        tmp.sync_data()
            .map_err(|e| WalError::io("snapshot", tmp_path.clone(), e))?;
    }
    drop(tmp);
    fs::rename(&tmp_path, &final_path)
        .map_err(|e| WalError::io("snapshot", final_path.clone(), e))?;
    if fsync {
        // Make the rename itself durable. Directory fsync is best-effort:
        // some filesystems refuse it, and the rename is already atomic.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    SNAPSHOT_WRITTEN.inc();
    Ok(final_path)
}

/// Reads and validates a snapshot file. `Ok(None)` means the file is damaged
/// or not a snapshot (callers fall back to an older one); `Err` is a real
/// I/O failure.
pub(crate) fn read(path: &Path) -> Result<Option<(Lsn, SnapshotState)>, WalError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(WalError::io("read snapshot", path, e)),
    };
    Ok(validate_bytes(&bytes))
}

/// Validates raw snapshot-file bytes (magic, framing, CRC, decode),
/// returning the covered LSN and decoded state when intact. Used both for
/// reading local files and for vetting snapshots received over a
/// replication stream before installing them.
pub(crate) fn validate_bytes(bytes: &[u8]) -> Option<(Lsn, SnapshotState)> {
    if bytes.len() < HEADER_BYTES || &bytes[0..8] != MAGIC {
        return None;
    }
    let mut r = Reader::new(&bytes[8..HEADER_BYTES]);
    let lsn = r.u64().expect("sized above");
    let payload_len = r.u32().expect("sized above") as usize;
    let crc = r.u32().expect("sized above");
    let payload = &bytes[HEADER_BYTES..];
    if payload.len() != payload_len || codec::crc32c(payload) != crc {
        return None;
    }
    SnapshotState::decode(payload)
        .ok()
        .map(|state| (lsn, state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_types::{AttrId, Operator, SubscriptionBuilder, Symbol, Value};

    fn sample() -> SnapshotState {
        let sub = SubscriptionBuilder::default()
            .eq(AttrId(0), Value::Str(Symbol(0)))
            .with(AttrId(1), Operator::Le, 9i64)
            .build()
            .unwrap();
        SnapshotState {
            now: LogicalTime(42),
            high_water_id: 17,
            attrs: vec!["exchange".into(), "price".into()],
            strings: vec!["nyse".into()],
            subs: vec![(SubscriptionId(3), sub, Validity::until(LogicalTime(99)))],
            next_token: 5,
            sessions: vec![(2, vec![3]), (4, vec![])],
        }
    }

    /// A payload in the pre-session format: everything up to and including
    /// the subscription section, nothing after.
    fn legacy_payload(s: &SnapshotState) -> Vec<u8> {
        let mut out = Vec::new();
        codec::put_time(&mut out, s.now);
        codec::put_u32(&mut out, s.high_water_id);
        codec::put_u32(&mut out, s.attrs.len() as u32);
        for a in &s.attrs {
            codec::put_str(&mut out, a);
        }
        codec::put_u32(&mut out, s.strings.len() as u32);
        for v in &s.strings {
            codec::put_str(&mut out, v);
        }
        codec::put_u32(&mut out, s.subs.len() as u32);
        for (id, sub, validity) in &s.subs {
            codec::put_subscription_id(&mut out, *id);
            codec::put_validity(&mut out, *validity);
            codec::put_subscription(&mut out, sub);
        }
        out
    }

    #[test]
    fn pre_session_snapshots_decode_with_an_empty_table() {
        let mut s = sample();
        s.next_token = 0;
        s.sessions.clear();
        let decoded = SnapshotState::decode(&legacy_payload(&s)).unwrap();
        assert_eq!(decoded, s, "legacy payload must decode to empty sessions");
    }

    #[test]
    fn truncated_session_sections_are_rejected() {
        let full = sample().encode();
        let legacy_len = legacy_payload(&sample()).len();
        // Any strict prefix that cuts inside the session section is corrupt,
        // not silently "legacy".
        for cut in legacy_len + 1..full.len() {
            assert!(
                SnapshotState::decode(&full[..cut]).is_err(),
                "cut at {cut} decoded"
            );
        }
    }

    #[test]
    fn payload_round_trips() {
        let s = sample();
        assert_eq!(SnapshotState::decode(&s.encode()).unwrap(), s);
        let empty = SnapshotState::default();
        assert_eq!(SnapshotState::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = sample().encode();
        payload.push(7);
        assert!(SnapshotState::decode(&payload).is_err());
    }

    #[test]
    fn file_names_round_trip_and_sort() {
        assert_eq!(parse_file_name(&file_name(0)), Some(0));
        assert_eq!(parse_file_name(&file_name(123_456)), Some(123_456));
        assert_eq!(parse_file_name("snap-12.snap"), None, "unpadded");
        assert_eq!(parse_file_name("wal-00000000000000000000.log"), None);
        assert!(file_name(9) < file_name(10), "zero-padding keeps order");
    }

    #[test]
    fn write_read_round_trips_and_damage_is_detected() {
        let dir = std::env::temp_dir().join(format!("fp-snap-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let s = sample();
        let path = write(&dir, 5, &s, true).unwrap();
        assert_eq!(read(&path).unwrap(), Some((5, s)));

        // Flip one payload byte: the snapshot must read as damaged, not Err.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(read(&path).unwrap(), None);

        // A truncated header is damage too.
        fs::write(&path, &bytes[..10]).unwrap();
        assert_eq!(read(&path).unwrap(), None);

        fs::remove_dir_all(&dir).unwrap();
    }
}
