//! Logical WAL records and their physical framing.
//!
//! A [`WalOp`] is one broker-state mutation. The set is deliberately small:
//! everything the broker's in-memory engines hold is a deterministic function
//! of this op stream, including the vocabulary — attribute and string-symbol
//! ids are assigned in interning order, so the ops that intern names must be
//! logged too, or replay would assign different ids than the original run.
//!
//! On disk each op is framed as
//!
//! ```text
//! [u32 payload_len (LE)] [u32 crc32c(payload) (LE)] [payload]
//! ```
//!
//! and identified by its **LSN** — its zero-based index in the op stream
//! across all segments. LSNs are dense: every append (including ops later
//! undone, like an unsubscribe) consumes one.

use pubsub_types::codec::{self, Reader};
use pubsub_types::error::CodecError;
use pubsub_types::time::{LogicalTime, Validity};
use pubsub_types::{Subscription, SubscriptionId};

/// A log sequence number: the zero-based index of a record in the op stream.
pub type Lsn = u64;

/// Bytes of framing overhead per record (`len` + `crc`).
pub const RECORD_HEADER_BYTES: u64 = 8;

/// Upper bound on a record payload. Nothing legitimate comes close (the
/// largest op is a subscription of a few dozen predicates); the bound exists
/// so a corrupt length prefix cannot make the recovery scanner allocate or
/// skip gigabytes.
pub const MAX_RECORD_BYTES: u32 = 16 * 1024 * 1024;

const TAG_INTERN_ATTR: u8 = 1;
const TAG_INTERN_STRING: u8 = 2;
const TAG_SUBSCRIBE: u8 = 3;
const TAG_UNSUBSCRIBE: u8 = 4;
const TAG_ADVANCE_TO: u8 = 5;
const TAG_SESSION_CREATE: u8 = 6;
const TAG_SESSION_BIND: u8 = 7;
const TAG_SESSION_RELEASE: u8 = 8;
const TAG_SESSION_REAP: u8 = 9;

/// One durable broker-state mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// An attribute name was interned; replay assigns the next `AttrId`.
    InternAttr(String),
    /// A string value was interned; replay assigns the next `Symbol`.
    InternString(String),
    /// A subscription was installed under an explicitly-recorded id (ids are
    /// chosen by the broker's lane arithmetic, not by replay order).
    Subscribe {
        /// The id the broker assigned.
        id: SubscriptionId,
        /// The canonicalised subscription.
        sub: Subscription,
        /// Its validity interval.
        validity: Validity,
    },
    /// A subscription was removed.
    Unsubscribe(SubscriptionId),
    /// The logical clock advanced (expiring subscriptions as it went; the
    /// expiries themselves are *not* logged — replay re-derives them from the
    /// validities, keeping the log append-rate independent of churn).
    AdvanceTo(LogicalTime),
    /// A client session was created under a broker-issued resume token.
    SessionCreate {
        /// The token the broker assigned (never 0 — that value means "new
        /// session" on the wire).
        token: u64,
    },
    /// A subscription was bound to a session. Logged *before* the paired
    /// `Subscribe` record so a crash between the two leaves at worst a
    /// dangling binding (repaired at recovery), never an ownerless live
    /// subscription.
    SessionBind {
        /// The owning session's token.
        token: u64,
        /// The bound subscription id.
        id: SubscriptionId,
    },
    /// A subscription was unbound from its session. Logged *after* the
    /// paired `Unsubscribe` record, for the same torn-crash reason.
    SessionRelease {
        /// The owning session's token.
        token: u64,
        /// The released subscription id.
        id: SubscriptionId,
    },
    /// A session was reaped. The unsubscribes of its bound subscriptions are
    /// *not* logged — replay re-derives them from the session table, exactly
    /// as `AdvanceTo` re-derives expiries from validities.
    SessionReap {
        /// The reaped session's token.
        token: u64,
    },
}

impl WalOp {
    /// Encodes this op's payload (tag byte + body) into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalOp::InternAttr(name) => {
                out.push(TAG_INTERN_ATTR);
                codec::put_str(out, name);
            }
            WalOp::InternString(name) => {
                out.push(TAG_INTERN_STRING);
                codec::put_str(out, name);
            }
            WalOp::Subscribe { id, sub, validity } => {
                out.push(TAG_SUBSCRIBE);
                codec::put_subscription_id(out, *id);
                codec::put_validity(out, *validity);
                codec::put_subscription(out, sub);
            }
            WalOp::Unsubscribe(id) => {
                out.push(TAG_UNSUBSCRIBE);
                codec::put_subscription_id(out, *id);
            }
            WalOp::AdvanceTo(t) => {
                out.push(TAG_ADVANCE_TO);
                codec::put_time(out, *t);
            }
            WalOp::SessionCreate { token } => {
                out.push(TAG_SESSION_CREATE);
                codec::put_u64(out, *token);
            }
            WalOp::SessionBind { token, id } => {
                out.push(TAG_SESSION_BIND);
                codec::put_u64(out, *token);
                codec::put_subscription_id(out, *id);
            }
            WalOp::SessionRelease { token, id } => {
                out.push(TAG_SESSION_RELEASE);
                codec::put_u64(out, *token);
                codec::put_subscription_id(out, *id);
            }
            WalOp::SessionReap { token } => {
                out.push(TAG_SESSION_REAP);
                codec::put_u64(out, *token);
            }
        }
    }

    /// Whether this op touches the session table (used for the
    /// `wal.session_records` counter).
    pub fn is_session_op(&self) -> bool {
        matches!(
            self,
            WalOp::SessionCreate { .. }
                | WalOp::SessionBind { .. }
                | WalOp::SessionRelease { .. }
                | WalOp::SessionReap { .. }
        )
    }

    /// Decodes an op payload produced by [`WalOp::encode`]. Rejects trailing
    /// garbage — a record must be exactly one op.
    pub fn decode(payload: &[u8]) -> Result<WalOp, CodecError> {
        let mut r = Reader::new(payload);
        let op = match r.u8()? {
            TAG_INTERN_ATTR => WalOp::InternAttr(r.str()?.to_string()),
            TAG_INTERN_STRING => WalOp::InternString(r.str()?.to_string()),
            TAG_SUBSCRIBE => {
                let id = codec::get_subscription_id(&mut r)?;
                let validity = codec::get_validity(&mut r)?;
                let sub = codec::get_subscription(&mut r)?;
                WalOp::Subscribe { id, sub, validity }
            }
            TAG_UNSUBSCRIBE => WalOp::Unsubscribe(codec::get_subscription_id(&mut r)?),
            TAG_ADVANCE_TO => WalOp::AdvanceTo(codec::get_time(&mut r)?),
            TAG_SESSION_CREATE => WalOp::SessionCreate { token: r.u64()? },
            TAG_SESSION_BIND => WalOp::SessionBind {
                token: r.u64()?,
                id: codec::get_subscription_id(&mut r)?,
            },
            TAG_SESSION_RELEASE => WalOp::SessionRelease {
                token: r.u64()?,
                id: codec::get_subscription_id(&mut r)?,
            },
            TAG_SESSION_REAP => WalOp::SessionReap { token: r.u64()? },
            tag => {
                return Err(CodecError::BadTag {
                    what: "wal op",
                    tag,
                })
            }
        };
        if !r.is_empty() {
            return Err(CodecError::BadTag {
                what: "wal op trailing bytes",
                tag: 0,
            });
        }
        Ok(op)
    }

    /// Frames this op as a complete on-disk record (`len`, `crc`, payload).
    pub fn to_record(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        self.encode(&mut payload);
        let mut rec = Vec::with_capacity(payload.len() + RECORD_HEADER_BYTES as usize);
        codec::put_u32(&mut rec, payload.len() as u32);
        codec::put_u32(&mut rec, codec::crc32c(&payload));
        rec.extend_from_slice(&payload);
        rec
    }
}

impl std::fmt::Display for WalOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalOp::InternAttr(name) => write!(f, "intern-attr {name:?}"),
            WalOp::InternString(name) => write!(f, "intern-str {name:?}"),
            WalOp::Subscribe { id, sub, validity } => {
                write!(
                    f,
                    "subscribe s{} ({} predicates, {})",
                    id.0,
                    sub.predicates().len(),
                    match validity.until {
                        Some(u) => format!("until {u}"),
                        None => "forever".to_string(),
                    }
                )
            }
            WalOp::Unsubscribe(id) => write!(f, "unsubscribe s{}", id.0),
            WalOp::AdvanceTo(t) => write!(f, "advance-to {t}"),
            WalOp::SessionCreate { token } => write!(f, "session-create t{token}"),
            WalOp::SessionBind { token, id } => write!(f, "session-bind t{token} s{}", id.0),
            WalOp::SessionRelease { token, id } => {
                write!(f, "session-release t{token} s{}", id.0)
            }
            WalOp::SessionReap { token } => write!(f, "session-reap t{token}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_types::{AttrId, Operator, SubscriptionBuilder, Symbol, Value};

    fn sample_ops() -> Vec<WalOp> {
        let sub = SubscriptionBuilder::default()
            .eq(AttrId(0), Value::Str(Symbol(1)))
            .with(AttrId(2), Operator::Gt, 5i64)
            .build()
            .unwrap();
        vec![
            WalOp::InternAttr("exchange".to_string()),
            WalOp::InternString("nyse".to_string()),
            WalOp::Subscribe {
                id: SubscriptionId(7),
                sub,
                validity: Validity::until(LogicalTime(30)),
            },
            WalOp::Unsubscribe(SubscriptionId(7)),
            WalOp::AdvanceTo(LogicalTime(31)),
            WalOp::SessionCreate { token: 1 },
            WalOp::SessionBind {
                token: 1,
                id: SubscriptionId(7),
            },
            WalOp::SessionRelease {
                token: 1,
                id: SubscriptionId(7),
            },
            WalOp::SessionReap { token: u64::MAX },
        ]
    }

    #[test]
    fn ops_round_trip() {
        for op in sample_ops() {
            let mut payload = Vec::new();
            op.encode(&mut payload);
            assert_eq!(WalOp::decode(&payload).unwrap(), op);
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = Vec::new();
        WalOp::AdvanceTo(LogicalTime(1)).encode(&mut payload);
        payload.push(0);
        assert!(WalOp::decode(&payload).is_err());
    }

    #[test]
    fn truncated_session_records_are_rejected() {
        let ops = [
            WalOp::SessionCreate { token: 0x0102_0304 },
            WalOp::SessionBind {
                token: 9,
                id: SubscriptionId(3),
            },
            WalOp::SessionRelease {
                token: 9,
                id: SubscriptionId(3),
            },
            WalOp::SessionReap { token: 9 },
        ];
        for op in ops {
            let mut payload = Vec::new();
            op.encode(&mut payload);
            // Every strict prefix must fail as a typed error, never panic.
            for cut in 0..payload.len() {
                assert!(
                    WalOp::decode(&payload[..cut]).is_err(),
                    "prefix {cut} of {op} decoded"
                );
            }
            // Trailing garbage is rejected too.
            payload.push(0xAB);
            assert!(WalOp::decode(&payload).is_err(), "{op} took trailing bytes");
        }
    }

    #[test]
    fn session_ops_are_classified() {
        assert!(WalOp::SessionCreate { token: 1 }.is_session_op());
        assert!(WalOp::SessionReap { token: 1 }.is_session_op());
        assert!(!WalOp::AdvanceTo(LogicalTime(1)).is_session_op());
        assert!(!WalOp::Unsubscribe(SubscriptionId(0)).is_session_op());
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert!(matches!(
            WalOp::decode(&[99, 0, 0]),
            Err(CodecError::BadTag { what: "wal op", .. })
        ));
    }

    #[test]
    fn record_framing_checks_out() {
        for op in sample_ops() {
            let rec = op.to_record();
            let len = u32::from_le_bytes(rec[0..4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(rec[4..8].try_into().unwrap());
            assert_eq!(len, rec.len() - RECORD_HEADER_BYTES as usize);
            assert_eq!(crc, pubsub_types::codec::crc32c(&rec[8..]));
            assert_eq!(WalOp::decode(&rec[8..]).unwrap(), op);
        }
    }

    #[test]
    fn any_single_bit_flip_in_a_record_is_detected() {
        let rec = sample_ops()[2].to_record();
        for byte in 8..rec.len() {
            let mut torn = rec.clone();
            torn[byte] ^= 0x10;
            let crc = u32::from_le_bytes(torn[4..8].try_into().unwrap());
            assert_ne!(pubsub_types::codec::crc32c(&torn[8..]), crc);
        }
    }
}
