//! WAL shipping: reading a live log as a replication stream.
//!
//! PR 5's segmented WAL is already a replication stream in waiting — every
//! broker mutation is a framed, checksummed, densely-LSN'd record. This
//! module adds the read side a **leader** needs to serve that stream and a
//! **follower** needs to consume it:
//!
//! * [`read_tail`] — one poll of a WAL directory from a follower's position.
//!   Returns raw record payloads (byte-faithful: the follower re-frames them
//!   with the same `len`+`crc32c` framing, so both logs stay bit-comparable),
//!   or one of three non-data outcomes: *caught up* (at the live end),
//!   *incomplete* (a record at the live tail is mid-write — **retry, not
//!   corruption**), or *snapshot required* (the position predates the oldest
//!   retained segment; compaction already retired those records).
//! * [`snapshot_for_catchup`] / [`install_snapshot`] — whole-file snapshot
//!   transfer for the catch-up path. The leader serves its newest valid
//!   snapshot's raw bytes; the follower validates them (magic, CRC, LSN
//!   agreement) and installs atomically (temp + rename), after which a
//!   normal [`crate::Wal::open`] recovers from it and the record stream
//!   resumes at the snapshot LSN.
//! * [`mark_follower`] / [`is_follower_dir`] / [`clear_follower_mark`] — a
//!   marker file distinguishing a follower's WAL directory from a leader's,
//!   so `serve --follow` can refuse to interleave an unrelated history, and
//!   promotion can turn the directory back into a plain durable one.
//!
//! # Torn tail vs. live tail
//!
//! [`crate::Wal::open`] treats damage in the last segment as a torn tail and
//! truncates it — correct at recovery time, when no writer is alive. A
//! replication tailer reads *while the leader appends*: a record that ends
//! past the bytes currently on disk is most likely an append in flight, and
//! truncating (or calling it corruption) would be wrong. [`read_tail`]
//! therefore classifies short reads at the end of the **last** segment as
//! [`TailChunk::Incomplete`]; everything else (CRC mismatch, implausible
//! length, damage behind later data) stays an error.

use std::fs;
use std::path::{Path, PathBuf};

use pubsub_types::codec;
use pubsub_types::metrics::Counter;

use crate::record::{Lsn, MAX_RECORD_BYTES, RECORD_HEADER_BYTES};
use crate::snapshot;
use crate::wal::{self, SEGMENT_HEADER_BYTES};
use crate::WalError;

/// Record payloads served to followers (`repl.records_served`).
pub static REPL_RECORDS_SERVED: Counter = Counter::new("repl.records_served");
/// Catch-up snapshots served to followers (`repl.snapshots_served`).
pub static REPL_SNAPSHOTS_SERVED: Counter = Counter::new("repl.snapshots_served");
/// Polls that found an incomplete record at the live tail
/// (`repl.tail_incomplete`).
pub static REPL_TAIL_INCOMPLETE: Counter = Counter::new("repl.tail_incomplete");

/// Name of the marker file that brands a WAL directory as follower-owned.
pub const FOLLOWER_MARKER: &str = "FOLLOWER";

/// One poll of a leader's log from a follower's position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailChunk {
    /// Raw record payloads with dense LSNs starting at `first_lsn`. The
    /// payloads are exactly what [`crate::WalOp::encode`] produced (no
    /// framing); `segment_first` is the first LSN of the segment the batch
    /// starts in, so a serving loop can announce segment boundaries.
    Records {
        /// First LSN of the segment containing the first payload.
        segment_first: Lsn,
        /// LSN of the first payload; the rest follow densely.
        first_lsn: Lsn,
        /// Record payloads in LSN order.
        payloads: Vec<Vec<u8>>,
    },
    /// The position is at the live end of the log: nothing to ship.
    CaughtUp {
        /// The LSN the next appended record will receive.
        next_lsn: Lsn,
    },
    /// A record at the live tail is incomplete — the leader is mid-append
    /// (or crashed mid-append and has not yet recovered). Retry; this is
    /// not corruption.
    Incomplete {
        /// LSN of the record observed incomplete (everything below it was
        /// already shipped or shippable).
        next_lsn: Lsn,
    },
    /// `from` predates the oldest retained segment: compaction already
    /// retired those records, so the follower must install the snapshot
    /// covering `snapshot_lsn` first and resume streaming from there.
    SnapshotRequired {
        /// LSN the newest usable snapshot covers.
        snapshot_lsn: Lsn,
    },
}

/// Damage found while scanning raw records.
struct RawDamage {
    /// `true` when the record simply ran off the end of the file (a write
    /// in flight); `false` for real damage (CRC mismatch, implausible
    /// length).
    torn: bool,
    offset: u64,
    detail: String,
}

/// Reads one batch of raw record payloads from the log in `dir`, starting
/// at LSN `from`, up to roughly `max_bytes` of payload (at least one record
/// is returned if available, regardless of size).
///
/// Read-only: never truncates, never consults fault injection (the network
/// layer has its own replication fault points). Concurrent rotation or
/// compaction by the owning writer is tolerated — a segment that vanishes
/// between listing and reading reports as [`TailChunk::Incomplete`] so the
/// caller re-polls against the new directory state.
pub fn read_tail(
    dir: impl AsRef<Path>,
    from: Lsn,
    max_bytes: usize,
) -> Result<TailChunk, WalError> {
    let dir = dir.as_ref();
    let (segments, snapshots) = wal::list_dir(dir)?;
    let newest_snapshot = || -> Result<Option<Lsn>, WalError> {
        for (lsn, path) in &snapshots {
            if matches!(snapshot::read(path)?, Some((stored, _)) if stored == *lsn) {
                return Ok(Some(*lsn));
            }
        }
        Ok(None)
    };

    let Some((oldest, _)) = segments.first() else {
        // No segments at all: an empty directory, or snapshot-only.
        return Ok(match newest_snapshot()? {
            Some(snap) if snap > from => TailChunk::SnapshotRequired { snapshot_lsn: snap },
            Some(snap) => TailChunk::CaughtUp {
                next_lsn: from.max(snap),
            },
            None => TailChunk::CaughtUp { next_lsn: from },
        });
    };
    if from < *oldest {
        // The records below `oldest` are gone; only a snapshot can bridge.
        return match newest_snapshot()? {
            Some(snap) if snap > from => Ok(TailChunk::SnapshotRequired { snapshot_lsn: snap }),
            _ => Err(WalError::Corrupt {
                segment: *oldest,
                offset: 0,
                detail: format!(
                    "cannot serve LSN {from}: oldest retained segment starts at {oldest} \
                     and no usable snapshot covers the gap"
                ),
            }),
        };
    }

    let start_idx = segments
        .iter()
        .rposition(|(first, _)| *first <= from)
        .unwrap_or(0);
    let mut payloads: Vec<Vec<u8>> = Vec::new();
    let mut segment_first = *oldest;
    // One past the last complete record seen — the true log end as far as
    // the scan got (NOT clamped to `from`: a diverged follower asking past
    // the end must learn the real position).
    let mut next = segments[start_idx].0;
    let mut taken = 0usize;
    let mut tail_incomplete = false;
    'segments: for (i, (seg_first, path)) in segments.iter().enumerate().skip(start_idx) {
        let is_last = i == segments.len() - 1;
        let bytes = match fs::read(path) {
            Ok(b) => b,
            // Compacted (or rotated away) under us: the directory changed;
            // let the caller re-poll against the new listing.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                tail_incomplete = true;
                break;
            }
            Err(e) => return Err(WalError::io("read", path, e)),
        };
        if bytes.len() < SEGMENT_HEADER_BYTES as usize {
            // A header mid-write during rotation reads as a prefix.
            if is_last {
                tail_incomplete = true;
                break;
            }
            return Err(WalError::Corrupt {
                segment: *seg_first,
                offset: bytes.len() as u64,
                detail: "torn segment header behind later data".to_string(),
            });
        }
        if let Err(detail) = wal::check_header(&bytes, *seg_first) {
            return Err(WalError::Corrupt {
                segment: *seg_first,
                offset: 0,
                detail,
            });
        }
        let mut o = SEGMENT_HEADER_BYTES as usize;
        let mut lsn = *seg_first;
        while o < bytes.len() {
            let outcome: Result<&[u8], RawDamage> = (|| {
                if bytes.len() - o < RECORD_HEADER_BYTES as usize {
                    return Err(RawDamage {
                        torn: true,
                        offset: o as u64,
                        detail: "torn record header".to_string(),
                    });
                }
                let len = u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
                let crc = u32::from_le_bytes(bytes[o + 4..o + 8].try_into().unwrap());
                if len > MAX_RECORD_BYTES {
                    return Err(RawDamage {
                        torn: false,
                        offset: o as u64,
                        detail: format!("implausible record length {len}"),
                    });
                }
                let body = o + RECORD_HEADER_BYTES as usize;
                if bytes.len() - body < len as usize {
                    return Err(RawDamage {
                        torn: true,
                        offset: o as u64,
                        detail: "torn record payload".to_string(),
                    });
                }
                let payload = &bytes[body..body + len as usize];
                if codec::crc32c(payload) != crc {
                    return Err(RawDamage {
                        torn: false,
                        offset: o as u64,
                        detail: "crc mismatch".to_string(),
                    });
                }
                Ok(payload)
            })();
            match outcome {
                Ok(payload) => {
                    if lsn >= from {
                        if !payloads.is_empty() && taken + payload.len() > max_bytes {
                            break 'segments;
                        }
                        if payloads.is_empty() {
                            segment_first = *seg_first;
                        }
                        taken += payload.len();
                        payloads.push(payload.to_vec());
                    }
                    o += RECORD_HEADER_BYTES as usize + payload.len();
                    lsn += 1;
                    next = lsn;
                }
                Err(damage) if damage.torn && is_last => {
                    tail_incomplete = true;
                    break 'segments;
                }
                Err(damage) => {
                    return Err(WalError::Corrupt {
                        segment: *seg_first,
                        offset: damage.offset,
                        detail: damage.detail,
                    });
                }
            }
        }
    }

    if !payloads.is_empty() {
        REPL_RECORDS_SERVED.add(payloads.len() as u64);
        let first_lsn = next - payloads.len() as u64;
        return Ok(TailChunk::Records {
            segment_first,
            first_lsn,
            payloads,
        });
    }
    if tail_incomplete {
        REPL_TAIL_INCOMPLETE.inc();
        return Ok(TailChunk::Incomplete { next_lsn: next });
    }
    Ok(TailChunk::CaughtUp { next_lsn: next })
}

/// Returns the newest usable snapshot in `dir` as `(covered_lsn, raw file
/// bytes)`, for serving to a catching-up follower. `None` when the
/// directory holds no valid snapshot.
pub fn snapshot_for_catchup(dir: impl AsRef<Path>) -> Result<Option<(Lsn, Vec<u8>)>, WalError> {
    let (_, snapshots) = wal::list_dir(dir.as_ref())?;
    for (lsn, path) in &snapshots {
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(WalError::io("read snapshot", path, e)),
        };
        if matches!(snapshot::validate_bytes(&bytes), Some((stored, _)) if stored == *lsn) {
            REPL_SNAPSHOTS_SERVED.inc();
            return Ok(Some((*lsn, bytes)));
        }
    }
    Ok(None)
}

/// Validates `bytes` as a snapshot file covering exactly `lsn` and installs
/// it atomically into `dir` (temp + rename), returning the decoded state.
///
/// The follower side of snapshot catch-up: after installation a normal
/// [`crate::Wal::open`] over `dir` recovers from this snapshot and appends
/// resume at `lsn`. Existing older segments are left in place — recovery
/// replays nothing below the newest snapshot, and the next compaction
/// retires them.
pub fn install_snapshot(
    dir: impl AsRef<Path>,
    lsn: Lsn,
    bytes: &[u8],
) -> Result<crate::SnapshotState, WalError> {
    let dir = dir.as_ref();
    let Some((stored, state)) = snapshot::validate_bytes(bytes) else {
        return Err(WalError::Corrupt {
            segment: lsn,
            offset: 0,
            detail: "snapshot transfer damaged in flight (bad magic, CRC, or payload)".to_string(),
        });
    };
    if stored != lsn {
        return Err(WalError::Corrupt {
            segment: lsn,
            offset: 0,
            detail: format!("snapshot transfer covers LSN {stored}, expected {lsn}"),
        });
    }
    fs::create_dir_all(dir).map_err(|e| WalError::io("create dir", dir, e))?;
    let final_path = dir.join(snapshot::file_name(lsn));
    let tmp_path = dir.join(format!("{}.tmp", snapshot::file_name(lsn)));
    fs::write(&tmp_path, bytes).map_err(|e| WalError::io("install snapshot", &tmp_path, e))?;
    fs::rename(&tmp_path, &final_path)
        .map_err(|e| WalError::io("install snapshot", &final_path, e))?;
    Ok(state)
}

/// Brands `dir` as a follower-owned WAL directory (idempotent).
pub fn mark_follower(dir: impl AsRef<Path>) -> Result<(), WalError> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir).map_err(|e| WalError::io("create dir", dir, e))?;
    let path = dir.join(FOLLOWER_MARKER);
    fs::write(
        &path,
        b"replica of a remote leader; do not open as a plain durable broker\n",
    )
    .map_err(|e| WalError::io("mark follower", path.clone(), e))
}

/// Removes the follower brand (promotion: the directory becomes a plain
/// durable leader's). Idempotent.
pub fn clear_follower_mark(dir: impl AsRef<Path>) -> Result<(), WalError> {
    let path = dir.as_ref().join(FOLLOWER_MARKER);
    match fs::remove_file(&path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(WalError::io("clear follower mark", path, e)),
    }
}

/// `true` when `dir` carries the follower marker.
pub fn is_follower_dir(dir: impl AsRef<Path>) -> bool {
    dir.as_ref().join(FOLLOWER_MARKER).is_file()
}

/// `true` when `dir` holds replayable history — any record or any snapshot.
/// A directory with only an empty segment (a durable broker opened and
/// closed without writing) has no history.
pub fn dir_has_history(dir: impl AsRef<Path>) -> Result<bool, WalError> {
    let dir = dir.as_ref();
    if !dir.exists() {
        return Ok(false);
    }
    let (segments, snapshots) = wal::list_dir(dir)?;
    if !snapshots.is_empty() {
        return Ok(true);
    }
    for (_, path) in &segments {
        let meta = fs::metadata(path).map_err(|e| WalError::io("stat", path, e))?;
        if meta.len() > SEGMENT_HEADER_BYTES {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Returns `path`s of every segment file in `dir`, ascending by first LSN.
/// Test/tooling helper for building file-level chaos sweeps.
pub fn segment_paths(dir: impl AsRef<Path>) -> Result<Vec<PathBuf>, WalError> {
    let (segments, _) = wal::list_dir(dir.as_ref())?;
    Ok(segments.into_iter().map(|(_, p)| p).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::WalOp;
    use crate::{DurabilityConfig, FsyncPolicy, SnapshotState, Wal};
    use pubsub_types::time::LogicalTime;
    use pubsub_types::SubscriptionId;
    use std::fs::OpenOptions;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fp-repl-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn cfg() -> DurabilityConfig {
        DurabilityConfig {
            fsync: FsyncPolicy::OsManaged,
            ..Default::default()
        }
    }

    fn ops(n: u64) -> Vec<WalOp> {
        (0..n)
            .map(|i| match i % 3 {
                0 => WalOp::InternAttr(format!("attr-{i}")),
                1 => WalOp::AdvanceTo(LogicalTime(i)),
                _ => WalOp::Unsubscribe(SubscriptionId(i as u32)),
            })
            .collect()
    }

    fn payload_of(op: &WalOp) -> Vec<u8> {
        let mut p = Vec::new();
        op.encode(&mut p);
        p
    }

    #[test]
    fn tail_streams_all_records_and_catches_up() {
        let dir = temp_dir("stream");
        let (mut wal, _) = Wal::open(&dir, cfg()).unwrap();
        let written = ops(7);
        for op in &written {
            wal.append(op).unwrap();
        }
        match read_tail(&dir, 0, usize::MAX).unwrap() {
            TailChunk::Records {
                segment_first,
                first_lsn,
                payloads,
            } => {
                assert_eq!(segment_first, 0);
                assert_eq!(first_lsn, 0);
                let want: Vec<Vec<u8>> = written.iter().map(payload_of).collect();
                assert_eq!(payloads, want, "raw payloads are byte-faithful");
            }
            other => panic!("expected records, got {other:?}"),
        }
        assert_eq!(
            read_tail(&dir, 7, usize::MAX).unwrap(),
            TailChunk::CaughtUp { next_lsn: 7 }
        );
        // Mid-stream position.
        match read_tail(&dir, 4, usize::MAX).unwrap() {
            TailChunk::Records {
                first_lsn,
                payloads,
                ..
            } => {
                assert_eq!(first_lsn, 4);
                assert_eq!(payloads.len(), 3);
            }
            other => panic!("{other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tail_spans_segments_and_honours_budget() {
        let dir = temp_dir("budget");
        let config = DurabilityConfig {
            segment_bytes: 64,
            ..cfg()
        };
        let (mut wal, _) = Wal::open(&dir, config).unwrap();
        for op in ops(30) {
            wal.append(&op).unwrap();
        }
        assert!(segment_paths(&dir).unwrap().len() > 2);
        // A tiny budget still makes progress, one batch at a time.
        let mut pos = 0u64;
        let mut total = 0usize;
        loop {
            match read_tail(&dir, pos, 16).unwrap() {
                TailChunk::Records {
                    first_lsn,
                    payloads,
                    ..
                } => {
                    assert_eq!(first_lsn, pos, "batches are dense and in order");
                    total += payloads.len();
                    pos += payloads.len() as u64;
                }
                TailChunk::CaughtUp { next_lsn } => {
                    assert_eq!(next_lsn, 30);
                    break;
                }
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(total, 30);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_reads_as_incomplete_not_corruption() {
        let dir = temp_dir("torn");
        let (mut wal, _) = Wal::open(&dir, cfg()).unwrap();
        for op in ops(3) {
            wal.append(&op).unwrap();
        }
        drop(wal);
        let path = segment_paths(&dir).unwrap().pop().unwrap();
        let len = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 2).unwrap();
        drop(f);
        // From the torn record's LSN: incomplete, retry.
        assert_eq!(
            read_tail(&dir, 2, usize::MAX).unwrap(),
            TailChunk::Incomplete { next_lsn: 2 }
        );
        // From earlier: the complete prefix ships, the tear waits.
        match read_tail(&dir, 0, usize::MAX).unwrap() {
            TailChunk::Records { payloads, .. } => assert_eq!(payloads.len(), 2),
            other => panic!("{other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crc_damage_is_an_error_not_a_retry() {
        let dir = temp_dir("crc");
        let (mut wal, _) = Wal::open(&dir, cfg()).unwrap();
        for op in ops(3) {
            wal.append(&op).unwrap();
        }
        drop(wal);
        let path = segment_paths(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let off = SEGMENT_HEADER_BYTES as usize + RECORD_HEADER_BYTES as usize;
        bytes[off] ^= 1;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_tail(&dir, 0, usize::MAX),
            Err(WalError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compacted_history_demands_a_snapshot_and_install_round_trips() {
        let dir = temp_dir("catchup");
        let config = DurabilityConfig {
            segment_bytes: 64,
            ..cfg()
        };
        let (mut wal, _) = Wal::open(&dir, config).unwrap();
        for op in ops(20) {
            wal.append(&op).unwrap();
        }
        let state = SnapshotState {
            now: LogicalTime(19),
            high_water_id: 5,
            ..Default::default()
        };
        wal.snapshot(&state).unwrap();
        // A follower at LSN 0 is behind the compaction horizon.
        assert_eq!(
            read_tail(&dir, 0, usize::MAX).unwrap(),
            TailChunk::SnapshotRequired { snapshot_lsn: 20 }
        );
        let (lsn, bytes) = snapshot_for_catchup(&dir).unwrap().expect("snapshot");
        assert_eq!(lsn, 20);

        // Install on the follower side; a fresh Wal::open resumes at 20.
        let fdir = temp_dir("catchup-follower");
        let installed = install_snapshot(&fdir, lsn, &bytes).unwrap();
        assert_eq!(installed, state);
        let (fwal, rec) = Wal::open(&fdir, config).unwrap();
        assert_eq!(fwal.next_lsn(), 20);
        assert_eq!(rec.snapshot.as_ref(), Some(&state));

        // Damaged transfers and LSN disagreement are refused.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        assert!(install_snapshot(&fdir, lsn, &bad).is_err());
        assert!(install_snapshot(&fdir, lsn + 1, &bytes).is_err());
        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&fdir).unwrap();
    }

    #[test]
    fn follower_marker_and_history_probes() {
        let dir = temp_dir("marker");
        assert!(!is_follower_dir(&dir));
        assert!(!dir_has_history(&dir).unwrap());
        mark_follower(&dir).unwrap();
        assert!(is_follower_dir(&dir));
        // An empty open-and-close leaves no history.
        let (wal, _) = Wal::open(&dir, cfg()).unwrap();
        drop(wal);
        assert!(!dir_has_history(&dir).unwrap());
        let (mut wal, _) = Wal::open(&dir, cfg()).unwrap();
        wal.append(&WalOp::AdvanceTo(LogicalTime(1))).unwrap();
        drop(wal);
        assert!(dir_has_history(&dir).unwrap());
        clear_follower_mark(&dir).unwrap();
        clear_follower_mark(&dir).unwrap();
        assert!(!is_follower_dir(&dir));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn follower_ahead_of_log_reports_true_next() {
        let dir = temp_dir("ahead");
        let (mut wal, _) = Wal::open(&dir, cfg()).unwrap();
        for op in ops(2) {
            wal.append(&op).unwrap();
        }
        // A diverged follower asking for LSN 9 learns the real end is 2.
        assert_eq!(
            read_tail(&dir, 9, usize::MAX).unwrap(),
            TailChunk::CaughtUp { next_lsn: 2 }
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
