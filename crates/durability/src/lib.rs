//! Durable broker state: a segmented write-ahead log plus point-in-time
//! snapshots, with corruption-tolerant crash recovery.
//!
//! The paper's broker (§1) is a long-lived process whose subscription set is
//! the durable asset; this crate makes that state survive `kill -9` at any
//! byte boundary. The model is the classic WAL + checkpoint pair:
//!
//! * **Log** ([`Wal`]) — every mutation of broker state (interning a name,
//!   subscribing, unsubscribing, advancing the logical clock) is encoded as
//!   a [`WalOp`] and appended as a length-prefixed, CRC32C-checksummed
//!   record *before* it is applied in memory. Records live in numbered
//!   segment files (`wal-<first-lsn>.log`) that rotate at a configurable
//!   size; the fsync cadence is a [`FsyncPolicy`].
//! * **Snapshot** ([`SnapshotState`]) — a point-in-time capture of the full
//!   broker state (vocabulary, logical clock, id high-water mark, live
//!   subscriptions with validities), written atomically via a temp file +
//!   rename. A snapshot at LSN `n` makes every record below `n` redundant;
//!   [`Wal::compact`] retires the segments it covers.
//! * **Recovery** ([`Wal::open`]) — picks the newest decodable snapshot,
//!   replays the surviving log tail, and handles damage without panicking:
//!   a torn tail (crash mid-append) is truncated away; corruption *behind*
//!   valid data follows the configured [`CorruptionPolicy`] (fail recovery,
//!   or skip the damaged record and keep what decodes).
//!
//! The invariant the crash-recovery tests pin down: truncating the log at
//! any byte recovers exactly the state produced by the longest prefix of
//! operations whose records fully survive — never a partial operation,
//! never a resurrected unsubscribed/expired id.
//!
//! Fault injection ([`pubsub_types::faults`], `--features faults`) hooks the
//! I/O sites by name — [`FAULT_APPEND`], [`FAULT_FSYNC`], [`FAULT_ROTATE`],
//! [`FAULT_READ`], [`FAULT_SNAPSHOT`] — so tests can force torn writes,
//! short reads, bit flips, and fsync/rotation failures deterministically.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod record;
pub mod replication;
pub mod snapshot;
pub mod wal;

pub use record::{Lsn, WalOp};
pub use replication::TailChunk;
pub use snapshot::SnapshotState;
pub use wal::{Recovered, RecoveryReport, SegmentReport, SnapshotReport, Wal, WalReport};

use std::path::PathBuf;

/// Fault point hit before every record append. `Fail` leaves a torn record
/// prefix on disk and reports an error; `Corrupt` flips one payload bit
/// (silent on-disk corruption — the append itself succeeds).
pub const FAULT_APPEND: &str = "durability.wal.append";
/// Fault point hit at every explicit fsync. `Fail` reports an error without
/// syncing.
pub const FAULT_FSYNC: &str = "durability.wal.fsync";
/// Fault point hit before opening a fresh segment at rotation. `Fail`
/// reports an error and keeps appending to the old segment impossible.
pub const FAULT_ROTATE: &str = "durability.wal.rotate";
/// Fault point hit per record during recovery scans. `Fail` simulates a
/// short read (the file appears to end mid-record); `Corrupt` flips a bit in
/// the record as read.
pub const FAULT_READ: &str = "durability.wal.read";
/// Fault point hit before writing a snapshot file. `Fail` reports an error
/// and writes nothing.
pub const FAULT_SNAPSHOT: &str = "durability.snapshot.write";

/// When the write-ahead log forces data to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every appended record: no acknowledged operation is ever
    /// lost, at one disk flush per mutation.
    Always,
    /// fsync after every `n` appended records (and at rotation/snapshot):
    /// bounds the window of acknowledged-but-unsynced operations to `n - 1`.
    EveryN(u32),
    /// Never fsync explicitly; the OS page cache decides. Fastest, and loses
    /// whatever the kernel had not written back at crash time.
    OsManaged,
}

/// What recovery does about a record that fails its CRC (or cannot be
/// framed) *behind* later valid data — i.e. damage that is provably not a
/// torn tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CorruptionPolicy {
    /// Refuse to recover: surface [`WalError::Corrupt`] so the operator
    /// decides. The default — silently dropping acknowledged operations is
    /// not something to opt into by accident.
    #[default]
    Fail,
    /// Skip the damaged record (using its length frame when plausible, else
    /// abandoning the rest of the segment) and keep replaying. Best-effort
    /// recovery for when some state beats none.
    Skip,
}

/// Configuration of the durability layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Rotate to a fresh segment once the current one reaches this many
    /// bytes (the record that crosses the threshold completes first).
    pub segment_bytes: u64,
    /// When appended records are forced to stable storage.
    pub fsync: FsyncPolicy,
    /// How recovery treats mid-log corruption (a torn *tail* is always
    /// truncated regardless of this policy).
    pub corruption: CorruptionPolicy,
    /// Automatically snapshot + compact after this many appended records
    /// (checked at clock-advance boundaries, where the whole broker is
    /// already quiesced). `0` disables automatic snapshots.
    pub snapshot_every_ops: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        Self {
            segment_bytes: 8 * 1024 * 1024,
            fsync: FsyncPolicy::EveryN(64),
            corruption: CorruptionPolicy::Fail,
            snapshot_every_ops: 0,
        }
    }
}

/// Errors of the durability layer.
///
/// I/O errors carry the failing operation and path as strings (not
/// `std::io::Error`) so the type stays `Clone + PartialEq` for tests and for
/// embedding in broker-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// An operating-system I/O operation failed (or was failed by fault
    /// injection).
    Io {
        /// The operation that failed (`"append"`, `"fsync"`, …).
        op: &'static str,
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error message.
        message: String,
    },
    /// The log contains damage that the configured [`CorruptionPolicy`]
    /// refuses to skip.
    Corrupt {
        /// First LSN of the damaged segment.
        segment: Lsn,
        /// Byte offset of the damaged record within the segment file.
        offset: u64,
        /// Human-readable diagnosis.
        detail: String,
    },
    /// The WAL rejected further appends because an earlier append failed
    /// mid-record; the tail of the active segment is torn and must be
    /// recovered (reopened) before new records can follow it.
    Poisoned,
}

impl WalError {
    pub(crate) fn io(op: &'static str, path: impl Into<PathBuf>, e: std::io::Error) -> Self {
        WalError::Io {
            op,
            path: path.into(),
            message: e.to_string(),
        }
    }

    pub(crate) fn injected(op: &'static str, path: impl Into<PathBuf>) -> Self {
        WalError::Io {
            op,
            path: path.into(),
            message: "injected fault".to_string(),
        }
    }
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io { op, path, message } => {
                write!(f, "wal {op} failed on {}: {message}", path.display())
            }
            WalError::Corrupt {
                segment,
                offset,
                detail,
            } => write!(
                f,
                "wal segment {segment} corrupt at byte {offset}: {detail}"
            ),
            WalError::Poisoned => {
                write!(
                    f,
                    "wal poisoned by an earlier torn append; reopen to recover"
                )
            }
        }
    }
}

impl std::error::Error for WalError {}
