use pubsub_durability::{DurabilityConfig, FsyncPolicy, Wal, WalOp};
use pubsub_types::time::LogicalTime;
use std::fs;

#[test]
fn next_lsn_can_fall_below_snapshot_lsn() {
    let dir = std::env::temp_dir().join(format!("fp-repro-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    let cfg = DurabilityConfig {
        fsync: FsyncPolicy::OsManaged,
        ..Default::default()
    };
    let (mut wal, _) = Wal::open(&dir, cfg).unwrap();
    for i in 0..10u64 {
        wal.append(&WalOp::AdvanceTo(LogicalTime(i))).unwrap();
    }
    // Save the pre-snapshot segment (compaction will delete it).
    let seg0 = dir.join("wal-00000000000000000000.log");
    let seg0_bytes = fs::read(&seg0).unwrap();
    wal.snapshot(&Default::default()).unwrap(); // snapshot at LSN 10, rotates to wal-10
    drop(wal);

    // Simulate an OsManaged crash where: the snapshot rename persisted, the
    // new segment (wal-10) never persisted, compaction's delete of wal-0
    // never persisted, and wal-0's last 3 records never persisted.
    let _ = fs::remove_file(dir.join("wal-00000000000000000010.log"));
    let mut truncated = seg0_bytes.clone();
    // Each AdvanceTo record is 8 (frame) + 9 (payload) = 17 bytes.
    truncated.truncate(truncated.len() - 3 * 17);
    fs::write(&seg0, &truncated).unwrap();

    let (mut wal, rec) = Wal::open(&dir, cfg).unwrap();
    println!(
        "snapshot_lsn={:?} next_lsn={}",
        rec.report.snapshot_lsn,
        wal.next_lsn()
    );
    // Append 3 new acknowledged ops after recovery.
    for i in 0..3u64 {
        let lsn = wal.append(&WalOp::AdvanceTo(LogicalTime(100 + i))).unwrap();
        println!("new op got lsn {lsn}");
    }
    wal.sync().unwrap();
    drop(wal);

    // Second recovery: are the new ops replayed?
    let (_, rec2) = Wal::open(&dir, cfg).unwrap();
    println!("second recovery replayed {} ops", rec2.ops.len());
    assert_eq!(rec2.ops.len(), 3, "post-recovery appends must survive");
    fs::remove_dir_all(&dir).unwrap();
}
