//! Crash-recovery sweeps at the WAL layer.
//!
//! The contract under test: killing the process after any byte prefix of
//! the log has reached disk recovers exactly the longest prefix of
//! operations whose records fully survive — never a partial op, never an
//! error, never a panic. The broker-level proptest
//! (`crates/broker/tests/durability.rs`) layers engine-state equivalence on
//! top; this sweep pins the byte-level property exhaustively, at **every**
//! truncation offset of a single-segment log and across record boundaries
//! of a multi-segment log.

use std::fs::{self, OpenOptions};
use std::path::PathBuf;

use pubsub_durability::{DurabilityConfig, FsyncPolicy, Wal, WalOp};
use pubsub_types::time::{LogicalTime, Validity};
use pubsub_types::{AttrId, Operator, SubscriptionBuilder, SubscriptionId, Symbol, Value};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fp-walrec-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A varied op stream: interning, subscriptions of different shapes,
/// unsubscribes, clock advances, and the four session record types (so
/// the byte-level truncation sweeps cover them too).
fn op_stream(n: usize) -> Vec<WalOp> {
    (0..n)
        .map(|i| match i % 8 {
            0 => WalOp::InternAttr(format!("attribute-{i}")),
            1 => WalOp::InternString(format!("value-{i}")),
            2 => {
                let mut b = SubscriptionBuilder::default()
                    .eq(AttrId(i as u32 % 3), Value::Str(Symbol(i as u32 % 2)));
                if i % 2 == 0 {
                    b = b.with(AttrId(3), Operator::Gt, i as i64);
                }
                WalOp::Subscribe {
                    id: SubscriptionId(i as u32),
                    sub: b.build().unwrap(),
                    validity: if i % 4 == 2 {
                        Validity::until(LogicalTime(i as u64 + 10))
                    } else {
                        Validity::forever()
                    },
                }
            }
            3 => WalOp::Unsubscribe(SubscriptionId(i as u32 / 2)),
            4 => WalOp::SessionCreate {
                token: i as u64 + 1,
            },
            5 => WalOp::SessionBind {
                token: i as u64,
                id: SubscriptionId(i as u32 / 3),
            },
            6 => match i % 3 {
                0 => WalOp::SessionRelease {
                    token: i as u64,
                    id: SubscriptionId(i as u32 / 3),
                },
                _ => WalOp::SessionReap {
                    token: i as u64 / 2,
                },
            },
            _ => WalOp::AdvanceTo(LogicalTime(i as u64)),
        })
        .collect()
}

/// Byte offset (within the single segment file) at which each record ends.
/// `boundaries[k]` = end of record `k`; a truncation at byte `t` preserves
/// exactly the records with `boundaries[k] <= t`.
fn record_boundaries(ops: &[WalOp]) -> Vec<u64> {
    let mut off = 16u64; // segment header
    ops.iter()
        .map(|op| {
            off += op.to_record().len() as u64;
            off
        })
        .collect()
}

#[test]
fn truncation_at_every_byte_recovers_the_longest_surviving_prefix() {
    let dir = temp_dir("every-byte");
    let cfg = DurabilityConfig {
        segment_bytes: u64::MAX, // keep everything in one segment
        fsync: FsyncPolicy::OsManaged,
        ..Default::default()
    };
    let ops = op_stream(15);
    let (mut wal, _) = Wal::open(&dir, cfg).unwrap();
    for op in &ops {
        wal.append(op).unwrap();
    }
    drop(wal);
    let boundaries = record_boundaries(&ops);
    let seg_path = dir.join("wal-00000000000000000000.log");
    let pristine = fs::read(&seg_path).unwrap();
    assert_eq!(*boundaries.last().unwrap(), pristine.len() as u64);

    for cut in 0..=pristine.len() as u64 {
        // Restore the pristine file, then kill it at byte `cut`.
        fs::write(&seg_path, &pristine).unwrap();
        let f = OpenOptions::new().write(true).open(&seg_path).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let (wal, rec) =
            Wal::open(&dir, cfg).unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));
        let expected = boundaries.iter().filter(|&&b| b <= cut).count();
        assert_eq!(
            rec.ops.len(),
            expected,
            "cut at byte {cut}: wrong surviving prefix"
        );
        assert!(
            rec.ops.iter().map(|(_, op)| op).eq(ops[..expected].iter()),
            "cut at byte {cut}: surviving ops are not the exact prefix"
        );
        assert_eq!(wal.next_lsn(), expected as u64);
        drop(wal);
        // Reopening the recovered log must be clean: truncation healed it.
        let (_, rec2) = Wal::open(&dir, cfg).unwrap();
        assert_eq!(
            rec2.report.torn_tail_truncated, None,
            "cut {cut} left a tear"
        );
        assert_eq!(rec2.ops.len(), expected);
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncation_sweep_across_multiple_segments() {
    let dir = temp_dir("multi-seg");
    let cfg = DurabilityConfig {
        segment_bytes: 96, // force several segments
        fsync: FsyncPolicy::OsManaged,
        ..Default::default()
    };
    let ops = op_stream(30);
    let (mut wal, _) = Wal::open(&dir, cfg).unwrap();
    for op in &ops {
        wal.append(op).unwrap();
    }
    drop(wal);

    // Collect segment files; sweep truncation offsets within the LAST one
    // (earlier segments are not tails — damage there is mid-log corruption,
    // covered by the policy tests).
    let mut segs: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "log"))
        .collect();
    segs.sort();
    assert!(segs.len() > 2, "want several segments, got {}", segs.len());
    let last = segs.last().unwrap().clone();
    let pristine = fs::read(&last).unwrap();
    let first_lsn: u64 = last
        .file_stem()
        .unwrap()
        .to_str()
        .unwrap()
        .strip_prefix("wal-")
        .unwrap()
        .parse()
        .unwrap();

    // Record boundaries inside the last segment.
    let mut boundaries = Vec::new();
    let mut off = 16u64;
    for op in &ops[first_lsn as usize..] {
        off += op.to_record().len() as u64;
        boundaries.push(off);
    }
    assert_eq!(off, pristine.len() as u64);

    for cut in 0..=pristine.len() as u64 {
        fs::write(&last, &pristine).unwrap();
        let f = OpenOptions::new().write(true).open(&last).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let (_, rec) =
            Wal::open(&dir, cfg).unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));
        let survived_in_last = boundaries.iter().filter(|&&b| b <= cut).count();
        let expected = first_lsn as usize + survived_in_last;
        assert_eq!(rec.ops.len(), expected, "cut at byte {cut} of last segment");
        assert!(rec.ops.iter().map(|(_, op)| op).eq(ops[..expected].iter()));
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncation_behind_a_snapshot_still_recovers_the_snapshot() {
    let dir = temp_dir("snap-cut");
    let cfg = DurabilityConfig {
        segment_bytes: u64::MAX,
        fsync: FsyncPolicy::OsManaged,
        ..Default::default()
    };
    let ops = op_stream(10);
    let (mut wal, _) = Wal::open(&dir, cfg).unwrap();
    for op in &ops {
        wal.append(op).unwrap();
    }
    let state = pubsub_durability::SnapshotState {
        now: LogicalTime(9),
        high_water_id: 10,
        attrs: vec!["attribute-0".into()],
        strings: vec!["value-1".into()],
        subs: Vec::new(),
        next_token: 1,
        sessions: Vec::new(),
    };
    wal.snapshot(&state).unwrap();
    let tail = op_stream(4);
    for op in &tail {
        wal.append(op).unwrap();
    }
    drop(wal);

    // The active segment starts at LSN 10 (post-snapshot). Truncating it at
    // any byte keeps the snapshot and a prefix of the tail.
    let seg = dir.join(format!("wal-{:020}.log", 10));
    let pristine = fs::read(&seg).unwrap();
    let mut boundaries = Vec::new();
    let mut off = 16u64;
    for op in &tail {
        off += op.to_record().len() as u64;
        boundaries.push(off);
    }
    for cut in 0..=pristine.len() as u64 {
        fs::write(&seg, &pristine).unwrap();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(cut).unwrap();
        drop(f);
        let (_, rec) = Wal::open(&dir, cfg).unwrap();
        assert_eq!(
            rec.snapshot.as_ref(),
            Some(&state),
            "cut {cut} lost the snapshot"
        );
        let expected = boundaries.iter().filter(|&&b| b <= cut).count();
        assert_eq!(rec.ops.len(), expected);
        assert!(rec.ops.iter().map(|(_, op)| op).eq(tail[..expected].iter()));
    }
    fs::remove_dir_all(&dir).unwrap();
}

// ---- session record codec (proptest) ---------------------------------------

use proptest::prelude::*;

fn arb_session_op() -> impl Strategy<Value = WalOp> {
    prop_oneof![
        any::<u64>().prop_map(|token| WalOp::SessionCreate { token }),
        (any::<u64>(), any::<u32>()).prop_map(|(token, id)| WalOp::SessionBind {
            token,
            id: SubscriptionId(id),
        }),
        (any::<u64>(), any::<u32>()).prop_map(|(token, id)| WalOp::SessionRelease {
            token,
            id: SubscriptionId(id),
        }),
        any::<u64>().prop_map(|token| WalOp::SessionReap { token }),
    ]
}

proptest! {
    /// Session records round-trip exactly; every strict prefix of an
    /// encoding is a decode *error* (a torn record can never be mistaken
    /// for a shorter valid one), and a corrupted byte either errors or
    /// decodes to some op that re-encodes canonically — never a panic.
    #[test]
    fn session_records_round_trip_and_survive_damage(
        op in arb_session_op(),
        pos in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let mut payload = Vec::new();
        op.encode(&mut payload);
        prop_assert_eq!(WalOp::decode(&payload).unwrap(), op);

        for cut in 0..payload.len() {
            prop_assert!(
                WalOp::decode(&payload[..cut]).is_err(),
                "strict prefix of length {cut} decoded"
            );
        }

        let mut damaged = payload.clone();
        let i = pos.index(damaged.len());
        damaged[i] ^= xor;
        if let Ok(decoded) = WalOp::decode(&damaged) {
            let mut re = Vec::new();
            decoded.encode(&mut re);
            prop_assert_eq!(re, damaged, "non-canonical decode of damaged bytes");
        }
    }
}
