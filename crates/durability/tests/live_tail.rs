//! Live-tail reads: a replication tailer observing a partially-written
//! record at the active segment tail must see "incomplete, retry" — never
//! `Corrupt`, and never the recovery-time torn-tail truncation. The
//! replication follower depends on this: the leader is alive and mid-append,
//! so a short read is a race, not damage.
//!
//! The pin is byte-by-byte: for every prefix length of the final segment
//! (simulating every possible partial flush of an append in flight), the
//! tailer ships exactly the fully-contained records, classifies the rest as
//! incomplete or caught-up, and leaves the file untouched.

use pubsub_durability::replication::{self, TailChunk};
use pubsub_durability::{DurabilityConfig, FsyncPolicy, Wal, WalOp};
use pubsub_types::time::{LogicalTime, Validity};
use pubsub_types::{AttrId, Operator, SubscriptionBuilder, SubscriptionId, Value};
use std::fs;
use std::path::PathBuf;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fp-livetail-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn sample_ops() -> Vec<WalOp> {
    let sub = SubscriptionBuilder::default()
        .eq(AttrId(0), Value::Int(4))
        .with(AttrId(1), Operator::Le, 9i64)
        .build()
        .unwrap();
    vec![
        WalOp::InternAttr("price".into()),
        WalOp::Subscribe {
            id: SubscriptionId(0),
            sub,
            validity: Validity::until(LogicalTime(40)),
        },
        WalOp::AdvanceTo(LogicalTime(3)),
        WalOp::Unsubscribe(SubscriptionId(0)),
        WalOp::InternString("a-longer-string-value-to-vary-record-sizes".into()),
    ]
}

/// Byte offsets (within the segment) at which each record ends, plus the
/// segment header end — i.e. every position where the byte stream is on a
/// record boundary.
fn record_boundaries(ops: &[WalOp]) -> Vec<usize> {
    let mut boundaries = vec![16]; // segment header
    let mut o = 16usize;
    for op in ops {
        o += op.to_record().len();
        boundaries.push(o);
    }
    boundaries
}

#[test]
fn every_partial_write_prefix_reads_as_incomplete_not_corruption() {
    let dir = temp_dir("prefix");
    let config = DurabilityConfig {
        fsync: FsyncPolicy::OsManaged,
        ..Default::default()
    };
    let ops = sample_ops();
    let (mut wal, _) = Wal::open(&dir, config).unwrap();
    for op in &ops {
        wal.append(op).unwrap();
    }
    drop(wal);
    let seg = replication::segment_paths(&dir).unwrap().pop().unwrap();
    let full = fs::read(&seg).unwrap();
    let boundaries = record_boundaries(&ops);
    assert_eq!(*boundaries.last().unwrap(), full.len());

    for cut in 0..=full.len() {
        let case_dir = temp_dir("prefix-case");
        let case_seg = case_dir.join(seg.file_name().unwrap());
        fs::write(&case_seg, &full[..cut]).unwrap();

        // How many records are fully contained in this prefix?
        let complete = boundaries.iter().filter(|&&b| b > 16 && b <= cut).count() as u64;
        let on_boundary = boundaries.contains(&cut);

        let chunk = replication::read_tail(&case_dir, 0, usize::MAX)
            .unwrap_or_else(|e| panic!("cut at byte {cut}: live tail must never error: {e}"));
        match chunk {
            TailChunk::Records {
                first_lsn,
                payloads,
                ..
            } => {
                assert_eq!(first_lsn, 0, "cut {cut}");
                assert_eq!(
                    payloads.len() as u64,
                    complete,
                    "cut {cut}: ship exactly the fully-contained records"
                );
                // The remainder (if any) must read as incomplete, not error.
                let rest = replication::read_tail(&case_dir, complete, usize::MAX).unwrap();
                if on_boundary {
                    assert_eq!(
                        rest,
                        TailChunk::CaughtUp { next_lsn: complete },
                        "cut {cut}"
                    );
                } else {
                    assert_eq!(
                        rest,
                        TailChunk::Incomplete { next_lsn: complete },
                        "cut {cut}"
                    );
                }
            }
            TailChunk::CaughtUp { next_lsn } => {
                assert!(on_boundary, "cut {cut}: caught-up only on a boundary");
                assert_eq!(next_lsn, complete, "cut {cut}");
            }
            TailChunk::Incomplete { next_lsn } => {
                assert!(!on_boundary, "cut {cut}: incomplete only off-boundary");
                assert_eq!(next_lsn, complete, "cut {cut}");
                assert_eq!(complete, 0, "records before the tear must ship first");
            }
            TailChunk::SnapshotRequired { .. } => {
                panic!("cut {cut}: no snapshot exists in this directory")
            }
        }

        // Read-only: the tailer never truncates or repairs.
        assert_eq!(
            fs::read(&case_seg).unwrap().len(),
            cut,
            "cut {cut}: tailer modified the file"
        );
        fs::remove_dir_all(&case_dir).unwrap();
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn growing_file_is_picked_up_across_polls() {
    // Simulates the leader appending between polls: each appended record
    // becomes visible to the next read_tail call at the position where the
    // previous one stopped.
    let dir = temp_dir("growing");
    let config = DurabilityConfig {
        fsync: FsyncPolicy::OsManaged,
        ..Default::default()
    };
    let (mut wal, _) = Wal::open(&dir, config).unwrap();
    let ops = sample_ops();
    for (i, op) in ops.iter().enumerate() {
        let pos = i as u64;
        assert_eq!(
            replication::read_tail(&dir, pos, usize::MAX).unwrap(),
            TailChunk::CaughtUp { next_lsn: pos }
        );
        wal.append(op).unwrap();
        match replication::read_tail(&dir, pos, usize::MAX).unwrap() {
            TailChunk::Records {
                first_lsn,
                payloads,
                ..
            } => {
                assert_eq!(first_lsn, i as u64);
                assert_eq!(payloads.len(), 1);
                let mut want = Vec::new();
                op.encode(&mut want);
                assert_eq!(payloads[0], want);
            }
            other => panic!("{other:?}"),
        }
    }
    fs::remove_dir_all(&dir).unwrap();
}
