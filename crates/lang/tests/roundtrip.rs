//! Property test: `parse(format(x)) == x` for random subscriptions, DNFs and
//! events over identifier-safe attribute names and arbitrary string values.

use proptest::prelude::*;
use pubsub_lang::display::{format_dnf, format_event, format_subscription};
use pubsub_lang::{parse_event, parse_subscription};
use pubsub_types::{Event, Operator, Predicate, Subscription, Value, Vocabulary};

fn arb_attr_name() -> impl Strategy<Value = String> {
    "[a-z_][a-z0-9_.-]{0,8}".prop_filter("keywords are not identifiers", |s| {
        !s.eq_ignore_ascii_case("and") && !s.eq_ignore_ascii_case("or")
    })
}

fn arb_raw_value() -> impl Strategy<Value = Result<i64, String>> {
    prop_oneof![
        any::<i64>().prop_map(Ok),
        // Arbitrary unicode including quotes, backslashes, newlines.
        ".{0,12}".prop_map(Err),
    ]
}

fn arb_triples() -> impl Strategy<Value = Vec<(String, Operator, Result<i64, String>)>> {
    prop::collection::vec(
        (
            arb_attr_name(),
            prop::sample::select(Operator::ALL.to_vec()),
            arb_raw_value(),
        ),
        1..6,
    )
}

fn build_subscription(
    vocab: &mut Vocabulary,
    triples: &[(String, Operator, Result<i64, String>)],
) -> Option<Subscription> {
    let mut preds = Vec::new();
    for (name, op, raw) in triples {
        let attr = vocab.attr(name);
        let value = match raw {
            Ok(i) => Value::Int(*i),
            Err(s) => vocab.string(s),
        };
        let p = Predicate::new(attr, *op, value);
        if preds.contains(&p) {
            return None; // duplicate predicates are rejected by design
        }
        preds.push(p);
    }
    Some(Subscription::from_predicates(preds).expect("non-empty, deduped"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn subscription_round_trip(triples in arb_triples()) {
        let mut vocab = Vocabulary::new();
        let Some(sub) = build_subscription(&mut vocab, &triples) else {
            return Ok(());
        };
        let text = format_subscription(&sub, &vocab).expect("identifier-safe names");
        let parsed = parse_subscription(&text, &mut vocab)
            .unwrap_or_else(|e| panic!("{}", e.render(&text)));
        prop_assert!(parsed.is_conjunctive());
        prop_assert_eq!(parsed.into_conjunction(), sub, "text: {}", text);
    }

    #[test]
    fn dnf_round_trip(dnf in prop::collection::vec(arb_triples(), 1..4)) {
        let mut vocab = Vocabulary::new();
        let mut disjuncts = Vec::new();
        for triples in &dnf {
            match build_subscription(&mut vocab, triples) {
                Some(s) => disjuncts.push(s),
                None => return Ok(()),
            }
        }
        let text = format_dnf(&disjuncts, &vocab).expect("identifier-safe names");
        let parsed = parse_subscription(&text, &mut vocab)
            .unwrap_or_else(|e| panic!("{}", e.render(&text)));
        prop_assert_eq!(parsed.disjuncts, disjuncts, "text: {}", text);
    }

    #[test]
    fn event_round_trip(
        pairs in prop::collection::btree_map(arb_attr_name(), arb_raw_value(), 1..8),
    ) {
        let mut vocab = Vocabulary::new();
        let mut event_pairs = Vec::new();
        for (name, raw) in &pairs {
            let attr = vocab.attr(name);
            let value = match raw {
                Ok(i) => Value::Int(*i),
                Err(s) => vocab.string(s),
            };
            event_pairs.push((attr, value));
        }
        let event = Event::from_pairs(event_pairs).expect("distinct attrs");
        let text = format_event(&event, &vocab).expect("identifier-safe names");
        let parsed = parse_event(&text, &mut vocab)
            .unwrap_or_else(|e| panic!("{}", e.render(&text)));
        prop_assert_eq!(parsed, event, "text: {}", text);
    }
}
