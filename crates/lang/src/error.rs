//! Parse errors with positions.

/// A lexing or parsing error at a byte offset of the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending character/token.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    /// Creates an error.
    pub fn new(offset: usize, message: impl Into<String>) -> Self {
        Self {
            offset,
            message: message.into(),
        }
    }

    /// Renders the error with a caret marker under the input line.
    pub fn render(&self, input: &str) -> String {
        let mut out = format!("parse error at offset {}: {}\n", self.offset, self.message);
        out.push_str(input);
        out.push('\n');
        // Caret under the offending byte (clamped to the input length).
        let col = self.offset.min(input.len());
        out.push_str(&" ".repeat(col));
        out.push('^');
        out
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_places_caret() {
        let err = ParseError::new(6, "boom");
        let rendered = err.render("price @ 3");
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines[1], "price @ 3");
        assert_eq!(lines[2], "      ^");
    }

    #[test]
    fn display_is_informative() {
        let err = ParseError::new(2, "bad");
        assert_eq!(err.to_string(), "parse error at offset 2: bad");
    }
}
