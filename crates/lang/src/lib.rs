//! A small textual language for subscriptions and events.
//!
//! The paper calls for "a simple and expressive subscription interface";
//! this crate provides one:
//!
//! ```
//! use pubsub_lang::{parse_event, parse_subscription};
//! use pubsub_types::Vocabulary;
//!
//! let mut vocab = Vocabulary::new();
//! let sub = parse_subscription(
//!     "movie = 'groundhog day' AND price <= 10 AND price > 5",
//!     &mut vocab,
//! ).unwrap().into_conjunction();
//! let event = parse_event("{movie: 'groundhog day', price: 8}", &mut vocab).unwrap();
//! assert!(sub.matches_event(&event));
//! ```
//!
//! `OR` builds DNF subscriptions (register them through
//! `pubsub_broker::DnfRegistry`). All names and string values intern through
//! the caller's [`pubsub_types::Vocabulary`], so parsed objects plug straight
//! into the matcher.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod display;
pub mod error;
pub mod lexer;
pub mod parser;

pub use display::{format_dnf, format_event, format_subscription};
pub use error::ParseError;
pub use parser::{parse_event, parse_subscription, ParsedSubscription};
