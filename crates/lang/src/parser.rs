//! Parser for the subscription and event language.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! subscription := conjunction ( OR conjunction )*        -- DNF
//! conjunction  := predicate ( AND predicate )*
//!               | "(" conjunction ")"
//! predicate    := IDENT op value
//! op           := "=" | "==" | "!=" | "<>" | "<" | "<=" | ">" | ">="
//! value        := INT | STRING
//!
//! event        := "{"? pair ( "," pair )* "}"?
//! pair         := IDENT ( ":" | "=" ) value
//! ```
//!
//! Attribute names and string values are interned through the caller's
//! [`Vocabulary`], so parsed subscriptions are directly usable with the
//! matcher/broker.

use crate::error::ParseError;
use crate::lexer::{tokenize, Token, TokenKind};
use pubsub_types::metrics::Counter;
use pubsub_types::{Event, Operator, Predicate, Subscription, Value, Vocabulary};

/// Subscriptions successfully parsed from text.
static SUBS_PARSED: Counter = Counter::new("lang.subscriptions_parsed");
/// Events successfully parsed from text.
static EVENTS_PARSED: Counter = Counter::new("lang.events_parsed");
/// Parse failures (subscriptions and events).
static PARSE_ERRORS: Counter = Counter::new("lang.parse_errors");

/// A parsed subscription in disjunctive normal form. A plain conjunction
/// parses to a single disjunct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedSubscription {
    /// The OR-ed conjunctions.
    pub disjuncts: Vec<Subscription>,
}

impl ParsedSubscription {
    /// True if this is a plain conjunction.
    pub fn is_conjunctive(&self) -> bool {
        self.disjuncts.len() == 1
    }

    /// Consumes a conjunctive parse into its single subscription.
    ///
    /// # Panics
    /// Panics if the subscription has multiple disjuncts.
    pub fn into_conjunction(mut self) -> Subscription {
        assert!(self.is_conjunctive(), "subscription is a disjunction");
        self.disjuncts.pop().expect("one disjunct")
    }
}

struct Cursor {
    tokens: Vec<Token>,
    pos: usize,
    input_len: usize,
}

impl Cursor {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|t| t.offset)
            .unwrap_or(self.input_len)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Ident(s),
                ..
            }) => Ok(s),
            Some(t) => Err(ParseError::new(
                t.offset,
                format!("expected attribute name, found {}", t.kind.describe()),
            )),
            None => Err(ParseError::new(self.input_len, "expected attribute name")),
        }
    }

    fn expect_value(&mut self, vocab: &mut Vocabulary) -> Result<Value, ParseError> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Int(i),
                ..
            }) => Ok(Value::Int(i)),
            Some(Token {
                kind: TokenKind::Str(s),
                ..
            }) => Ok(vocab.string(&s)),
            Some(t) => Err(ParseError::new(
                t.offset,
                format!(
                    "expected a value (integer or quoted string), found {}",
                    t.kind.describe()
                ),
            )),
            None => Err(ParseError::new(self.input_len, "expected a value")),
        }
    }
}

fn parse_predicate(c: &mut Cursor, vocab: &mut Vocabulary) -> Result<Predicate, ParseError> {
    let attr_name = c.expect_ident()?;
    let op = match c.next() {
        Some(Token {
            kind: TokenKind::Op(o),
            ..
        }) => Operator::parse(o).expect("lexer emits valid operators"),
        Some(t) => {
            return Err(ParseError::new(
                t.offset,
                format!("expected comparison operator, found {}", t.kind.describe()),
            ))
        }
        None => return Err(ParseError::new(c.input_len, "expected comparison operator")),
    };
    let value = c.expect_value(vocab)?;
    Ok(Predicate::new(vocab.attr(&attr_name), op, value))
}

fn parse_conjunction(c: &mut Cursor, vocab: &mut Vocabulary) -> Result<Subscription, ParseError> {
    let parenthesised = matches!(c.peek(), Some(TokenKind::LParen));
    if parenthesised {
        c.next();
    }
    let start = c.offset();
    let mut preds = vec![parse_predicate(c, vocab)?];
    while matches!(c.peek(), Some(TokenKind::And)) {
        c.next();
        preds.push(parse_predicate(c, vocab)?);
    }
    if parenthesised {
        match c.next() {
            Some(Token {
                kind: TokenKind::RParen,
                ..
            }) => {}
            Some(t) => {
                return Err(ParseError::new(
                    t.offset,
                    format!("expected `)`, found {}", t.kind.describe()),
                ))
            }
            None => return Err(ParseError::new(c.input_len, "expected `)`")),
        }
    }
    Subscription::from_predicates(preds)
        .map_err(|e| ParseError::new(start, format!("invalid conjunction: {e}")))
}

/// Parses a subscription (possibly a DNF with `OR`).
pub fn parse_subscription(
    input: &str,
    vocab: &mut Vocabulary,
) -> Result<ParsedSubscription, ParseError> {
    parse_subscription_inner(input, vocab).inspect_err(|_| PARSE_ERRORS.inc())
}

fn parse_subscription_inner(
    input: &str,
    vocab: &mut Vocabulary,
) -> Result<ParsedSubscription, ParseError> {
    let tokens = tokenize(input)?;
    if tokens.is_empty() {
        return Err(ParseError::new(0, "empty subscription"));
    }
    let mut c = Cursor {
        tokens,
        pos: 0,
        input_len: input.len(),
    };
    let mut disjuncts = vec![parse_conjunction(&mut c, vocab)?];
    while matches!(c.peek(), Some(TokenKind::Or)) {
        c.next();
        disjuncts.push(parse_conjunction(&mut c, vocab)?);
    }
    if let Some(t) = c.next() {
        return Err(ParseError::new(
            t.offset,
            format!("unexpected {} after subscription", t.kind.describe()),
        ));
    }
    SUBS_PARSED.inc();
    Ok(ParsedSubscription { disjuncts })
}

/// Parses an event: `{a: 1, b: "x"}` (braces optional, `=` accepted for `:`).
pub fn parse_event(input: &str, vocab: &mut Vocabulary) -> Result<Event, ParseError> {
    parse_event_inner(input, vocab)
        .inspect(|_| EVENTS_PARSED.inc())
        .inspect_err(|_| PARSE_ERRORS.inc())
}

fn parse_event_inner(input: &str, vocab: &mut Vocabulary) -> Result<Event, ParseError> {
    let tokens = tokenize(input)?;
    if tokens.is_empty() {
        return Err(ParseError::new(0, "empty event"));
    }
    let mut c = Cursor {
        tokens,
        pos: 0,
        input_len: input.len(),
    };
    let braced = matches!(c.peek(), Some(TokenKind::LBrace));
    if braced {
        c.next();
    }
    let mut pairs = Vec::new();
    loop {
        let start = c.offset();
        let attr_name = c.expect_ident()?;
        match c.next() {
            Some(Token {
                kind: TokenKind::Colon | TokenKind::Op("="),
                ..
            }) => {}
            Some(t) => {
                return Err(ParseError::new(
                    t.offset,
                    format!("expected `:` or `=`, found {}", t.kind.describe()),
                ))
            }
            None => return Err(ParseError::new(c.input_len, "expected `:` or `=`")),
        }
        let value = c.expect_value(vocab)?;
        pairs.push((vocab.attr(&attr_name), value));
        let _ = start;
        match c.peek() {
            Some(TokenKind::Comma) => {
                c.next();
            }
            _ => break,
        }
    }
    if braced {
        match c.next() {
            Some(Token {
                kind: TokenKind::RBrace,
                ..
            }) => {}
            Some(t) => {
                return Err(ParseError::new(
                    t.offset,
                    format!("expected `}}`, found {}", t.kind.describe()),
                ))
            }
            None => return Err(ParseError::new(c.input_len, "expected `}`")),
        }
    }
    if let Some(t) = c.next() {
        return Err(ParseError::new(
            t.offset,
            format!("unexpected {} after event", t.kind.describe()),
        ));
    }
    Event::from_pairs(pairs).map_err(|e| ParseError::new(0, format!("invalid event: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_types::AttrId;

    #[test]
    fn paper_example_round_trip() {
        let mut v = Vocabulary::new();
        let parsed = parse_subscription(
            "movie = 'groundhog day' AND price <= 10 AND price > 5",
            &mut v,
        )
        .unwrap();
        assert!(parsed.is_conjunctive());
        let sub = parsed.into_conjunction();
        assert_eq!(sub.size(), 3);
        assert_eq!(sub.equality_count(), 1);

        let event = parse_event(
            "{movie: 'groundhog day', price: 8, theater: 'odeon'}",
            &mut v,
        )
        .unwrap();
        assert!(sub.matches_event(&event));

        let pricey = parse_event("movie: 'groundhog day', price: 12", &mut v).unwrap();
        assert!(!sub.matches_event(&pricey));
    }

    #[test]
    fn dnf_with_or_and_parentheses() {
        let mut v = Vocabulary::new();
        let parsed = parse_subscription(
            "(from = 'NYC' AND price < 400) OR (from = 'EWR' AND price < 350)",
            &mut v,
        )
        .unwrap();
        assert_eq!(parsed.disjuncts.len(), 2);
        let e = parse_event("from: 'EWR', price: 300", &mut v).unwrap();
        assert!(!parsed.disjuncts[0].matches_event(&e));
        assert!(parsed.disjuncts[1].matches_event(&e));
    }

    #[test]
    fn operator_aliases_parse() {
        let mut v = Vocabulary::new();
        for (text, op) in [
            ("a == 1", Operator::Eq),
            ("a <> 1", Operator::Ne),
            ("a != 1", Operator::Ne),
            ("a >= 1", Operator::Ge),
        ] {
            let sub = parse_subscription(text, &mut v).unwrap().into_conjunction();
            assert_eq!(sub.predicates()[0].op, op, "{text}");
        }
    }

    #[test]
    fn symbols_are_shared_through_the_vocabulary() {
        let mut v = Vocabulary::new();
        let sub = parse_subscription("movie = 'brazil'", &mut v)
            .unwrap()
            .into_conjunction();
        let event = parse_event("movie: 'brazil'", &mut v).unwrap();
        assert!(sub.matches_event(&event), "same interner, same symbol");
        // Attribute ids line up too.
        assert_eq!(sub.predicates()[0].attr, v.attrs.get("movie").unwrap());
        let _ = AttrId(0);
    }

    #[test]
    fn negative_numbers() {
        let mut v = Vocabulary::new();
        let sub = parse_subscription("t >= -40 AND t <= -10", &mut v)
            .unwrap()
            .into_conjunction();
        let e = parse_event("t: -20", &mut v).unwrap();
        assert!(sub.matches_event(&e));
    }

    #[test]
    fn error_messages_point_at_problems() {
        let mut v = Vocabulary::new();
        let err = parse_subscription("price <", &mut v).unwrap_err();
        assert!(err.message.contains("expected a value"), "{err}");

        let err = parse_subscription("= 3", &mut v).unwrap_err();
        assert!(err.message.contains("attribute name"), "{err}");

        let err = parse_subscription("a = 1 b = 2", &mut v).unwrap_err();
        assert!(err.message.contains("unexpected"), "{err}");

        let err = parse_subscription("a = 1 AND a = 1", &mut v).unwrap_err();
        assert!(err.message.contains("invalid conjunction"), "{err}");

        let err = parse_event("{a: 1", &mut v).unwrap_err();
        assert!(err.message.contains('}'), "{err}");

        let err = parse_event("a: 1, a: 2", &mut v).unwrap_err();
        assert!(err.message.contains("invalid event"), "{err}");

        let err = parse_subscription("", &mut v).unwrap_err();
        assert!(err.message.contains("empty"), "{err}");
    }

    #[test]
    fn event_separator_flavours() {
        let mut v = Vocabulary::new();
        let a = parse_event("{x: 1, y: 2}", &mut v).unwrap();
        let b = parse_event("x = 1, y = 2", &mut v).unwrap();
        assert_eq!(a, b);
    }
}
