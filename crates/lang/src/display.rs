//! The unparser: renders subscriptions and events back into the textual
//! language, such that `parse(format(x)) == x`.
//!
//! Attribute names that are not valid identifiers cannot round-trip (the
//! grammar has no quoted attribute syntax); [`format_subscription`] and
//! friends return `None` for those.

use pubsub_types::{Event, Predicate, Subscription, Value, Vocabulary};
use std::fmt::Write;

/// True if `name` lexes as a single identifier token.
pub fn is_identifier(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    // `and` / `or` would lex as keywords, not identifiers.
    if name.eq_ignore_ascii_case("and") || name.eq_ignore_ascii_case("or") {
        return false;
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '-')
}

fn write_value(out: &mut String, v: Value, vocab: &Vocabulary) {
    match v {
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Str(sym) => {
            out.push('\'');
            for c in vocab.strings.resolve(sym).chars() {
                match c {
                    '\'' | '\\' => {
                        out.push('\\');
                        out.push(c);
                    }
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    other => out.push(other),
                }
            }
            out.push('\'');
        }
    }
}

fn write_predicate(out: &mut String, p: &Predicate, vocab: &Vocabulary) -> Option<()> {
    let name = vocab.attrs.name(p.attr);
    if !is_identifier(name) {
        return None;
    }
    let _ = write!(out, "{name} {} ", p.op.symbol());
    write_value(out, p.value, vocab);
    Some(())
}

/// Renders a conjunction as parseable text, or `None` if an attribute name
/// is not expressible in the grammar.
pub fn format_subscription(sub: &Subscription, vocab: &Vocabulary) -> Option<String> {
    let mut out = String::new();
    for (i, p) in sub.predicates().iter().enumerate() {
        if i > 0 {
            out.push_str(" AND ");
        }
        write_predicate(&mut out, p, vocab)?;
    }
    Some(out)
}

/// Renders a DNF (one parenthesised conjunction per disjunct, joined by
/// `OR`), or `None` if inexpressible.
pub fn format_dnf(disjuncts: &[Subscription], vocab: &Vocabulary) -> Option<String> {
    let mut out = String::new();
    for (i, d) in disjuncts.iter().enumerate() {
        if i > 0 {
            out.push_str(" OR ");
        }
        out.push('(');
        out.push_str(&format_subscription(d, vocab)?);
        out.push(')');
    }
    Some(out)
}

/// Renders an event as `{a: 1, b: 'x'}`, or `None` if inexpressible.
pub fn format_event(event: &Event, vocab: &Vocabulary) -> Option<String> {
    let mut out = String::from("{");
    for (i, &(a, v)) in event.pairs().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let name = vocab.attrs.name(a);
        if !is_identifier(name) {
            return None;
        }
        let _ = write!(out, "{name}: ");
        write_value(&mut out, v, vocab);
    }
    out.push('}');
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_event, parse_subscription};
    use pubsub_types::Operator;

    #[test]
    fn identifier_classification() {
        assert!(is_identifier("price"));
        assert!(is_identifier("user.age"));
        assert!(is_identifier("_x-1"));
        assert!(!is_identifier("9lives"));
        assert!(!is_identifier("two words"));
        assert!(!is_identifier("and"));
        assert!(!is_identifier("OR"));
        assert!(!is_identifier(""));
    }

    #[test]
    fn subscription_round_trips() {
        let mut v = Vocabulary::new();
        let title = v.string("it's \\ tricky\nline");
        let movie = v.attr("movie");
        let price = v.attr("price");
        let sub = Subscription::builder()
            .eq(movie, title)
            .with(price, Operator::Le, -10i64)
            .build()
            .unwrap();
        let text = format_subscription(&sub, &v).unwrap();
        let back = parse_subscription(&text, &mut v)
            .unwrap()
            .into_conjunction();
        assert_eq!(back, sub, "{text}");
    }

    #[test]
    fn event_round_trips() {
        let mut v = Vocabulary::new();
        let s = v.string("café 'quoted'");
        let a = v.attr("a");
        let b = v.attr("b");
        let event = Event::builder().pair(a, 42i64).pair(b, s).build().unwrap();
        let text = format_event(&event, &v).unwrap();
        let back = parse_event(&text, &mut v).unwrap();
        assert_eq!(back, event, "{text}");
    }

    #[test]
    fn dnf_round_trips() {
        let mut v = Vocabulary::new();
        let a = v.attr("a");
        let d1 = Subscription::builder().eq(a, 1i64).build().unwrap();
        let d2 = Subscription::builder()
            .with(a, Operator::Gt, 5i64)
            .build()
            .unwrap();
        let text = format_dnf(&[d1.clone(), d2.clone()], &v).unwrap();
        let back = parse_subscription(&text, &mut v).unwrap();
        assert_eq!(back.disjuncts, vec![d1, d2], "{text}");
    }

    #[test]
    fn inexpressible_names_return_none() {
        let mut v = Vocabulary::new();
        let weird = v.attr("two words");
        let sub = Subscription::builder().eq(weird, 1i64).build().unwrap();
        assert_eq!(format_subscription(&sub, &v), None);
        let event = Event::builder().pair(weird, 1i64).build().unwrap();
        assert_eq!(format_event(&event, &v), None);
    }
}
