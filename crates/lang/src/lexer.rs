//! Tokenizer for the subscription/event language.

use crate::error::ParseError;

/// A token with its byte offset in the input (for error reporting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the first character.
    pub offset: usize,
}

/// Token kinds of the language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An attribute name: `[A-Za-z_][A-Za-z0-9_.-]*`.
    Ident(String),
    /// An integer literal, optionally negative.
    Int(i64),
    /// A quoted string literal (single or double quotes, `\` escapes).
    Str(String),
    /// A comparison operator (`=`, `==`, `!=`, `<>`, `<`, `<=`, `>`, `>=`).
    Op(&'static str),
    /// The keyword `AND` (case-insensitive, also `&&`).
    And,
    /// The keyword `OR` (case-insensitive, also `||`).
    Or,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
}

impl TokenKind {
    /// Human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(i) => format!("integer `{i}`"),
            TokenKind::Str(s) => format!("string {s:?}"),
            TokenKind::Op(o) => format!("operator `{o}`"),
            TokenKind::And => "`AND`".into(),
            TokenKind::Or => "`OR`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Colon => "`:`".into(),
            TokenKind::LBrace => "`{`".into(),
            TokenKind::RBrace => "`}`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
        }
    }
}

/// Tokenizes the whole input.
pub fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: start,
                });
                i += 1;
            }
            ':' => {
                tokens.push(Token {
                    kind: TokenKind::Colon,
                    offset: start,
                });
                i += 1;
            }
            '{' => {
                tokens.push(Token {
                    kind: TokenKind::LBrace,
                    offset: start,
                });
                i += 1;
            }
            '}' => {
                tokens.push(Token {
                    kind: TokenKind::RBrace,
                    offset: start,
                });
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: start,
                });
                i += 1;
            }
            '=' => {
                // `=` or `==`
                i += 1;
                if bytes.get(i) == Some(&b'=') {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Op("="),
                    offset: start,
                });
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Op("!="),
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(ParseError::new(start, "expected `!=`"));
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    tokens.push(Token {
                        kind: TokenKind::Op("<="),
                        offset: start,
                    });
                    i += 2;
                }
                Some(&b'>') => {
                    tokens.push(Token {
                        kind: TokenKind::Op("!="),
                        offset: start,
                    });
                    i += 2;
                }
                _ => {
                    tokens.push(Token {
                        kind: TokenKind::Op("<"),
                        offset: start,
                    });
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Op(">="),
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Op(">"),
                        offset: start,
                    });
                    i += 1;
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    tokens.push(Token {
                        kind: TokenKind::And,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(ParseError::new(start, "expected `&&`"));
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    tokens.push(Token {
                        kind: TokenKind::Or,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(ParseError::new(start, "expected `||`"));
                }
            }
            '\'' | '"' => {
                let quote = bytes[i];
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(ParseError::new(start, "unterminated string literal"));
                        }
                        Some(&b) if b == quote => {
                            i += 1;
                            break;
                        }
                        Some(&b'\\') => {
                            // Escapes: \\ \' \" \n \t
                            match bytes.get(i + 1) {
                                Some(&b'n') => s.push('\n'),
                                Some(&b't') => s.push('\t'),
                                Some(&e) => s.push(e as char),
                                None => {
                                    return Err(ParseError::new(
                                        i,
                                        "dangling escape at end of input",
                                    ))
                                }
                            }
                            i += 2;
                        }
                        Some(_) => {
                            // Keep multi-byte UTF-8 intact: walk char-wise.
                            let rest = &input[i..];
                            let ch = rest.chars().next().expect("non-empty");
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
            }
            '-' | '0'..='9' => {
                let mut j = i + 1;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let text = &input[i..j];
                if text == "-" {
                    return Err(ParseError::new(start, "`-` must start a number"));
                }
                let v: i64 = text
                    .parse()
                    .map_err(|_| ParseError::new(start, format!("integer out of range: {text}")))?;
                tokens.push(Token {
                    kind: TokenKind::Int(v),
                    offset: start,
                });
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < bytes.len() {
                    let b = bytes[j] as char;
                    if b.is_ascii_alphanumeric() || b == '_' || b == '.' || b == '-' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                let word = &input[i..j];
                let kind = if word.eq_ignore_ascii_case("and") {
                    TokenKind::And
                } else if word.eq_ignore_ascii_case("or") {
                    TokenKind::Or
                } else {
                    TokenKind::Ident(word.to_string())
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
                i = j;
            }
            other => {
                return Err(ParseError::new(
                    start,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn operators_and_aliases() {
        assert_eq!(
            kinds("= == != <> < <= > >="),
            vec![
                TokenKind::Op("="),
                TokenKind::Op("="),
                TokenKind::Op("!="),
                TokenKind::Op("!="),
                TokenKind::Op("<"),
                TokenKind::Op("<="),
                TokenKind::Op(">"),
                TokenKind::Op(">="),
            ]
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            kinds("AND and And && OR or || x"),
            vec![
                TokenKind::And,
                TokenKind::And,
                TokenKind::And,
                TokenKind::And,
                TokenKind::Or,
                TokenKind::Or,
                TokenKind::Or,
                TokenKind::Ident("x".into()),
            ]
        );
    }

    #[test]
    fn numbers_including_negative() {
        assert_eq!(
            kinds("0 42 -17"),
            vec![TokenKind::Int(0), TokenKind::Int(42), TokenKind::Int(-17)]
        );
    }

    #[test]
    fn strings_with_escapes_and_unicode() {
        assert_eq!(
            kinds(r#"'groundhog day' "it\'s" 'café'"#),
            vec![
                TokenKind::Str("groundhog day".into()),
                TokenKind::Str("it's".into()),
                TokenKind::Str("café".into()),
            ]
        );
    }

    #[test]
    fn identifiers_allow_dots_and_dashes() {
        assert_eq!(
            kinds("price user.age movie-title _x"),
            vec![
                TokenKind::Ident("price".into()),
                TokenKind::Ident("user.age".into()),
                TokenKind::Ident("movie-title".into()),
                TokenKind::Ident("_x".into()),
            ]
        );
    }

    #[test]
    fn error_positions() {
        let err = tokenize("price @ 3").unwrap_err();
        assert_eq!(err.offset, 6);
        let err = tokenize("x = 'oops").unwrap_err();
        assert!(err.message.contains("unterminated"));
        let err = tokenize("a ! b").unwrap_err();
        assert!(err.message.contains("!="));
        let err = tokenize("a = -").unwrap_err();
        assert!(err.message.contains("number"));
    }

    #[test]
    fn offsets_are_byte_positions() {
        let toks = tokenize("ab <= 7").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 3);
        assert_eq!(toks[2].offset, 6);
    }
}
