//! A blocking protocol client, used by the CLI, the load generator and the
//! test suites.
//!
//! Requests are synchronous: each `subscribe`/`unsubscribe`/`publish` call
//! sends one frame and reads until the matching `Ack` (or `Error`) with the
//! same request id arrives. `Notify` frames encountered while waiting are
//! buffered and handed out by [`Client::next_notify`], so request/response
//! and the asynchronous delivery stream share one socket without losing
//! either.
//!
//! # Auto-reconnect
//!
//! With a [`ReconnectPolicy`] installed ([`Client::set_reconnect`]), a
//! request that dies on a transport error transparently redials the server
//! with capped exponential backoff plus jitter, resumes the session with
//! the saved token, and retries the request **once** on the fresh
//! connection. The retry makes requests at-least-once across a reconnect
//! (a publish whose ack was lost in flight may apply twice); notifications
//! missed while detached surface as the usual sequence gap. Server-side
//! errors (an expired or unknown session, a protocol refusal) are never
//! retried — only transport failures are.

use crate::frame::{
    Ack, ErrorCode, Frame, FrameError, FrameReader, WireEvent, WirePredicate, NEW_SESSION,
    PROTOCOL_VERSION,
};
use crate::replication::jittered;
use pubsub_types::metrics::Counter;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::thread;
use std::time::Duration;

static RECONNECT_ATTEMPTS: Counter = Counter::new("net.client.reconnect_attempts");
static RECONNECTS: Counter = Counter::new("net.client.reconnects");

/// Opt-in transparent reconnect behaviour (see the module docs).
#[derive(Debug, Clone)]
pub struct ReconnectPolicy {
    /// First redial delay after a transport failure.
    pub initial: Duration,
    /// Redial delay cap (jitter of up to +50% is added on top).
    pub max: Duration,
    /// Redials attempted per outage before the original error surfaces.
    pub attempts: u32,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        Self {
            initial: Duration::from_millis(50),
            max: Duration::from_secs(2),
            attempts: 8,
        }
    }
}

/// A delivered notification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Notification {
    /// Per-session delivery sequence (starts at 1; a gap means deliveries
    /// were shed or missed while detached).
    pub seq: u64,
    /// This session's subscription ids the event matched (sorted).
    pub ids: Vec<u32>,
    /// The matched event.
    pub event: WireEvent,
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (includes the peer hanging up mid-request).
    Io(std::io::Error),
    /// The server's byte stream failed to decode.
    Frame(FrameError),
    /// The server answered a request with [`Frame::Error`].
    Server {
        /// Machine-readable error class.
        code: ErrorCode,
        /// Human-readable detail.
        msg: String,
    },
    /// The server sent a frame that makes no sense at this point of the
    /// conversation (e.g. an ack for a different request).
    Protocol(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "network error: {e}"),
            ClientError::Frame(e) => write!(f, "bad frame from server: {e}"),
            ClientError::Server { code, msg } => write!(f, "server error [{code}]: {msg}"),
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// A connected, handshaken protocol client.
pub struct Client {
    stream: TcpStream,
    reader: FrameReader,
    token: u64,
    resumed: Vec<u32>,
    pending: VecDeque<Notification>,
    next_req: u32,
    buf: [u8; 8192],
    /// The server's address as dialed, for redials.
    addr: SocketAddr,
    reconnect: Option<ReconnectPolicy>,
}

impl Client {
    /// Connects and opens a brand-new session.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Self::handshake(addr, NEW_SESSION)
    }

    /// Connects and resumes the session identified by `token`. On success,
    /// [`Client::resumed`] lists the session's live subscription ids.
    pub fn resume(addr: impl ToSocketAddrs, token: u64) -> Result<Client, ClientError> {
        Self::handshake(addr, token)
    }

    fn handshake(addr: impl ToSocketAddrs, token: u64) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let addr = stream.peer_addr()?;
        let _ = stream.set_nodelay(true);
        let mut client = Client {
            stream,
            reader: FrameReader::new(),
            token: 0,
            resumed: Vec::new(),
            pending: VecDeque::new(),
            next_req: 1,
            buf: [0u8; 8192],
            addr,
            reconnect: None,
        };
        client.send(&Frame::Hello {
            proto: PROTOCOL_VERSION,
            token,
        })?;
        match client.read_frame(None)? {
            Some(Frame::Ack(Ack::Hello { token, resumed })) => {
                client.token = token;
                client.resumed = resumed;
                Ok(client)
            }
            Some(Frame::Error { code, msg, .. }) => Err(ClientError::Server { code, msg }),
            Some(_) => Err(ClientError::Protocol("expected hello ack")),
            None => Err(ClientError::Protocol("idle read without a timeout")),
        }
    }

    /// This session's token (present it to [`Client::resume`] later).
    pub fn token(&self) -> u64 {
        self.token
    }

    /// Subscription ids the server re-attached at resume time (sorted;
    /// empty for a new session).
    pub fn resumed(&self) -> &[u32] {
        &self.resumed
    }

    /// Installs (or clears) the transparent-reconnect policy. See the
    /// module docs for the retry semantics.
    pub fn set_reconnect(&mut self, policy: Option<ReconnectPolicy>) {
        self.reconnect = policy;
    }

    /// Redials the server and resumes this session, backing off per the
    /// installed policy. Fails with the last error when every attempt is
    /// refused, or immediately on a definitive server-side refusal (e.g.
    /// the session was reaped). Requests in flight are not replayed.
    ///
    /// Transport errors *and* [`ErrorCode::Unavailable`] refusals are
    /// retried: a server restarting from its WAL, or a replica mid-promotion,
    /// answers with connection-refused or `Unavailable` for a window, and
    /// the whole point of durable sessions is to resume through it.
    pub fn reconnect_now(&mut self) -> Result<(), ClientError> {
        let Some(policy) = self.reconnect.clone() else {
            return Err(ClientError::Protocol("no reconnect policy installed"));
        };
        let mut backoff = policy.initial;
        let mut last = ClientError::Protocol("reconnect policy allows zero attempts");
        for attempt in 0..policy.attempts {
            RECONNECT_ATTEMPTS.inc();
            match Self::handshake(self.addr, self.token) {
                Ok(fresh) => {
                    RECONNECTS.inc();
                    // Splice the fresh transport in; session identity,
                    // buffered notifications and the request counter are
                    // ours to keep. The fresh handshake re-reports the
                    // resumed subscription ids.
                    self.stream = fresh.stream;
                    self.reader = fresh.reader;
                    self.resumed = fresh.resumed;
                    return Ok(());
                }
                Err(
                    e @ ClientError::Server {
                        code: ErrorCode::Unavailable,
                        ..
                    },
                ) => last = e,
                Err(e @ ClientError::Server { .. }) => return Err(e),
                Err(e) => last = e,
            }
            thread::sleep(jittered(backoff, u64::from(attempt) + 1));
            backoff = (backoff * 2).min(policy.max);
        }
        Err(last)
    }

    /// Runs one request, retrying it once on a fresh connection when the
    /// transport fails and a reconnect policy is installed.
    fn with_retry<T>(
        &mut self,
        mut run: impl FnMut(&mut Self) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        match run(self) {
            Err(ClientError::Io(e)) if self.reconnect.is_some() => {
                match self.reconnect_now() {
                    Ok(()) => run(self),
                    // The server explicitly refused the session (reaped,
                    // unknown): that is the real story, not the transport.
                    Err(refusal @ ClientError::Server { .. }) => Err(refusal),
                    Err(_) => Err(ClientError::Io(e)),
                }
            }
            r => r,
        }
    }

    /// Registers a subscription; returns its server-assigned id.
    pub fn subscribe(&mut self, preds: Vec<WirePredicate>) -> Result<u32, ClientError> {
        self.with_retry(|c| {
            let req = c.fresh_req();
            c.send(&Frame::Subscribe {
                req,
                preds: preds.clone(),
            })?;
            match c.wait_ack(req)? {
                Ack::Subscribe { id, .. } => Ok(id),
                _ => Err(ClientError::Protocol("expected subscribe ack")),
            }
        })
    }

    /// Removes a subscription; returns whether it existed.
    pub fn unsubscribe(&mut self, id: u32) -> Result<bool, ClientError> {
        self.with_retry(|c| {
            let req = c.fresh_req();
            c.send(&Frame::Unsubscribe { req, id })?;
            match c.wait_ack(req)? {
                Ack::Unsubscribe { existed, .. } => Ok(existed),
                _ => Err(ClientError::Protocol("expected unsubscribe ack")),
            }
        })
    }

    /// Publishes an event; returns how many subscriptions it matched
    /// (across all sessions, including in-process subscribers).
    pub fn publish(&mut self, event: WireEvent) -> Result<u32, ClientError> {
        self.with_retry(|c| {
            let req = c.fresh_req();
            c.send(&Frame::Publish {
                req,
                event: event.clone(),
            })?;
            match c.wait_ack(req)? {
                Ack::Publish { matched, .. } => Ok(matched),
                _ => Err(ClientError::Protocol("expected publish ack")),
            }
        })
    }

    /// Round-trips a liveness probe: sends a `Ping` and waits for the
    /// matching `Pong`. Notifications arriving in between are buffered as
    /// usual. Also serves as keep-alive traffic against a server with an
    /// idle deadline configured.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.with_retry(|c| {
            let nonce = u64::from(c.fresh_req());
            c.send(&Frame::Ping { nonce })?;
            loop {
                match c.read_frame(None)? {
                    Some(Frame::Pong { nonce: got }) => {
                        if got != nonce {
                            return Err(ClientError::Protocol("pong with a foreign nonce"));
                        }
                        return Ok(());
                    }
                    Some(Frame::Notify { seq, ids, event }) => {
                        c.pending.push_back(Notification { seq, ids, event });
                    }
                    Some(Frame::Error { code, msg, .. }) => {
                        return Err(ClientError::Server { code, msg })
                    }
                    Some(_) => return Err(ClientError::Protocol("unexpected frame, wanted pong")),
                    None => return Err(ClientError::Protocol("idle read without a timeout")),
                }
            }
        })
    }

    /// Returns the next notification, waiting up to `timeout`. `Ok(None)`
    /// means the timeout elapsed with no notification. With a reconnect
    /// policy installed, a transport failure resumes the session and
    /// reports quiet (`Ok(None)`) — deliveries the server attempted during
    /// the outage are connection-era state and are not replayed.
    pub fn next_notify(&mut self, timeout: Duration) -> Result<Option<Notification>, ClientError> {
        if let Some(n) = self.pending.pop_front() {
            return Ok(Some(n));
        }
        match self.read_frame(Some(timeout)) {
            Ok(Some(Frame::Notify { seq, ids, event })) => {
                Ok(Some(Notification { seq, ids, event }))
            }
            Ok(Some(Frame::Error { code, msg, .. })) => Err(ClientError::Server { code, msg }),
            Ok(Some(_)) => Err(ClientError::Protocol("unexpected ack while idle")),
            Ok(None) => Ok(None),
            Err(ClientError::Io(e)) if self.reconnect.is_some() => match self.reconnect_now() {
                Ok(()) => Ok(None),
                // The session itself is gone: surface that, not the socket.
                Err(refusal @ ClientError::Server { .. }) => Err(refusal),
                Err(_) => Err(ClientError::Io(e)),
            },
            Err(e) => Err(e),
        }
    }

    /// Drains every notification that arrives within `idle`: returns once
    /// the stream has been quiet for that long (or closed).
    pub fn drain_notifies(&mut self, idle: Duration) -> Result<Vec<Notification>, ClientError> {
        let mut out = Vec::new();
        loop {
            match self.next_notify(idle) {
                Ok(Some(n)) => out.push(n),
                Ok(None) => return Ok(out),
                // EOF while draining is fine: the server closed after
                // flushing, and we keep what we got.
                Err(ClientError::Io(e)) if e.kind() == ErrorKind::UnexpectedEof => return Ok(out),
                Err(e) => return Err(e),
            }
        }
    }

    /// Writes raw bytes to the socket — adversarial tests use this to
    /// speak garbage at the server.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        Ok(())
    }

    /// The underlying socket (tests shut down halves to model partial
    /// failures).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    fn fresh_req(&mut self) -> u32 {
        let req = self.next_req;
        self.next_req += 1;
        req
    }

    fn send(&mut self, frame: &Frame) -> Result<(), ClientError> {
        self.stream.write_all(&frame.to_bytes())?;
        Ok(())
    }

    /// Reads until the ack (or error) for request `req` arrives, buffering
    /// notifications seen on the way.
    fn wait_ack(&mut self, req: u32) -> Result<Ack, ClientError> {
        loop {
            match self.read_frame(None)? {
                Some(Frame::Ack(ack)) => {
                    let ack_req = match &ack {
                        Ack::Hello { .. } => {
                            return Err(ClientError::Protocol("unexpected hello ack"))
                        }
                        Ack::Subscribe { req, .. }
                        | Ack::Unsubscribe { req, .. }
                        | Ack::Publish { req, .. } => *req,
                    };
                    if ack_req != req {
                        return Err(ClientError::Protocol("ack for a different request"));
                    }
                    return Ok(ack);
                }
                Some(Frame::Notify { seq, ids, event }) => {
                    self.pending.push_back(Notification { seq, ids, event });
                }
                Some(Frame::Error {
                    req: ereq,
                    code,
                    msg,
                }) => {
                    if ereq == req || ereq == 0 {
                        return Err(ClientError::Server { code, msg });
                    }
                    return Err(ClientError::Protocol("error for a different request"));
                }
                Some(_) => return Err(ClientError::Protocol("unexpected frame")),
                None => return Err(ClientError::Protocol("idle read without a timeout")),
            }
        }
    }

    /// Reads one frame. `timeout` `None` blocks until a frame or EOF;
    /// `Some` returns `Ok(None)` when it elapses first. EOF surfaces as an
    /// [`ErrorKind::UnexpectedEof`] I/O error.
    ///
    /// A `WouldBlock` with no timeout configured is a spurious wakeup (a
    /// stale `O_NONBLOCK`, a signal, a kernel quirk) — retried after a
    /// short pause, never surfaced. This used to be an `unreachable!`,
    /// which a socket flipped to non-blocking mode turned into a panic.
    fn read_frame(&mut self, timeout: Option<Duration>) -> Result<Option<Frame>, ClientError> {
        loop {
            if let Some(frame) = self.reader.next_frame()? {
                return Ok(Some(frame));
            }
            self.stream.set_read_timeout(timeout)?;
            match self.stream.read(&mut self.buf) {
                Ok(0) => {
                    return Err(ClientError::Io(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )))
                }
                Ok(n) => self.reader.extend(&self.buf[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    if timeout.is_none() {
                        thread::sleep(Duration::from_millis(1));
                        continue;
                    }
                    return Ok(None);
                }
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }
}
