//! The wire protocol: typed frames and their binary encoding.
//!
//! Every message on a broker connection is one **frame**, framed exactly
//! like a `pubsub-durability` WAL record:
//!
//! ```text
//! [u32 payload_len (LE)] [u32 crc32c(payload) (LE)] [payload]
//! ```
//!
//! The payload is a one-byte frame tag followed by the frame body, encoded
//! with the [`pubsub_types::codec`] primitives (fixed-width little-endian
//! integers, length-prefixed UTF-8 strings, one-byte enum tags). The CRC
//! makes a frame self-validating: a flipped bit anywhere in the payload is
//! detected before the decoder runs, and the length prefix is bounded by
//! [`MAX_FRAME_BYTES`] so a corrupt or hostile prefix can never make the
//! receiver allocate or buffer gigabytes.
//!
//! Attributes and string values travel as **names**, not interned ids:
//! client and server do not share a [`pubsub_types::Vocabulary`], so the
//! server interns on receipt (and the ids it assigns never leak onto the
//! wire, except subscription ids, which are the protocol's handles).
//!
//! Decoding is total: any byte sequence either yields a frame, asks for
//! more bytes, or reports a typed [`FrameError`] — never a panic and never
//! an unbounded allocation. The adversarial suite in
//! `crates/net/tests/protocol.rs` holds the decoder to that contract.

use pubsub_types::codec::{self, Reader};
use pubsub_types::{CodecError, Operator};

/// Protocol version carried in [`Frame::Hello`]. Bumped on any
/// wire-incompatible change; the server rejects other versions.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on a frame payload. Generous for real traffic (the largest
/// legitimate frame is a subscription of a few dozen predicates or an event
/// batch of a few KiB) and small enough that a corrupt length prefix cannot
/// balloon the receive buffer.
pub const MAX_FRAME_BYTES: u32 = 1024 * 1024;

/// Bytes of framing overhead per frame (`len` + `crc`).
pub const FRAME_HEADER_BYTES: usize = 8;

/// Token value a [`Frame::Hello`] carries to request a brand-new session.
pub const NEW_SESSION: u64 = 0;

const TAG_HELLO: u8 = 1;
const TAG_SUBSCRIBE: u8 = 2;
const TAG_UNSUBSCRIBE: u8 = 3;
const TAG_PUBLISH: u8 = 4;
const TAG_NOTIFY: u8 = 5;
const TAG_ACK: u8 = 6;
const TAG_ERROR: u8 = 7;
const TAG_REPL_HELLO: u8 = 8;
const TAG_REPL_SEGMENT: u8 = 9;
const TAG_REPL_RECORDS: u8 = 10;
const TAG_REPL_SNAPSHOT: u8 = 11;
const TAG_REPL_LAG: u8 = 12;
const TAG_PING: u8 = 13;
const TAG_PONG: u8 = 14;

const ACK_HELLO: u8 = 1;
const ACK_SUBSCRIBE: u8 = 2;
const ACK_UNSUBSCRIBE: u8 = 3;
const ACK_PUBLISH: u8 = 4;

const VALUE_INT: u8 = 0;
const VALUE_STR: u8 = 1;

/// A value as it travels on the wire: integers verbatim, strings by name
/// (the server interns them into its vocabulary on receipt).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireValue {
    /// A 64-bit signed integer.
    Int(i64),
    /// A string value, carried uninterned.
    Str(String),
}

/// One predicate of a wire subscription: `(attribute name, operator, value)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WirePredicate {
    /// Attribute name (interned server-side).
    pub attr: String,
    /// Comparison operator.
    pub op: Operator,
    /// Comparison constant.
    pub value: WireValue,
}

/// An event as it travels on the wire: `(attribute name, value)` pairs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WireEvent {
    /// The event's pairs, in client order (the server canonicalises).
    pub pairs: Vec<(String, WireValue)>,
}

/// Error codes carried by [`Frame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame stream was malformed (bad CRC, bad tag, truncated body);
    /// the server closes the connection after sending this.
    BadFrame,
    /// The handshake failed: first frame was not `Hello`, or the protocol
    /// version is unsupported. Connection-fatal.
    BadHandshake,
    /// A `Hello` named a session token this server has never issued.
    UnknownSession,
    /// The request was well-formed but semantically invalid (empty
    /// subscription, duplicate event attribute, foreign subscription id).
    BadRequest,
    /// The server refused the request because a durable broker is in
    /// read-only degraded mode.
    Unavailable,
    /// An unexpected server-side failure.
    Internal,
}

impl ErrorCode {
    fn to_byte(self) -> u8 {
        match self {
            ErrorCode::BadFrame => 1,
            ErrorCode::BadHandshake => 2,
            ErrorCode::UnknownSession => 3,
            ErrorCode::BadRequest => 4,
            ErrorCode::Unavailable => 5,
            ErrorCode::Internal => 6,
        }
    }

    fn from_byte(b: u8) -> Result<Self, CodecError> {
        Ok(match b {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::BadHandshake,
            3 => ErrorCode::UnknownSession,
            4 => ErrorCode::BadRequest,
            5 => ErrorCode::Unavailable,
            6 => ErrorCode::Internal,
            tag => {
                return Err(CodecError::BadTag {
                    what: "error code",
                    tag,
                })
            }
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::BadHandshake => "bad-handshake",
            ErrorCode::UnknownSession => "unknown-session",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::Unavailable => "unavailable",
            ErrorCode::Internal => "internal",
        };
        f.write_str(s)
    }
}

/// A server acknowledgement, one variant per acknowledged request kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ack {
    /// Handshake accepted. `resumed` lists the session's live subscription
    /// ids (sorted, exactly once each) — empty for a brand-new session.
    Hello {
        /// The session token to present on reconnect.
        token: u64,
        /// Live subscription ids re-attached to this connection.
        resumed: Vec<u32>,
    },
    /// Subscription registered under `id`.
    Subscribe {
        /// Echo of the client's request id.
        req: u32,
        /// The broker-assigned subscription id.
        id: u32,
    },
    /// Unsubscription processed; `existed` is false for an id that was
    /// already gone (idempotent removal, mirroring the broker API).
    Unsubscribe {
        /// Echo of the client's request id.
        req: u32,
        /// Whether the subscription existed.
        existed: bool,
    },
    /// Event matched and notifications enqueued.
    Publish {
        /// Echo of the client's request id.
        req: u32,
        /// Total subscriptions the event matched (across all sessions).
        matched: u32,
    },
}

/// One protocol message.
///
/// `Hello`, `Subscribe`, `Unsubscribe` and `Publish` travel client→server;
/// `Notify`, `Ack` and `Error` travel server→client. The decoder accepts
/// all seven in either direction (the direction check is the server's and
/// client's job — a `Notify` sent *to* the server is a `BadRequest`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Opens (token = [`NEW_SESSION`]) or resumes (token ≠ 0) a session.
    /// Must be the first frame on every connection.
    Hello {
        /// Protocol version ([`PROTOCOL_VERSION`]).
        proto: u32,
        /// Session token from a previous `Ack::Hello`, or [`NEW_SESSION`].
        token: u64,
    },
    /// Registers a conjunctive subscription owned by this session.
    Subscribe {
        /// Client-chosen request id, echoed in the matching ack/error.
        req: u32,
        /// The subscription's predicates (non-empty, no exact duplicates).
        preds: Vec<WirePredicate>,
    },
    /// Removes one of this session's subscriptions.
    Unsubscribe {
        /// Client-chosen request id.
        req: u32,
        /// The subscription id to remove (must belong to this session).
        id: u32,
    },
    /// Publishes an event to the broker.
    Publish {
        /// Client-chosen request id.
        req: u32,
        /// The event.
        event: WireEvent,
    },
    /// Delivers a matched event to a subscriber session. `seq` increases by
    /// one per notify within a session — a gap tells the client deliveries
    /// were shed, a repeat is a protocol violation.
    Notify {
        /// Per-session delivery sequence number (starts at 1).
        seq: u64,
        /// This session's subscription ids the event matched (sorted).
        ids: Vec<u32>,
        /// The matched event, echoed with names.
        event: WireEvent,
    },
    /// A positive acknowledgement.
    Ack(Ack),
    /// A request- or connection-level failure. `req` 0 means the error is
    /// not tied to one request (handshake/stream errors).
    Error {
        /// The failed request id, or 0.
        req: u32,
        /// Machine-readable error class.
        code: ErrorCode,
        /// Human-readable detail.
        msg: String,
    },
    /// Opens a **replication** connection: sent by a follower as the *first*
    /// frame instead of `Hello`, turning the connection into a one-way WAL
    /// stream (leader → follower). The leader answers with `ReplSegment`,
    /// `ReplRecords`, `ReplSnapshot` and `ReplLag` frames; no other frame
    /// kind travels on a replication connection.
    ReplHello {
        /// Protocol version ([`PROTOCOL_VERSION`]).
        proto: u32,
        /// The LSN the follower's local log will append next — streaming
        /// starts here.
        from_lsn: u64,
    },
    /// Announces that subsequent `ReplRecords` come from the leader segment
    /// whose first LSN is `first_lsn` (observability; the record stream
    /// itself is dense across segments).
    ReplSegment {
        /// First LSN of the segment now being streamed.
        first_lsn: u64,
    },
    /// A batch of raw WAL record payloads with dense LSNs starting at
    /// `first_lsn`, exactly the bytes the leader's `WalOp::encode` produced
    /// (the follower re-frames them into its own log, keeping both logs
    /// bit-comparable).
    ReplRecords {
        /// LSN of the first payload; the rest follow densely.
        first_lsn: u64,
        /// Raw record payloads in LSN order.
        payloads: Vec<Vec<u8>>,
    },
    /// One chunk of a catch-up snapshot transfer (the follower's position
    /// predates the leader's oldest retained segment). Chunks arrive in
    /// offset order; the transfer is complete when `offset + chunk.len() ==
    /// total_len`, after which the follower validates the assembled bytes
    /// (magic, CRC, LSN) and installs them, resuming records at `lsn`.
    ReplSnapshot {
        /// The LSN the snapshot covers.
        lsn: u64,
        /// Total byte length of the snapshot file.
        total_len: u64,
        /// Byte offset of this chunk within the file.
        offset: u64,
        /// The chunk bytes.
        chunk: Vec<u8>,
    },
    /// Leader heartbeat while the follower is caught up: carries the LSN
    /// the leader will append next, letting the follower export an exact
    /// lag watermark even when no records flow.
    ReplLag {
        /// The leader's next append LSN.
        leader_next_lsn: u64,
    },
    /// Client liveness probe. Valid at any point on a client connection —
    /// even before the handshake — and answered immediately with a `Pong`
    /// echoing the nonce. Pings also count as activity for the server's
    /// idle-deadline reaper, so a subscriber that only listens can stay
    /// attached by pinging.
    Ping {
        /// Opaque value echoed in the matching `Pong`.
        nonce: u64,
    },
    /// The server's answer to a [`Frame::Ping`].
    Pong {
        /// The nonce from the ping being answered.
        nonce: u64,
    },
}

/// Errors produced by the frame decoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds [`MAX_FRAME_BYTES`]; the stream is
    /// unrecoverable (framing is lost) and the connection must close.
    TooLarge {
        /// The advertised payload length.
        len: u32,
        /// The configured bound.
        max: u32,
    },
    /// The payload failed its checksum; the stream is unrecoverable.
    BadCrc {
        /// CRC from the frame header.
        expected: u32,
        /// CRC computed over the received payload.
        actual: u32,
    },
    /// The checksummed payload did not decode as a frame (bad tag,
    /// truncated body, trailing bytes, invalid UTF-8).
    Codec(CodecError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLarge { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte bound")
            }
            FrameError::BadCrc { expected, actual } => {
                write!(
                    f,
                    "frame checksum mismatch (header {expected:#010x}, payload {actual:#010x})"
                )
            }
            FrameError::Codec(e) => write!(f, "frame payload invalid: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<CodecError> for FrameError {
    fn from(e: CodecError) -> Self {
        FrameError::Codec(e)
    }
}

fn put_wire_value(out: &mut Vec<u8>, v: &WireValue) {
    match v {
        WireValue::Int(i) => {
            out.push(VALUE_INT);
            codec::put_i64(out, *i);
        }
        WireValue::Str(s) => {
            out.push(VALUE_STR);
            codec::put_str(out, s);
        }
    }
}

fn get_wire_value(r: &mut Reader<'_>) -> Result<WireValue, CodecError> {
    match r.u8()? {
        VALUE_INT => Ok(WireValue::Int(r.i64()?)),
        VALUE_STR => Ok(WireValue::Str(r.str()?.to_string())),
        tag => Err(CodecError::BadTag {
            what: "wire value",
            tag,
        }),
    }
}

/// Guards a count prefix against hostile values: every encoded element is
/// at least one byte, so a count exceeding the remaining payload is corrupt
/// and must be rejected *before* any allocation sized by it.
fn checked_count(r: &Reader<'_>, n: u32) -> Result<usize, CodecError> {
    let n = n as usize;
    if n > r.remaining() {
        return Err(CodecError::ShortRead {
            needed: n - r.remaining(),
        });
    }
    Ok(n)
}

fn put_wire_event(out: &mut Vec<u8>, event: &WireEvent) {
    codec::put_u32(out, event.pairs.len() as u32);
    for (attr, value) in &event.pairs {
        codec::put_str(out, attr);
        put_wire_value(out, value);
    }
}

fn get_wire_event(r: &mut Reader<'_>) -> Result<WireEvent, CodecError> {
    let count = r.u32()?;
    let n = checked_count(r, count)?;
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        let attr = r.str()?.to_string();
        let value = get_wire_value(r)?;
        pairs.push((attr, value));
    }
    Ok(WireEvent { pairs })
}

impl Frame {
    /// Encodes this frame's payload (tag byte + body) into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Hello { proto, token } => {
                out.push(TAG_HELLO);
                codec::put_u32(out, *proto);
                codec::put_u64(out, *token);
            }
            Frame::Subscribe { req, preds } => {
                out.push(TAG_SUBSCRIBE);
                codec::put_u32(out, *req);
                codec::put_u32(out, preds.len() as u32);
                for p in preds {
                    codec::put_str(out, &p.attr);
                    codec::put_operator(out, p.op);
                    put_wire_value(out, &p.value);
                }
            }
            Frame::Unsubscribe { req, id } => {
                out.push(TAG_UNSUBSCRIBE);
                codec::put_u32(out, *req);
                codec::put_u32(out, *id);
            }
            Frame::Publish { req, event } => {
                out.push(TAG_PUBLISH);
                codec::put_u32(out, *req);
                put_wire_event(out, event);
            }
            Frame::Notify { seq, ids, event } => {
                out.push(TAG_NOTIFY);
                codec::put_u64(out, *seq);
                codec::put_u32(out, ids.len() as u32);
                for id in ids {
                    codec::put_u32(out, *id);
                }
                put_wire_event(out, event);
            }
            Frame::Ack(ack) => {
                out.push(TAG_ACK);
                match ack {
                    Ack::Hello { token, resumed } => {
                        out.push(ACK_HELLO);
                        codec::put_u64(out, *token);
                        codec::put_u32(out, resumed.len() as u32);
                        for id in resumed {
                            codec::put_u32(out, *id);
                        }
                    }
                    Ack::Subscribe { req, id } => {
                        out.push(ACK_SUBSCRIBE);
                        codec::put_u32(out, *req);
                        codec::put_u32(out, *id);
                    }
                    Ack::Unsubscribe { req, existed } => {
                        out.push(ACK_UNSUBSCRIBE);
                        codec::put_u32(out, *req);
                        out.push(u8::from(*existed));
                    }
                    Ack::Publish { req, matched } => {
                        out.push(ACK_PUBLISH);
                        codec::put_u32(out, *req);
                        codec::put_u32(out, *matched);
                    }
                }
            }
            Frame::Error { req, code, msg } => {
                out.push(TAG_ERROR);
                codec::put_u32(out, *req);
                out.push(code.to_byte());
                codec::put_str(out, msg);
            }
            Frame::ReplHello { proto, from_lsn } => {
                out.push(TAG_REPL_HELLO);
                codec::put_u32(out, *proto);
                codec::put_u64(out, *from_lsn);
            }
            Frame::ReplSegment { first_lsn } => {
                out.push(TAG_REPL_SEGMENT);
                codec::put_u64(out, *first_lsn);
            }
            Frame::ReplRecords {
                first_lsn,
                payloads,
            } => {
                out.push(TAG_REPL_RECORDS);
                codec::put_u64(out, *first_lsn);
                codec::put_u32(out, payloads.len() as u32);
                for p in payloads {
                    codec::put_bytes(out, p);
                }
            }
            Frame::ReplSnapshot {
                lsn,
                total_len,
                offset,
                chunk,
            } => {
                out.push(TAG_REPL_SNAPSHOT);
                codec::put_u64(out, *lsn);
                codec::put_u64(out, *total_len);
                codec::put_u64(out, *offset);
                codec::put_bytes(out, chunk);
            }
            Frame::ReplLag { leader_next_lsn } => {
                out.push(TAG_REPL_LAG);
                codec::put_u64(out, *leader_next_lsn);
            }
            Frame::Ping { nonce } => {
                out.push(TAG_PING);
                codec::put_u64(out, *nonce);
            }
            Frame::Pong { nonce } => {
                out.push(TAG_PONG);
                codec::put_u64(out, *nonce);
            }
        }
    }

    /// Decodes a payload produced by [`Frame::encode`]. Rejects trailing
    /// garbage — a payload must be exactly one frame.
    pub fn decode(payload: &[u8]) -> Result<Frame, CodecError> {
        let mut r = Reader::new(payload);
        let frame = match r.u8()? {
            TAG_HELLO => Frame::Hello {
                proto: r.u32()?,
                token: r.u64()?,
            },
            TAG_SUBSCRIBE => {
                let req = r.u32()?;
                let count = r.u32()?;
                let n = checked_count(&r, count)?;
                let mut preds = Vec::with_capacity(n);
                for _ in 0..n {
                    let attr = r.str()?.to_string();
                    let op = codec::get_operator(&mut r)?;
                    let value = get_wire_value(&mut r)?;
                    preds.push(WirePredicate { attr, op, value });
                }
                Frame::Subscribe { req, preds }
            }
            TAG_UNSUBSCRIBE => Frame::Unsubscribe {
                req: r.u32()?,
                id: r.u32()?,
            },
            TAG_PUBLISH => Frame::Publish {
                req: r.u32()?,
                event: get_wire_event(&mut r)?,
            },
            TAG_NOTIFY => {
                let seq = r.u64()?;
                let count = r.u32()?;
                let n = checked_count(&r, count)?;
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(r.u32()?);
                }
                Frame::Notify {
                    seq,
                    ids,
                    event: get_wire_event(&mut r)?,
                }
            }
            TAG_ACK => {
                let ack = match r.u8()? {
                    ACK_HELLO => {
                        let token = r.u64()?;
                        let count = r.u32()?;
                        let n = checked_count(&r, count)?;
                        let mut resumed = Vec::with_capacity(n);
                        for _ in 0..n {
                            resumed.push(r.u32()?);
                        }
                        Ack::Hello { token, resumed }
                    }
                    ACK_SUBSCRIBE => Ack::Subscribe {
                        req: r.u32()?,
                        id: r.u32()?,
                    },
                    ACK_UNSUBSCRIBE => {
                        let req = r.u32()?;
                        let existed = match r.u8()? {
                            0 => false,
                            1 => true,
                            tag => {
                                return Err(CodecError::BadTag {
                                    what: "ack existed flag",
                                    tag,
                                })
                            }
                        };
                        Ack::Unsubscribe { req, existed }
                    }
                    ACK_PUBLISH => Ack::Publish {
                        req: r.u32()?,
                        matched: r.u32()?,
                    },
                    tag => return Err(CodecError::BadTag { what: "ack", tag }),
                };
                Frame::Ack(ack)
            }
            TAG_ERROR => Frame::Error {
                req: r.u32()?,
                code: ErrorCode::from_byte(r.u8()?)?,
                msg: r.str()?.to_string(),
            },
            TAG_REPL_HELLO => Frame::ReplHello {
                proto: r.u32()?,
                from_lsn: r.u64()?,
            },
            TAG_REPL_SEGMENT => Frame::ReplSegment {
                first_lsn: r.u64()?,
            },
            TAG_REPL_RECORDS => {
                let first_lsn = r.u64()?;
                let count = r.u32()?;
                let n = checked_count(&r, count)?;
                let mut payloads = Vec::with_capacity(n);
                for _ in 0..n {
                    payloads.push(r.bytes()?.to_vec());
                }
                Frame::ReplRecords {
                    first_lsn,
                    payloads,
                }
            }
            TAG_REPL_SNAPSHOT => Frame::ReplSnapshot {
                lsn: r.u64()?,
                total_len: r.u64()?,
                offset: r.u64()?,
                chunk: r.bytes()?.to_vec(),
            },
            TAG_REPL_LAG => Frame::ReplLag {
                leader_next_lsn: r.u64()?,
            },
            TAG_PING => Frame::Ping { nonce: r.u64()? },
            TAG_PONG => Frame::Pong { nonce: r.u64()? },
            tag => return Err(CodecError::BadTag { what: "frame", tag }),
        };
        if !r.is_empty() {
            return Err(CodecError::BadTag {
                what: "frame trailing bytes",
                tag: 0,
            });
        }
        Ok(frame)
    }

    /// Appends this frame as a complete wire record (`len`, `crc`, payload)
    /// to `out`, reusing its capacity.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        let header = out.len();
        out.extend_from_slice(&[0u8; FRAME_HEADER_BYTES]);
        self.encode(out);
        let payload_len = (out.len() - header - FRAME_HEADER_BYTES) as u32;
        let crc = codec::crc32c(&out[header + FRAME_HEADER_BYTES..]);
        out[header..header + 4].copy_from_slice(&payload_len.to_le_bytes());
        out[header + 4..header + 8].copy_from_slice(&crc.to_le_bytes());
    }

    /// This frame as a standalone wire record.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_to(&mut out);
        out
    }
}

/// An incremental frame decoder over a byte stream.
///
/// Feed arbitrary chunks with [`FrameReader::extend`]; pull complete frames
/// with [`FrameReader::next_frame`]. The reader holds at most one frame
/// header plus one bounded payload ([`MAX_FRAME_BYTES`], or the lower bound
/// passed to [`FrameReader::with_max`]) of buffered bytes per pending
/// frame, compacting consumed prefixes, so a peer can never grow the buffer
/// without bound. Any error is terminal: framing is lost, and the owner
/// must drop the connection.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Consumed prefix, compacted away once it outgrows the live suffix.
    start: usize,
    max: u32,
}

impl FrameReader {
    /// A reader enforcing the default [`MAX_FRAME_BYTES`] bound.
    pub fn new() -> Self {
        Self::with_max(MAX_FRAME_BYTES)
    }

    /// A reader enforcing a custom payload bound (tests use tiny bounds to
    /// exercise the limit without megabyte inputs).
    pub fn with_max(max: u32) -> Self {
        Self {
            buf: Vec::new(),
            start: 0,
            max,
        }
    }

    /// Appends received bytes to the buffer.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a decoded frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Decodes the next complete frame, if the buffer holds one.
    ///
    /// Returns `Ok(None)` when more bytes are needed. Errors are terminal:
    /// the byte stream no longer has a trustworthy frame boundary.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        let live = &self.buf[self.start..];
        if live.len() < FRAME_HEADER_BYTES {
            return Ok(None);
        }
        let len = u32::from_le_bytes(live[0..4].try_into().expect("4 bytes"));
        if len > self.max {
            return Err(FrameError::TooLarge { len, max: self.max });
        }
        let total = FRAME_HEADER_BYTES + len as usize;
        if live.len() < total {
            return Ok(None);
        }
        let expected = u32::from_le_bytes(live[4..8].try_into().expect("4 bytes"));
        let payload = &live[FRAME_HEADER_BYTES..total];
        let actual = codec::crc32c(payload);
        if actual != expected {
            return Err(FrameError::BadCrc { expected, actual });
        }
        let frame = Frame::decode(payload)?;
        self.start += total;
        // Compact once the dead prefix dominates, keeping amortised O(1)
        // copying while never holding more than ~2× the live bytes.
        if self.start > self.buf.len() - self.start {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                proto: PROTOCOL_VERSION,
                token: NEW_SESSION,
            },
            Frame::Subscribe {
                req: 7,
                preds: vec![
                    WirePredicate {
                        attr: "price".into(),
                        op: Operator::Le,
                        value: WireValue::Int(10),
                    },
                    WirePredicate {
                        attr: "movie".into(),
                        op: Operator::Eq,
                        value: WireValue::Str("groundhog day".into()),
                    },
                ],
            },
            Frame::Unsubscribe { req: 8, id: 3 },
            Frame::Publish {
                req: 9,
                event: WireEvent {
                    pairs: vec![
                        ("price".into(), WireValue::Int(8)),
                        ("movie".into(), WireValue::Str("groundhog day".into())),
                    ],
                },
            },
            Frame::Notify {
                seq: 41,
                ids: vec![3, 9, 12],
                event: WireEvent {
                    pairs: vec![("price".into(), WireValue::Int(8))],
                },
            },
            Frame::Ack(Ack::Hello {
                token: 0xDEAD_BEEF,
                resumed: vec![1, 2, 3],
            }),
            Frame::Ack(Ack::Subscribe { req: 7, id: 3 }),
            Frame::Ack(Ack::Unsubscribe {
                req: 8,
                existed: true,
            }),
            Frame::Ack(Ack::Publish {
                req: 9,
                matched: 17,
            }),
            Frame::Error {
                req: 0,
                code: ErrorCode::BadHandshake,
                msg: "first frame must be Hello".into(),
            },
            Frame::ReplHello {
                proto: PROTOCOL_VERSION,
                from_lsn: 42,
            },
            Frame::ReplSegment { first_lsn: 40 },
            Frame::ReplRecords {
                first_lsn: 42,
                payloads: vec![vec![1, 2, 3], vec![], vec![0xFF; 32]],
            },
            Frame::ReplSnapshot {
                lsn: 40,
                total_len: 1000,
                offset: 512,
                chunk: vec![9; 100],
            },
            Frame::ReplLag {
                leader_next_lsn: 45,
            },
            Frame::Ping { nonce: 0xCAFE },
            Frame::Pong { nonce: u64::MAX },
        ]
    }

    #[test]
    fn frames_round_trip() {
        for frame in sample_frames() {
            let mut payload = Vec::new();
            frame.encode(&mut payload);
            assert_eq!(Frame::decode(&payload).unwrap(), frame);
        }
    }

    #[test]
    fn reader_reassembles_byte_by_byte() {
        let frames = sample_frames();
        let mut stream = Vec::new();
        for f in &frames {
            f.write_to(&mut stream);
        }
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        for &b in &stream {
            reader.extend(&[b]);
            while let Some(f) = reader.next_frame().unwrap() {
                out.push(f);
            }
        }
        assert_eq!(out, frames);
        assert_eq!(reader.pending(), 0);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_buffering() {
        let mut reader = FrameReader::new();
        let mut bytes = (MAX_FRAME_BYTES + 1).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 4]);
        reader.extend(&bytes);
        assert_eq!(
            reader.next_frame(),
            Err(FrameError::TooLarge {
                len: MAX_FRAME_BYTES + 1,
                max: MAX_FRAME_BYTES
            })
        );
    }

    #[test]
    fn corrupt_crc_is_rejected() {
        let mut bytes = sample_frames()[1].to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let mut reader = FrameReader::new();
        reader.extend(&bytes);
        assert!(matches!(
            reader.next_frame(),
            Err(FrameError::BadCrc { .. })
        ));
    }

    #[test]
    fn trailing_garbage_in_payload_is_rejected() {
        let mut payload = Vec::new();
        Frame::Unsubscribe { req: 1, id: 2 }.encode(&mut payload);
        payload.push(0xFF);
        assert!(Frame::decode(&payload).is_err());
    }

    #[test]
    fn hostile_count_prefixes_do_not_allocate() {
        // A Subscribe frame advertising u32::MAX predicates with no bytes
        // behind them must fail as a short read before any allocation.
        let mut payload = vec![TAG_SUBSCRIBE];
        codec::put_u32(&mut payload, 1);
        codec::put_u32(&mut payload, u32::MAX);
        assert!(matches!(
            Frame::decode(&payload),
            Err(CodecError::ShortRead { .. })
        ));
        // Same for Notify's id list and the event pair count.
        let mut payload = vec![TAG_NOTIFY];
        codec::put_u64(&mut payload, 1);
        codec::put_u32(&mut payload, u32::MAX);
        assert!(matches!(
            Frame::decode(&payload),
            Err(CodecError::ShortRead { .. })
        ));
        // And for a replication batch's payload count and a snapshot
        // chunk's length prefix.
        let mut payload = vec![TAG_REPL_RECORDS];
        codec::put_u64(&mut payload, 0);
        codec::put_u32(&mut payload, u32::MAX);
        assert!(matches!(
            Frame::decode(&payload),
            Err(CodecError::ShortRead { .. })
        ));
        let mut payload = vec![TAG_REPL_SNAPSHOT];
        codec::put_u64(&mut payload, 0);
        codec::put_u64(&mut payload, u32::MAX as u64);
        codec::put_u64(&mut payload, 0);
        codec::put_u32(&mut payload, u32::MAX); // chunk length with no bytes
        assert!(matches!(
            Frame::decode(&payload),
            Err(CodecError::ShortRead { .. })
        ));
    }

    #[test]
    fn reader_compacts_consumed_prefixes() {
        let frame = Frame::Unsubscribe { req: 1, id: 2 };
        let bytes = frame.to_bytes();
        let mut reader = FrameReader::new();
        for _ in 0..1000 {
            reader.extend(&bytes);
            assert_eq!(reader.next_frame().unwrap(), Some(frame.clone()));
        }
        // The buffer must stay near one frame, not grow toward 1000 frames.
        assert!(reader.buf.len() < 4 * bytes.len(), "{}", reader.buf.len());
    }
}
