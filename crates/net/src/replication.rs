//! The follower side of WAL-shipping replication.
//!
//! A [`Follower`] owns a background thread that keeps a read-only
//! follower broker ([`pubsub_broker::SharedBroker::open_follower`])
//! synchronized with a remote leader served by [`crate::Server`]:
//!
//! 1. **Connect** to the leader and send `ReplHello` carrying the local
//!    log's append position — the exact LSN streaming must resume from.
//! 2. **Catch up**: if the leader already compacted that position away it
//!    ships a chunked `ReplSnapshot`, which is assembled, size-guarded and
//!    installed atomically; streaming resumes from the snapshot's LSN.
//! 3. **Stream**: `ReplRecords` batches are applied write-ahead through
//!    [`pubsub_broker::SharedBroker::apply_replicated`]; `ReplLag`
//!    heartbeats carry the leader's append position, making the exact
//!    replication lag observable at all times.
//!
//! # Robustness contract
//!
//! Disconnects are *normal*: the thread reconnects forever with capped
//! exponential backoff plus jitter, re-announcing its own append position
//! each time — a half-applied batch or a torn tail on the leader simply
//! re-streams. When the leader stays unreachable past
//! [`FollowerConfig::degraded_after`], the follower flips a **sticky
//! stale flag** ([`ReplStatus::stale`]): matching keeps serving the last
//! replicated state, and the flag only clears once the follower is back in
//! contact *and* caught up to the leader's append position. Promotion
//! ([`Follower::promote`]) stops the stream and makes the local broker
//! writable; replicated subscription ids are preserved, so ids issued by
//! the dead leader are never reissued.

use crate::frame::{Frame, FrameReader, PROTOCOL_VERSION};
use parking_lot::Mutex;
use pubsub_broker::{BrokerError, SharedBroker};
use pubsub_durability::Lsn;
use pubsub_types::faults::{self, points, FaultAction};
use pubsub_types::metrics::Counter;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

static CONNECTS: Counter = Counter::new("net.follower.connects");
static RECONNECT_ATTEMPTS: Counter = Counter::new("net.follower.reconnect_attempts");
static RECORDS_APPLIED: Counter = Counter::new("net.follower.records_applied");
static SNAPSHOTS_INSTALLED: Counter = Counter::new("net.follower.snapshots_installed");

/// Sentinel for "leader's append position not heard yet".
const UNKNOWN: u64 = u64::MAX;

/// Tuning for the follower's reconnect and staleness behaviour.
#[derive(Debug, Clone)]
pub struct FollowerConfig {
    /// First reconnect delay after a stream breaks.
    pub backoff_initial: Duration,
    /// Reconnect delay cap (jitter of up to +50% is added on top).
    pub backoff_max: Duration,
    /// With no leader contact for this long, [`ReplStatus::stale`] flips
    /// on (sticky until back in contact *and* caught up).
    pub degraded_after: Duration,
    /// Largest snapshot transfer accepted, guarding memory against a
    /// hostile or confused leader.
    pub max_snapshot_bytes: u64,
    /// How long each connection attempt may take before it counts as a
    /// failure and backs off.
    pub connect_timeout: Duration,
}

impl Default for FollowerConfig {
    fn default() -> Self {
        Self {
            backoff_initial: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
            degraded_after: Duration::from_secs(5),
            max_snapshot_bytes: 64 * 1024 * 1024,
            connect_timeout: Duration::from_secs(1),
        }
    }
}

/// Point-in-time replication status (the `repl status` CLI block).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplStatus {
    /// LSN the local log will append next — everything below is applied.
    pub next_lsn: Lsn,
    /// The leader's append position, as of the last frame heard. `None`
    /// before the first contact.
    pub leader_next_lsn: Option<Lsn>,
    /// Records the leader has that this follower has not applied
    /// (`leader_next_lsn - next_lsn`, saturating). `None` before the
    /// first contact.
    pub lag: Option<u64>,
    /// Whether a stream to the leader is currently established.
    pub connected: bool,
    /// Sticky staleness: the leader was unreachable past the configured
    /// deadline and the follower has not caught back up since.
    pub stale: bool,
    /// Milliseconds since the last frame from the leader. `None` before
    /// the first contact.
    pub millis_since_contact: Option<u64>,
    /// Completed (re)connections so far.
    pub connects: u64,
    /// Whether the local broker has been promoted (stream stopped).
    pub promoted: bool,
}

impl ReplStatus {
    /// Renders the status as a single JSON object (stable key order).
    pub fn to_json(&self) -> String {
        fn opt(v: Option<u64>) -> String {
            v.map_or_else(|| "null".into(), |v| v.to_string())
        }
        format!(
            concat!(
                "{{\"next_lsn\":{},\"leader_next_lsn\":{},\"lag\":{},",
                "\"connected\":{},\"stale\":{},\"millis_since_contact\":{},",
                "\"connects\":{},\"promoted\":{}}}"
            ),
            self.next_lsn,
            opt(self.leader_next_lsn),
            opt(self.lag),
            self.connected,
            self.stale,
            opt(self.millis_since_contact),
            self.connects,
            self.promoted,
        )
    }
}

/// State shared between the stream thread and the [`Follower`] handle.
struct Shared {
    config: FollowerConfig,
    stop: AtomicBool,
    connected: AtomicBool,
    stale: AtomicBool,
    promoted: AtomicBool,
    /// Leader's append position per the last frame heard ([`UNKNOWN`]
    /// before first contact).
    leader_next: AtomicU64,
    connects: AtomicU64,
    last_contact: Mutex<Option<Instant>>,
}

impl Shared {
    /// Stamps leader contact: any frame from the leader counts.
    fn touch(&self) {
        *self.last_contact.lock() = Some(Instant::now());
    }

    /// Flips the sticky stale flag when the deadline has passed without
    /// contact. Called from read timeouts and backoff sleeps, so the flag
    /// advances even while the leader is completely silent.
    fn check_deadline(&self) {
        let since = self.last_contact.lock().map(|t| t.elapsed());
        let silent = match since {
            Some(elapsed) => elapsed >= self.config.degraded_after,
            // Never heard from the leader at all: the deadline counts
            // from follower start, tracked by the caller instead.
            None => false,
        };
        if silent {
            self.stale.store(true, Ordering::Release);
        }
    }

    /// Clears staleness once caught up to the last heard leader position.
    fn maybe_clear_stale(&self, applied: Lsn) {
        let leader = self.leader_next.load(Ordering::Acquire);
        if leader != UNKNOWN && applied >= leader {
            self.stale.store(false, Ordering::Release);
        }
    }
}

/// A running replication follower: the broker it feeds plus the stream
/// thread keeping that broker in sync. Dropping it stops the stream (the
/// broker handle stays usable).
pub struct Follower {
    broker: Arc<SharedBroker>,
    leader: SocketAddr,
    shared: Arc<Shared>,
    handle: Mutex<Option<JoinHandle<()>>>,
    started: Instant,
}

impl Follower {
    /// Starts tailing `leader` into `broker` (which must have been opened
    /// with [`SharedBroker::open_follower`]).
    pub fn start(
        broker: Arc<SharedBroker>,
        leader: impl ToSocketAddrs,
        config: FollowerConfig,
    ) -> std::io::Result<Follower> {
        let leader = leader.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(ErrorKind::InvalidInput, "leader addr resolves to nothing")
        })?;
        let shared = Arc::new(Shared {
            config,
            stop: AtomicBool::new(false),
            connected: AtomicBool::new(false),
            stale: AtomicBool::new(false),
            promoted: AtomicBool::new(false),
            leader_next: AtomicU64::new(UNKNOWN),
            connects: AtomicU64::new(0),
            last_contact: Mutex::new(None),
        });
        let thread_broker = Arc::clone(&broker);
        let thread_shared = Arc::clone(&shared);
        let handle = thread::Builder::new()
            .name("net-follower".into())
            .spawn(move || follow_loop(thread_broker, thread_shared, leader))?;
        Ok(Follower {
            broker,
            leader,
            shared,
            handle: Mutex::new(Some(handle)),
            started: Instant::now(),
        })
    }

    /// The broker this follower feeds.
    pub fn broker(&self) -> &Arc<SharedBroker> {
        &self.broker
    }

    /// The leader address being tailed.
    pub fn leader(&self) -> SocketAddr {
        self.leader
    }

    /// Snapshots the replication status.
    pub fn status(&self) -> ReplStatus {
        // A silent leader must flip staleness even if the stream thread is
        // asleep in a backoff; recompute the deadline on every read. The
        // pre-first-contact case counts from follower start.
        let since = self.shared.last_contact.lock().map(|t| t.elapsed());
        let silence = since.unwrap_or_else(|| self.started.elapsed());
        if silence >= self.shared.config.degraded_after && !self.is_promoted() {
            self.shared.stale.store(true, Ordering::Release);
        }
        let next_lsn = self.broker.durability().map_or(0, |d| d.next_lsn);
        let leader = match self.shared.leader_next.load(Ordering::Acquire) {
            UNKNOWN => None,
            v => Some(v),
        };
        ReplStatus {
            next_lsn,
            leader_next_lsn: leader,
            lag: leader.map(|l| l.saturating_sub(next_lsn)),
            connected: self.shared.connected.load(Ordering::Acquire),
            stale: self.shared.stale.load(Ordering::Acquire),
            millis_since_contact: since.map(|e| e.as_millis() as u64),
            connects: self.shared.connects.load(Ordering::Relaxed),
            promoted: self.is_promoted(),
        }
    }

    /// Whether [`Follower::promote`] has completed.
    pub fn is_promoted(&self) -> bool {
        self.shared.promoted.load(Ordering::Acquire)
    }

    /// Stops the stream without promoting (the broker stays a follower,
    /// resumable by a fresh [`Follower::start`]). Idempotent.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.lock().take() {
            let _ = h.join();
        }
        self.shared.connected.store(false, Ordering::Release);
    }

    /// Fails over: stops the stream, seals and fsyncs the local log, and
    /// makes the broker writable. Returns the LSN the first post-promotion
    /// write will get. The subscription id high-water mark is preserved,
    /// so ids issued by the old leader are never reissued.
    pub fn promote(&self) -> Result<Lsn, BrokerError> {
        self.stop();
        let next = self.broker.promote()?;
        self.shared.promoted.store(true, Ordering::Release);
        self.shared.stale.store(false, Ordering::Release);
        Ok(next)
    }
}

impl Drop for Follower {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Capped exponential backoff with up to +50% multiplicative jitter, so a
/// fleet of followers losing one leader does not reconnect in lockstep.
pub(crate) fn jittered(base: Duration, salt: u64) -> Duration {
    let mut x = salt | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    base + base.mul_f64((x % 1000) as f64 / 2000.0)
}

/// A per-connection pseudo-random salt: wall-clock nanos folded with the
/// attempt counter, so two followers started together still diverge.
fn salt(attempt: u64) -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.subsec_nanos() as u64);
    nanos.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ attempt
}

/// Why one connection's streaming ended.
enum StreamEnd {
    /// Transport died or the peer spoke nonsense: reconnect after backoff.
    Retry,
    /// The local broker can no longer apply (its own WAL degraded) or the
    /// leader rejected the handshake outright: retrying cannot help.
    Fatal,
}

fn follow_loop(broker: Arc<SharedBroker>, shared: Arc<Shared>, leader: SocketAddr) {
    let mut backoff = shared.config.backoff_initial;
    let mut attempt: u64 = 0;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        attempt += 1;
        RECONNECT_ATTEMPTS.inc();
        match run_stream(&broker, &shared, leader) {
            // A stream that made contact earns a fresh backoff ladder.
            Ok(()) => backoff = shared.config.backoff_initial,
            Err(StreamEnd::Retry) => {}
            Err(StreamEnd::Fatal) => return,
        }
        shared.connected.store(false, Ordering::Release);
        shared.check_deadline();
        // Sleep in short slices so stop() and the staleness deadline stay
        // responsive through long backoffs.
        let nap = jittered(backoff, salt(attempt));
        let deadline = Instant::now() + nap;
        while Instant::now() < deadline {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            shared.check_deadline();
            thread::sleep(Duration::from_millis(10).min(nap));
        }
        backoff = (backoff * 2).min(shared.config.backoff_max);
    }
}

/// Connects once and streams until the connection ends. `Ok(())` means the
/// stream made contact before breaking (resets backoff).
fn run_stream(
    broker: &Arc<SharedBroker>,
    shared: &Arc<Shared>,
    leader: SocketAddr,
) -> Result<(), StreamEnd> {
    let stream = TcpStream::connect_timeout(&leader, shared.config.connect_timeout)
        .map_err(|_| StreamEnd::Retry)?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .map_err(|_| StreamEnd::Retry)?;
    let mut conn = StreamConn {
        broker,
        shared,
        stream,
        reader: FrameReader::new(),
        buf: [0u8; 16 * 1024],
        snapshot: None,
        made_contact: false,
    };
    let from_lsn = broker.durability().map_or(0, |d| d.next_lsn);
    conn.send(&Frame::ReplHello {
        proto: PROTOCOL_VERSION,
        from_lsn,
    })?;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        match faults::hit(points::REPL_STREAM_READ, from_lsn as usize) {
            Some(FaultAction::Delay(ms)) => thread::sleep(Duration::from_millis(ms)),
            Some(_) => return Err(StreamEnd::Retry), // Injected stream cut.
            None => {}
        }
        let Some(frame) = conn.read_frame()? else {
            // Read timeout: keep the staleness deadline moving.
            shared.check_deadline();
            continue;
        };
        conn.handle(frame)?;
    }
}

/// An established stream to the leader plus the in-flight snapshot
/// assembly buffer (per-connection: a broken transfer restarts clean).
struct StreamConn<'a> {
    broker: &'a Arc<SharedBroker>,
    shared: &'a Arc<Shared>,
    stream: TcpStream,
    reader: FrameReader,
    buf: [u8; 16 * 1024],
    /// Snapshot transfer in progress: (covered LSN, assembled bytes,
    /// expected total).
    snapshot: Option<(Lsn, Vec<u8>, u64)>,
    made_contact: bool,
}

impl StreamConn<'_> {
    fn send(&mut self, frame: &Frame) -> Result<(), StreamEnd> {
        self.stream
            .write_all(&frame.to_bytes())
            .map_err(|_| StreamEnd::Retry)
    }

    /// Reads one frame; `Ok(None)` on a read timeout.
    fn read_frame(&mut self) -> Result<Option<Frame>, StreamEnd> {
        loop {
            match self.reader.next_frame() {
                Ok(Some(frame)) => return Ok(Some(frame)),
                Ok(None) => {}
                Err(_) => return Err(StreamEnd::Retry),
            }
            match self.stream.read(&mut self.buf) {
                Ok(0) => return Err(StreamEnd::Retry),
                Ok(n) => self.reader.extend(&self.buf[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Ok(None)
                }
                Err(_) => return Err(StreamEnd::Retry),
            }
        }
    }

    /// Marks leader contact on the first frame of this connection and on
    /// every frame thereafter.
    fn contact(&mut self) {
        self.shared.touch();
        if !self.made_contact {
            self.made_contact = true;
            self.shared.connected.store(true, Ordering::Release);
            self.shared.connects.fetch_add(1, Ordering::Relaxed);
            CONNECTS.inc();
        }
    }

    fn handle(&mut self, frame: Frame) -> Result<(), StreamEnd> {
        self.contact();
        match frame {
            Frame::ReplSegment { .. } => Ok(()), // Informational.
            Frame::ReplRecords {
                first_lsn,
                payloads,
            } => self.apply(first_lsn, payloads),
            Frame::ReplSnapshot {
                lsn,
                total_len,
                offset,
                chunk,
            } => self.assemble_snapshot(lsn, total_len, offset, chunk),
            Frame::ReplLag { leader_next_lsn } => {
                self.shared
                    .leader_next
                    .store(leader_next_lsn, Ordering::Release);
                let applied = self.broker.durability().map_or(0, |d| d.next_lsn);
                self.shared.maybe_clear_stale(applied);
                Ok(())
            }
            Frame::Error { .. } => {
                // The leader refused us (not durable, version mismatch, log
                // unreadable). The stream is over either way; version
                // mismatches won't heal, the rest might — retry covers
                // both, bounded by the backoff cap.
                Err(StreamEnd::Retry)
            }
            // Session-protocol frames have no business on a repl stream.
            _ => Err(StreamEnd::Retry),
        }
    }

    fn apply(&mut self, first_lsn: u64, payloads: Vec<Vec<u8>>) -> Result<(), StreamEnd> {
        match faults::hit(points::REPL_APPLY, first_lsn as usize) {
            Some(FaultAction::Delay(ms)) => thread::sleep(Duration::from_millis(ms)),
            Some(_) => return Err(StreamEnd::Retry), // Injected apply failure.
            None => {}
        }
        let count = payloads.len() as u64;
        match self.broker.apply_replicated(first_lsn, &payloads) {
            Ok(next) => {
                RECORDS_APPLIED.add(count);
                self.shared.maybe_clear_stale(next);
                Ok(())
            }
            // Position mismatch: the stream and the replica diverged
            // (e.g. a snapshot landed between our hello and this batch).
            // Reconnecting re-announces the true position.
            Err(BrokerError::ReplicationGap { .. }) | Err(BrokerError::Replication(_)) => {
                Err(StreamEnd::Retry)
            }
            // The local WAL is broken: no amount of reconnecting applies
            // another record. Stop and surface via status (lag grows).
            Err(_) => Err(StreamEnd::Fatal),
        }
    }

    fn assemble_snapshot(
        &mut self,
        lsn: u64,
        total_len: u64,
        offset: u64,
        chunk: Vec<u8>,
    ) -> Result<(), StreamEnd> {
        match faults::hit(points::REPL_SNAPSHOT_FETCH, offset as usize) {
            Some(FaultAction::Delay(ms)) => thread::sleep(Duration::from_millis(ms)),
            Some(_) => return Err(StreamEnd::Retry), // Injected fetch failure.
            None => {}
        }
        if total_len > self.shared.config.max_snapshot_bytes {
            return Err(StreamEnd::Retry);
        }
        let buf = match &mut self.snapshot {
            Some((cur_lsn, buf, cur_total))
                if *cur_lsn == lsn && *cur_total == total_len && buf.len() as u64 == offset =>
            {
                buf
            }
            _ if offset == 0 => {
                self.snapshot = Some((lsn, Vec::with_capacity(total_len as usize), total_len));
                &mut self.snapshot.as_mut().expect("just set").1
            }
            // Mid-transfer chunk that doesn't continue the one in
            // flight: the stream is confused, start over.
            _ => return Err(StreamEnd::Retry),
        };
        buf.extend_from_slice(&chunk);
        if (buf.len() as u64) < total_len {
            return Ok(());
        }
        let (lsn, bytes, _) = self.snapshot.take().expect("complete transfer");
        match self.broker.install_replicated_snapshot(lsn, &bytes) {
            Ok(()) => {
                SNAPSHOTS_INSTALLED.inc();
                self.shared.maybe_clear_stale(lsn);
                Ok(())
            }
            // Damaged in flight: retry re-fetches it.
            Err(BrokerError::Replication(_)) => Err(StreamEnd::Retry),
            Err(_) => Err(StreamEnd::Fatal),
        }
    }
}
