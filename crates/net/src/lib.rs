//! Network-facing broker server for `fastpubsub`.
//!
//! Turns the in-process matcher into a system: a length-framed,
//! CRC-checked binary protocol ([`frame`]), a threaded server with
//! reconnect-safe sessions and bounded per-connection delivery queues
//! ([`server`]), a blocking client ([`client`]), and an end-to-end load
//! generator ([`load`]). See DESIGN.md §13 for the frame grammar, the
//! session lifecycle and the per-policy backpressure semantics.
//!
//! ```no_run
//! use pubsub_broker::SharedBroker;
//! use pubsub_core::EngineKind;
//! use pubsub_net::{Client, Server, WirePredicate, WireValue};
//! use pubsub_types::Operator;
//! use std::sync::Arc;
//!
//! let broker = Arc::new(SharedBroker::new(EngineKind::Counting, 4));
//! let server = Server::start(broker, "127.0.0.1:0").unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let id = client
//!     .subscribe(vec![WirePredicate {
//!         attr: "price".into(),
//!         op: Operator::Le,
//!         value: WireValue::Int(10),
//!     }])
//!     .unwrap();
//! let token = client.token(); // resume later with Client::resume
//! # let _ = (id, token);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod client;
pub mod frame;
pub mod load;
pub mod queue;
pub mod replication;
pub mod server;

pub use client::{Client, ClientError, Notification, ReconnectPolicy};
pub use frame::{
    Ack, ErrorCode, Frame, FrameError, FrameReader, WireEvent, WirePredicate, WireValue,
    MAX_FRAME_BYTES, NEW_SESSION, PROTOCOL_VERSION,
};
pub use load::{LoadConfig, LoadReport};
pub use queue::{OutQueue, PushError};
pub use replication::{Follower, FollowerConfig, ReplStatus};
pub use server::{Server, ServerConfig, ServerStatus};
