//! The threaded broker server: sessions, delivery queues, backpressure.
//!
//! # Architecture
//!
//! One accept thread hands each TCP connection to a dedicated **reader**
//! thread (decodes frames, executes requests against the shared broker)
//! paired with a **writer** thread draining that connection's bounded
//! [`OutQueue`] of encoded frames. Publishes ride the broker's lock-free
//! RCU path — [`pubsub_broker::SharedBroker::publish`] pins one snapshot
//! per event — so matching never blocks accepts or other connections.
//!
//! # Sessions
//!
//! A connection's first frame must be `Hello`. Token [`NEW_SESSION`]
//! creates a session and returns a fresh token; a non-zero token resumes
//! the session it names: the server re-attaches the session's live
//! subscription ids to the new connection (reported once each, sorted, in
//! `Ack::Hello.resumed`) and **kicks** any connection still attached — the
//! old socket is shut down and its queue closed, so exactly one connection
//! can ever speak for a session (no ghost peers). Sessions survive
//! disconnects; subscriptions are owned by the session, not the socket.
//!
//! # Delivery and backpressure
//!
//! Notifications are sequenced per session (`seq` starts at 1 and
//! increments per notify) and enqueued under the session's delivery lock,
//! so one subscriber always observes its notifications in publish order;
//! ordering across subscribers is unspecified. The configured
//! [`Backpressure`] policy governs what happens when a subscriber's queue
//! is full:
//!
//! * `Block` — the publisher waits for space: lossless, but a slow
//!   subscriber stalls publishers targeting it (never deadlocks: a dead
//!   connection closes its queue, waking blocked publishers).
//! * `Shed` — the notify is dropped and its sequence number consumed, so
//!   the subscriber sees a gap and knows deliveries were shed.
//! * `ErrorFast` — the subscriber is forcibly disconnected (its session
//!   survives and can resume).
//!
//! Notifications that match a **detached** session (subscriber currently
//! disconnected) are dropped — delivery is at-most-once; the sequence gap
//! tells a resuming client what it missed. Acks and errors are never
//! policed: they are the request/response backbone.
//!
//! # Session garbage collection
//!
//! Sessions survive disconnects indefinitely by default. With
//! [`ServerConfig::session_ttl`] set, a background reaper removes sessions
//! that have stayed detached past the TTL, unsubscribing everything they
//! own; a later resume of a reaped token gets `UnknownSession`, exactly as
//! if the token had never been issued.
//!
//! # Replication
//!
//! A connection whose first frame is `ReplHello` (instead of `Hello`)
//! never becomes a session: it turns into a one-way WAL stream. The server
//! tails its durable broker's log from the requested LSN and ships
//! `ReplSegment`/`ReplRecords` frames, falling back to chunked
//! `ReplSnapshot` transfer when the follower's position predates the
//! oldest retained segment, and heartbeating `ReplLag` (the exact
//! leader-side append position) whenever it is caught up. See DESIGN.md
//! §14 for the full replication state machine.

use crate::frame::{Ack, ErrorCode, Frame, FrameReader, WireEvent, WirePredicate, WireValue};
use crate::queue::{OutQueue, PushError};
use parking_lot::Mutex;
use pubsub_broker::{BrokerError, SharedBroker, Validity};
use pubsub_core::Backpressure;
use pubsub_durability::{replication, TailChunk};
use pubsub_types::faults::{self, points, FaultAction};
use pubsub_types::metrics::Counter;
use pubsub_types::{Event, Predicate, Subscription, SubscriptionId, TypeError, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

static CONNECTIONS: Counter = Counter::new("net.server.connections");
static FRAMES_IN: Counter = Counter::new("net.server.frames_in");
static FRAMES_OUT: Counter = Counter::new("net.server.frames_out");
static BAD_FRAMES: Counter = Counter::new("net.server.bad_frames");
static SESSIONS_RESUMED: Counter = Counter::new("net.server.sessions_resumed");
static NOTIFIES_SHED: Counter = Counter::new("net.server.notifies_shed");
static NOTIFIES_DROPPED_DETACHED: Counter = Counter::new("net.server.notifies_dropped_detached");
static ERRORFAST_DISCONNECTS: Counter = Counter::new("net.server.errorfast_disconnects");
static SESSIONS_REAPED: Counter = Counter::new("net.server.sessions_reaped");
static REPL_STREAMS: Counter = Counter::new("net.server.repl_streams");
static PINGS: Counter = Counter::new("net.server.pings");
static SESSIONS_RESTORED: Counter = Counter::new("net.server.sessions_restored");

/// Largest WAL byte span shipped per `ReplRecords` frame. Well under
/// [`crate::frame::MAX_FRAME_BYTES`] even with per-payload length prefixes.
const TAIL_BATCH_BYTES: usize = 64 * 1024;

/// Snapshot transfer chunk size; each chunk rides one `ReplSnapshot` frame.
const SNAPSHOT_CHUNK_BYTES: usize = 256 * 1024;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Outbound frames buffered per connection before the delivery policy
    /// applies.
    pub queue_capacity: usize,
    /// What to do when a subscriber's outbound queue is full (see module
    /// docs; acks and errors always block).
    pub delivery: Backpressure,
    /// How often blocked reads wake to poll the shutdown flag. Bounds both
    /// shutdown latency and idle-connection overhead.
    pub read_timeout: Duration,
    /// Reap sessions that have stayed detached this long, freeing their
    /// subscriptions. `None` (the default) keeps sessions forever, matching
    /// the pre-GC contract; a resume of a reaped token gets
    /// `UnknownSession`.
    pub session_ttl: Option<Duration>,
    /// How long a caught-up replication stream sleeps between tail polls.
    /// Also the heartbeat period of `ReplLag` frames while idle.
    pub repl_poll: Duration,
    /// Sever a connection that has sent no frames (requests *or* pings)
    /// for this long. The session survives the severing — it detaches and
    /// ages toward [`ServerConfig::session_ttl`] like any other disconnect,
    /// so the liveness layer and the session GC share one reap path.
    /// `None` (the default) never severs on idleness.
    pub idle_deadline: Option<Duration>,
    /// Socket write timeout on the notify writer: a peer that accepts no
    /// bytes for this long is severed (its session survives). Generous by
    /// default so `Block`-policy backpressure — queue-full, not
    /// socket-full — is never misread as peer death.
    pub write_deadline: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 256,
            delivery: Backpressure::Block,
            read_timeout: Duration::from_millis(100),
            session_ttl: None,
            repl_poll: Duration::from_millis(25),
            idle_deadline: None,
            write_deadline: Some(Duration::from_secs(30)),
        }
    }
}

/// A point-in-time view of the session registry, for tests and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStatus {
    /// Sessions ever created and not (yet) garbage-collected.
    pub sessions: usize,
    /// Sessions with a live connection attached.
    pub attached: usize,
    /// Subscriptions owned by network sessions.
    pub net_subscriptions: usize,
}

/// An outbound unit: a pre-encoded frame, or the graceful-close sentinel
/// that makes the writer flush and shut the socket down.
enum Out {
    Frame(Vec<u8>),
    Close,
}

/// The socket-facing half of an attached connection, owned by a session's
/// delivery state while attached.
struct Conn {
    queue: Arc<OutQueue<Out>>,
    sock: TcpStream,
    /// The owning connection's unique id; a reader only detaches the
    /// session if the attachment is still its own.
    epoch: u64,
}

impl Conn {
    /// Hard-kills the connection: wakes blocked producers and the writer,
    /// and errors out the peer's reads.
    fn kill(&self) {
        self.queue.close();
        let _ = self.sock.shutdown(Shutdown::Both);
    }
}

/// Per-session delivery state. Sequencing and enqueueing happen under this
/// lock (never the registry lock), so a full queue can only stall
/// publishers targeting *this* subscriber.
struct DeliveryState {
    next_seq: u64,
    conn: Option<Conn>,
    /// When the session last lost its connection (stamped at creation, so a
    /// session abandoned before its first attach still ages out). `None`
    /// while attached.
    detached_at: Option<Instant>,
    /// Set (under this lock) when the session GC removes the session from
    /// the registry. A resume that already cloned the delivery handle out
    /// of the registry checks this before attaching, so a reaped token can
    /// never come back as a ghost.
    reaped: bool,
}

struct Delivery {
    state: Mutex<DeliveryState>,
}

struct Session {
    subs: BTreeSet<u32>,
    delivery: Arc<Delivery>,
}

/// Sessions and subscription ownership. Lock discipline: the registry
/// lock and delivery-state locks are never held together — a delivery
/// lock can be held across a blocking enqueue (Block policy), so waiting
/// on one with the registry held would stall every connection. Threads
/// clone the `Arc<Delivery>` out of the registry, release it, then lock
/// delivery state. Broker-internal locks are only taken with at most the
/// registry lock held, and no broker path calls back into the registry.
#[derive(Default)]
struct Registry {
    sessions: HashMap<u64, Session>,
    /// Subscription id → owning session token. Ids absent here belong to
    /// in-process subscribers and are invisible to the network layer.
    owner: HashMap<u32, u64>,
}

/// Inserts a detached registry session mirroring the broker-table row
/// `(token, ids)` — the hydration path a restarted or promoted broker's
/// sessions come back through. Caller holds the registry lock.
fn hydrate_session(reg: &mut Registry, token: u64, ids: &[SubscriptionId]) {
    let delivery = Arc::new(Delivery {
        state: Mutex::new(DeliveryState {
            next_seq: 1,
            conn: None,
            detached_at: Some(Instant::now()),
            reaped: false,
        }),
    });
    for id in ids {
        reg.owner.insert(id.0, token);
    }
    reg.sessions.insert(
        token,
        Session {
            subs: ids.iter().map(|id| id.0).collect(),
            delivery,
        },
    );
}

/// The kill handle of a running connection, registered by conn id for the
/// lifetime of its reader thread. Lets `shutdown()` hard-close every
/// connection — attached, detached, or pre-handshake — without touching
/// any delivery lock (which a wedged publisher may hold indefinitely).
struct LiveConn {
    queue: Arc<OutQueue<Out>>,
    sock: TcpStream,
}

impl LiveConn {
    fn kill(&self) {
        self.queue.close();
        let _ = self.sock.shutdown(Shutdown::Both);
    }
}

struct State {
    broker: Arc<SharedBroker>,
    config: ServerConfig,
    registry: Mutex<Registry>,
    shutdown: AtomicBool,
    conn_counter: AtomicU64,
    conns: Mutex<Vec<JoinHandle<()>>>,
    live: Mutex<HashMap<u64, LiveConn>>,
}

/// A running broker server. Dropping it shuts it down.
pub struct Server {
    state: Arc<State>,
    local_addr: SocketAddr,
    accept: Mutex<Option<JoinHandle<()>>>,
    reaper: Mutex<Option<JoinHandle<()>>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `broker` with default [`ServerConfig`].
    pub fn start(broker: Arc<SharedBroker>, addr: impl ToSocketAddrs) -> std::io::Result<Server> {
        Self::start_with(broker, addr, ServerConfig::default())
    }

    /// Binds `addr` and starts serving `broker` with `config`.
    pub fn start_with(
        broker: Arc<SharedBroker>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Hydrate the registry from the broker's session table: a broker
        // recovered from its WAL (or a promoted replica) carries every
        // durable session, and clients must be able to resume them as if
        // the server had never gone away. Sessions come back detached;
        // delivery sequence numbers restart at 1 (they are connection-era
        // state, not durable state).
        let mut registry = Registry::default();
        for (token, ids) in broker.session_rows() {
            hydrate_session(&mut registry, token, &ids);
            SESSIONS_RESTORED.inc();
        }
        let state = Arc::new(State {
            broker,
            config,
            registry: Mutex::new(registry),
            shutdown: AtomicBool::new(false),
            conn_counter: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
            live: Mutex::new(HashMap::new()),
        });
        let accept_state = Arc::clone(&state);
        let accept = thread::Builder::new()
            .name("net-accept".into())
            .spawn(move || accept_loop(listener, accept_state))?;
        let reaper = match state.config.session_ttl {
            Some(ttl) => {
                let gc_state = Arc::clone(&state);
                Some(
                    thread::Builder::new()
                        .name("net-session-gc".into())
                        .spawn(move || reaper_loop(gc_state, ttl))?,
                )
            }
            None => None,
        };
        Ok(Server {
            state,
            local_addr,
            accept: Mutex::new(Some(accept)),
            reaper: Mutex::new(reaper),
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The served broker.
    pub fn broker(&self) -> &Arc<SharedBroker> {
        &self.state.broker
    }

    /// Counts sessions, attachments and net-owned subscriptions.
    pub fn status(&self) -> ServerStatus {
        // Clone the delivery handles out of the registry, then release it:
        // a delivery lock may be held across a blocking enqueue, and
        // waiting on one with the registry held stalls the whole server.
        let reg = self.state.registry.lock();
        let sessions = reg.sessions.len();
        let net_subscriptions = reg.owner.len();
        let deliveries: Vec<Arc<Delivery>> = reg
            .sessions
            .values()
            .map(|s| Arc::clone(&s.delivery))
            .collect();
        drop(reg);
        let attached = deliveries
            .iter()
            .filter(|d| d.state.lock().conn.is_some())
            .count();
        ServerStatus {
            sessions,
            attached,
            net_subscriptions,
        }
    }

    /// Reaps every session that has stayed detached at least
    /// [`ServerConfig::session_ttl`], returning how many were removed.
    /// A no-op (returns 0) when no TTL is configured. The background
    /// reaper calls this periodically; tests and operators can call it
    /// directly for a deterministic sweep.
    pub fn reap_detached_sessions(&self) -> usize {
        match self.state.config.session_ttl {
            Some(ttl) => reap_detached(&self.state, ttl),
            None => 0,
        }
    }

    /// The live subscription ids of session `token` (sorted), or `None`
    /// for an unknown token.
    pub fn session_subscriptions(&self, token: u64) -> Option<Vec<u32>> {
        let reg = self.state.registry.lock();
        reg.sessions
            .get(&token)
            .map(|s| s.subs.iter().copied().collect())
    }

    /// Stops accepting, kills every connection, and joins all server
    /// threads. Idempotent; sessions and the broker are left intact.
    pub fn shutdown(&self) {
        if self.state.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Hard-close every live connection so blocked reads, writes and
        // queue pushes all wake promptly. The live table — never the
        // delivery locks — is the kill path: a publisher wedged in a
        // blocking enqueue HOLDS its target's delivery lock and only the
        // queue close below can wake it, so taking delivery locks here
        // would deadlock. Connections that register concurrently with
        // this sweep see the shutdown flag on their next read timeout.
        {
            let live = self.state.live.lock();
            for conn in live.values() {
                conn.kill();
            }
        }
        // Wake the accept loop; it checks the flag after every accept.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept.lock().take() {
            let _ = h.join();
        }
        // The session reaper polls the flag between short sleeps.
        if let Some(h) = self.reaper.lock().take() {
            let _ = h.join();
        }
        // Reader threads poll the flag on their read timeout; pre-session
        // connections exit that way. Join them all.
        let handles: Vec<_> = self.state.conns.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, state: Arc<State>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Persistent accept errors (e.g. EMFILE) must not
                // busy-spin the accept thread at 100% CPU.
                thread::sleep(Duration::from_millis(20));
                continue;
            }
        };
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let conn_id = state.conn_counter.fetch_add(1, Ordering::Relaxed);
        let conn_state = Arc::clone(&state);
        let handle = thread::Builder::new()
            .name(format!("net-conn-{conn_id}"))
            .spawn(move || run_connection(conn_state, stream, conn_id));
        if let Ok(h) = handle {
            // Reap finished connections as new ones arrive, so a
            // long-running server's handle vector stays bounded by the
            // number of live connections. Dropping a finished handle
            // just releases its bookkeeping.
            let mut conns = state.conns.lock();
            conns.retain(|h| !h.is_finished());
            conns.push(h);
        }
    }
}

/// Periodically sweeps detached sessions past their TTL. Wakes often
/// enough that both GC latency and shutdown latency stay well under a
/// second regardless of the configured TTL.
fn reaper_loop(state: Arc<State>, ttl: Duration) {
    let interval = (ttl / 4).clamp(Duration::from_millis(10), Duration::from_millis(250));
    loop {
        thread::sleep(interval);
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        reap_detached(&state, ttl);
    }
}

/// Removes every session detached at least `ttl` ago, unsubscribing the
/// broker subscriptions it owned. Returns the number of sessions reaped.
///
/// Lock discipline note: this is the one place a delivery lock is taken
/// with the registry held — via `try_lock`, which never blocks. A delivery
/// lock held long (a publisher mid-blocking-enqueue) implies an attached,
/// unreapable session, so skipping on contention loses nothing; the next
/// sweep retries. Holding the registry across the check-and-remove is what
/// makes reaping atomic against concurrent resumes.
fn reap_detached(state: &State, ttl: Duration) -> usize {
    // A follower's sessions are replicated state: the leader decides their
    // fate, and a local reap would fork from the stream. Skip entirely.
    if state.broker.is_follower() {
        return 0;
    }
    let mut reg = state.registry.lock();
    let tokens: Vec<u64> = reg.sessions.keys().copied().collect();
    let mut reaped = 0;
    for token in tokens {
        let Some(session) = reg.sessions.get(&token) else {
            continue;
        };
        let delivery = Arc::clone(&session.delivery);
        let Some(mut st) = delivery.state.try_lock() else {
            continue;
        };
        let expired = st.conn.is_none() && st.detached_at.is_some_and(|t| t.elapsed() >= ttl);
        if !expired {
            continue;
        }
        st.reaped = true;
        drop(st);
        // The broker owns the durable reap: one `SessionReap` record frees
        // every bound subscription, so recovery and replicas converge to
        // the same post-reap state. `UnknownSession` means the broker-side
        // session is already gone (e.g. the registry entry outlived a
        // failover) — finish the registry removal anyway.
        match state.broker.try_session_reap(token) {
            Ok(_) | Err(BrokerError::UnknownSession(_)) => {}
            Err(_) => {
                // Could not log the reap (degraded broker): leave the
                // session for a later sweep, and clear the flag so a
                // resume in the meantime is not turned away for nothing.
                delivery.state.lock().reaped = false;
                continue;
            }
        }
        let session = reg.sessions.remove(&token).expect("present: checked above");
        for id in session.subs {
            reg.owner.remove(&id);
        }
        SESSIONS_REAPED.inc();
        reaped += 1;
    }
    reaped
}

/// How a reader thread ended, deciding the connection's teardown.
#[derive(PartialEq)]
enum Exit {
    /// Peer closed cleanly or a protocol error was reported: flush queued
    /// frames (including the final error, if any), then close.
    Graceful,
    /// Fault injection, shutdown, or I/O failure: discard and close.
    Severed,
}

fn run_connection(state: Arc<State>, stream: TcpStream, conn_id: u64) {
    CONNECTIONS.inc();
    let lane = conn_id as usize;
    match faults::hit(points::NET_ACCEPT, lane) {
        Some(FaultAction::Delay(ms)) => thread::sleep(Duration::from_millis(ms)),
        Some(_) => return, // Injected accept failure: drop before reading.
        None => {}
    }
    let _ = stream.set_nodelay(true);
    if stream
        .set_read_timeout(Some(state.config.read_timeout))
        .is_err()
    {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    // A peer that stops draining its socket must not pin the writer in
    // write_all forever: the deadline errors the write out, the writer
    // closes the queue, and the session detaches (it can resume later).
    if write_half
        .set_write_timeout(state.config.write_deadline)
        .is_err()
    {
        return;
    }
    let Ok(kill_half) = stream.try_clone() else {
        return;
    };
    let queue = Arc::new(OutQueue::new(state.config.queue_capacity));
    let writer_queue = Arc::clone(&queue);
    let writer = thread::Builder::new()
        .name(format!("net-write-{conn_id}"))
        .spawn(move || writer_loop(writer_queue, write_half, conn_id));
    let Ok(writer) = writer else {
        return;
    };
    // Register the kill handle so shutdown() can hard-close this
    // connection whatever state it is in (pre-handshake, detached, or
    // with its writer wedged on a non-reading peer).
    state.live.lock().insert(
        conn_id,
        LiveConn {
            queue: Arc::clone(&queue),
            sock: kill_half,
        },
    );

    let mut ctx = ConnCtx {
        state: &state,
        stream,
        queue,
        conn_id,
        session: None,
    };
    let exit = ctx.serve();

    // Detach the session — but only if this connection is still the one
    // attached (a resume may have kicked us and attached a newer epoch).
    if let Some((_, delivery)) = &ctx.session {
        let mut st = delivery.state.lock();
        if st.conn.as_ref().is_some_and(|c| c.epoch == conn_id) {
            st.conn = None;
            st.detached_at = Some(Instant::now());
        }
    }
    match exit {
        Exit::Graceful => {
            // Let the writer drain every queued ack/error, then close —
            // without blocking: if the queue is full the writer is wedged
            // in write_all to a peer that stopped reading, and a reader
            // blocked here (already detached) would be unreachable by
            // shutdown()'s kill loop, hanging Drop forever. Sever instead;
            // the undeliverable backlog had nowhere to go anyway.
            if ctx.queue.try_push(Out::Close).is_err() {
                ctx.queue.close();
                let _ = ctx.stream.shutdown(Shutdown::Both);
            }
        }
        Exit::Severed => {
            ctx.queue.close();
            let _ = ctx.stream.shutdown(Shutdown::Both);
        }
    }
    let _ = writer.join();
    state.live.lock().remove(&conn_id);
}

fn writer_loop(queue: Arc<OutQueue<Out>>, mut sock: TcpStream, conn_id: u64) {
    while let Some(msg) = queue.pop() {
        match msg {
            Out::Frame(bytes) => {
                match faults::hit(points::NET_NOTIFY_WRITE, conn_id as usize) {
                    Some(FaultAction::Delay(ms)) => thread::sleep(Duration::from_millis(ms)),
                    Some(_) => break, // Injected write failure: sever mid-delivery.
                    None => {}
                }
                if sock.write_all(&bytes).is_err() {
                    break;
                }
                FRAMES_OUT.inc();
            }
            Out::Close => {
                let _ = sock.flush();
                break;
            }
        }
    }
    // Whatever ended the loop, make the death observable: wake producers
    // blocked on the queue and error out the peer (and our reader).
    queue.close();
    let _ = sock.shutdown(Shutdown::Both);
}

struct ConnCtx<'a> {
    state: &'a State,
    stream: TcpStream,
    queue: Arc<OutQueue<Out>>,
    conn_id: u64,
    /// Set once the handshake completes: session token + delivery handle.
    session: Option<(u64, Arc<Delivery>)>,
}

impl ConnCtx<'_> {
    /// Enqueues a response frame (always blocking: acks and errors are the
    /// request/response backbone and are never shed). Returns `false` when
    /// the connection is already dead.
    fn send(&self, frame: &Frame) -> bool {
        self.queue
            .push_blocking(Out::Frame(frame.to_bytes()))
            .is_ok()
    }

    fn send_error(&self, req: u32, code: ErrorCode, msg: impl Into<String>) -> bool {
        self.send(&Frame::Error {
            req,
            code,
            msg: msg.into(),
        })
    }

    /// Reads and processes frames until the connection ends.
    fn serve(&mut self) -> Exit {
        let mut reader = FrameReader::new();
        let mut buf = [0u8; 8192];
        let mut last_activity = Instant::now();
        loop {
            if self.state.shutdown.load(Ordering::SeqCst) {
                return Exit::Severed;
            }
            let n = match self.stream.read(&mut buf) {
                Ok(0) => return Exit::Graceful,
                Ok(n) => n,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    // The liveness check rides the read-timeout wakeups: a
                    // peer that has gone silent past the deadline is severed
                    // (not closed gracefully), detaching its session to age
                    // toward the TTL reaper like any other disconnect.
                    if self
                        .state
                        .config
                        .idle_deadline
                        .is_some_and(|d| last_activity.elapsed() >= d)
                    {
                        return Exit::Severed;
                    }
                    continue;
                }
                Err(_) => return Exit::Severed,
            };
            last_activity = Instant::now();
            reader.extend(&buf[..n]);
            loop {
                match reader.next_frame() {
                    Ok(Some(frame)) => {
                        FRAMES_IN.inc();
                        match faults::hit(points::NET_FRAME_READ, self.conn_id as usize) {
                            Some(FaultAction::Delay(ms)) => {
                                thread::sleep(Duration::from_millis(ms))
                            }
                            Some(_) => return Exit::Severed, // Kill mid-stream.
                            None => {}
                        }
                        if let Some(exit) = self.handle(frame) {
                            return exit;
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        // Framing is lost; report once and close. The
                        // graceful exit flushes this error to the peer.
                        BAD_FRAMES.inc();
                        self.send_error(0, ErrorCode::BadFrame, e.to_string());
                        return Exit::Graceful;
                    }
                }
            }
        }
    }

    /// Processes one frame. `Some(exit)` ends the connection.
    fn handle(&mut self, frame: Frame) -> Option<Exit> {
        // Pings are answered at any point — even before the handshake —
        // so a client can probe liveness without committing to a session.
        if let Frame::Ping { nonce } = frame {
            PINGS.inc();
            if !self.send(&Frame::Pong { nonce }) {
                return Some(Exit::Severed);
            }
            return None;
        }
        // Every frame before a successful handshake must be Hello — or
        // ReplHello, which never creates a session: it commits the whole
        // connection to a one-way WAL stream.
        if self.session.is_none() {
            return match frame {
                Frame::Hello { proto, token } => self.handle_hello(proto, token),
                Frame::ReplHello { proto, from_lsn } => {
                    Some(self.serve_replication(proto, from_lsn))
                }
                _ => {
                    self.send_error(0, ErrorCode::BadHandshake, "first frame must be Hello");
                    Some(Exit::Graceful)
                }
            };
        }
        match frame {
            Frame::Hello { .. } => {
                // One session per connection; re-handshaking is an error
                // but not a connection killer.
                self.send_error(0, ErrorCode::BadRequest, "already handshaken");
                None
            }
            Frame::Subscribe { req, preds } => self.handle_subscribe(req, &preds),
            Frame::Unsubscribe { req, id } => self.handle_unsubscribe(req, id),
            Frame::Publish { req, event } => self.handle_publish(req, &event),
            Frame::Notify { .. } | Frame::Ack(_) | Frame::Error { .. } | Frame::Pong { .. } => {
                self.send_error(0, ErrorCode::BadRequest, "server-only frame");
                None
            }
            // Already answered by the pre-handshake intercept above.
            Frame::Ping { .. } => None,
            Frame::ReplHello { .. }
            | Frame::ReplSegment { .. }
            | Frame::ReplRecords { .. }
            | Frame::ReplSnapshot { .. }
            | Frame::ReplLag { .. } => {
                self.send_error(
                    0,
                    ErrorCode::BadRequest,
                    "replication frame on a session connection",
                );
                None
            }
        }
    }

    /// Serves a one-way WAL stream to a replication follower, starting at
    /// `from_lsn`. Runs until the peer disconnects, the server shuts down,
    /// or the log becomes unreadable. Never touches the session registry:
    /// replication connections are not sessions.
    fn serve_replication(&mut self, proto: u32, from_lsn: u64) -> Exit {
        match faults::hit(points::REPL_ACCEPT, self.conn_id as usize) {
            Some(FaultAction::Delay(ms)) => thread::sleep(Duration::from_millis(ms)),
            Some(_) => return Exit::Severed, // Injected accept failure.
            None => {}
        }
        if proto != crate::frame::PROTOCOL_VERSION {
            self.send_error(
                0,
                ErrorCode::BadHandshake,
                format!(
                    "protocol {proto} unsupported (want {})",
                    crate::frame::PROTOCOL_VERSION
                ),
            );
            return Exit::Graceful;
        }
        let Some(status) = self.state.broker.durability() else {
            self.send_error(
                0,
                ErrorCode::Unavailable,
                "replication requires a durable broker",
            );
            return Exit::Graceful;
        };
        let dir = status.dir;
        REPL_STREAMS.inc();
        let mut pos = from_lsn;
        // First LSN of the segment the last shipped batch started in;
        // `ReplSegment` is sent whenever it changes.
        let mut segment: Option<u64> = None;
        loop {
            if self.state.shutdown.load(Ordering::SeqCst) {
                return Exit::Severed;
            }
            match replication::read_tail(&dir, pos, TAIL_BATCH_BYTES) {
                Ok(TailChunk::Records {
                    segment_first,
                    first_lsn,
                    payloads,
                }) => {
                    if segment != Some(segment_first) {
                        segment = Some(segment_first);
                        if !self.send(&Frame::ReplSegment {
                            first_lsn: segment_first,
                        }) {
                            return Exit::Severed;
                        }
                    }
                    pos = first_lsn + payloads.len() as u64;
                    if !self.send(&Frame::ReplRecords {
                        first_lsn,
                        payloads,
                    }) {
                        return Exit::Severed;
                    }
                }
                Ok(TailChunk::CaughtUp { next_lsn }) | Ok(TailChunk::Incomplete { next_lsn }) => {
                    // At the live end (or a record is mid-append): ship the
                    // exact append position as a lag heartbeat, then poll.
                    // A dead peer surfaces here as a failed enqueue once
                    // the writer hits the broken socket.
                    if !self.send(&Frame::ReplLag {
                        leader_next_lsn: next_lsn,
                    }) {
                        return Exit::Severed;
                    }
                    thread::sleep(self.state.config.repl_poll);
                }
                Ok(TailChunk::SnapshotRequired { .. }) => {
                    let (lsn, bytes) = match replication::snapshot_for_catchup(&dir) {
                        Ok(Some(snap)) => snap,
                        Ok(None) => {
                            self.send_error(
                                0,
                                ErrorCode::Internal,
                                "history compacted but no usable snapshot",
                            );
                            return Exit::Graceful;
                        }
                        Err(e) => {
                            self.send_error(0, ErrorCode::Unavailable, e.to_string());
                            return Exit::Graceful;
                        }
                    };
                    let total_len = bytes.len() as u64;
                    let mut offset = 0usize;
                    // Ship at least one chunk even for an empty snapshot,
                    // so the follower observes offset + len == total_len.
                    loop {
                        let end = (offset + SNAPSHOT_CHUNK_BYTES).min(bytes.len());
                        let frame = Frame::ReplSnapshot {
                            lsn,
                            total_len,
                            offset: offset as u64,
                            chunk: bytes[offset..end].to_vec(),
                        };
                        if !self.send(&frame) {
                            return Exit::Severed;
                        }
                        offset = end;
                        if offset >= bytes.len() {
                            break;
                        }
                    }
                    segment = None;
                    pos = lsn;
                }
                Err(e) => {
                    self.send_error(0, ErrorCode::Unavailable, format!("wal tail failed: {e}"));
                    return Exit::Graceful;
                }
            }
        }
    }

    fn handle_hello(&mut self, proto: u32, token: u64) -> Option<Exit> {
        match faults::hit(points::NET_HANDSHAKE, self.conn_id as usize) {
            Some(FaultAction::Delay(ms)) => thread::sleep(Duration::from_millis(ms)),
            Some(_) => return Some(Exit::Severed), // Kill mid-handshake.
            None => {}
        }
        if proto != crate::frame::PROTOCOL_VERSION {
            self.send_error(
                0,
                ErrorCode::BadHandshake,
                format!(
                    "protocol {proto} unsupported (want {})",
                    crate::frame::PROTOCOL_VERSION
                ),
            );
            return Some(Exit::Graceful);
        }
        let mut reg = self.state.registry.lock();
        let (token, delivery, resumed) = if token == crate::frame::NEW_SESSION {
            // The broker issues the token (durably, on durable brokers), so
            // a restarted or promoted broker never reissues it. A follower
            // broker refuses — new sessions belong on the leader.
            let token = match self.state.broker.try_session_create() {
                Ok(token) => token,
                Err(e) => {
                    drop(reg);
                    self.send_error(0, broker_error_code(&e), e.to_string());
                    return Some(Exit::Graceful);
                }
            };
            let delivery = Arc::new(Delivery {
                state: Mutex::new(DeliveryState {
                    next_seq: 1,
                    conn: None,
                    detached_at: Some(Instant::now()),
                    reaped: false,
                }),
            });
            reg.sessions.insert(
                token,
                Session {
                    subs: BTreeSet::new(),
                    delivery: Arc::clone(&delivery),
                },
            );
            (token, delivery, Vec::new())
        } else {
            if !reg.sessions.contains_key(&token) {
                // Not in the registry — but possibly in the broker's table:
                // after a failover, replicated sessions can land *after*
                // the replica's server started. Hydrate lazily.
                match self.state.broker.session_subscriptions(token) {
                    Some(ids) => {
                        hydrate_session(&mut reg, token, &ids);
                        SESSIONS_RESTORED.inc();
                    }
                    None => {
                        drop(reg);
                        self.send_error(
                            0,
                            ErrorCode::UnknownSession,
                            format!("no session {token}"),
                        );
                        return Some(Exit::Graceful);
                    }
                }
            }
            let session = reg.sessions.get(&token).expect("present or just hydrated");
            SESSIONS_RESUMED.inc();
            let resumed: Vec<u32> = session.subs.iter().copied().collect();
            (token, Arc::clone(&session.delivery), resumed)
        };
        // Release the registry BEFORE touching delivery state: a stalled
        // publisher may hold the delivery lock across a blocking enqueue
        // (Block policy), and waiting on it with the registry held would
        // wedge every other connection's hello/subscribe/publish.
        drop(reg);
        // Attach this connection, kicking any previous one: its socket is
        // shut down and its queue closed, so its reader and writer exit
        // and it can never ack or deliver again (no ghost peers).
        // Concurrent resumes of the same token race on the delivery lock
        // alone; the epoch guard keeps detach correct whichever wins.
        let Ok(sock) = self.stream.try_clone() else {
            return Some(Exit::Severed);
        };
        {
            let mut st = delivery.state.lock();
            // The GC may have reaped this session between our registry
            // lookup and this attach; the flag (set under this lock) makes
            // the removal authoritative.
            if st.reaped {
                drop(st);
                self.send_error(
                    0,
                    ErrorCode::UnknownSession,
                    format!("session {token} expired"),
                );
                return Some(Exit::Graceful);
            }
            if let Some(old) = st.conn.take() {
                old.kill();
            }
            st.conn = Some(Conn {
                queue: Arc::clone(&self.queue),
                sock,
                epoch: self.conn_id,
            });
            st.detached_at = None;
        }
        self.session = Some((token, delivery));
        if !self.send(&Frame::Ack(Ack::Hello { token, resumed })) {
            return Some(Exit::Severed);
        }
        None
    }

    fn handle_subscribe(&mut self, req: u32, preds: &[WirePredicate]) -> Option<Exit> {
        let (token, _) = self.session.as_ref().expect("handshaken");
        let token = *token;
        let sub = match wire_subscription(&self.state.broker, preds) {
            Ok(sub) => sub,
            Err(e) => {
                self.send_error(req, ErrorCode::BadRequest, e.to_string());
                return None;
            }
        };
        // Subscribe and record ownership under one registry hold (the
        // documented registry < broker lock order, same as unsubscribe):
        // deliver() groups matches under the registry lock, so once the
        // broker can match the new id, its owner is always resolvable —
        // no window where a matching publish silently skips delivery
        // without consuming a sequence number. The bound call records the
        // session ↔ subscription edge in the broker's durable table, so a
        // restarted broker resumes this session with this id attached.
        let mut reg = self.state.registry.lock();
        let id = match self
            .state
            .broker
            .try_subscribe_bound(token, sub, Validity::forever())
        {
            Ok(id) => id,
            Err(e) => {
                drop(reg);
                self.send_error(req, broker_error_code(&e), e.to_string());
                return None;
            }
        };
        reg.owner.insert(id.0, token);
        if let Some(session) = reg.sessions.get_mut(&token) {
            session.subs.insert(id.0);
        }
        drop(reg);
        if !self.send(&Frame::Ack(Ack::Subscribe { req, id: id.0 })) {
            return Some(Exit::Severed);
        }
        None
    }

    fn handle_unsubscribe(&mut self, req: u32, id: u32) -> Option<Exit> {
        let (token, _) = self.session.as_ref().expect("handshaken");
        let token = *token;
        let mut reg = self.state.registry.lock();
        let existed = match reg.owner.get(&id) {
            // Unknown to the network layer: either never existed or
            // already removed. Idempotent no-op — and never forwarded to
            // the broker, which may own in-process subscriptions under
            // this id.
            None => false,
            Some(owner) if *owner != token => {
                drop(reg);
                self.send_error(
                    req,
                    ErrorCode::BadRequest,
                    format!("s{id} not owned by session"),
                );
                return None;
            }
            Some(_) => match self
                .state
                .broker
                .try_unsubscribe_bound(token, SubscriptionId(id))
            {
                Ok(existed) => {
                    reg.owner.remove(&id);
                    if let Some(session) = reg.sessions.get_mut(&token) {
                        session.subs.remove(&id);
                    }
                    existed
                }
                Err(e) => {
                    drop(reg);
                    self.send_error(req, broker_error_code(&e), e.to_string());
                    return None;
                }
            },
        };
        drop(reg);
        if !self.send(&Frame::Ack(Ack::Unsubscribe { req, existed })) {
            return Some(Exit::Severed);
        }
        None
    }

    fn handle_publish(&mut self, req: u32, wire: &WireEvent) -> Option<Exit> {
        let event = match wire_event(&self.state.broker, wire) {
            Ok(event) => event,
            Err(e) => {
                self.send_error(req, ErrorCode::BadRequest, e.to_string());
                return None;
            }
        };
        let matched = self.state.broker.publish(&event);
        deliver(self.state, &matched, wire);
        let ack = Frame::Ack(Ack::Publish {
            req,
            matched: matched.len() as u32,
        });
        if !self.send(&ack) {
            return Some(Exit::Severed);
        }
        None
    }
}

/// Fans one published event out to the sessions owning the matched
/// subscriptions, applying the delivery backpressure policy per session.
fn deliver(state: &State, matched: &[SubscriptionId], event: &WireEvent) {
    if matched.is_empty() {
        return;
    }
    // Group matched ids by owning session under the registry lock, then
    // release it: enqueueing may block (Block policy) and must only ever
    // hold the target session's delivery lock.
    let mut targets: Vec<(Arc<Delivery>, Vec<u32>)> = Vec::new();
    {
        let reg = state.registry.lock();
        let mut by_token: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        for id in matched {
            if let Some(token) = reg.owner.get(&id.0) {
                by_token.entry(*token).or_default().push(id.0);
            }
        }
        for (token, mut ids) in by_token {
            ids.sort_unstable();
            if let Some(session) = reg.sessions.get(&token) {
                targets.push((Arc::clone(&session.delivery), ids));
            }
        }
    }
    for (delivery, ids) in targets {
        let mut st = delivery.state.lock();
        let Some(conn) = st.conn.as_ref() else {
            NOTIFIES_DROPPED_DETACHED.inc();
            st.next_seq += 1; // Consume the seq: the gap marks the miss.
            continue;
        };
        let frame = Frame::Notify {
            seq: st.next_seq,
            ids,
            event: event.clone(),
        };
        let bytes = Out::Frame(frame.to_bytes());
        let result = match state.config.delivery {
            Backpressure::Block => conn.queue.push_blocking(bytes),
            Backpressure::Shed | Backpressure::ErrorFast => conn.queue.try_push(bytes),
        };
        match result {
            Ok(()) => st.next_seq += 1,
            Err(PushError::Full) => match state.config.delivery {
                Backpressure::Shed => {
                    NOTIFIES_SHED.inc();
                    st.next_seq += 1; // Gap marks the shed delivery.
                }
                Backpressure::ErrorFast => {
                    // Too slow: disconnect the subscriber. Its session
                    // survives and can resume later.
                    ERRORFAST_DISCONNECTS.inc();
                    if let Some(conn) = st.conn.take() {
                        conn.kill();
                    }
                    st.detached_at = Some(Instant::now());
                    st.next_seq += 1;
                }
                Backpressure::Block => unreachable!("blocking push never reports Full"),
            },
            Err(PushError::Closed) => {
                // The connection died under us; detach so later notifies
                // take the cheap detached path.
                st.conn = None;
                st.detached_at = Some(Instant::now());
                st.next_seq += 1;
            }
        }
    }
}

fn broker_error_code(e: &BrokerError) -> ErrorCode {
    match e {
        BrokerError::Degraded(_) | BrokerError::Follower => ErrorCode::Unavailable,
        BrokerError::UnknownSession(_) => ErrorCode::UnknownSession,
        _ => ErrorCode::Internal,
    }
}

/// Interns a wire subscription into the broker's vocabulary and validates
/// it. On a durable broker the interning itself is WAL-logged, so a
/// recovered broker resolves the same names to the same ids.
fn wire_subscription(
    broker: &SharedBroker,
    preds: &[WirePredicate],
) -> Result<Subscription, TypeError> {
    let predicates = broker.with_vocab(|vocab| {
        preds
            .iter()
            .map(|p| {
                let attr = vocab.attr(&p.attr);
                let value = match &p.value {
                    WireValue::Int(i) => Value::Int(*i),
                    WireValue::Str(s) => vocab.string(s),
                };
                Predicate::new(attr, p.op, value)
            })
            .collect::<Vec<_>>()
    });
    Subscription::from_predicates(predicates)
}

/// Interns a wire event and validates it (duplicate attributes rejected).
fn wire_event(broker: &SharedBroker, wire: &WireEvent) -> Result<Event, TypeError> {
    let pairs = broker.with_vocab(|vocab| {
        wire.pairs
            .iter()
            .map(|(attr, value)| {
                let attr = vocab.attr(attr);
                let value = match value {
                    WireValue::Int(i) => Value::Int(*i),
                    WireValue::Str(s) => vocab.string(s),
                };
                (attr, value)
            })
            .collect::<Vec<_>>()
    });
    Event::from_pairs(pairs)
}
