//! `netload`: an end-to-end load generator for the network server.
//!
//! Drives the full subscribe → publish → notify round-trip over real
//! sockets: `subscribers` connections each register `subs_per_connection`
//! equality subscriptions on one attribute, a publisher connection
//! publishes `events` events drawn uniformly from the same value space,
//! and every subscriber drains its notification stream until it goes
//! quiet. The report cross-checks delivery (notifications received vs.
//! matches acknowledged) and measures publish round-trip throughput —
//! each publish waits for its ack, so `publish_rps` is a request/response
//! figure, not a pipelined one.

use crate::client::{Client, ClientError, ReconnectPolicy};
use crate::frame::{WireEvent, WirePredicate, WireValue};
use pubsub_types::Operator;
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

/// Attribute the generated workload subscribes and publishes on.
const LOAD_ATTR: &str = "k";

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:7171`.
    pub addr: String,
    /// Subscriber connections.
    pub subscribers: usize,
    /// Equality subscriptions per subscriber connection.
    pub subs_per_connection: usize,
    /// Events the publisher sends (each awaited to its ack).
    pub events: usize,
    /// Values `k` ranges over; smaller spaces mean higher match rates.
    pub value_space: i64,
    /// Workload seed (event values are drawn deterministically from it).
    pub seed: u64,
    /// How long a subscriber's stream must stay quiet before it stops
    /// draining.
    pub drain_idle: Duration,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            addr: String::new(),
            subscribers: 4,
            subs_per_connection: 8,
            events: 1000,
            value_space: 32,
            seed: 0x5EED,
            drain_idle: Duration::from_millis(300),
        }
    }
}

/// What a load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Subscriber connections that participated.
    pub subscribers: usize,
    /// Subscriptions registered in total.
    pub subscriptions: usize,
    /// Events published (and acked).
    pub events: usize,
    /// Sum of per-publish match counts acknowledged by the server.
    pub matched_total: u64,
    /// Notify frames received across all subscribers.
    pub notifications: u64,
    /// Wall-clock seconds of the publish loop alone.
    pub publish_secs: f64,
    /// Publish round-trips per second.
    pub publish_rps: f64,
}

impl LoadReport {
    /// The report as a JSON object (the `results/BENCH_net.json` artifact).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"bench\": \"netload\",\n",
                "  \"subscribers\": {},\n",
                "  \"subscriptions\": {},\n",
                "  \"events\": {},\n",
                "  \"matched_total\": {},\n",
                "  \"notifications\": {},\n",
                "  \"publish_secs\": {:.6},\n",
                "  \"publish_rps\": {:.1}\n",
                "}}\n"
            ),
            self.subscribers,
            self.subscriptions,
            self.events,
            self.matched_total,
            self.notifications,
            self.publish_secs,
            self.publish_rps,
        )
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs the load workload against a live server.
pub fn run(config: &LoadConfig) -> Result<LoadReport, ClientError> {
    let subs_total = config.subscribers * config.subs_per_connection;

    // Register all subscriptions before the first publish so every event
    // faces the full subscription set.
    let mut subscriber_clients = Vec::with_capacity(config.subscribers);
    for s in 0..config.subscribers {
        let mut client = Client::connect(&config.addr)?;
        // Ride out transient server hiccups (restarts, accept stalls)
        // instead of failing the whole run on the first broken socket.
        client.set_reconnect(Some(ReconnectPolicy::default()));
        for i in 0..config.subs_per_connection {
            let value = ((s * config.subs_per_connection + i) as i64) % config.value_space;
            client.subscribe(vec![WirePredicate {
                attr: LOAD_ATTR.into(),
                op: Operator::Eq,
                value: WireValue::Int(value),
            }])?;
        }
        subscriber_clients.push(client);
    }

    // Subscribers drain concurrently with the publish loop, each stopping
    // once its stream stays quiet for `drain_idle`.
    let (tx, rx) = mpsc::channel::<Result<u64, ClientError>>();
    let mut workers = Vec::new();
    for mut client in subscriber_clients {
        let tx = tx.clone();
        let idle = config.drain_idle;
        workers.push(thread::spawn(move || {
            let result = client.drain_notifies(idle).map(|ns| ns.len() as u64);
            let _ = tx.send(result);
        }));
    }
    drop(tx);

    let mut publisher = Client::connect(&config.addr)?;
    publisher.set_reconnect(Some(ReconnectPolicy::default()));
    let mut rng = config.seed;
    let mut matched_total = 0u64;
    let start = Instant::now();
    for i in 0..config.events {
        let value = (splitmix(&mut rng) % config.value_space.max(1) as u64) as i64;
        let event = WireEvent {
            pairs: vec![
                (LOAD_ATTR.into(), WireValue::Int(value)),
                ("eid".into(), WireValue::Int(i as i64)),
            ],
        };
        matched_total += u64::from(publisher.publish(event)?);
    }
    let publish_secs = start.elapsed().as_secs_f64();

    let mut notifications = 0u64;
    for result in rx {
        notifications += result?;
    }
    for w in workers {
        let _ = w.join();
    }

    Ok(LoadReport {
        subscribers: config.subscribers,
        subscriptions: subs_total,
        events: config.events,
        matched_total,
        notifications,
        publish_secs,
        publish_rps: if publish_secs > 0.0 {
            config.events as f64 / publish_secs
        } else {
            0.0
        },
    })
}
