//! A bounded, closable MPSC queue for per-connection outbound frames.
//!
//! `std::sync::mpsc::SyncSender` almost fits, but a sender blocked on a
//! full queue can only be woken by the receiver — and the receiver here is
//! a writer thread that may be gone (its TCP peer died). [`OutQueue::close`]
//! is the missing operation: any thread can mark the queue dead and every
//! blocked producer wakes immediately with [`PushError::Closed`], so a
//! publisher can never wedge on a dead subscriber's queue. This is the
//! mechanism behind the `Block` delivery policy staying deadlock-free.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity (only from [`OutQueue::try_push`]).
    Full,
    /// The queue was closed; the connection behind it is gone.
    Closed,
}

struct Inner<T> {
    buf: VecDeque<T>,
    closed: bool,
}

/// A bounded MPSC queue whose producers can be unblocked by closing it.
pub struct OutQueue<T> {
    inner: Mutex<Inner<T>>,
    /// Signalled when space frees up or the queue closes (producers wait).
    space: Condvar,
    /// Signalled when an item arrives or the queue closes (consumer waits).
    items: Condvar,
    cap: usize,
}

impl<T> OutQueue<T> {
    /// A queue holding at most `cap` items (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                buf: VecDeque::new(),
                closed: false,
            }),
            space: Condvar::new(),
            items: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueues, waiting for space. Fails only if the queue is (or becomes)
    /// closed while waiting.
    pub fn push_blocking(&self, item: T) -> Result<(), PushError> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.closed {
                return Err(PushError::Closed);
            }
            if inner.buf.len() < self.cap {
                inner.buf.push_back(item);
                self.items.notify_one();
                return Ok(());
            }
            inner = self.space.wait(inner).unwrap();
        }
    }

    /// Enqueues without waiting.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.buf.len() >= self.cap {
            return Err(PushError::Full);
        }
        inner.buf.push_back(item);
        self.items.notify_one();
        Ok(())
    }

    /// Dequeues, waiting for an item. Returns `None` once the queue is
    /// closed — immediately, discarding anything still buffered: close
    /// means the connection is dead and its frames have nowhere to go.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.closed {
                return None;
            }
            if let Some(item) = inner.buf.pop_front() {
                self.space.notify_one();
                return Some(item);
            }
            inner = self.items.wait(inner).unwrap();
        }
    }

    /// Closes the queue: every blocked producer and the consumer wake, and
    /// all future operations fail fast. Idempotent.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        drop(inner);
        self.space.notify_all();
        self.items.notify_all();
    }

    /// Whether [`OutQueue::close`] has run.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }

    /// Items currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_and_capacity() {
        let q = OutQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_unblocks_a_full_queue_producer() {
        let q = Arc::new(OutQueue::new(1));
        q.try_push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push_blocking(1))
        };
        // Give the producer time to block on the full queue, then close.
        thread::sleep(Duration::from_millis(50));
        q.close();
        assert_eq!(producer.join().unwrap(), Err(PushError::Closed));
        assert_eq!(q.pop(), None, "close discards buffered items");
    }

    #[test]
    fn close_unblocks_the_consumer() {
        let q = Arc::new(OutQueue::<u32>::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.pop())
        };
        thread::sleep(Duration::from_millis(50));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }
}
