//! Fault-injected chaos for the network server, driven through the
//! `pubsub_types::faults` registry (compile with `--features faults`;
//! every test is a no-op otherwise). Each scenario kills a connection at
//! a server-side fault point — accepting, mid-handshake, mid-frame,
//! mid-delivery — and then proves the session registry is exact: no
//! session invented, no ghost attachment, resume restores precisely the
//! applied subscription state.
//!
//! This suite lives in its own test binary on purpose: the fault registry
//! is process-global, and a separate binary (= separate process) keeps
//! armed rules from firing inside the other network suites.

use pubsub_broker::SharedBroker;
use pubsub_core::{Backpressure, EngineKind};
use pubsub_net::{Client, ClientError, Server, ServerConfig, WireEvent, WirePredicate, WireValue};
use pubsub_types::faults::{self, points, FaultAction, Schedule};
use pubsub_types::Operator;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// The registry is process-global; chaos tests take turns.
static SERIAL: Mutex<()> = Mutex::new(());

fn server() -> Server {
    let broker = Arc::new(SharedBroker::new(EngineKind::Counting, 2));
    Server::start(broker, "127.0.0.1:0").expect("bind loopback")
}

fn eq_pred(attr: &str, value: i64) -> WirePredicate {
    WirePredicate {
        attr: attr.into(),
        op: Operator::Eq,
        value: WireValue::Int(value),
    }
}

fn event(attr: &str, value: i64) -> WireEvent {
    WireEvent {
        pairs: vec![(attr.into(), WireValue::Int(value))],
    }
}

/// Reads until the kicked/severed connection observes its dead socket.
fn expect_dead(client: &mut Client) {
    let read = client.next_notify(Duration::from_secs(5));
    assert!(
        read.is_err(),
        "severed connection must observe a dead socket, got {read:?}"
    );
}

#[test]
fn accept_fault_drops_the_connection_before_any_session_exists() {
    let _guard = SERIAL.lock().unwrap();
    if !faults::enabled() {
        return;
    }
    faults::clear();
    let server = server();
    faults::arm(
        points::NET_ACCEPT,
        None,
        FaultAction::Fail,
        Schedule::Nth(1),
    );
    let attempt = Client::connect(server.local_addr());
    assert!(
        matches!(attempt, Err(ClientError::Io(_))),
        "accept-time failure surfaces as an I/O error"
    );
    let status = server.status();
    assert_eq!(status.sessions, 0, "no session may be created");
    assert_eq!(status.attached, 0);
    // The rule is spent; the server keeps serving.
    faults::clear();
    Client::connect(server.local_addr()).expect("server still accepts");
    server.shutdown();
}

#[test]
fn kill_mid_handshake_creates_no_session() {
    let _guard = SERIAL.lock().unwrap();
    if !faults::enabled() {
        return;
    }
    faults::clear();
    let server = server();
    faults::arm(
        points::NET_HANDSHAKE,
        None,
        FaultAction::Fail,
        Schedule::Nth(1),
    );
    let attempt = Client::connect(server.local_addr());
    assert!(
        matches!(attempt, Err(ClientError::Io(_))),
        "mid-handshake kill severs before the hello ack"
    );
    let status = server.status();
    assert_eq!(
        status.sessions, 0,
        "a handshake killed before completion must not create a session"
    );
    assert_eq!(status.attached, 0, "no ghost attachment");
    faults::clear();
    let client = Client::connect(server.local_addr()).expect("handshake works again");
    assert!(client.token() > 0);
    server.shutdown();
}

#[test]
fn kill_mid_frame_applies_exactly_the_received_prefix() {
    let _guard = SERIAL.lock().unwrap();
    if !faults::enabled() {
        return;
    }
    faults::clear();
    let server = server();
    let addr = server.local_addr();

    // First connection (lane 0): one applied subscribe, then a kill on the
    // very next inbound frame — the second subscribe must never apply.
    let mut client = Client::connect(addr).expect("connect");
    let token = client.token();
    let id = client.subscribe(vec![eq_pred("k", 1)]).expect("subscribe");
    faults::arm(
        points::NET_FRAME_READ,
        Some(0),
        FaultAction::Fail,
        Schedule::Nth(1),
    );
    let second = client.subscribe(vec![eq_pred("k", 2)]);
    assert!(
        second.is_err(),
        "the killed frame's request must not be acked, got ok"
    );
    faults::clear();

    // The session survives with exactly the applied prefix.
    let status = server.status();
    assert_eq!(status.sessions, 1, "session outlives its connection");
    assert_eq!(status.attached, 0, "dead connection detached, no ghost");
    assert_eq!(
        status.net_subscriptions, 1,
        "the killed subscribe must not half-apply"
    );
    let resumed = Client::resume(addr, token).expect("resume");
    assert_eq!(
        resumed.resumed(),
        &[id],
        "resume reports exactly the applied subscription, once"
    );
    assert_eq!(server.status().attached, 1);
    server.shutdown();
}

#[test]
fn kill_mid_delivery_consumes_sequence_numbers_and_resumes_clean() {
    let _guard = SERIAL.lock().unwrap();
    if !faults::enabled() {
        return;
    }
    faults::clear();
    let server = server();
    let addr = server.local_addr();

    // Subscriber on lane 0; its writer will be killed mid-batch.
    let mut subscriber = Client::connect(addr).expect("connect subscriber");
    let token = subscriber.token();
    let id = subscriber
        .subscribe(vec![eq_pred("k", 7)])
        .expect("subscribe");
    let mut publisher = Client::connect(addr).expect("connect publisher");

    // Counting from arming: write 1 is the first notify (delivered), write
    // 2 the second (killed mid-delivery). The third is enqueued behind a
    // dead writer and dropped with its seq consumed.
    faults::arm(
        points::NET_NOTIFY_WRITE,
        Some(0),
        FaultAction::Fail,
        Schedule::Nth(2),
    );
    for _ in 0..3 {
        let matched = publisher.publish(event("k", 7)).expect("publish");
        assert_eq!(matched, 1);
    }
    let first = subscriber
        .next_notify(Duration::from_secs(5))
        .expect("first notify precedes the kill")
        .expect("delivered");
    assert_eq!(first.seq, 1);
    assert_eq!(first.ids, vec![id]);
    expect_dead(&mut subscriber);
    faults::clear();

    // The session survives; resume restores the subscription and the next
    // delivery's sequence number exposes the mid-batch gap (at-most-once:
    // the two killed notifies consumed seq 2 and 3).
    let mut resumed = Client::resume(addr, token).expect("resume");
    assert_eq!(resumed.resumed(), &[id]);
    assert_eq!(server.status().attached, 2, "subscriber + publisher");
    let matched = publisher.publish(event("k", 7)).expect("publish");
    assert_eq!(matched, 1);
    let after = resumed
        .next_notify(Duration::from_secs(5))
        .expect("stream")
        .expect("post-resume delivery");
    assert_eq!(after.ids, vec![id]);
    assert_eq!(
        after.seq, 4,
        "the killed deliveries consumed seq 2 and 3 — the gap is the contract"
    );
    let extra = resumed.next_notify(Duration::from_millis(30)).unwrap();
    assert!(extra.is_none(), "no duplicate deliveries, got {extra:?}");
    server.shutdown();
}

#[test]
fn wedged_subscriber_delivery_does_not_stall_other_connections() {
    let _guard = SERIAL.lock().unwrap();
    if !faults::enabled() {
        return;
    }
    faults::clear();
    // Capacity 1 + Block: two in-flight notifies wedge a publisher inside
    // deliver(), which then holds the subscriber's delivery lock across a
    // blocking enqueue. Regression test: no server path may wait on that
    // delivery lock while holding the registry lock, or one non-reading
    // subscriber stalls every connection (hello/subscribe/publish/status)
    // server-wide.
    let broker = Arc::new(SharedBroker::new(EngineKind::Counting, 2));
    let config = ServerConfig {
        queue_capacity: 1,
        delivery: Backpressure::Block,
        ..ServerConfig::default()
    };
    let server = Server::start_with(broker, "127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr();

    // Subscriber on lane 0; its writer will be slowed to a crawl.
    let mut subscriber = Client::connect(addr).expect("connect subscriber");
    let sub_token = subscriber.token();
    subscriber
        .subscribe(vec![eq_pred("k", 1)])
        .expect("subscribe");
    let mut publisher = Client::connect(addr).expect("connect publisher");

    // Every outbound frame on the subscriber's connection sleeps 5s, so
    // its queue stays full while the publisher's third notify blocks.
    faults::arm(
        points::NET_NOTIFY_WRITE,
        Some(0),
        FaultAction::Delay(5_000),
        Schedule::EveryNth(1),
    );
    let wedged = thread::spawn(move || {
        // Notify 1 is popped and sleeping in the writer, notify 2 fills
        // the queue, notify 3 blocks this reader in push_blocking —
        // holding the subscriber's delivery lock for seconds.
        for _ in 0..3 {
            publisher.publish(event("k", 1)).expect("publish");
        }
        publisher
    });
    thread::sleep(Duration::from_millis(300));

    // While the publisher is wedged, every registry-touching path must
    // stay responsive: these all complete in well under the 5s wedge.
    let start = Instant::now();
    assert_eq!(
        server.session_subscriptions(sub_token).map(|s| s.len()),
        Some(1)
    );
    let mut other = Client::connect(addr).expect("hello during wedge");
    other
        .subscribe(vec![eq_pred("k", 2)])
        .expect("subscribe during wedge");
    let matched = other.publish(event("k", 2)).expect("publish during wedge");
    assert_eq!(matched, 1);
    other
        .next_notify(Duration::from_secs(2))
        .expect("own delivery during wedge")
        .expect("delivered");
    assert!(
        start.elapsed() < Duration::from_millis(2_500),
        "other connections must not wait out the wedged delivery lock, took {:?}",
        start.elapsed()
    );

    faults::clear();
    let mut publisher = wedged.join().expect("publisher thread");
    // The wedge resolved once the slowed writer drained; everyone's fine.
    assert_eq!(publisher.publish(event("k", 99)).expect("publish"), 0);
    server.shutdown();
}

#[test]
fn follower_converges_through_injected_accept_and_stream_failures() {
    use pubsub_durability::{CorruptionPolicy, DurabilityConfig, FsyncPolicy};
    use pubsub_net::{Follower, FollowerConfig};

    let _guard = SERIAL.lock().unwrap();
    if !faults::enabled() {
        return;
    }
    faults::clear();

    let base = std::env::temp_dir().join(format!("fp-replchaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let config = DurabilityConfig {
        segment_bytes: u64::MAX,
        fsync: FsyncPolicy::OsManaged,
        corruption: CorruptionPolicy::Fail,
        snapshot_every_ops: 0,
    };
    let (leader, _) = SharedBroker::open_durable_with(
        EngineKind::Counting,
        2,
        Backpressure::Block,
        base.join("leader"),
        config,
    )
    .expect("open leader");
    let leader = Arc::new(leader);
    let server = Server::start_with(
        Arc::clone(&leader),
        "127.0.0.1:0",
        pubsub_net::ServerConfig {
            repl_poll: Duration::from_millis(3),
            ..pubsub_net::ServerConfig::default()
        },
    )
    .expect("bind leader server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for v in 0..10i64 {
        client.subscribe(vec![eq_pred("k", v)]).expect("subscribe");
    }

    // Hostile weather: the first replication accept dies outright, and
    // after that every 7th stream poll severs the connection. The
    // follower must reconnect through all of it and still converge.
    faults::arm(
        points::REPL_ACCEPT,
        None,
        FaultAction::Fail,
        Schedule::Nth(1),
    );
    faults::arm(
        points::REPL_STREAM_READ,
        None,
        FaultAction::Fail,
        Schedule::EveryNth(7),
    );
    let (fbroker, _) =
        SharedBroker::open_follower(EngineKind::Counting, 2, base.join("follower"), config)
            .expect("open follower");
    let fbroker = Arc::new(fbroker);
    let follower = Follower::start(
        Arc::clone(&fbroker),
        server.local_addr(),
        FollowerConfig {
            backoff_initial: Duration::from_millis(5),
            backoff_max: Duration::from_millis(50),
            connect_timeout: Duration::from_millis(500),
            ..FollowerConfig::default()
        },
    )
    .expect("start follower");

    // Keep writing while the stream keeps dying under it.
    for v in 10..30i64 {
        client.subscribe(vec![eq_pred("k", v)]).expect("subscribe");
        thread::sleep(Duration::from_millis(2));
    }
    let deadline = Instant::now() + Duration::from_secs(20);
    let target = leader.durability().expect("durable").next_lsn;
    loop {
        let applied = fbroker.durability().expect("durable").next_lsn;
        if applied >= target {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "follower never converged under injected faults: applied {applied} of {target}"
        );
        thread::sleep(Duration::from_millis(10));
    }
    let status = follower.status();
    assert!(
        status.connects >= 2,
        "injected cuts must have forced at least one reconnect, got {}",
        status.connects
    );
    faults::clear();
    follower.stop();
    server.shutdown();
}
