//! Socket-level leader/follower replication: a real [`Server`] serving its
//! WAL to a real [`Follower`] over loopback TCP — continuous streaming,
//! snapshot catch-up past compacted history, staleness on a dead leader,
//! and failover promotion with subscription ids preserved.

use pubsub_broker::{BrokerError, SharedBroker, Validity};
use pubsub_core::{Backpressure, EngineKind};
use pubsub_durability::{CorruptionPolicy, DurabilityConfig, FsyncPolicy};
use pubsub_net::{
    Client, Follower, FollowerConfig, Server, ServerConfig, WirePredicate, WireValue,
};
use pubsub_types::{Event, Operator, Predicate, Subscription, Value};
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fp-replnet-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn wal_config(segment_bytes: u64) -> DurabilityConfig {
    DurabilityConfig {
        segment_bytes,
        fsync: FsyncPolicy::OsManaged,
        corruption: CorruptionPolicy::Fail,
        snapshot_every_ops: 0,
    }
}

/// Server tuned for test latencies: tail polls every few milliseconds.
fn server_config() -> ServerConfig {
    ServerConfig {
        repl_poll: Duration::from_millis(3),
        ..ServerConfig::default()
    }
}

/// Follower tuned for test latencies: fast redials, short staleness
/// deadline so a dead leader is noticed within the test budget.
fn follower_config() -> FollowerConfig {
    FollowerConfig {
        backoff_initial: Duration::from_millis(10),
        backoff_max: Duration::from_millis(100),
        degraded_after: Duration::from_millis(300),
        connect_timeout: Duration::from_millis(500),
        ..FollowerConfig::default()
    }
}

fn eq_pred(attr: &str, value: i64) -> WirePredicate {
    WirePredicate {
        attr: attr.into(),
        op: Operator::Eq,
        value: WireValue::Int(value),
    }
}

fn wait_until(budget: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + budget;
    while Instant::now() < end {
        if cond() {
            return true;
        }
        thread::sleep(Duration::from_millis(5));
    }
    false
}

/// Waits until the follower has heard a leader position and applied
/// everything up to it.
fn wait_caught_up(follower: &Follower) {
    assert!(
        wait_until(Duration::from_secs(10), || {
            let s = follower.status();
            s.lag == Some(0)
        }),
        "follower never caught up: {:?}",
        follower.status()
    );
}

fn durable_leader(dir: &PathBuf, segment_bytes: u64) -> (Arc<SharedBroker>, Server) {
    let (broker, _) = SharedBroker::open_durable_with(
        EngineKind::Counting,
        2,
        Backpressure::Block,
        dir,
        wal_config(segment_bytes),
    )
    .unwrap();
    let broker = Arc::new(broker);
    let server = Server::start_with(Arc::clone(&broker), "127.0.0.1:0", server_config()).unwrap();
    (broker, server)
}

fn start_follower(dir: &PathBuf, server: &Server) -> (Arc<SharedBroker>, Follower) {
    let (broker, _) =
        SharedBroker::open_follower(EngineKind::Counting, 2, dir, wal_config(u64::MAX)).unwrap();
    let broker = Arc::new(broker);
    let follower =
        Follower::start(Arc::clone(&broker), server.local_addr(), follower_config()).unwrap();
    (broker, follower)
}

/// How many subscriptions `k == value` matches on `broker`, resolving the
/// attribute through the replicated (or leader) vocabulary. An unknown
/// attribute matches nothing by construction.
fn probe(broker: &SharedBroker, value: i64) -> usize {
    match broker.lookup_attr("k") {
        Some(attr) => {
            let event = Event::from_pairs(vec![(attr, Value::Int(value))]).unwrap();
            broker.publish(&event).len()
        }
        None => 0,
    }
}

#[test]
fn follower_tails_leader_and_failover_promotes() {
    let dir_l = temp_dir("lead-tail");
    let dir_f = temp_dir("fol-tail");
    let (leader, server) = durable_leader(&dir_l, u64::MAX);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let id1 = client.subscribe(vec![eq_pred("k", 1)]).unwrap();
    let id2 = client.subscribe(vec![eq_pred("k", 2)]).unwrap();

    let (fbroker, follower) = start_follower(&dir_f, &server);
    wait_caught_up(&follower);

    // The replica matches exactly like the leader, via the replicated
    // vocabulary — no local interning happened on the follower.
    assert_eq!(probe(&fbroker, 1), 1);
    assert_eq!(probe(&fbroker, 2), 1);
    assert_eq!(probe(&fbroker, 3), 0);

    // Live streaming: a subscribe on the leader shows up on the replica.
    let id3 = client.subscribe(vec![eq_pred("k", 3)]).unwrap();
    assert!(
        wait_until(Duration::from_secs(10), || probe(&fbroker, 3) == 1),
        "live subscribe never replicated"
    );

    // The follower is read-only until promoted.
    let attr = fbroker.lookup_attr("k").unwrap();
    let sub =
        Subscription::from_predicates(vec![Predicate::new(attr, Operator::Eq, Value::Int(9))])
            .unwrap();
    assert!(matches!(
        fbroker.try_subscribe(sub.clone(), Validity::forever()),
        Err(BrokerError::Follower)
    ));

    // Kill the leader. The follower loses the stream, keeps serving the
    // last replicated state, and flips stale past the deadline.
    drop(client);
    server.shutdown();
    drop(server);
    drop(leader);
    assert!(
        wait_until(Duration::from_secs(10), || follower.status().stale),
        "stale flag never flipped after leader death: {:?}",
        follower.status()
    );
    assert_eq!(probe(&fbroker, 1), 1, "stale follower still serves matches");

    // Failover: promote, become writable, never reissue a dead id.
    let next = follower.promote().unwrap();
    assert_eq!(next, fbroker.durability().unwrap().next_lsn);
    let status = follower.status();
    assert!(status.promoted);
    assert!(!status.stale, "promotion ends staleness");
    let new_id = fbroker.try_subscribe(sub, Validity::forever()).unwrap();
    for dead in [id1, id2, id3] {
        assert_ne!(new_id.0, dead, "promoted broker resurrected id {dead}");
    }
    assert_eq!(probe(&fbroker, 9), 1, "promoted broker accepts writes");
}

#[test]
fn snapshot_catchup_bridges_compacted_history_over_sockets() {
    let dir_l = temp_dir("lead-snap");
    let dir_f = temp_dir("fol-snap");
    // Tiny segments so compaction actually retires history.
    let (leader, server) = durable_leader(&dir_l, 256);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let mut ids = Vec::new();
    for i in 0..40i64 {
        ids.push(client.subscribe(vec![eq_pred("k", i % 7)]).unwrap());
    }
    for id in ids.iter().step_by(3) {
        assert!(client.unsubscribe(*id).unwrap());
    }
    // Compact: history before the snapshot is gone from the log, so a
    // fresh follower must come up via snapshot transfer.
    leader.snapshot().unwrap();
    for i in 0..5i64 {
        client.subscribe(vec![eq_pred("k", 10 + i)]).unwrap();
    }

    let (fbroker, follower) = start_follower(&dir_f, &server);
    wait_caught_up(&follower);
    for v in 0..16 {
        assert_eq!(
            probe(&fbroker, v),
            probe(&leader, v),
            "replica diverges from leader at k == {v}"
        );
    }

    // Stop the stream, write more on the leader, restart a follower over
    // the same directory: it resumes from its own position, no snapshot
    // needed this time.
    follower.stop();
    drop(follower);
    client.subscribe(vec![eq_pred("k", 20)]).unwrap();
    let follower =
        Follower::start(Arc::clone(&fbroker), server.local_addr(), follower_config()).unwrap();
    wait_caught_up(&follower);
    assert_eq!(
        probe(&fbroker, 20),
        1,
        "restarted follower resumed streaming"
    );
    server.shutdown();
}

#[test]
fn replication_requires_a_durable_leader() {
    // A non-durable server refuses ReplHello; the follower keeps retrying
    // (the condition is operational), stays unsynced, and reports it.
    let broker = Arc::new(SharedBroker::new(EngineKind::Counting, 2));
    let server = Server::start_with(Arc::clone(&broker), "127.0.0.1:0", server_config()).unwrap();
    let dir_f = temp_dir("fol-nodur");
    let (fbroker, follower) = start_follower(&dir_f, &server);
    thread::sleep(Duration::from_millis(200));
    let status = follower.status();
    assert_eq!(status.lag, None, "no leader position was ever announced");
    assert_eq!(fbroker.durability().unwrap().next_lsn, 0);
    server.shutdown();
}
