//! Protocol conformance: proptest round-trips of every frame type, and an
//! adversarial decoder suite — truncated frames, corrupt CRCs, oversized
//! length prefixes and random byte soup must produce typed errors (or ask
//! for more bytes), never a panic and never an allocation sized by
//! attacker-controlled counts. The live-server tests at the bottom hold
//! the *server* to the same standard: arbitrary bytes on a real socket
//! never kill it.

use proptest::prelude::*;
use pubsub_broker::SharedBroker;
use pubsub_core::EngineKind;
use pubsub_net::{
    Ack, Client, ErrorCode, Frame, FrameError, FrameReader, Server, WireEvent, WirePredicate,
    WireValue, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use pubsub_types::{CodecError, Operator};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

// ---- strategies ------------------------------------------------------------

fn arb_string() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..64, 0..12).prop_map(|bytes| {
        bytes
            .into_iter()
            .map(|b| match b {
                0..=25 => (b'a' + b) as char,
                26..=51 => (b'A' + b - 26) as char,
                52..=61 => (b'0' + b - 52) as char,
                62 => 'é', // multi-byte UTF-8 exercises the str codec
                _ => '·',
            })
            .collect()
    })
}

fn arb_value() -> impl Strategy<Value = WireValue> {
    prop_oneof![
        any::<i64>().prop_map(WireValue::Int),
        arb_string().prop_map(WireValue::Str),
    ]
}

fn arb_operator() -> impl Strategy<Value = Operator> {
    prop::sample::select(Operator::ALL.to_vec())
}

fn arb_predicate() -> impl Strategy<Value = WirePredicate> {
    (arb_string(), arb_operator(), arb_value()).prop_map(|(attr, op, value)| WirePredicate {
        attr,
        op,
        value,
    })
}

fn arb_event() -> impl Strategy<Value = WireEvent> {
    prop::collection::vec((arb_string(), arb_value()), 0..6).prop_map(|pairs| WireEvent { pairs })
}

fn arb_ids() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(any::<u32>(), 0..8)
}

fn arb_error_code() -> impl Strategy<Value = ErrorCode> {
    prop::sample::select(vec![
        ErrorCode::BadFrame,
        ErrorCode::BadHandshake,
        ErrorCode::UnknownSession,
        ErrorCode::BadRequest,
        ErrorCode::Unavailable,
        ErrorCode::Internal,
    ])
}

fn arb_ack() -> impl Strategy<Value = Ack> {
    prop_oneof![
        (any::<u64>(), arb_ids()).prop_map(|(token, resumed)| Ack::Hello { token, resumed }),
        (any::<u32>(), any::<u32>()).prop_map(|(req, id)| Ack::Subscribe { req, id }),
        (any::<u32>(), any::<bool>()).prop_map(|(req, existed)| Ack::Unsubscribe { req, existed }),
        (any::<u32>(), any::<u32>()).prop_map(|(req, matched)| Ack::Publish { req, matched }),
    ]
}

/// Every client/server frame variant, including the liveness pair.
fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (any::<u32>(), any::<u64>()).prop_map(|(proto, token)| Frame::Hello { proto, token }),
        (any::<u32>(), prop::collection::vec(arb_predicate(), 0..5))
            .prop_map(|(req, preds)| Frame::Subscribe { req, preds }),
        (any::<u32>(), any::<u32>()).prop_map(|(req, id)| Frame::Unsubscribe { req, id }),
        (any::<u32>(), arb_event()).prop_map(|(req, event)| Frame::Publish { req, event }),
        (any::<u64>(), arb_ids(), arb_event()).prop_map(|(seq, ids, event)| Frame::Notify {
            seq,
            ids,
            event
        }),
        arb_ack().prop_map(Frame::Ack),
        (any::<u32>(), arb_error_code(), arb_string()).prop_map(|(req, code, msg)| Frame::Error {
            req,
            code,
            msg
        }),
        any::<u64>().prop_map(|nonce| Frame::Ping { nonce }),
        any::<u64>().prop_map(|nonce| Frame::Pong { nonce }),
    ]
}

// ---- round-trip conformance ------------------------------------------------

proptest! {
    /// encode → decode is the identity for every frame type.
    #[test]
    fn every_frame_round_trips(frame in arb_frame()) {
        let mut payload = Vec::new();
        frame.encode(&mut payload);
        prop_assert_eq!(Frame::decode(&payload).unwrap(), frame);
    }

    /// A stream of frames survives arbitrary re-chunking through the
    /// incremental reader, in order, with nothing left over.
    #[test]
    fn frame_streams_survive_rechunking(
        frames in prop::collection::vec(arb_frame(), 1..6),
        chunk in 1usize..64,
    ) {
        let mut stream = Vec::new();
        for f in &frames {
            f.write_to(&mut stream);
        }
        let mut reader = FrameReader::new();
        let mut decoded = Vec::new();
        for piece in stream.chunks(chunk) {
            reader.extend(piece);
            while let Some(f) = reader.next_frame().unwrap() {
                decoded.push(f);
            }
        }
        prop_assert_eq!(decoded, frames);
        prop_assert_eq!(reader.pending(), 0);
    }

    // ---- adversarial decoder suite ----------------------------------------

    /// Any strict prefix of a valid frame decodes to "need more bytes",
    /// never to a frame and never to a panic.
    #[test]
    fn truncated_frames_wait_for_more(frame in arb_frame(), cut in any::<prop::sample::Index>()) {
        let bytes = frame.to_bytes();
        let cut = cut.index(bytes.len().max(1)); // 0..len → always strict
        let mut reader = FrameReader::new();
        reader.extend(&bytes[..cut]);
        prop_assert_eq!(reader.next_frame().unwrap(), None);
    }

    /// Flipping any payload byte is caught by the checksum before the
    /// decoder ever sees the payload.
    #[test]
    fn corrupt_payload_bytes_fail_the_crc(
        frame in arb_frame(),
        at in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let mut bytes = frame.to_bytes();
        // Every payload is at least the tag byte, so there is always a
        // byte to corrupt.
        let payload_len = bytes.len() - 8;
        let at = 8 + at.index(payload_len);
        bytes[at] ^= flip;
        let mut reader = FrameReader::new();
        reader.extend(&bytes);
        let crc_failed = matches!(reader.next_frame(), Err(FrameError::BadCrc { .. }));
        prop_assert!(crc_failed, "corruption at byte {} went undetected", at);
    }

    /// A length prefix beyond the bound is rejected before the payload is
    /// buffered — the reader never allocates toward a hostile length.
    #[test]
    fn oversized_length_prefixes_are_rejected(extra in 1u32..=u32::MAX - MAX_FRAME_BYTES) {
        let len = MAX_FRAME_BYTES + extra;
        let mut bytes = len.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 4]);
        let mut reader = FrameReader::new();
        reader.extend(&bytes);
        prop_assert_eq!(
            reader.next_frame(),
            Err(FrameError::TooLarge { len, max: MAX_FRAME_BYTES })
        );
    }

    /// Random byte soup: the reader yields typed errors or asks for more,
    /// never panics, and never buffers beyond what it was fed.
    #[test]
    fn random_bytes_never_panic_the_reader(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut reader = FrameReader::new();
        reader.extend(&bytes);
        loop {
            match reader.next_frame() {
                Ok(Some(_)) => continue, // fluke frame: fine, keep going
                Ok(None) => break,       // wants more bytes
                Err(_) => break,         // typed error
            }
        }
        prop_assert!(reader.pending() <= bytes.len());
    }

    /// Hostile count prefixes inside a checksummed payload (the CRC is
    /// recomputed, so the frame *looks* valid) must fail as short reads
    /// before any count-sized allocation happens.
    #[test]
    fn hostile_counts_are_short_reads(tag in prop::sample::select(vec![2u8, 5u8]), count in 1024u32..u32::MAX) {
        let mut payload = vec![tag];
        if tag == 5 {
            payload.extend_from_slice(&1u64.to_le_bytes()); // Notify.seq
        } else {
            payload.extend_from_slice(&1u32.to_le_bytes()); // Subscribe.req
        }
        payload.extend_from_slice(&count.to_le_bytes());
        let short_read = matches!(Frame::decode(&payload), Err(CodecError::ShortRead { .. }));
        prop_assert!(short_read, "hostile count was not a short read");
    }
}

// ---- live server robustness ------------------------------------------------

fn test_server() -> Server {
    let broker = Arc::new(SharedBroker::new(EngineKind::Counting, 2));
    Server::start(broker, "127.0.0.1:0").expect("bind loopback")
}

/// Sends `bytes` raw, then proves the server survived by completing a full
/// handshake + subscribe + publish round-trip on a fresh connection.
fn assault_and_verify(server: &Server, bytes: &[u8]) {
    let mut sock = TcpStream::connect(server.local_addr()).unwrap();
    sock.write_all(bytes).unwrap();
    let _ = sock.shutdown(std::net::Shutdown::Write);
    // Drain whatever the server answers (error frames) until it closes.
    sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut sink = [0u8; 1024];
    while matches!(sock.read(&mut sink), Ok(n) if n > 0) {}
    drop(sock);

    let mut client = Client::connect(server.local_addr()).expect("server must still accept");
    let id = client
        .subscribe(vec![WirePredicate {
            attr: "alive".into(),
            op: Operator::Eq,
            value: WireValue::Int(1),
        }])
        .expect("server must still subscribe");
    let matched = client
        .publish(WireEvent {
            pairs: vec![("alive".into(), WireValue::Int(1))],
        })
        .expect("server must still publish");
    assert!(matched >= 1, "own subscription must match");
    client.unsubscribe(id).unwrap();
}

#[test]
fn random_bytes_never_kill_the_server() {
    let server = test_server();
    let mut state = 0x0DDB_17E5u64;
    for round in 0..32 {
        let len = 1 + (round * 17) % 300;
        let soup: Vec<u8> = (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect();
        assault_and_verify(&server, &soup);
    }
}

#[test]
fn hostile_frames_on_a_live_socket_get_typed_errors() {
    let server = test_server();

    // Oversized length prefix: connection must be refused with BadFrame.
    let mut bytes = (MAX_FRAME_BYTES + 7).to_le_bytes().to_vec();
    bytes.extend_from_slice(&[0u8; 4]);
    assault_and_verify(&server, &bytes);

    // Corrupt CRC on an otherwise valid Hello.
    let mut bytes = Frame::Hello {
        proto: PROTOCOL_VERSION,
        token: 0,
    }
    .to_bytes();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    assault_and_verify(&server, &bytes);

    // Valid framing, invalid tag inside the checksummed payload.
    let mut payload = vec![0xEEu8];
    payload.extend_from_slice(&[1, 2, 3]);
    let mut framed = (payload.len() as u32).to_le_bytes().to_vec();
    framed.extend_from_slice(&pubsub_types::codec::crc32c(&payload).to_le_bytes());
    framed.extend_from_slice(&payload);
    assault_and_verify(&server, &framed);

    // A non-Hello first frame: BadHandshake, connection closed, server fine.
    assault_and_verify(&server, &Frame::Unsubscribe { req: 1, id: 0 }.to_bytes());

    // Unsupported protocol version.
    assault_and_verify(
        &server,
        &Frame::Hello {
            proto: PROTOCOL_VERSION + 9,
            token: 0,
        }
        .to_bytes(),
    );
}

#[test]
fn bad_frame_stream_is_reported_before_the_connection_closes() {
    let server = test_server();
    let mut sock = TcpStream::connect(server.local_addr()).unwrap();
    let mut bytes = Frame::Hello {
        proto: PROTOCOL_VERSION,
        token: 0,
    }
    .to_bytes();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x80;
    sock.write_all(&bytes).unwrap();

    // The server must answer with a decodable Error frame, then EOF.
    sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut reader = FrameReader::new();
    let mut buf = [0u8; 1024];
    let frame = loop {
        if let Some(frame) = reader.next_frame().expect("server speaks valid frames") {
            break frame;
        }
        let n = sock.read(&mut buf).expect("read server reply");
        assert!(n > 0, "connection closed before the error frame");
        reader.extend(&buf[..n]);
    };
    match frame {
        Frame::Error { req, code, .. } => {
            assert_eq!(req, 0, "stream errors are connection-level");
            assert_eq!(code, ErrorCode::BadFrame);
        }
        other => panic!("expected Error frame, got {other:?}"),
    }
}

/// Reads frames from a raw socket until one arrives (5s cap).
fn read_one_frame(sock: &mut TcpStream) -> Frame {
    sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut reader = FrameReader::new();
    let mut buf = [0u8; 1024];
    loop {
        if let Some(frame) = reader.next_frame().expect("server speaks valid frames") {
            return frame;
        }
        let n = sock.read(&mut buf).expect("read server reply");
        assert!(n > 0, "connection closed before a frame arrived");
        reader.extend(&buf[..n]);
    }
}

#[test]
fn pings_are_answered_even_before_the_handshake() {
    let server = test_server();
    let mut sock = TcpStream::connect(server.local_addr()).unwrap();
    sock.write_all(&Frame::Ping { nonce: 0xFEED }.to_bytes())
        .unwrap();
    assert_eq!(read_one_frame(&mut sock), Frame::Pong { nonce: 0xFEED });
    // The connection is still pristine: a handshake works afterwards.
    sock.write_all(
        &Frame::Hello {
            proto: PROTOCOL_VERSION,
            token: 0,
        }
        .to_bytes(),
    )
    .unwrap();
    match read_one_frame(&mut sock) {
        Frame::Ack(Ack::Hello { token, .. }) => assert_ne!(token, 0),
        other => panic!("expected hello ack, got {other:?}"),
    }
}

#[test]
fn client_ping_round_trips_and_buffers_nothing() {
    let server = test_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    for _ in 0..3 {
        client.ping().expect("ping round-trips");
    }
    // Requests still work on the same connection.
    let id = client
        .subscribe(vec![WirePredicate {
            attr: "k".into(),
            op: Operator::Eq,
            value: WireValue::Int(1),
        }])
        .unwrap();
    client.ping().expect("ping after subscribe");
    assert!(client.unsubscribe(id).unwrap());
}

#[test]
fn a_pong_sent_to_the_server_is_a_bad_request() {
    let server = test_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .send_raw(&Frame::Pong { nonce: 1 }.to_bytes())
        .unwrap();
    let err = client
        .drain_notifies(Duration::from_secs(2))
        .expect_err("server must refuse a client-sent pong");
    match err {
        pubsub_net::ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected server refusal, got {other}"),
    }
}

/// Regression: a socket flipped to non-blocking used to turn the client's
/// blocking reads into `unreachable!` panics ("no timeout configured") in
/// both the handshake and `wait_ack`. Spurious `WouldBlock` on a blocking
/// read must be retried, not panicked on.
#[test]
fn spurious_wakeups_on_a_blocking_socket_do_not_panic_requests() {
    let server = test_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.stream().set_nonblocking(true).unwrap();
    let id = client
        .subscribe(vec![WirePredicate {
            attr: "k".into(),
            op: Operator::Eq,
            value: WireValue::Int(7),
        }])
        .expect("request must survive spurious WouldBlock");
    client
        .ping()
        .expect("ping must survive spurious WouldBlock");
    assert!(client.unsubscribe(id).unwrap());
}
