//! End-to-end differential test: the same generated workload drives the
//! networked broker and an in-process [`SharedBroker`], and the
//! notification sets must agree per event. The network layer may reorder
//! deliveries *across* subscribers but never within one, so each
//! subscriber's stream is checked for exact order (and gap-free delivery
//! sequence numbers, since the `Block` policy is lossless).

use pubsub_broker::{SharedBroker, Validity};
use pubsub_core::{Backpressure, EngineKind};
use pubsub_net::{Client, Server, ServerConfig, WireEvent, WirePredicate, WireValue};
use pubsub_types::{Operator, Predicate, Subscription};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

const ATTRS: [&str; 5] = ["price", "venue", "qty", "side", "tier"];
const STRINGS: [&str; 4] = ["ask", "bid", "NYC", "EWR"];
const OPS: [Operator; 6] = [
    Operator::Lt,
    Operator::Le,
    Operator::Eq,
    Operator::Ne,
    Operator::Ge,
    Operator::Gt,
];

/// One predicate spec, realizable both as a wire predicate (names) and as
/// an interned in-process predicate.
#[derive(Clone)]
struct SpecPred {
    attr: &'static str,
    op: Operator,
    value: SpecVal,
}

#[derive(Clone, Copy)]
enum SpecVal {
    Int(i64),
    Str(&'static str),
}

impl SpecPred {
    fn wire(&self) -> WirePredicate {
        WirePredicate {
            attr: self.attr.into(),
            op: self.op,
            value: match self.value {
                SpecVal::Int(i) => WireValue::Int(i),
                SpecVal::Str(s) => WireValue::Str(s.into()),
            },
        }
    }

    fn interned(&self, broker: &SharedBroker) -> Predicate {
        let attr = broker.attr(self.attr);
        let value = match self.value {
            SpecVal::Int(i) => pubsub_types::Value::Int(i),
            SpecVal::Str(s) => broker.string(s),
        };
        Predicate::new(attr, self.op, value)
    }
}

fn rand_val(rng: &mut SmallRng) -> SpecVal {
    if rng.gen_bool(0.3) {
        SpecVal::Str(STRINGS[rng.gen_range(0..STRINGS.len())])
    } else {
        SpecVal::Int(rng.gen_range(0i64..8))
    }
}

/// 1–3 predicates over distinct attributes (distinct attrs avoid exact
/// duplicates, which both paths reject identically anyway).
fn rand_sub(rng: &mut SmallRng) -> Vec<SpecPred> {
    let n = rng.gen_range(1..=3usize);
    let mut attrs: Vec<&'static str> = ATTRS.to_vec();
    let mut preds = Vec::with_capacity(n);
    for _ in 0..n {
        let attr = attrs.remove(rng.gen_range(0..attrs.len()));
        preds.push(SpecPred {
            attr,
            op: OPS[rng.gen_range(0..OPS.len())],
            value: rand_val(rng),
        });
    }
    preds
}

/// An event over 1–4 distinct attributes, plus a unique `eid` marker used
/// to match notifications back to publishes.
fn rand_event(rng: &mut SmallRng, eid: i64) -> (Vec<(String, WireValue)>, WireEvent) {
    let n = rng.gen_range(1..=4usize);
    let mut attrs: Vec<&'static str> = ATTRS.to_vec();
    let mut pairs: Vec<(String, WireValue)> = Vec::with_capacity(n + 1);
    for _ in 0..n {
        let attr = attrs.remove(rng.gen_range(0..attrs.len()));
        let value = match rand_val(rng) {
            SpecVal::Int(i) => WireValue::Int(i),
            SpecVal::Str(s) => WireValue::Str(s.into()),
        };
        pairs.push((attr.to_string(), value));
    }
    pairs.push(("eid".into(), WireValue::Int(eid)));
    let event = WireEvent {
        pairs: pairs.clone(),
    };
    (pairs, event)
}

fn interned_event(broker: &SharedBroker, pairs: &[(String, WireValue)]) -> pubsub_types::Event {
    let interned: Vec<_> = pairs
        .iter()
        .map(|(attr, value)| {
            let attr = broker.attr(attr);
            let value = match value {
                WireValue::Int(i) => pubsub_types::Value::Int(*i),
                WireValue::Str(s) => broker.string(s),
            };
            (attr, value)
        })
        .collect();
    pubsub_types::Event::from_pairs(interned).expect("distinct attrs")
}

fn eid_of(event: &WireEvent) -> i64 {
    event
        .pairs
        .iter()
        .find_map(|(attr, value)| match (attr.as_str(), value) {
            ("eid", WireValue::Int(i)) => Some(*i),
            _ => None,
        })
        .expect("every published event carries eid")
}

fn differential_run(kind: EngineKind, seed: u64) {
    const SUBSCRIBERS: usize = 3;
    let net_broker = Arc::new(SharedBroker::new(kind, 2));
    let server = Server::start_with(
        Arc::clone(&net_broker),
        "127.0.0.1:0",
        ServerConfig {
            queue_capacity: 4096, // subscribers drain only at the end
            delivery: Backpressure::Block,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let reference = SharedBroker::new(kind, 2);

    let mut subscribers: Vec<Client> = (0..SUBSCRIBERS)
        .map(|_| Client::connect(server.local_addr()).expect("connect"))
        .collect();
    let mut publisher = Client::connect(server.local_addr()).expect("connect");

    let mut rng = SmallRng::seed_from_u64(seed);
    // Live net subscription ids → owning subscriber index.
    let mut owner_of: HashMap<u32, usize> = HashMap::new();
    let mut live: Vec<u32> = Vec::new();
    // Expected (eid, matched-own-ids) stream per subscriber, in publish
    // order — the within-subscriber order the server must preserve.
    let mut expected: Vec<Vec<(i64, Vec<u32>)>> = vec![Vec::new(); SUBSCRIBERS];
    let mut eid = 0i64;

    for _ in 0..160 {
        match rng.gen_range(0u32..10) {
            // Subscribe: same spec through both paths; ids must agree.
            0..=3 => {
                let spec = rand_sub(&mut rng);
                let c = rng.gen_range(0..SUBSCRIBERS);
                let net_id = subscribers[c]
                    .subscribe(spec.iter().map(SpecPred::wire).collect())
                    .expect("net subscribe");
                let preds: Vec<Predicate> = spec.iter().map(|p| p.interned(&reference)).collect();
                let ref_id = reference.subscribe(
                    Subscription::from_predicates(preds).expect("valid spec"),
                    Validity::forever(),
                );
                assert_eq!(net_id, ref_id.0, "{kind:?}: subscription ids must agree");
                owner_of.insert(net_id, c);
                live.push(net_id);
            }
            // Unsubscribe a live id through both paths.
            4..=5 if !live.is_empty() => {
                let id = live.swap_remove(rng.gen_range(0..live.len()));
                let c = owner_of.remove(&id).expect("tracked owner");
                let existed = subscribers[c].unsubscribe(id).expect("net unsubscribe");
                let ref_existed = reference.unsubscribe(pubsub_types::SubscriptionId(id));
                assert_eq!(existed, ref_existed, "{kind:?}: unsubscribe disagreement");
            }
            // Publish: matched sets must be identical.
            _ => {
                let (pairs, wire) = rand_event(&mut rng, eid);
                let net_matched = publisher.publish(wire).expect("net publish");
                let mut ref_matched: Vec<u32> = reference
                    .publish(&interned_event(&reference, &pairs))
                    .into_iter()
                    .map(|id| id.0)
                    .collect();
                ref_matched.sort_unstable();
                assert_eq!(
                    net_matched as usize,
                    ref_matched.len(),
                    "{kind:?}: matched-count disagreement on eid {eid}"
                );
                let mut per_sub: Vec<Vec<u32>> = vec![Vec::new(); SUBSCRIBERS];
                for id in &ref_matched {
                    per_sub[owner_of[id]].push(*id);
                }
                for (c, ids) in per_sub.into_iter().enumerate() {
                    if !ids.is_empty() {
                        expected[c].push((eid, ids)); // already sorted
                    }
                }
                eid += 1;
            }
        }
    }

    // Drain each subscriber and compare its stream: same events, same
    // matched ids, same within-subscriber order, gap-free sequence.
    for (c, client) in subscribers.iter_mut().enumerate() {
        let notifies = client
            .drain_notifies(Duration::from_millis(400))
            .expect("drain");
        let got: Vec<(i64, Vec<u32>)> = notifies
            .iter()
            .map(|n| (eid_of(&n.event), n.ids.clone()))
            .collect();
        assert_eq!(
            got, expected[c],
            "{kind:?}: subscriber {c} notification stream diverged"
        );
        for (i, n) in notifies.iter().enumerate() {
            assert_eq!(
                n.seq,
                i as u64 + 1,
                "{kind:?}: subscriber {c} has a delivery gap under Block"
            );
        }
    }
    server.shutdown();
}

#[test]
fn counting_matches_in_process_broker() {
    differential_run(EngineKind::Counting, 0xC0);
}

#[test]
fn propagation_matches_in_process_broker() {
    differential_run(EngineKind::Propagation, 0x9A0);
}

#[test]
fn propagation_prefetch_matches_in_process_broker() {
    differential_run(EngineKind::PropagationPrefetch, 0xBEEF);
}

#[test]
fn static_matches_in_process_broker() {
    differential_run(EngineKind::Static, 0x57A7);
}

#[test]
fn dynamic_matches_in_process_broker() {
    differential_run(EngineKind::Dynamic, 0xD1);
}
