//! Session garbage collection and client auto-reconnect.
//!
//! GC contract: with [`ServerConfig::session_ttl`] set, a session that
//! stays detached past the TTL is removed — its subscriptions are freed,
//! and resuming its token yields `UnknownSession`, exactly as if the token
//! had never been issued. Attached sessions are never reaped, however old.
//!
//! Reconnect contract: with a [`ReconnectPolicy`] installed, a request
//! that dies on a transport error redials, resumes the same session, and
//! retries once — invisible to the caller as long as the session survives
//! server-side.

use pubsub_broker::SharedBroker;
use pubsub_core::EngineKind;
use pubsub_net::{
    Client, ClientError, ErrorCode, ReconnectPolicy, Server, ServerConfig, WireEvent,
    WirePredicate, WireValue,
};
use pubsub_types::Operator;
use std::net::Shutdown;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn eq_pred(attr: &str, value: i64) -> WirePredicate {
    WirePredicate {
        attr: attr.into(),
        op: Operator::Eq,
        value: WireValue::Int(value),
    }
}

fn event(attr: &str, value: i64) -> WireEvent {
    WireEvent {
        pairs: vec![(attr.into(), WireValue::Int(value))],
    }
}

fn server_with_ttl(ttl: Option<Duration>) -> Server {
    let broker = Arc::new(SharedBroker::new(EngineKind::Counting, 2));
    let config = ServerConfig {
        session_ttl: ttl,
        ..ServerConfig::default()
    };
    Server::start_with(broker, "127.0.0.1:0", config).expect("bind loopback")
}

#[test]
fn reaped_session_frees_subscriptions_and_refuses_resume() {
    let server = server_with_ttl(Some(Duration::from_millis(30)));
    let mut client = Client::connect(server.local_addr()).unwrap();
    let token = client.token();
    client.subscribe(vec![eq_pred("k", 7)]).unwrap();
    assert_eq!(server.status().sessions, 1);
    assert_eq!(server.status().net_subscriptions, 1);

    // Detach and age past the TTL; sweep deterministically.
    drop(client);
    thread::sleep(Duration::from_millis(60));
    let swept = server.reap_detached_sessions();
    // The background reaper may have won the race; either way the
    // registry must now be empty.
    assert!(swept <= 1);
    assert_eq!(server.status().sessions, 0, "detached session not reaped");
    assert_eq!(
        server.status().net_subscriptions,
        0,
        "reaped session's subscriptions not freed"
    );

    // The subscription is really gone from the broker, not just untracked.
    let mut probe = Client::connect(server.local_addr()).unwrap();
    assert_eq!(probe.publish(event("k", 7)).unwrap(), 0);

    // Regression: resuming the reaped token is an explicit refusal.
    match Client::resume(server.local_addr(), token) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownSession),
        Err(other) => panic!("resume of a reaped token must fail with UnknownSession, got {other}"),
        Ok(_) => panic!("resume of a reaped token must fail"),
    }
    server.shutdown();
}

#[test]
fn attached_sessions_are_never_reaped() {
    let server = server_with_ttl(Some(Duration::from_millis(20)));
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.subscribe(vec![eq_pred("k", 1)]).unwrap();
    thread::sleep(Duration::from_millis(80));
    assert_eq!(server.reap_detached_sessions(), 0);
    assert_eq!(server.status().sessions, 1);
    // The connection still works end to end.
    assert_eq!(client.publish(event("k", 1)).unwrap(), 1);
    server.shutdown();
}

#[test]
fn no_ttl_means_sessions_live_forever() {
    let server = server_with_ttl(None);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let token = client.token();
    client.subscribe(vec![eq_pred("k", 2)]).unwrap();
    drop(client);
    thread::sleep(Duration::from_millis(50));
    assert_eq!(server.reap_detached_sessions(), 0, "no TTL, no reaping");
    let resumed = Client::resume(server.local_addr(), token).unwrap();
    assert_eq!(resumed.resumed().len(), 1);
    server.shutdown();
}

#[test]
fn client_reconnects_and_retries_after_a_cut_socket() {
    let server = server_with_ttl(None);
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.set_reconnect(Some(ReconnectPolicy {
        initial: Duration::from_millis(10),
        max: Duration::from_millis(100),
        attempts: 8,
    }));
    let id = client.subscribe(vec![eq_pred("k", 5)]).unwrap();

    // Sever the transport under the client; the next request must redial,
    // resume the same session, and succeed.
    client.stream().shutdown(Shutdown::Both).unwrap();
    assert_eq!(client.publish(event("k", 5)).unwrap(), 1);
    assert_eq!(
        client.resumed(),
        &[id],
        "reconnect resumed the session's subscriptions"
    );

    // And again: each outage is handled independently.
    client.stream().shutdown(Shutdown::Both).unwrap();
    assert!(client.unsubscribe(id).unwrap());
    server.shutdown();
}

#[test]
fn reconnect_does_not_mask_a_reaped_session() {
    // Transport comes back but the session is gone: the client must
    // surface the failure instead of silently starting a fresh session.
    let server = server_with_ttl(Some(Duration::from_millis(20)));
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.set_reconnect(Some(ReconnectPolicy {
        initial: Duration::from_millis(10),
        max: Duration::from_millis(50),
        attempts: 4,
    }));
    client.subscribe(vec![eq_pred("k", 3)]).unwrap();
    client.stream().shutdown(Shutdown::Both).unwrap();
    thread::sleep(Duration::from_millis(80));
    server.reap_detached_sessions();
    assert!(
        client.publish(event("k", 3)).is_err(),
        "a reaped session must not be silently replaced"
    );
    server.shutdown();
}

/// A resume racing the reaper is atomic: the resume either fully wins
/// (every subscription intact, now safe from the reaper because it is
/// attached) or gets a clean `UnknownSession` (everything freed). Never a
/// half-freed session.
#[test]
fn resume_racing_a_reap_is_all_or_nothing() {
    for round in 0..20u64 {
        let broker = Arc::new(SharedBroker::new(EngineKind::Counting, 2));
        let config = ServerConfig {
            session_ttl: Some(Duration::from_millis(1)),
            ..ServerConfig::default()
        };
        let server = Server::start_with(Arc::clone(&broker), "127.0.0.1:0", config).expect("bind");
        let addr = server.local_addr();

        let mut client = Client::connect(addr).unwrap();
        let token = client.token();
        let mut ids = Vec::new();
        for v in 0..3 {
            ids.push(client.subscribe(vec![eq_pred("k", v)]).unwrap());
        }
        drop(client);
        thread::sleep(Duration::from_millis(5)); // well past the TTL

        // Fire the sweep and the resume as close together as possible.
        let barrier = std::sync::Barrier::new(2);
        let reaper = {
            let (barrier, server) = (&barrier, &server);
            thread::scope(|s| {
                let handle = s.spawn(move || {
                    barrier.wait();
                    server.reap_detached_sessions()
                });
                barrier.wait();
                let resume = Client::resume(addr, token);
                let swept = handle.join().unwrap();
                (resume, swept)
            })
        };

        match reaper {
            (Ok(resumed), _) => {
                // Resume won: the whole session survived, and being
                // attached it is now immune to the reaper.
                assert_eq!(
                    resumed.resumed(),
                    &ids[..],
                    "round {round}: partial survival"
                );
                assert_eq!(broker.subscription_count(), 3);
                assert_eq!(server.reap_detached_sessions(), 0);
                assert_eq!(server.status().sessions, 1);
            }
            (Err(ClientError::Server { code, .. }), _) => {
                // Reap won: the token reads as never issued, nothing left.
                assert_eq!(code, ErrorCode::UnknownSession, "round {round}");
                assert_eq!(broker.subscription_count(), 0, "round {round}");
                assert_eq!(server.status().sessions, 0, "round {round}");
                assert_eq!(server.status().net_subscriptions, 0, "round {round}");
            }
            (Err(other), swept) => {
                panic!("round {round}: unexpected resume error {other} (swept {swept})")
            }
        }
        server.shutdown();
    }
}

/// With an idle deadline configured, a connection that sends nothing is
/// severed — detached, not destroyed: its session survives for a resume
/// (and from there the ordinary TTL reaper applies — one shared reap
/// path, no second lifecycle).
#[test]
fn idle_deadline_severs_silent_connections_but_keeps_the_session() {
    let broker = Arc::new(SharedBroker::new(EngineKind::Counting, 2));
    let config = ServerConfig {
        read_timeout: Duration::from_millis(10),
        idle_deadline: Some(Duration::from_millis(40)),
        ..ServerConfig::default()
    };
    let server = Server::start_with(Arc::clone(&broker), "127.0.0.1:0", config).expect("bind");
    let mut client = Client::connect(server.local_addr()).unwrap();
    let token = client.token();
    let id = client.subscribe(vec![eq_pred("k", 1)]).unwrap();

    // Stay silent past the deadline: the server must cut us loose.
    let severed = client.next_notify(Duration::from_secs(5));
    assert!(
        severed.is_err(),
        "silent connection must be severed, got {severed:?}"
    );
    assert_eq!(server.status().attached, 0, "connection detached");
    assert_eq!(server.status().sessions, 1, "session survives the sever");

    // The session resumes intact on a fresh connection.
    let resumed = Client::resume(server.local_addr(), token).unwrap();
    assert_eq!(resumed.resumed(), &[id]);
    server.shutdown();
}

/// Pings are activity: a client that heartbeats inside the idle deadline
/// stays attached indefinitely, and the ping round-trips a nonce without
/// disturbing the notify stream.
#[test]
fn pings_keep_an_idle_connection_alive() {
    let broker = Arc::new(SharedBroker::new(EngineKind::Counting, 2));
    let config = ServerConfig {
        read_timeout: Duration::from_millis(10),
        idle_deadline: Some(Duration::from_millis(80)),
        ..ServerConfig::default()
    };
    let server = Server::start_with(Arc::clone(&broker), "127.0.0.1:0", config).expect("bind");
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.subscribe(vec![eq_pred("k", 9)]).unwrap();

    // Heartbeat for several deadline-multiples of wall time.
    for _ in 0..10 {
        thread::sleep(Duration::from_millis(30));
        client.ping().expect("heartbeat");
    }
    assert_eq!(server.status().attached, 1, "heartbeats count as activity");

    // The connection is still fully functional end to end.
    assert_eq!(client.publish(event("k", 9)).unwrap(), 1);
    let n = client
        .next_notify(Duration::from_secs(5))
        .unwrap()
        .expect("delivery after heartbeats");
    assert_eq!(n.ids.len(), 1);
    server.shutdown();
}
