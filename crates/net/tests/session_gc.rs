//! Session garbage collection and client auto-reconnect.
//!
//! GC contract: with [`ServerConfig::session_ttl`] set, a session that
//! stays detached past the TTL is removed — its subscriptions are freed,
//! and resuming its token yields `UnknownSession`, exactly as if the token
//! had never been issued. Attached sessions are never reaped, however old.
//!
//! Reconnect contract: with a [`ReconnectPolicy`] installed, a request
//! that dies on a transport error redials, resumes the same session, and
//! retries once — invisible to the caller as long as the session survives
//! server-side.

use pubsub_broker::SharedBroker;
use pubsub_core::EngineKind;
use pubsub_net::{
    Client, ClientError, ErrorCode, ReconnectPolicy, Server, ServerConfig, WireEvent,
    WirePredicate, WireValue,
};
use pubsub_types::Operator;
use std::net::Shutdown;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn eq_pred(attr: &str, value: i64) -> WirePredicate {
    WirePredicate {
        attr: attr.into(),
        op: Operator::Eq,
        value: WireValue::Int(value),
    }
}

fn event(attr: &str, value: i64) -> WireEvent {
    WireEvent {
        pairs: vec![(attr.into(), WireValue::Int(value))],
    }
}

fn server_with_ttl(ttl: Option<Duration>) -> Server {
    let broker = Arc::new(SharedBroker::new(EngineKind::Counting, 2));
    let config = ServerConfig {
        session_ttl: ttl,
        ..ServerConfig::default()
    };
    Server::start_with(broker, "127.0.0.1:0", config).expect("bind loopback")
}

#[test]
fn reaped_session_frees_subscriptions_and_refuses_resume() {
    let server = server_with_ttl(Some(Duration::from_millis(30)));
    let mut client = Client::connect(server.local_addr()).unwrap();
    let token = client.token();
    client.subscribe(vec![eq_pred("k", 7)]).unwrap();
    assert_eq!(server.status().sessions, 1);
    assert_eq!(server.status().net_subscriptions, 1);

    // Detach and age past the TTL; sweep deterministically.
    drop(client);
    thread::sleep(Duration::from_millis(60));
    let swept = server.reap_detached_sessions();
    // The background reaper may have won the race; either way the
    // registry must now be empty.
    assert!(swept <= 1);
    assert_eq!(server.status().sessions, 0, "detached session not reaped");
    assert_eq!(
        server.status().net_subscriptions,
        0,
        "reaped session's subscriptions not freed"
    );

    // The subscription is really gone from the broker, not just untracked.
    let mut probe = Client::connect(server.local_addr()).unwrap();
    assert_eq!(probe.publish(event("k", 7)).unwrap(), 0);

    // Regression: resuming the reaped token is an explicit refusal.
    match Client::resume(server.local_addr(), token) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownSession),
        Err(other) => panic!("resume of a reaped token must fail with UnknownSession, got {other}"),
        Ok(_) => panic!("resume of a reaped token must fail"),
    }
    server.shutdown();
}

#[test]
fn attached_sessions_are_never_reaped() {
    let server = server_with_ttl(Some(Duration::from_millis(20)));
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.subscribe(vec![eq_pred("k", 1)]).unwrap();
    thread::sleep(Duration::from_millis(80));
    assert_eq!(server.reap_detached_sessions(), 0);
    assert_eq!(server.status().sessions, 1);
    // The connection still works end to end.
    assert_eq!(client.publish(event("k", 1)).unwrap(), 1);
    server.shutdown();
}

#[test]
fn no_ttl_means_sessions_live_forever() {
    let server = server_with_ttl(None);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let token = client.token();
    client.subscribe(vec![eq_pred("k", 2)]).unwrap();
    drop(client);
    thread::sleep(Duration::from_millis(50));
    assert_eq!(server.reap_detached_sessions(), 0, "no TTL, no reaping");
    let resumed = Client::resume(server.local_addr(), token).unwrap();
    assert_eq!(resumed.resumed().len(), 1);
    server.shutdown();
}

#[test]
fn client_reconnects_and_retries_after_a_cut_socket() {
    let server = server_with_ttl(None);
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.set_reconnect(Some(ReconnectPolicy {
        initial: Duration::from_millis(10),
        max: Duration::from_millis(100),
        attempts: 8,
    }));
    let id = client.subscribe(vec![eq_pred("k", 5)]).unwrap();

    // Sever the transport under the client; the next request must redial,
    // resume the same session, and succeed.
    client.stream().shutdown(Shutdown::Both).unwrap();
    assert_eq!(client.publish(event("k", 5)).unwrap(), 1);
    assert_eq!(
        client.resumed(),
        &[id],
        "reconnect resumed the session's subscriptions"
    );

    // And again: each outage is handled independently.
    client.stream().shutdown(Shutdown::Both).unwrap();
    assert!(client.unsubscribe(id).unwrap());
    server.shutdown();
}

#[test]
fn reconnect_does_not_mask_a_reaped_session() {
    // Transport comes back but the session is gone: the client must
    // surface the failure instead of silently starting a fresh session.
    let server = server_with_ttl(Some(Duration::from_millis(20)));
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.set_reconnect(Some(ReconnectPolicy {
        initial: Duration::from_millis(10),
        max: Duration::from_millis(50),
        attempts: 4,
    }));
    client.subscribe(vec![eq_pred("k", 3)]).unwrap();
    client.stream().shutdown(Shutdown::Both).unwrap();
    thread::sleep(Duration::from_millis(80));
    server.reap_detached_sessions();
    assert!(
        client.publish(event("k", 3)).is_err(),
        "a reaped session must not be silently replaced"
    );
    server.shutdown();
}
