//! Crash-durable sessions: resume survives a **server restart** and a
//! **failover promotion**.
//!
//! The headline sweep extends the reconnect suite's cut-anywhere harness
//! from killing a *connection* to killing the *process*: deliver exactly
//! `cut` bytes of a pre-encoded op stream to a durable server, tear the
//! whole server down, reopen the WAL directory, and resume the session by
//! its original token. The resumed state must equal a brute-force oracle
//! of the acked prefix — exactly the surviving subscription ids, zero
//! ghost registrations (`net_subscriptions`), zero orphaned broker
//! subscriptions (`subscription_count` vs the session rows) — and
//! post-resume deliveries must match paper-semantics brute force.
//!
//! The failover sweep holds the same invariants when the restart is a
//! *promotion*: the leader dies, a live replica is promoted, and clients
//! resume on the replica with their original tokens — the session table
//! travelled the replication stream, not just the local log.
//!
//! Set `FP_SWEEP_STRIDE=n` to run every n-th cut (CI knob; default 1).

use pubsub_broker::{SharedBroker, Validity};
use pubsub_core::{Backpressure, EngineKind};
use pubsub_durability::{CorruptionPolicy, DurabilityConfig, FsyncPolicy};
use pubsub_net::{
    Ack, Client, Follower, FollowerConfig, Frame, FrameReader, Server, ServerConfig, WireEvent,
    WirePredicate, WireValue, NEW_SESSION, PROTOCOL_VERSION,
};
use pubsub_types::{Operator, Predicate, Subscription, SubscriptionId, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::fs;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const ATTRS: [&str; 5] = ["price", "venue", "qty", "side", "tier"];
const OPS: [Operator; 6] = [
    Operator::Lt,
    Operator::Le,
    Operator::Eq,
    Operator::Ne,
    Operator::Ge,
    Operator::Gt,
];

type Pred = (&'static str, Operator, i64);

enum Op {
    Sub(Vec<Pred>),
    /// Unsubscribe the id returned by the `k`-th `Sub` op.
    Unsub(usize),
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fp-restart-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn wal_config() -> DurabilityConfig {
    DurabilityConfig {
        segment_bytes: u64::MAX,
        fsync: FsyncPolicy::OsManaged,
        corruption: CorruptionPolicy::Fail,
        snapshot_every_ops: 0,
    }
}

/// CI knob: run every n-th cut of each sweep (default: all of them).
fn stride() -> usize {
    std::env::var("FP_SWEEP_STRIDE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

fn cmp(event_value: i64, op: Operator, pred_value: i64) -> bool {
    match op {
        Operator::Lt => event_value < pred_value,
        Operator::Le => event_value <= pred_value,
        Operator::Eq => event_value == pred_value,
        Operator::Ne => event_value != pred_value,
        Operator::Ge => event_value >= pred_value,
        Operator::Gt => event_value > pred_value,
    }
}

/// Brute-force conjunction semantics, straight from the paper.
fn matches(preds: &[Pred], event: &[(&'static str, i64)]) -> bool {
    preds.iter().all(|(attr, op, value)| {
        event
            .iter()
            .find(|(a, _)| a == attr)
            .is_some_and(|(_, ev)| cmp(*ev, *op, *value))
    })
}

/// Same deterministic mixed workload as the reconnect sweep: 8 ops,
/// subscribes with 1–2 predicates, interleaved unsubscribes.
fn build_ops(rng: &mut SmallRng) -> Vec<Op> {
    let mut ops = Vec::new();
    let mut live: Vec<usize> = Vec::new();
    let mut subs = 0usize;
    for i in 0..8 {
        if i > 0 && !live.is_empty() && rng.gen_bool(0.35) {
            let k = live.swap_remove(rng.gen_range(0..live.len()));
            ops.push(Op::Unsub(k));
        } else {
            let n = rng.gen_range(1..=2usize);
            let mut attrs: Vec<&'static str> = ATTRS.to_vec();
            let preds: Vec<Pred> = (0..n)
                .map(|_| {
                    let attr = attrs.remove(rng.gen_range(0..attrs.len()));
                    (
                        attr,
                        OPS[rng.gen_range(0..OPS.len())],
                        rng.gen_range(0i64..8),
                    )
                })
                .collect();
            ops.push(Op::Sub(preds));
            live.push(subs);
            subs += 1;
        }
    }
    ops
}

/// Learns the ids the server will assign by replaying against a fresh
/// in-process broker (id assignment is deterministic; pinned by e2e).
fn predict_ids(kind: EngineKind, ops: &[Op]) -> Vec<u32> {
    let reference = SharedBroker::new(kind, 2);
    let mut ids = Vec::new();
    for op in ops {
        match op {
            Op::Sub(preds) => {
                let preds: Vec<Predicate> = preds
                    .iter()
                    .map(|(attr, op, value)| {
                        Predicate::new(reference.attr(attr), *op, Value::Int(*value))
                    })
                    .collect();
                let id = reference.subscribe(
                    Subscription::from_predicates(preds).expect("valid spec"),
                    Validity::forever(),
                );
                ids.push(id.0);
            }
            Op::Unsub(k) => {
                reference.unsubscribe(SubscriptionId(ids[*k]));
            }
        }
    }
    ids
}

fn encode_ops(ops: &[Op], ids: &[u32]) -> Vec<Vec<u8>> {
    let mut frames = Vec::with_capacity(ops.len());
    for (i, op) in ops.iter().enumerate() {
        let req = i as u32 + 1;
        let frame = match op {
            Op::Sub(preds) => Frame::Subscribe {
                req,
                preds: preds
                    .iter()
                    .map(|(attr, op, value)| WirePredicate {
                        attr: (*attr).into(),
                        op: *op,
                        value: WireValue::Int(*value),
                    })
                    .collect(),
            },
            Op::Unsub(k) => Frame::Unsubscribe { req, id: ids[*k] },
        };
        frames.push(frame.to_bytes());
    }
    frames
}

fn read_one_frame(sock: &mut TcpStream, reader: &mut FrameReader) -> Frame {
    let mut buf = [0u8; 4096];
    loop {
        if let Some(frame) = reader.next_frame().expect("well-formed server stream") {
            return frame;
        }
        match sock.read(&mut buf) {
            Ok(0) => panic!("server closed before answering"),
            Ok(n) => reader.extend(&buf[..n]),
            Err(e) => panic!("read from server: {e}"),
        }
    }
}

fn read_frames_until_eof(sock: &mut TcpStream, reader: &mut FrameReader) -> Vec<Frame> {
    let mut buf = [0u8; 4096];
    let mut out = Vec::new();
    loop {
        while let Some(frame) = reader.next_frame().expect("well-formed server stream") {
            out.push(frame);
        }
        match sock.read(&mut buf) {
            Ok(0) => return out,
            Ok(n) => reader.extend(&buf[..n]),
            Err(e) => panic!("drain acks: {e}"),
        }
    }
}

fn probe_events(rng: &mut SmallRng) -> Vec<(Vec<(&'static str, i64)>, WireEvent)> {
    (0..4)
        .map(|i| {
            let n = rng.gen_range(2..=3usize);
            let mut attrs: Vec<&'static str> = ATTRS.to_vec();
            let pairs: Vec<(&'static str, i64)> = (0..n)
                .map(|_| {
                    let attr = attrs.remove(rng.gen_range(0..attrs.len()));
                    (attr, rng.gen_range(0i64..8))
                })
                .collect();
            let mut wire: Vec<(String, WireValue)> = pairs
                .iter()
                .map(|(attr, value)| (attr.to_string(), WireValue::Int(*value)))
                .collect();
            wire.push(("eid".into(), WireValue::Int(1_000 + i)));
            (pairs, WireEvent { pairs: wire })
        })
        .collect()
}

fn eid_of(event: &WireEvent) -> i64 {
    event
        .pairs
        .iter()
        .find_map(|(attr, value)| match (attr.as_str(), value) {
            ("eid", WireValue::Int(i)) => Some(*i),
            _ => None,
        })
        .expect("probe events carry eid")
}

fn open_durable(kind: EngineKind, dir: &PathBuf) -> Arc<SharedBroker> {
    let (broker, _) =
        SharedBroker::open_durable_with(kind, 2, Backpressure::Block, dir, wal_config()).unwrap();
    Arc::new(broker)
}

/// Opens a durable server and plays exactly `cut` bytes of the op stream
/// into a fresh session, half-closing afterwards. Returns the session
/// token and the oracle's live-id set (the ops whose frames fit the cut).
fn play_prefix(
    addr: std::net::SocketAddr,
    ops: &[Op],
    ids: &[u32],
    frames: &[Vec<u8>],
    cut: usize,
) -> (u64, BTreeSet<u32>) {
    let mut sock = TcpStream::connect(addr).expect("connect");
    sock.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = FrameReader::new();
    sock.write_all(
        &Frame::Hello {
            proto: PROTOCOL_VERSION,
            token: NEW_SESSION,
        }
        .to_bytes(),
    )
    .unwrap();
    let token = match read_one_frame(&mut sock, &mut reader) {
        Frame::Ack(Ack::Hello { token, .. }) => token,
        other => panic!("expected hello ack, got {other:?}"),
    };

    let bytes: Vec<u8> = frames.concat();
    sock.write_all(&bytes[..cut]).unwrap();
    sock.shutdown(Shutdown::Write).unwrap();

    // Oracle: the contiguous prefix of ops whose frames fit in the cut.
    let mut live: BTreeSet<u32> = BTreeSet::new();
    let mut applied = 0usize;
    let mut sub_idx = 0usize;
    let mut off = 0usize;
    for (i, frame) in frames.iter().enumerate() {
        off += frame.len();
        if off > cut {
            break;
        }
        applied = i + 1;
        match &ops[i] {
            Op::Sub(_) => {
                live.insert(ids[sub_idx]);
                sub_idx += 1;
            }
            Op::Unsub(k) => {
                live.remove(&ids[*k]);
            }
        }
    }

    // Acked == durable: the server logs before acking, so every acked op
    // must survive the restart. The graceful close flushes them all.
    let acks = read_frames_until_eof(&mut sock, &mut reader);
    assert_eq!(acks.len(), applied, "cut {cut}: one ack per received frame");
    (token, live)
}

/// After a resume on `addr`, the session must equal the oracle and the
/// world must hold zero ghosts: registry, session table and broker all
/// agree on exactly the surviving subscriptions.
#[allow(clippy::too_many_arguments)]
fn verify_resumed(
    label: &str,
    addr: std::net::SocketAddr,
    server: &Server,
    broker: &SharedBroker,
    token: u64,
    ops: &[Op],
    ids: &[u32],
    live: &BTreeSet<u32>,
    cut: usize,
) {
    let mut subscriber = Client::resume(addr, token).expect("resume after restart");
    let expected: Vec<u32> = live.iter().copied().collect();
    assert_eq!(
        subscriber.resumed(),
        &expected[..],
        "{label} cut {cut}: resumed ids must equal the acked-prefix oracle"
    );

    // Zero ghosts, zero orphans: the net registry, the durable session
    // table and the broker's subscription count are one consistent story.
    let status = server.status();
    assert_eq!(status.sessions, 1, "{label} cut {cut}: one session");
    assert_eq!(status.attached, 1, "{label} cut {cut}: one attachment");
    assert_eq!(
        status.net_subscriptions,
        expected.len(),
        "{label} cut {cut}: ghost registrations in the registry"
    );
    assert_eq!(
        broker.subscription_count(),
        expected.len(),
        "{label} cut {cut}: orphaned subscriptions in the broker"
    );
    assert_eq!(
        broker.session_rows(),
        vec![(token, expected.iter().map(|&i| SubscriptionId(i)).collect())],
        "{label} cut {cut}: durable session table drifted from the oracle"
    );

    // Deliveries after the restart match brute force over the survivors,
    // with sequence numbers restarting at 1 (connection-era state).
    let sub_specs: Vec<(u32, &Vec<Pred>)> = {
        let mut sub_ops = ops.iter().filter_map(|op| match op {
            Op::Sub(preds) => Some(preds),
            Op::Unsub(_) => None,
        });
        let mut out = Vec::new();
        for (k, preds) in (&mut sub_ops).enumerate() {
            if live.contains(&ids[k]) {
                out.push((ids[k], preds));
            }
        }
        out
    };
    let mut publisher = Client::connect(addr).expect("connect publisher");
    let mut probe_rng = SmallRng::seed_from_u64(cut as u64 ^ 0x51ee);
    let mut next_seq = 1u64;
    for (pairs, wire) in probe_events(&mut probe_rng) {
        let eid = eid_of(&wire);
        let matched = publisher.publish(wire).expect("probe publish");
        let brute: Vec<u32> = sub_specs
            .iter()
            .filter(|(_, preds)| matches(preds, &pairs))
            .map(|(id, _)| *id)
            .collect();
        assert_eq!(
            matched as usize,
            brute.len(),
            "{label} cut {cut}: matched count vs brute force on eid {eid}"
        );
        if !brute.is_empty() {
            let n = subscriber
                .next_notify(Duration::from_secs(5))
                .expect("notify stream")
                .expect("matched publish must be delivered");
            assert_eq!(eid_of(&n.event), eid, "{label} cut {cut}: delivery order");
            assert_eq!(n.ids, brute, "{label} cut {cut}: delivered ids");
            assert_eq!(n.seq, next_seq, "{label} cut {cut}: seq restarts at 1");
            next_seq += 1;
        }
    }
    let extra = subscriber.next_notify(Duration::from_millis(30)).unwrap();
    assert!(extra.is_none(), "{label} cut {cut}: spurious {extra:?}");
}

/// Waits for every server thread to release its broker handle after
/// shutdown, then drops the last one — the moment "the process died".
fn kill_server(server: Server, broker: Arc<SharedBroker>) {
    server.shutdown();
    drop(server);
    let deadline = Instant::now() + Duration::from_secs(10);
    while Arc::strong_count(&broker) > 1 {
        assert!(
            Instant::now() < deadline,
            "server threads leaked the broker"
        );
        thread::sleep(Duration::from_millis(1));
    }
    drop(broker);
}

/// One restart run: cut, kill the whole server, reopen the WAL directory,
/// resume, verify against the oracle.
fn run_restart(kind: EngineKind, ops: &[Op], ids: &[u32], frames: &[Vec<u8>], cut: usize) {
    let dir = temp_dir(&format!("{kind:?}-{cut}"));
    let broker = open_durable(kind, &dir);
    let server =
        Server::start_with(Arc::clone(&broker), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let (token, live) = play_prefix(server.local_addr(), ops, ids, frames, cut);
    kill_server(server, broker);

    // The restart: recover from the log, rehydrate sessions, serve again.
    let broker = open_durable(kind, &dir);
    let server =
        Server::start_with(Arc::clone(&broker), "127.0.0.1:0", ServerConfig::default()).unwrap();
    verify_resumed(
        "restart",
        server.local_addr(),
        &server,
        &broker,
        token,
        ops,
        ids,
        &live,
        cut,
    );
    server.shutdown();
    fs::remove_dir_all(&dir).unwrap();
}

/// Cuts at every frame boundary (including 0 and the full stream) plus
/// the middle of every frame, striding by `FP_SWEEP_STRIDE`.
fn restart_sweep(kind: EngineKind, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let ops = build_ops(&mut rng);
    let ids = predict_ids(kind, &ops);
    let frames = encode_ops(&ops, &ids);
    let mut cuts: Vec<usize> = vec![0];
    let mut off = 0usize;
    for frame in &frames {
        cuts.push(off + frame.len() / 2);
        off += frame.len();
        cuts.push(off);
    }
    for cut in cuts.into_iter().step_by(stride()) {
        run_restart(kind, &ops, &ids, &frames, cut);
    }
}

#[test]
fn kill_server_anywhere_and_resume_counting() {
    restart_sweep(EngineKind::Counting, 0xA11CE);
}

#[test]
fn kill_server_anywhere_and_resume_dynamic() {
    restart_sweep(EngineKind::Dynamic, 0xFEED);
}

/// The failover variant: the acked prefix replicates to a live follower,
/// the leader dies, the follower is promoted, and the client resumes on
/// the replica's server — original token, oracle-equal state. The replica
/// server was started *before* the session replicated, so the resume
/// exercises the lazy registry-hydration path, not startup hydration.
fn run_failover(kind: EngineKind, ops: &[Op], ids: &[u32], frames: &[Vec<u8>], cut: usize) {
    let dir_l = temp_dir(&format!("fo-lead-{cut}"));
    let dir_f = temp_dir(&format!("fo-repl-{cut}"));
    let leader = open_durable(kind, &dir_l);
    let leader_srv = Server::start_with(
        Arc::clone(&leader),
        "127.0.0.1:0",
        ServerConfig {
            repl_poll: Duration::from_millis(3),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let (fbroker, _) = SharedBroker::open_follower(kind, 2, &dir_f, wal_config()).unwrap();
    let fbroker = Arc::new(fbroker);
    // The replica's own client-facing server runs from the start — its
    // startup hydration sees an empty table; the session arrives later
    // over the replication stream.
    let replica_srv =
        Server::start_with(Arc::clone(&fbroker), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let tail = Follower::start(
        Arc::clone(&fbroker),
        leader_srv.local_addr(),
        FollowerConfig {
            backoff_initial: Duration::from_millis(10),
            backoff_max: Duration::from_millis(100),
            degraded_after: Duration::from_secs(30),
            connect_timeout: Duration::from_millis(500),
            ..FollowerConfig::default()
        },
    )
    .unwrap();

    let (token, live) = play_prefix(leader_srv.local_addr(), ops, ids, frames, cut);

    // Wait until every acked record has crossed the wire: the replica's
    // log position must reach the leader's (lag alone can read 0 against
    // a stale leader position heard before the last append).
    let target = leader.durability().unwrap().next_lsn;
    let deadline = Instant::now() + Duration::from_secs(10);
    while fbroker.durability().unwrap().next_lsn < target {
        assert!(
            Instant::now() < deadline,
            "cut {cut}: follower never caught up: {:?}",
            tail.status()
        );
        thread::sleep(Duration::from_millis(3));
    }

    // The leader dies; the replica is promoted in place.
    kill_server(leader_srv, leader);
    tail.stop();
    tail.promote().unwrap();

    verify_resumed(
        "failover",
        replica_srv.local_addr(),
        &replica_srv,
        &fbroker,
        token,
        ops,
        ids,
        &live,
        cut,
    );
    replica_srv.shutdown();
    drop(tail);
    fs::remove_dir_all(&dir_l).unwrap();
    fs::remove_dir_all(&dir_f).unwrap();
}

#[test]
fn kill_leader_anywhere_and_resume_on_promoted_replica() {
    let kind = EngineKind::Counting;
    let mut rng = SmallRng::seed_from_u64(0xFA170);
    let ops = build_ops(&mut rng);
    let ids = predict_ids(kind, &ops);
    let frames = encode_ops(&ops, &ids);
    // Frame boundaries only (the mid-frame torn cases are covered by the
    // restart sweep; replication streams whole records by construction).
    let mut cuts: Vec<usize> = vec![0];
    let mut off = 0usize;
    for frame in &frames {
        off += frame.len();
        cuts.push(off);
    }
    for cut in cuts.into_iter().step_by(stride()) {
        run_failover(kind, &ops, &ids, &frames, cut);
    }
}

/// A client with a reconnect policy rides through the restart window: the
/// server is down for a while, comes back on the same address, and the
/// in-flight request retries to completion on the resumed session.
#[test]
fn reconnect_policy_rides_through_a_restart_window() {
    let dir = temp_dir("ride-through");
    let kind = EngineKind::Counting;
    let broker = open_durable(kind, &dir);
    let server =
        Server::start_with(Arc::clone(&broker), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut client = Client::connect(addr).expect("connect");
    client.set_reconnect(Some(pubsub_net::ReconnectPolicy {
        initial: Duration::from_millis(10),
        max: Duration::from_millis(100),
        attempts: 40,
    }));
    let id = client
        .subscribe(vec![WirePredicate {
            attr: "k".into(),
            op: Operator::Eq,
            value: WireValue::Int(3),
        }])
        .expect("subscribe");

    kill_server(server, broker);

    // Restart on the same address after a real outage window; rebinding
    // may race lingering sockets, so retry the bind briefly.
    let restarter = thread::spawn(move || {
        thread::sleep(Duration::from_millis(150));
        let broker = open_durable(kind, &dir);
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match Server::start_with(Arc::clone(&broker), addr, ServerConfig::default()) {
                Ok(server) => return (dir, broker, server),
                Err(e) => {
                    assert!(Instant::now() < deadline, "rebind {addr} failed: {e}");
                    thread::sleep(Duration::from_millis(20));
                }
            }
        }
    });

    // Issued against a dead server: the policy must redial through the
    // outage, resume the durable session, and complete the request.
    let matched = client
        .publish(WireEvent {
            pairs: vec![("k".into(), WireValue::Int(3))],
        })
        .expect("publish must ride through the restart");
    assert_eq!(matched, 1, "the durable subscription survived the restart");

    let (dir, broker, server) = restarter.join().unwrap();
    assert_eq!(broker.session_rows().len(), 1);
    assert_eq!(broker.session_rows()[0].1, vec![SubscriptionId(id)]);
    server.shutdown();
    fs::remove_dir_all(&dir).unwrap();
}
